// A replicated key-value store cluster — a realistic application on the
// public API, assembled the way a deployer would:
//
//   1. bring up the simulated testbed and a 3-replica warm-passive group
//      hosting KvStoreServant (via the servant factory);
//   2. load it with typed put/get traffic through a coordinator-backed
//      client ORB;
//   3. kill the primary mid-load and keep operating (the backup replays its
//      log and takes over);
//   4. turn the high-level Availability knob to decide how the next cluster
//      should be provisioned.
//
// Run:  ./kv_cluster [keys=500] [seed=42]
//       ./kv_cluster --shards N [seed=42]   (sharded scale-out mode)
//
// With --shards N the example assembles a shard::ShardedCluster instead: a
// replicated partition directory, one replica group per shard, routed
// clients, and one online shard split performed while the workload runs.
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "app/kv_store.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "knobs/versatile.hpp"
#include "shard/cluster.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

int run_sharded(int shards, const Config& cfg) {
  shard::ShardedClusterConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.shards = shards;
  config.clients = static_cast<int>(cfg.get_int("clients", 4));
  config.client_hosts = 2;
  shard::ShardedCluster cluster(config);

  const std::uint64_t epoch_before = cluster.initial_map().epoch();

  // Split the shard owning a known key while the workload is in flight.
  const std::uint32_t h = shard::shard_hash("user:42");
  const shard::ShardEntry victim = *cluster.initial_map().lookup(h);
  bool split_ok = false;
  cluster.kernel().post_at(msec(500), [&] {
    cluster.split_shard(victim.shard, std::max(h, victim.range.lo + 1),
                        cluster.config().default_policy,
                        [&](const shard::MigrationController::Record& rec) {
                          split_ok = rec.success;
                        });
  });

  shard::ShardedCluster::WorkloadConfig wc;
  wc.ops_per_client = static_cast<int>(cfg.get_int("ops", 100));
  const auto result = cluster.run_workload(wc);
  for (int i = 0; i < 10 && !cluster.migration().idle(); ++i) cluster.drain(msec(500));
  cluster.drain();

  std::size_t stray = 0;
  for (GroupId g : cluster.data_groups()) {
    if (cluster.replica_live(g, 0)) stray += cluster.shard_servant(g, 0).stray_keys();
  }

  std::printf("kv_cluster --shards %d — sharded scale-out with an online split\n\n",
              shards);
  harness::Table table({"metric", "value"});
  table.add_row({"shards", std::to_string(shards)});
  table.add_row({"routed clients", std::to_string(config.clients)});
  table.add_row({"ops completed", std::to_string(result.completed) + " / " +
                                      std::to_string(result.completed + result.failed)});
  table.add_row({"sim throughput (req/s)", std::to_string(result.throughput_rps)});
  table.add_row({"online split committed", split_ok ? "yes" : "no"});
  table.add_row({"map epoch", std::to_string(epoch_before) + " -> " +
                                  std::to_string(cluster.directory_map().epoch())});
  table.add_row({"bytes moved", std::to_string(cluster.migration().bytes_moved_total())});
  table.add_row({"stray keys after split", std::to_string(stray)});
  std::printf("%s\n", table.render().c_str());
  return (result.all_done && split_ok && stray == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 0;
  std::vector<const char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else {
      rest.push_back(argv[i]);
    }
  }
  const Config cfg = Config::from_args(static_cast<int>(rest.size()), rest.data());
  if (shards > 1) return run_sharded(shards, cfg);
  const int keys = static_cast<int>(cfg.get_int("keys", 500));

  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 1;  // we drive traffic ourselves below
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.make_servant = [](int) { return std::make_unique<app::KvStoreServant>(); };
  harness::Scenario scenario(config);

  // Let the group form, then schedule the primary's demise mid-load.
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  scenario.arm_faults();  // manual kernel driving: arm explicitly
  scenario.kernel().run_until(msec(300));

  // A hand-assembled client: process + ORB + replicated transport.
  sim::Process client(scenario.kernel(), ProcessId{9001}, NodeId{0}, "kv-client");
  orb::ClientOrb orb(scenario.network(), client);
  orb.use_transport(std::make_unique<replication::ClientCoordinator>(
      scenario.network(), scenario.daemon_on(NodeId{0}), client));

  int stored = 0;
  for (int i = 0; i < keys; ++i) {
    scenario.kernel().post(msec(3) * i, [&, i] {
      orb.invoke(scenario.object_ref(), "put",
                 app::KvStoreServant::encode_put("user:" + std::to_string(i),
                                                 "profile-" + std::to_string(i * 7)),
                 [&](orb::ReplyStatus status, Bytes) {
                   if (status == orb::ReplyStatus::kNoException) ++stored;
                 });
    });
  }

  // After the dust settles, read a key written *before* the crash.
  std::string survived;
  scenario.kernel().post_at(msec(3) * keys + sec(1), [&] {
    orb.invoke(scenario.object_ref(), "get", app::KvStoreServant::encode_key("user:42"),
               [&](orb::ReplyStatus, Bytes body) {
                 survived = app::KvStoreServant::decode_get(body).value;
               });
  });
  scenario.kernel().run_until(msec(3) * keys + sec(2));
  scenario.drain();

  std::printf("kv_cluster — replicated key-value store with mid-load failover\n\n");
  harness::Table table({"metric", "value"});
  table.add_row({"puts acknowledged", std::to_string(stored) + " / " + std::to_string(keys)});
  table.add_row({"replicas alive after crash", std::to_string(scenario.live_replicas())});
  table.add_row({"user:42 after failover", survived});
  auto& survivor = dynamic_cast<app::KvStoreServant&>(scenario.app(1));
  table.add_row({"entries at promoted backup", std::to_string(survivor.entries())});
  std::printf("%s\n", table.render().c_str());

  // Capacity question an operator would ask next: what does five nines cost?
  knobs::VersatileDependability vd(scenario);
  vd.install_availability_knob(knobs::AvailabilityModel{});
  for (double target : {0.999, 0.99999}) {
    auto choice = vd.tune_for_availability(target);
    if (choice) {
      std::printf("to promise availability >= %.5f deploy %s (predicted %.6f)\n",
                  target, choice->config.code().c_str(), choice->availability);
    } else {
      std::printf("availability >= %.5f is unachievable under this fault model\n",
                  target);
    }
  }
  return 0;
}
