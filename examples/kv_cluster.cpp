// A replicated key-value store cluster — a realistic application on the
// public API, assembled the way a deployer would:
//
//   1. bring up the simulated testbed and a 3-replica warm-passive group
//      hosting KvStoreServant (via the servant factory);
//   2. load it with typed put/get traffic through a coordinator-backed
//      client ORB;
//   3. kill the primary mid-load and keep operating (the backup replays its
//      log and takes over);
//   4. turn the high-level Availability knob to decide how the next cluster
//      should be provisioned.
//
// Run:  ./kv_cluster [keys=500] [seed=42]
#include <cstdio>

#include "app/kv_store.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "knobs/versatile.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int keys = static_cast<int>(cfg.get_int("keys", 500));

  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 1;  // we drive traffic ourselves below
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.make_servant = [](int) { return std::make_unique<app::KvStoreServant>(); };
  harness::Scenario scenario(config);

  // Let the group form, then schedule the primary's demise mid-load.
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  scenario.arm_faults();  // manual kernel driving: arm explicitly
  scenario.kernel().run_until(msec(300));

  // A hand-assembled client: process + ORB + replicated transport.
  sim::Process client(scenario.kernel(), ProcessId{9001}, NodeId{0}, "kv-client");
  orb::ClientOrb orb(scenario.network(), client);
  orb.use_transport(std::make_unique<replication::ClientCoordinator>(
      scenario.network(), scenario.daemon_on(NodeId{0}), client));

  int stored = 0;
  for (int i = 0; i < keys; ++i) {
    scenario.kernel().post(msec(3) * i, [&, i] {
      orb.invoke(scenario.object_ref(), "put",
                 app::KvStoreServant::encode_put("user:" + std::to_string(i),
                                                 "profile-" + std::to_string(i * 7)),
                 [&](orb::ReplyStatus status, Bytes) {
                   if (status == orb::ReplyStatus::kNoException) ++stored;
                 });
    });
  }

  // After the dust settles, read a key written *before* the crash.
  std::string survived;
  scenario.kernel().post_at(msec(3) * keys + sec(1), [&] {
    orb.invoke(scenario.object_ref(), "get", app::KvStoreServant::encode_key("user:42"),
               [&](orb::ReplyStatus, Bytes body) {
                 survived = app::KvStoreServant::decode_get(body).value;
               });
  });
  scenario.kernel().run_until(msec(3) * keys + sec(2));
  scenario.drain();

  std::printf("kv_cluster — replicated key-value store with mid-load failover\n\n");
  harness::Table table({"metric", "value"});
  table.add_row({"puts acknowledged", std::to_string(stored) + " / " + std::to_string(keys)});
  table.add_row({"replicas alive after crash", std::to_string(scenario.live_replicas())});
  table.add_row({"user:42 after failover", survived});
  auto& survivor = dynamic_cast<app::KvStoreServant&>(scenario.app(1));
  table.add_row({"entries at promoted backup", std::to_string(survivor.entries())});
  std::printf("%s\n", table.render().c_str());

  // Capacity question an operator would ask next: what does five nines cost?
  knobs::VersatileDependability vd(scenario);
  vd.install_availability_knob(knobs::AvailabilityModel{});
  for (double target : {0.999, 0.99999}) {
    auto choice = vd.tune_for_availability(target);
    if (choice) {
      std::printf("to promise availability >= %.5f deploy %s (predicted %.6f)\n",
                  target, choice->config.code().c_str(), choice->availability);
    } else {
      std::printf("availability >= %.5f is unachievable under this fault model\n",
                  target);
    }
  }
  return 0;
}
