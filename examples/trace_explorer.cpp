// Trace explorer: record a causal flight recording of a failover.
//
// Runs a warm-passive replicated service with the tracer enabled, crashes
// the primary mid-run, and exports the resulting span forest two ways:
//   - Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev) —
//     every client request is one trace linking client ORB, coordinator,
//     group-communication daemons, and every replica's execution; the
//     failover shows up as a long coord.send span bracketing retries, the
//     backup's rep.promote, and the replayed executions;
//   - the canonical text tree, printed (head) and optionally written.
//
// Both renderings are byte-deterministic for a given seed: running this
// binary twice with the same arguments produces identical files (the CI
// determinism gate does exactly that and diffs them).
//
// Run:  ./trace_explorer [seed=42] [out=trace.json] [txt=]
#include <cstdio>
#include <string>

#include "harness/scenario.hpp"
#include "obs/export.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string out = cfg.get_str("out", "trace.json");
  const std::string txt = cfg.get_str("txt", "");

  // Warm-passive, 3 replicas, tracing on. The primary dies one second in,
  // so the recording contains: steady-state request trees, the view change,
  // the backup's promotion + log replay, and the clients' retry storms.
  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.tracing = true;
  harness::Scenario scenario(config);

  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = static_cast<int>(cfg.get_int("requests", 400));
  const harness::ExperimentResult result = scenario.run_closed_loop(cycle);
  scenario.drain();

  const obs::Tracer& tracer = scenario.kernel().tracer();
  std::printf("trace_explorer — warm-passive failover flight recording\n");
  std::printf("  requests completed   %llu\n",
              static_cast<unsigned long long>(result.completed));
  std::printf("  retransmissions      %llu\n",
              static_cast<unsigned long long>(result.retransmissions));
  std::printf("  spans recorded       %llu (dropped %llu)\n",
              static_cast<unsigned long long>(tracer.spans_recorded()),
              static_cast<unsigned long long>(tracer.spans_dropped()));
  std::printf("  traces started       %llu\n",
              static_cast<unsigned long long>(tracer.traces_started()));

  const std::string json = obs::to_chrome_trace(tracer);
  if (!obs::write_file(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("  wrote %s (%zu bytes) — load in chrome://tracing\n", out.c_str(),
              json.size());

  const std::string text = obs::render_text(tracer);
  if (!txt.empty()) {
    if (!obs::write_file(txt, text)) {
      std::fprintf(stderr, "failed to write %s\n", txt.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu bytes)\n", txt.c_str(), text.size());
  }

  // Print the first few trees so the causal structure is visible inline.
  std::size_t lines = 0, pos = 0;
  while (pos < text.size() && lines < 40) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::printf("%.*s\n", static_cast<int>(nl - pos), text.c_str() + pos);
    pos = nl + 1;
    ++lines;
  }
  if (pos < text.size()) std::printf("  ... (%zu bytes total)\n", text.size());
  return 0;
}
