// Trace explorer: record a causal flight recording of a failover.
//
// Runs a warm-passive replicated service with the tracer enabled, crashes
// the primary mid-run, and exports the resulting span forest two ways:
//   - Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev) —
//     every client request is one trace linking client ORB, coordinator,
//     group-communication daemons, and every replica's execution; the
//     failover shows up as a long coord.send span bracketing retries, the
//     backup's rep.promote, and the replayed executions;
//   - the canonical text tree, printed (head) and optionally written.
//
// Both renderings are byte-deterministic for a given seed: running this
// binary twice with the same arguments produces identical files (the CI
// determinism gate does exactly that and diffs them).
//
// Run:  ./trace_explorer [seed=42] [out=trace.json] [txt=] [metrics=0]
//       ./trace_explorer shards=N [shard=K] [out=trace.json]
//
// With metrics=1 the scenario also runs its live health plane and dumps the
// full metrics registry (counters, gauges — including health.* suspicion and
// SLO gauges — and distribution summaries) as stable-key JSON to
// metrics_out (default metrics.json).
//
// With shards=N the recording comes from a sharded cluster performing an
// online split; every routed request carries a "shard.route" span noted
// with its shard id and map epoch, and shard=K narrows the printed span
// listing to one shard. The default (unsharded) output is untouched — the
// CI determinism gate diffs it byte-for-byte.
#include <cstdio>
#include <string>

#include "harness/scenario.hpp"
#include "obs/export.hpp"
#include "obs/metrics_export.hpp"
#include "shard/cluster.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

// Sharded flight recording: run a routed workload across `shards` groups
// with one online split, then slice the span table per shard.
int run_sharded_trace(const Config& cfg, int shards) {
  const std::string out = cfg.get_str("out", "trace.json");
  const std::int64_t shard_filter = cfg.get_int("shard", -1);

  shard::ShardedClusterConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.shards = shards;
  config.clients = 2;
  config.tracing = true;
  shard::ShardedCluster cluster(config);

  const auto first = cluster.initial_map().entries().front();
  cluster.kernel().post_at(msec(500), [&] {
    cluster.split_shard(first.shard,
                        first.range.lo +
                            static_cast<std::uint32_t>(first.range.width() / 2),
                        cluster.config().default_policy);
  });
  shard::ShardedCluster::WorkloadConfig wc;
  wc.ops_per_client = static_cast<int>(cfg.get_int("requests", 100));
  const auto result = cluster.run_workload(wc);
  for (int i = 0; i < 10 && !cluster.migration().idle(); ++i) cluster.drain(msec(500));
  cluster.drain();

  const obs::Tracer& tracer = cluster.kernel().tracer();
  std::printf("trace_explorer — sharded routing flight recording (%d shards)\n",
              shards);
  std::printf("  ops completed        %llu\n",
              static_cast<unsigned long long>(result.completed));
  std::printf("  spans recorded       %llu (dropped %llu)\n",
              static_cast<unsigned long long>(tracer.spans_recorded()),
              static_cast<unsigned long long>(tracer.spans_dropped()));

  // Per-shard span census from the "shard" note on shard.route spans; with
  // shard=K also list that shard's individual routes.
  std::map<std::string, std::uint64_t> per_shard;
  for (const auto& span : tracer.spans()) {
    if (span.name != "shard.route") continue;
    for (const auto& [key, value] : span.notes) {
      if (key == "shard") ++per_shard[value];
    }
  }
  for (const auto& [id, count] : per_shard) {
    std::printf("  shard %-4s %6llu routed spans\n", id.c_str(),
                static_cast<unsigned long long>(count));
  }
  if (shard_filter >= 0) {
    const std::string wanted = std::to_string(shard_filter);
    std::printf("  --- spans for shard %s ---\n", wanted.c_str());
    int listed = 0;
    for (const auto& span : tracer.spans()) {
      if (span.name != "shard.route" || listed >= 40) continue;
      std::string epoch, op;
      bool match = false;
      for (const auto& [key, value] : span.notes) {
        if (key == "shard" && value == wanted) match = true;
        if (key == "epoch") epoch = value;
        if (key == "op") op = value;
      }
      if (!match) continue;
      std::printf("  [%9lld ns] %-8s epoch=%s %s\n",
                  static_cast<long long>(span.start.count()), op.c_str(),
                  epoch.c_str(), std::string(span.proc).c_str());
      ++listed;
    }
  }

  const std::string json = obs::to_chrome_trace(tracer);
  if (!obs::write_file(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("  wrote %s (%zu bytes) — load in chrome://tracing\n", out.c_str(),
              json.size());
  return result.all_done ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const std::string out = cfg.get_str("out", "trace.json");
  const std::string txt = cfg.get_str("txt", "");

  const int shards = static_cast<int>(cfg.get_int("shards", 1));
  if (shards > 1) return run_sharded_trace(cfg, shards);

  // Warm-passive, 3 replicas, tracing on. The primary dies one second in,
  // so the recording contains: steady-state request trees, the view change,
  // the backup's promotion + log replay, and the clients' retry storms.
  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.tracing = true;
  const bool dump_metrics = cfg.get_int("metrics", 0) != 0;
  config.health = dump_metrics;
  harness::Scenario scenario(config);

  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = static_cast<int>(cfg.get_int("requests", 400));
  const harness::ExperimentResult result = scenario.run_closed_loop(cycle);
  scenario.drain();

  const obs::Tracer& tracer = scenario.kernel().tracer();
  std::printf("trace_explorer — warm-passive failover flight recording\n");
  std::printf("  requests completed   %llu\n",
              static_cast<unsigned long long>(result.completed));
  std::printf("  retransmissions      %llu\n",
              static_cast<unsigned long long>(result.retransmissions));
  std::printf("  spans recorded       %llu (dropped %llu)\n",
              static_cast<unsigned long long>(tracer.spans_recorded()),
              static_cast<unsigned long long>(tracer.spans_dropped()));
  std::printf("  traces started       %llu\n",
              static_cast<unsigned long long>(tracer.traces_started()));

  const std::string json = obs::to_chrome_trace(tracer);
  if (!obs::write_file(out, json)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("  wrote %s (%zu bytes) — load in chrome://tracing\n", out.c_str(),
              json.size());

  if (dump_metrics) {
    const std::string metrics_out = cfg.get_str("metrics_out", "metrics.json");
    const std::string metrics_json = obs::to_metrics_json(scenario.metrics());
    if (!obs::write_file(metrics_out, metrics_json)) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu bytes) — metrics registry snapshot\n",
                metrics_out.c_str(), metrics_json.size());
    std::printf("  health events        %zu\n", scenario.health().events().size());
  }

  const std::string text = obs::render_text(tracer);
  if (!txt.empty()) {
    if (!obs::write_file(txt, text)) {
      std::fprintf(stderr, "failed to write %s\n", txt.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu bytes)\n", txt.c_str(), text.size());
  }

  // Print the first few trees so the causal structure is visible inline.
  std::size_t lines = 0, pos = 0;
  while (pos < text.size() && lines < 40) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::printf("%.*s\n", static_cast<int>(nl - pos), text.c_str() + pos);
    pos = nl + 1;
    ++lines;
  }
  if (pos < text.size()) std::printf("  ... (%zu bytes total)\n", text.size());
  return 0;
}
