// Sensor network with windows of opportunity (paper Sec. 5).
//
// "When the resources are scarce and cannot be wasted ... the infrastructure
// must be able to tune the replication style to run in a resource-
// conservative mode most of the time, and to switch to the high-performance
// mode only during the limited window of opportunity."
//
// A data-collection service runs warm-passive during quiet periods; when a
// measurement window opens, the observed request rate jumps and the
// rate-threshold adaptation policy switches the group to active replication
// — automatically, via the Fig. 5 protocol — then back when the window
// closes. This binary prints the timeline.
//
// Run:  ./sensor_network [windows=3] [window_ms=3000] [quiet_ms=4000]
#include <cstdio>

#include "adaptive/switch_protocol.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int windows = static_cast<int>(cfg.get_int("windows", 3));
  const SimTime window = msec(cfg.get_int("window_ms", 3000));
  const SimTime quiet = msec(cfg.get_int("quiet_ms", 4000));

  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 2;   // two sensor gateways feeding the collector
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;  // frugal default
  config.enable_replicated_state = true;
  adaptive::RateThresholdPolicy::Config policy;
  policy.low_rate = 300;   // drop back to passive below this
  policy.high_rate = 600;  // go active above this
  config.adaptation = policy;
  harness::Scenario scenario(config);

  // The duty cycle: trickle telemetry in quiet periods, bursts during
  // measurement windows.
  std::vector<app::RatePlan::Segment> segments;
  SimTime t = kTimeZero;
  for (int w = 0; w < windows; ++w) {
    segments.push_back({t, 150.0});           // quiet: 150 req/s
    t += quiet;
    segments.push_back({t, 1000.0});          // window of opportunity
    t += window;
  }
  segments.push_back({t, 150.0});
  t += quiet;

  harness::Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan(segments);
  open.duration = t;
  const harness::OpenLoopResult result = scenario.run_open_loop(open);

  std::printf("sensor network — %d measurement windows over %.1f s\n\n", windows,
              to_sec(t));
  std::printf("%s\n",
              harness::render_series("offered telemetry rate at the collector [req/s]",
                                     result.observed_rate, kTimeZero, t, msec(500),
                                     1300)
                  .c_str());
  std::printf("%s\n",
              harness::render_series(
                  "replication style (full bar = active/high-performance, empty = "
                  "warm passive/frugal)",
                  result.style_series, kTimeZero, t, msec(500), 1.0)
                  .c_str());

  const auto summary = adaptive::summarize_switches(result.switches);
  std::printf("automatic style switches: %zu (%zu into the windows, %zu back)\n",
              summary.count, summary.to_active, summary.to_passive);
  std::printf("mean switch completion: %.0f us — \"comparable to the average "
              "response time\" (mean RTT here: %.0f us)\n",
              summary.mean_duration_us, result.totals.avg_latency_us);
  std::printf("telemetry served: %llu readings, %.2f MB/s average network cost\n",
              static_cast<unsigned long long>(result.totals.completed),
              result.totals.bandwidth_mbps);
  return 0;
}
