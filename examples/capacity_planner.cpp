// Offline capacity planning with the high-level scalability knob
// (paper Sec. 4.3 as a deployment-time workflow).
//
// Profiles the dependability design space for this application's parameters,
// synthesizes the {style, replicas} policy for the operator's requirements,
// and prints the deployment plan — including the client count beyond which
// "the system notifies the operators that the tuning policy can no longer be
// honored".
//
// Run:  ./capacity_planner [max_latency_us=7000] [max_bandwidth=3.0] [p=0.5]
//                          [requests=3000] [request_bytes=112] [state_bytes=7552]
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "knobs/scalability.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  knobs::ScalabilityRequirements requirements;
  requirements.max_latency_us = cfg.get_double("max_latency_us", 7000);
  requirements.max_bandwidth_mbps = cfg.get_double("max_bandwidth", 3.0);
  requirements.cost.p = cfg.get_double("p", 0.5);
  requirements.cost.latency_limit_us = requirements.max_latency_us;
  requirements.cost.bandwidth_limit_mbps = requirements.max_bandwidth_mbps;

  harness::SweepConfig sweep;
  sweep.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  sweep.requests_per_client = static_cast<int>(cfg.get_int("requests", 3000));
  sweep.base.request_bytes = static_cast<std::size_t>(cfg.get_int("request_bytes", 112));
  sweep.base.state_bytes = static_cast<std::size_t>(cfg.get_int("state_bytes", 7552));

  std::printf("capacity planner — profiling the design space for your workload\n");
  std::printf("(request %zu B, state %zu B, %d-request cycles per grid point)\n\n",
              sweep.base.request_bytes, sweep.base.state_bytes,
              sweep.requests_per_client);

  int done = 0;
  const knobs::DesignSpaceMap map =
      harness::profile_design_space(sweep, [&done](const knobs::DesignPoint&) {
        std::fprintf(stderr, "\r  profiled %d/30 grid points", ++done);
      });
  std::fprintf(stderr, "\n\n");

  const knobs::ScalabilityPolicy policy =
      knobs::synthesize_scalability_policy(map, requirements);

  std::printf("requirements: latency <= %.0f us, bandwidth <= %.1f MB/s, best "
              "fault-tolerance, cost weight p = %.2f\n\n",
              requirements.max_latency_us, requirements.max_bandwidth_mbps,
              requirements.cost.p);

  harness::Table table({"clients", "deploy", "expect latency [us]",
                        "expect bandwidth [MB/s]", "faults tolerated", "cost"});
  for (const auto& e : policy.entries) {
    table.add_row({std::to_string(e.clients), e.config.code(),
                   harness::Table::num(e.latency_us),
                   harness::Table::num(e.bandwidth_mbps, 3),
                   std::to_string(e.faults_tolerated),
                   harness::Table::num(e.cost, 3)});
  }
  std::printf("deployment plan:\n%s\n", table.render().c_str());

  if (!policy.infeasible_clients.empty()) {
    std::printf("beyond %d clients no configuration satisfies the requirements — "
                "renegotiate the contract or add hardware.\n",
                policy.max_supported_clients());
  } else {
    std::printf("all profiled client counts are servable; re-profile with more "
                "clients to find the capacity wall.\n");
  }
  return 0;
}
