// Chaos campaign runner: sweeps seeded fault-injection trials across the
// dependability design space (replication style x replica count x checkpoint
// frequency), judges every trial with the invariant oracles, and writes a
// JSON summary (BENCH_chaos.json when driven by bench/run_bench.sh).
//
// Every trial is reproducible from the campaign seed and its index alone:
//
//   examples/chaos_runner trials=200 seed=1 out=BENCH_chaos.json
//
// On failure the minimal reproducer (after delta-debugging) is printed so it
// can be pasted into a regression test.
#include <cstdio>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/shrink.hpp"
#include "obs/export.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

void write_json(const std::string& path, const chaos::CampaignConfig& config,
                const chaos::CampaignResult& result) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(f, "  \"trials\": %d,\n", result.trials);
  std::fprintf(f, "  \"passed\": %d,\n", result.passed);
  std::fprintf(f, "  \"failed\": %d,\n", result.trials - result.passed);
  std::fprintf(f, "  \"pass_rate\": %.4f,\n",
               result.metrics.gauge("chaos.pass_rate").value_or(0.0));
  if (const auto* rec = result.metrics.distribution("chaos.recovery_ms")) {
    std::fprintf(f,
                 "  \"recovery_ms\": {\"mean\": %.3f, \"stddev\": %.3f, "
                 "\"min\": %.3f, \"max\": %.3f},\n",
                 rec->mean(), rec->stddev(), rec->min(), rec->max());
  }
  if (const auto* ops = result.metrics.distribution("chaos.completed_ops")) {
    std::fprintf(f, "  \"completed_ops\": {\"mean\": %.1f, \"total\": %.0f},\n",
                 ops->mean(), ops->sum());
  }
  std::fprintf(f, "  \"per_style\": {");
  bool first = true;
  for (auto style : config.styles) {
    const std::string code = replication::style_code(style);
    std::fprintf(f, "%s\n    \"%s\": {\"pass\": %llu, \"fail\": %llu}",
                 first ? "" : ",", code.c_str(),
                 static_cast<unsigned long long>(
                     result.metrics.counter("chaos.pass." + code)),
                 static_cast<unsigned long long>(
                     result.metrics.counter("chaos.fail." + code)));
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  chaos::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  config.trials = static_cast<int>(cfg.get_int("trials", 200));
  config.base.clients = static_cast<int>(cfg.get_int("clients", 2));
  config.base.ops_per_client = static_cast<int>(cfg.get_int("ops", 100));
  const bool shrink_failures = cfg.get_bool("shrink", true);
  const std::string out = cfg.get_str("out", "");

  std::printf("chaos campaign: %d trials, seed %llu, 5 styles x replicas "
              "{2,3} x checkpoint-every {10,25}\n\n",
              config.trials, static_cast<unsigned long long>(config.seed));

  const auto result = chaos::run_campaign(
      config, [](int index, const chaos::TrialConfig& trial,
                 const chaos::TrialResult& r) {
        if ((index + 1) % 20 == 0 || !r.pass()) {
          std::printf("  trial %3d  style=%s replicas=%d cpfreq=%u faults=%zu  %s\n",
                      index, replication::style_code(trial.style).c_str(),
                      trial.replicas, trial.checkpoint_every_requests,
                      r.plan.size(), r.pass() ? "PASS" : "FAIL");
        }
      });

  std::printf("\n%d/%d trials passed", result.passed, result.trials);
  if (const auto* rec = result.metrics.distribution("chaos.recovery_ms")) {
    std::printf("; recovery after last fault: mean %.0f ms, max %.0f ms",
                rec->mean(), rec->max());
  }
  std::printf("\n");

  for (const auto& failure : result.failures) {
    std::printf("\nFAIL trial %d (style=%s replicas=%d):\n", failure.trial_index,
                replication::style_code(failure.config.style).c_str(),
                failure.config.replicas);
    for (const auto& reason : failure.failures) {
      std::printf("  oracle: %s\n", reason.c_str());
    }
    std::printf("schedule:\n%s", failure.plan.to_string().c_str());
    if (!failure.flight_recording.empty()) {
      const std::string path =
          "chaos_trial_" + std::to_string(failure.trial_index) + ".trace.json";
      if (obs::write_file(path, failure.flight_recording)) {
        std::printf("flight recording: %s (load in chrome://tracing)\n",
                    path.c_str());
      }
    }
    if (shrink_failures) {
      const auto shrunk = chaos::shrink_schedule(failure.config, failure.plan);
      std::printf("minimal reproducer (%zu actions, %d probes):\n%s",
                  shrunk.minimal.size(), shrunk.probes,
                  shrunk.minimal.to_string().c_str());
    }
  }

  if (!out.empty()) write_json(out, config, result);
  return result.all_passed() ? 0 : 1;
}
