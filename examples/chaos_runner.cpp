// Chaos campaign runner: sweeps seeded fault-injection trials across the
// dependability design space (replication style x replica count x checkpoint
// frequency), judges every trial with the invariant oracles, and writes a
// JSON summary (BENCH_chaos.json when driven by bench/run_bench.sh).
//
// Every trial is reproducible from the campaign seed and its index alone,
// and the campaign output is byte-identical at any worker count:
//
//   examples/chaos_runner trials=200 seed=1 workers=8 out=BENCH_chaos.json
//
// On failure the minimal reproducer (after delta-debugging) is printed so it
// can be pasted into a regression test.
#include <cstdio>
#include <memory>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/shrink.hpp"
#include "obs/export.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

void write_json(const std::string& path, const chaos::CampaignConfig& config,
                const chaos::CampaignResult& result) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::string json = chaos::to_json(config, result);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  chaos::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  config.trials = static_cast<int>(cfg.get_int("trials", 200));
  config.base.clients = static_cast<int>(cfg.get_int("clients", 2));
  config.base.ops_per_client = static_cast<int>(cfg.get_int("ops", 100));
  config.workers = static_cast<int>(cfg.get_int("workers", 1));
  const bool shrink_failures = cfg.get_bool("shrink", true);
  const std::string out = cfg.get_str("out", "");

  std::printf("chaos campaign: %d trials, seed %llu, %d worker%s, 5 styles x "
              "replicas {2,3} x checkpoint-every {10,25}\n\n",
              config.trials, static_cast<unsigned long long>(config.seed),
              config.workers, config.workers == 1 ? "" : "s");

  const auto result = chaos::run_campaign(
      config, [](int index, const chaos::TrialConfig& trial,
                 const chaos::TrialResult& r) {
        if ((index + 1) % 20 == 0 || !r.pass()) {
          std::printf("  trial %3d  style=%s replicas=%d cpfreq=%u faults=%zu  %s\n",
                      index, replication::style_code(trial.style).c_str(),
                      trial.replicas, trial.checkpoint_every_requests,
                      r.plan.size(), r.pass() ? "PASS" : "FAIL");
        }
      });

  std::printf("\n%d/%d trials passed", result.passed, result.trials);
  if (const auto* rec = result.metrics.distribution("chaos.recovery_ms")) {
    std::printf("; recovery after last fault: mean %.0f ms, max %.0f ms",
                rec->mean(), rec->max());
  }
  std::printf("\n");

  for (const auto& failure : result.failures) {
    std::printf("\nFAIL trial %d (style=%s replicas=%d):\n", failure.trial_index,
                replication::style_code(failure.config.style).c_str(),
                failure.config.replicas);
    for (const auto& reason : failure.failures) {
      std::printf("  oracle: %s\n", reason.c_str());
    }
    std::printf("schedule:\n%s", failure.plan.to_string().c_str());
    if (!failure.flight_recording.empty()) {
      const std::string path =
          "chaos_trial_" + std::to_string(failure.trial_index) + ".trace.json";
      if (obs::write_file(path, failure.flight_recording)) {
        std::printf("flight recording: %s (load in chrome://tracing)\n",
                    path.c_str());
      }
    }
    if (shrink_failures) {
      // Re-use the fleet width for the shrinker's candidate replays (each
      // probe is an independent kernel, same as a campaign trial).
      std::unique_ptr<sim::parallel::StealPool> shrink_pool;
      if (config.workers > 1) {
        shrink_pool = std::make_unique<sim::parallel::StealPool>(config.workers);
      }
      const auto shrunk = chaos::shrink_schedule(failure.config, failure.plan, {},
                                                 shrink_pool.get());
      std::printf("minimal reproducer (%zu actions, %d probes):\n%s",
                  shrunk.minimal.size(), shrunk.probes,
                  shrunk.minimal.to_string().c_str());
    }
  }

  if (!out.empty()) write_json(out, config, result);
  return result.all_passed() ? 0 : 1;
}
