// Quickstart: replicate a service, lose a replica, keep serving.
//
// Builds the simulated testbed (hosts + group-communication daemons), runs a
// 3-replica actively-replicated service under client load, crashes the
// lowest-ranked replica mid-run, and shows that the cycle completes with no
// client-visible failures — then walks the knob registry the way an operator
// would.
//
// Run:  ./quickstart [requests=2000] [seed=42]
#include <cstdio>

#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "knobs/versatile.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  // 1. Describe the deployment: 2 clients, 3 active replicas, each process
  //    on its own simulated host with a group-communication daemon.
  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kActive;
  harness::Scenario scenario(config);

  // 2. Inject a fault: the senior replica dies one second in.
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  // 3. Run the micro-benchmark cycle.
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = static_cast<int>(cfg.get_int("requests", 2000));
  const harness::ExperimentResult result = scenario.run_closed_loop(cycle);

  std::printf("quickstart — active replication surviving a replica crash\n\n");
  harness::Table table({"metric", "value"});
  table.add_row({"requests completed", std::to_string(result.completed)});
  table.add_row({"client retransmissions", std::to_string(result.retransmissions)});
  table.add_row({"mean round-trip [us]", harness::Table::num(result.avg_latency_us)});
  table.add_row({"p99 round-trip [us]", harness::Table::num(result.p99_latency_us)});
  table.add_row({"bandwidth [MB/s]", harness::Table::num(result.bandwidth_mbps, 3)});
  table.add_row({"replicas still alive", std::to_string(scenario.live_replicas())});
  table.add_row({"faults still tolerated", std::to_string(result.faults_tolerated)});
  std::printf("%s\n", table.render().c_str());

  // 4. Verify the survivors agree (state-machine replication at work).
  scenario.drain();
  const auto digests = scenario.live_state_digests();
  std::printf("surviving replica state digests: %llx, %llx (%s)\n\n",
              static_cast<unsigned long long>(digests.at(0)),
              static_cast<unsigned long long>(digests.at(1)),
              digests.at(0) == digests.at(1) ? "consistent" : "DIVERGED");

  // 5. The knob view of the same system: this is the interface versatile
  //    dependability gives operators.
  knobs::VersatileDependability vd(scenario);
  std::printf("knobs available on this service:\n");
  for (const knobs::Knob* knob : vd.registry().list()) {
    std::printf("  [%s] %-22s = %-12s %s\n",
                knob->level() == knobs::KnobLevel::kLow ? "low " : "high",
                knob->name().c_str(), knob->get().c_str(),
                knob->description().c_str());
  }

  // 6. Turn one: drop to a resource-frugal style at runtime (the Fig. 5
  //    protocol runs live) and prove the service still works.
  vd.registry().at("ReplicationStyle").set("warm_passive");
  scenario.drain(sec(1));
  std::printf("\nafter turning ReplicationStyle -> %s, responder is replica rank 0\n",
              replication::to_string(scenario.style()).c_str());
  return 0;
}
