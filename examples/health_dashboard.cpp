// Health dashboard: watch the live health plane close the adaptation loop.
//
// Default mode runs a warm-passive replicated service with the health plane
// on and a HealthThresholdPolicy adaptation manager per replica, injects a
// primary crash and a short partition, and renders a periodic dashboard:
// per-link phi suspicion, per-replica state, service SLO attainment/burn,
// and the current replication style. Every health event (suspect/clear,
// SLO breach/recover) prints live as it is emitted. The policy reacts to
// suspicion by switching the group to active replication, then eases back
// once the plane clears — the paper's Fig. 6 loop driven by failure
// detection instead of load.
//
// Chaos mode (chaos=1) runs one seeded chaos trial with the health plane
// and writes the canonical HealthEvent stream to `events`; the stream is
// byte-deterministic in the seed, which the CI determinism gate checks by
// running this twice and diffing the files.
//
// Run:  ./health_dashboard [seed=7] [requests=4000] [events=]
//       ./health_dashboard chaos=1 [seed=7] [events=health_events.txt]
#include <cstdio>
#include <string>

#include "chaos/campaign.hpp"
#include "harness/scenario.hpp"
#include "obs/export.hpp"
#include "util/config.hpp"

using namespace vdep;

namespace {

int run_chaos_mode(const Config& cfg) {
  chaos::TrialConfig tc;
  tc.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  tc.health = true;
  const chaos::TrialResult result = chaos::run_trial(tc);

  std::printf("health_dashboard — chaos trial (seed %llu)\n",
              static_cast<unsigned long long>(tc.seed));
  std::printf("  verdict              %s\n", result.pass() ? "PASS" : "FAIL");
  std::printf("  completed ops        %llu\n",
              static_cast<unsigned long long>(result.completed_ops));
  std::printf("  health events        %zu\n", result.health_observation.events.size());
  for (const auto& rec : chaos::match_detections(result.health_observation)) {
    std::printf("  detection %7.1f ms  %s\n", rec.detected ? rec.latency_ms : -1.0,
                rec.fault.c_str());
  }
  if (!result.pass()) std::printf("%s", result.verdict.to_string().c_str());

  const std::string events_path = cfg.get_str("events", "health_events.txt");
  const std::string rendered =
      monitor::health::render_text(result.health_observation.events);
  if (!obs::write_file(events_path, rendered)) {
    std::fprintf(stderr, "failed to write %s\n", events_path.c_str());
    return 1;
  }
  std::printf("  wrote %s (%zu bytes)\n", events_path.c_str(), rendered.size());
  return result.pass() ? 0 : 1;
}

void print_dashboard(harness::Scenario& scenario) {
  auto& health = scenario.health();
  const double t_ms = to_msec(scenario.kernel().now());
  const std::string style = replication::to_string(scenario.style());
  std::printf("[%8.1f ms] style=%-12s phi_max=%6.2f suspected=%zu/%zu links\n",
              t_ms, style.c_str(), health.max_phi(),
              health.suspected_replicas(), health.suspected_links());
  for (const auto& [name, slo] : health.slo_status()) {
    std::printf("              slo %-8s p99=%8.0f us  avail=%.4f  burn=%5.2f  %s\n",
                name.c_str(), slo.p99_us, slo.availability, slo.burn_rate,
                slo.met() ? "OK" : "BREACH");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  if (cfg.get_int("chaos", 0) != 0) return run_chaos_mode(cfg);

  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 7));
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.auto_recover = true;
  config.health_adaptation = adaptive::HealthThresholdPolicy::Config{};
  harness::Scenario scenario(config);

  // Fault script: the primary dies (and auto-recovers), then a partition
  // briefly isolates the last replica's host.
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  scenario.fault_plan().restart_process(msec(1300), scenario.replica_pid(0));
  scenario.fault_plan().partition_window(
      msec(2500), msec(2800), {scenario.replica_host(2)},
      {scenario.replica_host(0), scenario.replica_host(1)});

  // Live alert feed.
  scenario.health().stream().set_on_event([](const monitor::health::HealthEvent& e) {
    std::printf("  ! #%04llu [%8.1f ms] %-24s %s (value=%.2f threshold=%.2f)\n",
                static_cast<unsigned long long>(e.seq), to_msec(e.at),
                monitor::health::to_string(e.kind), e.subject.c_str(), e.value,
                e.threshold);
  });

  // Periodic dashboard frames.
  const SimTime frame = msec(500);
  std::function<void()> tick = [&] {
    print_dashboard(scenario);
    scenario.kernel().post(frame, tick);
  };
  scenario.kernel().post(frame, tick);

  std::printf("health_dashboard — crash + partition under a live health plane\n");
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = static_cast<int>(cfg.get_int("requests", 4000));
  const harness::ExperimentResult result = scenario.run_closed_loop(cycle);
  scenario.drain();

  auto& health = scenario.health();
  std::printf("--- final ---\n");
  print_dashboard(scenario);
  std::printf("  requests completed   %llu (p99 %.0f us)\n",
              static_cast<unsigned long long>(result.completed),
              result.p99_latency_us);
  std::printf("  health events        %zu (windows cut %llu)\n",
              health.events().size(),
              static_cast<unsigned long long>(health.series().windows_cut()));

  const std::string events_path = cfg.get_str("events", "");
  if (!events_path.empty()) {
    const std::string rendered = monitor::health::render_text(health.events());
    if (!obs::write_file(events_path, rendered)) {
      std::fprintf(stderr, "failed to write %s\n", events_path.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu bytes)\n", events_path.c_str(), rendered.size());
  }
  return 0;
}
