// Long-running mission with operating modes and behavioral contracts
// (paper Secs. 3.1 and 5: applications "that cannot be stopped (e.g., during
// a space flight), but that have several modes of operation").
//
// A spacecraft data service alternates between cruise (resource-frugal) and
// encounter (high-performance) modes, driven by a ModePolicy rather than
// measurements. A behavioral contract bounds latency; when the encounter
// workload pushes the passive configuration past the bound, the contract
// monitor degrades to the pre-declared fallback contract and the operator is
// notified — the paper's renegotiation story.
//
// Run:  ./mission_modes [seed=42]
#include <cstdio>

#include "adaptive/contract.hpp"
#include "harness/scenario.hpp"
#include "knobs/availability.hpp"
#include "util/config.hpp"

using namespace vdep;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);

  harness::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  harness::Scenario scenario(config);

  // Mission plan: cruise 0-4 s (light telemetry), encounter 4-8 s (heavy
  // instrument data), cruise again 8-12 s.
  harness::Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan({{kTimeZero, 150.0}, {sec(4), 900.0}, {sec(8), 150.0}});
  open.duration = sec(12);

  // Mode schedule: ground control flips the mode knob one second *after* the
  // instruments ramp up (command-loop lag) — long enough for the nominal
  // contract to be violated and renegotiated while still in passive mode.
  scenario.kernel().post_at(sec(5), [&] {
    std::printf("[t=5.0s] MODE: encounter — switching to active replication\n");
    scenario.set_style(replication::ReplicationStyle::kActive);
  });
  scenario.kernel().post_at(sec(8), [&] {
    std::printf("[t=8.0s] MODE: cruise — switching back to warm passive\n");
    scenario.set_style(replication::ReplicationStyle::kWarmPassive);
  });

  // Behavioral contract: cruise promises 5 ms; if that cannot be honoured,
  // fall back to a degraded 15 ms contract before waking the operator.
  adaptive::Contract nominal;
  nominal.name = "nominal (5 ms)";
  nominal.max_latency_us = 5000;
  nominal.max_bandwidth_mbps = 4.0;
  adaptive::Contract degraded;
  degraded.name = "degraded (15 ms)";
  degraded.max_latency_us = 15000;
  degraded.max_bandwidth_mbps = 4.0;

  adaptive::ContractMonitor monitor(nominal, msec(250));
  monitor.add_degraded_alternative(degraded);
  monitor.set_on_degrade([&](const adaptive::Contract& from,
                             const adaptive::Contract& to) {
    std::printf("[t=%.1fs] CONTRACT: '%s' can no longer be honoured; offering "
                "degraded contract '%s'\n",
                to_sec(scenario.kernel().now()), from.name.c_str(), to.name.c_str());
  });
  monitor.set_on_exhausted([&](const adaptive::Contract& last) {
    std::printf("[t=%.1fs] CONTRACT: even '%s' failed — operator intervention "
                "required\n",
                to_sec(scenario.kernel().now()), last.name.c_str());
  });

  // Feed the contract monitor from a live latency probe. (Replicas boot a
  // few milliseconds into the run, so the head replicator is looked up
  // lazily inside the probe.)
  Ewma latency_probe(0.5);
  std::function<void()> probe = [&] {
    if (scenario.kernel().now() > sec(12)) return;
    auto& head = scenario.replicator(0);
    // Smoothed service-side latency estimate from the observed rate and the
    // current style: passive pays checkpoint quiescence plus queueing that
    // grows with load; active starts lower and grows gently.
    const double rate = head.observed_request_rate();
    const bool passive =
        head.style() == replication::ReplicationStyle::kWarmPassive ||
        head.style() == replication::ReplicationStyle::kColdPassive;
    latency_probe.add(passive ? 2600.0 + 6.0 * rate : 1300.0 + 1.2 * rate);
    (void)monitor.observe(scenario.kernel().now(), latency_probe.value(), 1.0, 2);
    scenario.kernel().post(msec(200), probe);
  };
  scenario.kernel().post_at(msec(400), probe);

  const harness::OpenLoopResult result = scenario.run_open_loop(open);

  std::printf("\nmission complete: %llu requests served, mean RTT %.0f us, "
              "%zu style switches, contract degradations: %zu\n",
              static_cast<unsigned long long>(result.totals.completed),
              result.totals.avg_latency_us, result.switches.size(),
              monitor.degradations());

  // Planning aid: what the availability knob would provision for the next
  // mission phase under this fault model.
  knobs::AvailabilityModel model;
  model.mttf = sec(3600);
  model.mttr = sec(120);
  for (double target : {0.99, 0.999, 0.9999}) {
    auto choice = knobs::choose_for_availability(target, model);
    if (choice) {
      std::printf("availability >= %.4f  ->  %s (predicted %.5f)\n", target,
                  choice->config.code().c_str(), choice->availability);
    } else {
      std::printf("availability >= %.4f  ->  unachievable under this model\n",
                  target);
    }
  }
  return 0;
}
