#include <gtest/gtest.h>

#include "net/channel.hpp"

namespace vdep::net {
namespace {

struct ChannelFixture : ::testing::Test {
  ChannelFixture() : kernel(1), network(kernel), channels(network) {
    a = network.add_host("a");
    b = network.add_host("b");
  }

  sim::Kernel kernel;
  Network network;
  ChannelManager channels;
  NodeId a, b;
};

TEST_F(ChannelFixture, ConnectAcceptAndExchange) {
  std::vector<Payload> at_server;
  std::vector<Payload> at_client;
  ChannelPtr server_side;

  channels.listen(b, 7000, [&](ChannelPtr ch) {
    server_side = ch;
    // Capture a raw pointer: the handler lives on the channel itself, so a
    // ChannelPtr capture would form a reference cycle. `server_side` owns it.
    ch->set_receive_handler([&, raw = ch.get()](Payload&& msg) {
      at_server.push_back(msg);
      raw->send(Bytes{9, 9});
    });
  });

  auto client = channels.connect(a, b, 7000);
  client->set_receive_handler([&](Payload&& msg) { at_client.push_back(std::move(msg)); });
  client->send(Bytes{1, 2, 3});
  kernel.run();

  ASSERT_EQ(at_server.size(), 1u);
  EXPECT_EQ(at_server[0], (Bytes{1, 2, 3}));
  ASSERT_EQ(at_client.size(), 1u);
  EXPECT_EQ(at_client[0], (Bytes{9, 9}));
}

TEST_F(ChannelFixture, MessageBoundariesPreservedInOrder) {
  std::vector<Payload> received;
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    ch->set_receive_handler([&](Payload&& msg) { received.push_back(std::move(msg)); });
    // Keep the server side alive.
    static ChannelPtr keep;
    keep = ch;
  });
  auto client = channels.connect(a, b, 7000);
  for (std::uint8_t i = 0; i < 50; ++i) client->send(Bytes{i});
  kernel.run();
  ASSERT_EQ(received.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(received[i], Bytes{i});
}

TEST_F(ChannelFixture, InOrderDespiteLossyLink) {
  // Reliable transport: loss turns into delay, never reordering or loss.
  LinkParams lossy;
  lossy.loss_probability = 0.3;
  network.set_link_params(a, b, lossy);

  std::vector<Payload> received;
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    static ChannelPtr keep;
    keep = ch;
    ch->set_receive_handler([&](Payload&& msg) { received.push_back(std::move(msg)); });
  });
  auto client = channels.connect(a, b, 7000);
  for (std::uint8_t i = 0; i < 30; ++i) client->send(Bytes{i});
  kernel.run();
  ASSERT_EQ(received.size(), 30u);
  for (std::uint8_t i = 0; i < 30; ++i) EXPECT_EQ(received[i], Bytes{i});
}

TEST_F(ChannelFixture, DataSentBeforeAcceptIsBuffered) {
  // The SYN and the first DATA race; receiver parks early data.
  std::vector<Payload> received;
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    static ChannelPtr keep;
    keep = ch;
    ch->set_receive_handler([&](Payload&& msg) { received.push_back(std::move(msg)); });
  });
  auto client = channels.connect(a, b, 7000);
  client->send(Bytes{42});  // sent immediately, likely lands with/after SYN
  kernel.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], Bytes{42});
}

TEST_F(ChannelFixture, SynToClosedPortIsDropped) {
  auto client = channels.connect(a, b, 7001);  // nobody listening
  bool got = false;
  client->set_receive_handler([&](Payload&&) { got = true; });
  client->send(Bytes{1});
  kernel.run();
  EXPECT_FALSE(got);
}

TEST_F(ChannelFixture, CloseNotifiesPeer) {
  bool server_closed = false;
  ChannelPtr server_side;
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    server_side = ch;
    ch->set_close_handler([&] { server_closed = true; });
  });
  auto client = channels.connect(a, b, 7000);
  kernel.run();
  client->close();
  kernel.run();
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(client->open());
  ASSERT_TRUE(server_side != nullptr);
  EXPECT_FALSE(server_side->open());
}

TEST_F(ChannelFixture, SendAfterCloseIsNoOp) {
  std::vector<Payload> received;
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    static ChannelPtr keep;
    keep = ch;
    ch->set_receive_handler([&](Payload&& msg) { received.push_back(std::move(msg)); });
  });
  auto client = channels.connect(a, b, 7000);
  client->close();
  client->send(Bytes{1});
  kernel.run();
  EXPECT_TRUE(received.empty());
}

TEST_F(ChannelFixture, MultipleConcurrentChannels) {
  std::vector<int> received;  // channel tag per message
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    static std::vector<ChannelPtr> keep;
    keep.push_back(ch);
    ch->set_receive_handler(
        [&](Payload&& msg) { received.push_back(static_cast<int>(msg[0])); });
  });
  auto c1 = channels.connect(a, b, 7000);
  auto c2 = channels.connect(a, b, 7000);
  c1->send(Bytes{1});
  c2->send(Bytes{2});
  c1->send(Bytes{1});
  kernel.run();
  EXPECT_EQ(received.size(), 3u);
}

TEST_F(ChannelFixture, LargeMessageAccountsFragmentedWire) {
  channels.listen(b, 7000, [&](ChannelPtr ch) {
    static ChannelPtr keep;
    keep = ch;
  });
  auto client = channels.connect(a, b, 7000);
  kernel.run();
  network.reset_totals();
  client->send(filler_bytes(14000));  // 10 fragments
  kernel.run();
  // Payload plus 10 per-fragment TCP/IP headers (at least).
  EXPECT_GE(network.totals().bytes, 14000u + 10u * calib::kTcpIpHeaderBytes);
}

}  // namespace
}  // namespace vdep::net
