// The hybrid replication style (active core + warm observers), the paper's
// Sec. 6 extension: correctness, failover tiers, and its position in the
// trade-off space between active and warm passive.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

using replication::ReplicationStyle;

Scenario make_hybrid(int replicas, int clients, std::uint64_t seed = 1) {
  ScenarioConfig config;
  config.seed = seed;
  config.clients = clients;
  config.replicas = replicas;
  config.max_replicas = replicas;
  config.style = ReplicationStyle::kHybrid;
  return Scenario(config);
}

TEST(Hybrid, CoreExecutesObserversLag) {
  Scenario scenario = make_hybrid(3, 2);
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 300;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 640u);
  // Core (ranks 0 and 1) executed everything, exactly once.
  EXPECT_EQ(scenario.servant(0).counter(), 640u);
  EXPECT_EQ(scenario.servant(1).counter(), 640u);
  // The observer rides checkpoints: applied but lagging, log bounded.
  EXPECT_GT(scenario.servant(2).counter(), 300u);
  EXPECT_LT(scenario.replicator(2).message_log().size(), 400u);
  EXPECT_TRUE(scenario.replicator(0).is_responder());
  EXPECT_TRUE(scenario.replicator(1).is_responder());
  EXPECT_FALSE(scenario.replicator(2).is_responder());
}

TEST(Hybrid, CoreCrashAbsorbedInstantly) {
  Scenario scenario = make_hybrid(3, 1);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 600;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 620u);
  // Replica 1 was already executing: no retransmissions, exactly-once.
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(scenario.servant(1).counter(), 620u);
  // The observer ascended into the core and caught up via replay.
  EXPECT_TRUE(scenario.replicator(2).is_responder());
}

TEST(Hybrid, DoubleCrashPromotesObserverWithReplay) {
  Scenario scenario = make_hybrid(3, 1);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  scenario.fault_plan().crash_process(msec(1500), scenario.replica_pid(1));
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(240);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 820u);
  EXPECT_EQ(scenario.live_replicas(), 1);
  // The former observer finished the cycle exactly-once despite replaying.
  EXPECT_EQ(scenario.servant(2).counter(), 820u);
}

TEST(Hybrid, TradeoffBetweenActiveAndPassive) {
  auto run = [](ReplicationStyle style) {
    ScenarioConfig config;
    config.clients = 2;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = style;
    Scenario scenario(config);
    Scenario::CycleConfig cycle;
    cycle.requests_per_client = 400;
    cycle.warmup_requests = 40;
    return scenario.run_closed_loop(cycle);
  };
  const auto active = run(ReplicationStyle::kActive);
  const auto hybrid = run(ReplicationStyle::kHybrid);
  const auto passive = run(ReplicationStyle::kWarmPassive);

  const auto bytes_per_req = [](const ExperimentResult& r) {
    return r.bandwidth_mbps * 1e6 / r.throughput_rps;
  };
  // Hybrid's wire cost per request sits between active (3 executes+replies)
  // and a shape closer to passive; latency stays near active's.
  EXPECT_LT(bytes_per_req(hybrid), bytes_per_req(active));
  EXPECT_LT(hybrid.avg_latency_us, passive.avg_latency_us * 0.8);
}

TEST(Hybrid, RuntimeSwitchInAndOut) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.kernel().post_at(msec(600), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kHybrid);
  });
  scenario.kernel().post_at(msec(1400), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kActive);
  });
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 900;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 920u);
  EXPECT_EQ(scenario.replicator(0).style(), ReplicationStyle::kActive);
  // WP -> H synchronized rank 1 into the core via the final checkpoint, and
  // H -> A synchronized the observer; everyone is current and consistent.
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
  EXPECT_EQ(scenario.servant(0).counter(), 920u);
}

TEST(Hybrid, ColdToActiveSwitchInstallsStoredCheckpoint) {
  // Cold observers retain checkpoints without applying them; leaving the
  // cold style must install before executing, or states diverge.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kColdPassive;
  Scenario scenario(config);
  scenario.kernel().post_at(sec(1), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kActive);
  });
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 700;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 720u);
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

}  // namespace
}  // namespace vdep::harness
