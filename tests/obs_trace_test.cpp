#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "harness/scenario.hpp"
#include "obs/export.hpp"
#include "obs/tracer.hpp"
#include "util/time.hpp"

namespace vdep {
namespace {

obs::Tracer make_tracer(SimTime* now, std::size_t capacity = obs::Tracer::kDefaultCapacity) {
  return obs::Tracer([now] { return *now; }, capacity);
}

TEST(Tracer, DisabledIsInert) {
  SimTime now = kTimeZero;
  obs::Tracer tracer = make_tracer(&now);
  obs::Span span = tracer.start_span("a", "cat", "proc");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  span.note("k", "v");  // all no-ops
  span.end();
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.traces_started(), 0u);
  // Scope on a disabled tracer leaves current() untouched.
  {
    obs::Tracer::Scope scope(tracer, obs::TraceContext{9, 9});
    EXPECT_FALSE(tracer.current().valid());
  }
}

TEST(Tracer, SequentialIdsAndFreshTraces) {
  SimTime now = kTimeZero;
  obs::Tracer tracer = make_tracer(&now);
  tracer.enable();

  obs::Span a = tracer.start_span("a", "c", "p");
  obs::Span b = tracer.start_span("b", "c", "p");
  ASSERT_TRUE(a.active());
  ASSERT_TRUE(b.active());
  // Invalid parent => each starts its own trace; ids are sequential.
  EXPECT_EQ(a.context().trace, 1u);
  EXPECT_EQ(b.context().trace, 2u);
  EXPECT_EQ(a.context().span, 1u);
  EXPECT_EQ(b.context().span, 2u);
  EXPECT_EQ(tracer.traces_started(), 2u);

  obs::Span child = tracer.start_span("child", "c", "p", a.context());
  EXPECT_EQ(child.context().trace, a.context().trace);
  EXPECT_EQ(tracer.spans()[2].parent, a.context().span);
  EXPECT_EQ(tracer.traces_started(), 2u);  // no new trace for the child
}

TEST(Tracer, RaiiEndStampsClock) {
  SimTime now = kTimeZero;
  obs::Tracer tracer = make_tracer(&now);
  tracer.enable();
  {
    obs::Span span = tracer.start_span("scoped", "c", "p");
    now = usec(5);
  }  // destructor ends it
  const auto& rec = tracer.spans()[0];
  EXPECT_FALSE(rec.open);
  EXPECT_EQ(rec.start, kTimeZero);
  EXPECT_EQ(rec.end, usec(5));

  obs::Span span = tracer.start_span("explicit", "c", "p");
  now = usec(9);
  span.end();
  now = usec(30);
  span.end();  // idempotent: second end must not restamp
  EXPECT_EQ(tracer.spans()[1].end, usec(9));
}

TEST(Tracer, ScopeSetsAndRestoresCurrent) {
  SimTime now = kTimeZero;
  obs::Tracer tracer = make_tracer(&now);
  tracer.enable();
  obs::Span root = tracer.start_span("root", "c", "p");
  EXPECT_FALSE(tracer.current().valid());
  {
    obs::Tracer::Scope scope(tracer, root.context());
    EXPECT_EQ(tracer.current(), root.context());
    obs::Span child = tracer.start_child("child", "c", "p");
    EXPECT_EQ(child.context().trace, root.context().trace);
    {
      obs::Tracer::Scope inner(tracer, child.context());
      EXPECT_EQ(tracer.current(), child.context());
    }
    EXPECT_EQ(tracer.current(), root.context());
  }
  EXPECT_FALSE(tracer.current().valid());
}

TEST(Tracer, CapacityDropsAreCounted) {
  SimTime now = kTimeZero;
  obs::Tracer tracer = make_tracer(&now, 3);
  tracer.enable();
  for (int i = 0; i < 5; ++i) {
    obs::Span span = tracer.start_span("s", "c", "p");
    if (i < 3) EXPECT_TRUE(span.active());
    else EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.spans_recorded(), 3u);
  EXPECT_EQ(tracer.spans_dropped(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  EXPECT_TRUE(tracer.start_span("s", "c", "p").active());
}

TEST(Tracer, NotesAttachInOrder) {
  SimTime now = kTimeZero;
  obs::Tracer tracer = make_tracer(&now);
  tracer.enable();
  obs::Span span = tracer.start_span("s", "c", "p");
  span.note("first", "1");
  span.note("second", "2");
  span.end();
  const auto& notes = tracer.spans()[0].notes;
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0].first, "first");
  EXPECT_EQ(notes[1].second, "2");
}

TEST(TraceContext, WireRoundTripAndZeroWhenInvalid) {
  obs::TraceContext ctx{0x1234, 0x5678};
  ByteWriter w;
  ctx.encode_to(w);
  Bytes wire = std::move(w).take();
  EXPECT_EQ(wire.size(), 16u);  // always 16 bytes on the wire
  ByteReader r(wire);
  EXPECT_EQ(obs::TraceContext::decode(r), ctx);

  ByteWriter w2;
  obs::TraceContext{}.encode_to(w2);
  Bytes zero = std::move(w2).take();
  EXPECT_EQ(zero.size(), 16u);  // disabled tracing: same size, all zeros
  EXPECT_TRUE(std::all_of(zero.begin(), zero.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(TraceExport, DeterministicRenderings) {
  const auto record = [](obs::Tracer& tracer, SimTime* now) {
    tracer.enable();
    obs::Span root = tracer.start_span("client.request", "orb", "client0@cli0");
    root.note("op", "process");
    *now = usec(10);
    obs::Span child = tracer.start_span("rep.execute", "replication",
                                        "replica0@srv0", root.context());
    *now = usec(25);
    child.end();
    *now = usec(40);
    root.end();
  };
  SimTime now1 = kTimeZero;
  obs::Tracer t1 = make_tracer(&now1);
  record(t1, &now1);
  SimTime now2 = kTimeZero;
  obs::Tracer t2 = make_tracer(&now2);
  record(t2, &now2);

  EXPECT_EQ(obs::to_chrome_trace(t1), obs::to_chrome_trace(t2));
  EXPECT_EQ(obs::render_text(t1), obs::render_text(t2));
  // The text tree shows the child indented under its parent.
  const std::string text = obs::render_text(t1);
  EXPECT_NE(text.find("client.request"), std::string::npos);
  EXPECT_NE(text.find("  [1/2] rep.execute"), std::string::npos);
  // Chrome JSON carries the span and the process label.
  const std::string json = obs::to_chrome_trace(t1);
  EXPECT_NE(json.find("\"client.request\""), std::string::npos);
  EXPECT_NE(json.find("client0@cli0"), std::string::npos);
}

// --- integration: the replicated path produces connected trees ----------------

// Runs a seeded warm-passive failover with tracing on and returns the
// scenario's recorded span table rendered both ways.
struct FailoverRecording {
  std::string json;
  std::string text;
  std::uint64_t spans = 0;
  std::uint64_t traces = 0;
  std::uint64_t completed = 0;
};

// gtest ASSERT_* needs a void function; structural checks live here.
void check_span_structure(const obs::Tracer& tracer) {
  // 1. Every parent reference resolves inside the same trace.
  std::map<std::uint64_t, const obs::Tracer::SpanRecord*> by_id;
  for (const auto& span : tracer.spans()) by_id[span.id] = &span;
  for (const auto& span : tracer.spans()) {
    if (span.parent == 0) continue;
    auto it = by_id.find(span.parent);
    ASSERT_NE(it, by_id.end()) << "dangling parent for span " << span.id;
    EXPECT_EQ(it->second->trace, span.trace) << "parent in a different trace";
  }
  // 2. All spans closed after drain — except on the crashed primary
  //    (replica0), whose in-flight protocol spans legitimately freeze open
  //    at the crash point; the flight recorder shows them as interrupted.
  for (const auto& span : tracer.spans()) {
    if (span.proc.rfind("replica0@", 0) == 0) continue;
    EXPECT_FALSE(span.open) << span.name << " (" << span.proc << ") never ended";
  }
  // 3. At least one client request tree reaches a replica execution AND the
  //    group layer: the tree is connected across processes.
  std::set<std::uint64_t> full_traces;
  std::map<std::uint64_t, std::set<std::string>> names_by_trace;
  for (const auto& span : tracer.spans()) {
    names_by_trace[span.trace].insert(std::string(span.name));
  }
  for (const auto& [trace, names] : names_by_trace) {
    if (names.count("client.request") && names.count("coord.send") &&
        names.count("gcs.order") && names.count("gcs.deliver") &&
        names.count("rep.execute") && names.count("orb.dispatch") &&
        names.count("rep.reply")) {
      full_traces.insert(trace);
    }
  }
  EXPECT_GT(full_traces.size(), 100u)
      << "most requests should produce fully-linked trees";
  // 4. The failover shows up: a backup promotion span.
  bool saw_promote = false;
  for (const auto& span : tracer.spans()) {
    if (span.name == "rep.promote") saw_promote = true;
  }
  EXPECT_TRUE(saw_promote) << "backup promotion span missing";
}

FailoverRecording record_failover(std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.tracing = true;
  harness::Scenario scenario(config);
  // Crash the primary early enough that plenty of the workload is still
  // outstanding — the trees must span the failover, not just precede it.
  scenario.fault_plan().crash_process(msec(300), scenario.replica_pid(0));
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = 150;
  cycle.warmup_requests = 0;
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  const obs::Tracer& tracer = scenario.kernel().tracer();
  FailoverRecording rec;
  rec.json = obs::to_chrome_trace(tracer);
  rec.text = obs::render_text(tracer);
  rec.spans = tracer.spans_recorded();
  rec.traces = tracer.traces_started();
  rec.completed = result.completed;
  check_span_structure(tracer);
  return rec;
}

TEST(TraceIntegration, FailoverProducesConnectedTreesAndIsByteDeterministic) {
  const FailoverRecording run1 = record_failover(42);
  const FailoverRecording run2 = record_failover(42);
  EXPECT_GT(run1.spans, 0u);
  EXPECT_EQ(run1.completed, 300u);  // all requests despite the crash
  // Golden determinism gate: same seed => byte-identical exports.
  EXPECT_EQ(run1.json, run2.json);
  EXPECT_EQ(run1.text, run2.text);
  EXPECT_EQ(run1.spans, run2.spans);
  EXPECT_EQ(run1.traces, run2.traces);
}

TEST(TraceIntegration, TracingDoesNotPerturbSimulatedResults) {
  // Same seed, tracing off vs on: identical simulated outcome (the wire
  // always carries the 16-byte context, zeros when off).
  const auto run = [](bool tracing) {
    harness::ScenarioConfig config;
    config.seed = 7;
    config.clients = 2;
    config.replicas = 3;
    config.max_replicas = 3;
    config.style = replication::ReplicationStyle::kActive;
    config.tracing = tracing;
    harness::Scenario scenario(config);
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = 100;
    cycle.warmup_requests = 0;
    return scenario.run_closed_loop(cycle);
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_DOUBLE_EQ(off.avg_latency_us, on.avg_latency_us);
  EXPECT_DOUBLE_EQ(off.p99_latency_us, on.p99_latency_us);
  EXPECT_DOUBLE_EQ(off.bandwidth_mbps, on.bandwidth_mbps);
}

}  // namespace
}  // namespace vdep
