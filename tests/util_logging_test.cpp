#include <gtest/gtest.h>

#include <cstdlib>

#include "util/logging.hpp"

namespace vdep {
namespace {

// Each test restores the logger to its pristine lazy-init state; the fixture
// also saves/restores VDEP_LOG so runs with the variable set stay green.
class LoggerEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prior = std::getenv("VDEP_LOG");
    if (prior != nullptr) saved_ = prior;
    Logger::reset_for_testing();
  }
  void TearDown() override {
    if (saved_.empty()) unsetenv("VDEP_LOG");
    else setenv("VDEP_LOG", saved_.c_str(), 1);
    Logger::reset_for_testing();
  }
  static void set_env(const char* value) { setenv("VDEP_LOG", value, 1); }

 private:
  std::string saved_;
};

TEST_F(LoggerEnv, DefaultIsOff) {
  unsetenv("VDEP_LOG");
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
}

TEST_F(LoggerEnv, ParsesEveryLevel) {
  const std::pair<const char*, LogLevel> cases[] = {
      {"trace", LogLevel::kTrace}, {"debug", LogLevel::kDebug},
      {"info", LogLevel::kInfo},   {"warn", LogLevel::kWarn},
      {"error", LogLevel::kError}, {"off", LogLevel::kOff},
  };
  for (const auto& [value, expected] : cases) {
    Logger::reset_for_testing();
    set_env(value);
    EXPECT_EQ(Logger::level(), expected) << "VDEP_LOG=" << value;
  }
}

TEST_F(LoggerEnv, UnknownValueFallsBackToOff) {
  set_env("verbose");
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
  Logger::reset_for_testing();
  set_env("");
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
  Logger::reset_for_testing();
  set_env("TRACE");  // parsing is case-sensitive by design
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
}

TEST_F(LoggerEnv, EnvReadOnceUntilReset) {
  set_env("debug");
  EXPECT_EQ(Logger::level(), LogLevel::kDebug);
  set_env("error");  // cached: no re-read without reset
  EXPECT_EQ(Logger::level(), LogLevel::kDebug);
  Logger::reset_for_testing();
  EXPECT_EQ(Logger::level(), LogLevel::kError);
}

TEST_F(LoggerEnv, SetLevelOverridesEnv) {
  set_env("trace");
  Logger::set_level(LogLevel::kWarn);  // explicit wins; env never consulted
  EXPECT_EQ(Logger::level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace vdep
