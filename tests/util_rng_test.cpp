#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/rng.hpp"

namespace vdep {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProportion) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(42);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  Rng a2 = parent.fork(0);
  // Same index reproduces, different indices decorrelate.
  EXPECT_EQ(a.next(), a2.next());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  // The trial fleet forks one stream per trial from the campaign seed; the
  // parent must be untouched by forking or trial N's stream would depend on
  // how many forks happened before it.
  Rng forked(42);
  for (std::uint64_t i = 0; i < 100; ++i) (void)forked.fork(i);
  Rng untouched(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(forked.next(), untouched.next());
}

TEST(Rng, ForkIndicesYieldDistinctStreams) {
  // First outputs of forks 0..999 are pairwise distinct (any collision would
  // alias two trials of a campaign onto the same schedule).
  Rng parent(1);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 1000; ++i) firsts.insert(parent.fork(i).next());
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Rng, ForkOfForkIsReproducible) {
  // The windowed engine derives per-host streams as seed.fork(f(host)).fork(k);
  // two-level forking must reproduce exactly.
  Rng a = Rng(7).fork(3).fork(9);
  Rng b = Rng(7).fork(3).fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace vdep
