// The replicated key-value store: servant semantics, snapshot/restore, and a
// full end-to-end run on the replicated stack via the servant factory —
// proving the replication API is application-agnostic.
#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "harness/scenario.hpp"

namespace vdep::app {
namespace {

TEST(KvStore, PutGetEraseSemantics) {
  KvStoreServant kv;
  auto put1 = kv.invoke("put", KvStoreServant::encode_put("alpha", "1"));
  ASSERT_TRUE(put1.ok);
  EXPECT_FALSE(KvStoreServant::decode_flag(put1.output));  // fresh key

  auto put2 = kv.invoke("put", KvStoreServant::encode_put("alpha", "2"));
  EXPECT_TRUE(KvStoreServant::decode_flag(put2.output));  // overwrite

  auto got = kv.invoke("get", KvStoreServant::encode_key("alpha"));
  ASSERT_TRUE(got.ok);
  auto g = KvStoreServant::decode_get(got.output);
  EXPECT_TRUE(g.found);
  EXPECT_EQ(g.value, "2");

  auto missing = kv.invoke("get", KvStoreServant::encode_key("beta"));
  EXPECT_FALSE(KvStoreServant::decode_get(missing.output).found);

  auto erased = kv.invoke("erase", KvStoreServant::encode_key("alpha"));
  EXPECT_TRUE(KvStoreServant::decode_flag(erased.output));
  EXPECT_FALSE(KvStoreServant::decode_get(
                   kv.invoke("get", KvStoreServant::encode_key("alpha")).output)
                   .found);
  EXPECT_EQ(kv.entries(), 0u);
}

TEST(KvStore, ReadsCheaperThanWrites) {
  KvStoreServant kv;
  const auto w = kv.invoke("put", KvStoreServant::encode_put("k", "v")).cpu_time;
  const auto r = kv.invoke("get", KvStoreServant::encode_key("k")).cpu_time;
  EXPECT_GT(w, r);
}

TEST(KvStore, MalformedAndUnknownOperationsFail) {
  KvStoreServant kv;
  EXPECT_FALSE(kv.invoke("put", Bytes{1, 2}).ok);  // truncated CDR
  EXPECT_FALSE(kv.invoke("compare_and_swap", {}).ok);
}

TEST(KvStore, SnapshotRestoreAndDigest) {
  KvStoreServant a;
  (void)a.invoke("put", KvStoreServant::encode_put("x", "1"));
  (void)a.invoke("put", KvStoreServant::encode_put("y", "2"));

  KvStoreServant b;
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.restore(a.snapshot());
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(b.entries(), 2u);
  EXPECT_EQ(KvStoreServant::decode_get(
                b.invoke("get", KvStoreServant::encode_key("y")).output)
                .value,
            "2");
  // Digest is order-insensitive w.r.t. insertion (map-ordered).
  KvStoreServant c;
  (void)c.invoke("put", KvStoreServant::encode_put("y", "2"));
  (void)c.invoke("put", KvStoreServant::encode_put("x", "1"));
  EXPECT_EQ(a.state_digest(), c.state_digest());
}

TEST(KvStore, StateSizeTracksContent) {
  KvStoreServant kv;
  const auto empty = kv.state_size();
  (void)kv.invoke("put", KvStoreServant::encode_put("key", std::string(100, 'v')));
  EXPECT_GT(kv.state_size(), empty + 100);
}

// --- end-to-end on the replicated stack -------------------------------------

TEST(KvStore, ReplicatedClusterSurvivesPrimaryCrash) {
  harness::ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.make_servant = [](int) { return std::make_unique<KvStoreServant>(); };
  harness::Scenario scenario(config);
  scenario.fault_plan().crash_process(msec(700), scenario.replica_pid(0));
  scenario.arm_faults();  // we drive the kernel manually: arm explicitly
  scenario.kernel().run_until(msec(300));  // group forms

  // The scenario's built-in drivers speak the micro-benchmark protocol, so
  // drive typed KV operations through a hand-assembled client: a process, a
  // client ORB, and a replicated (coordinator) transport — the same pieces
  // an application would wire up.
  sim::Process client_process(scenario.kernel(), ProcessId{7777}, NodeId{0},
                              "kv-client");
  orb::ClientOrb orb(scenario.network(), client_process);
  orb.use_transport(std::make_unique<replication::ClientCoordinator>(
      scenario.network(), scenario.daemon_on(NodeId{0}), client_process));

  int replies = 0;
  std::string read_back;
  for (int i = 0; i < 200; ++i) {
    scenario.kernel().post(msec(2) * i, [&, i] {
      orb.invoke(scenario.object_ref(), "put",
                 KvStoreServant::encode_put("key" + std::to_string(i),
                                            "value" + std::to_string(i)),
                 [&](orb::ReplyStatus status, Bytes) {
                   if (status == orb::ReplyStatus::kNoException) ++replies;
                 });
    });
  }
  scenario.kernel().post_at(sec(2), [&] {
    orb.invoke(scenario.object_ref(), "get", KvStoreServant::encode_key("key42"),
               [&](orb::ReplyStatus, Bytes body) {
                 read_back = KvStoreServant::decode_get(body).value;
               });
  });
  scenario.kernel().run_until(sec(4));

  EXPECT_EQ(replies, 200);
  EXPECT_FALSE(scenario.replica_process(0).alive());  // the crash really fired
  EXPECT_EQ(read_back, "value42");  // written before the crash, read after
  // The promoted backup holds the full dataset.
  auto& kv = dynamic_cast<KvStoreServant&>(scenario.app(1));
  EXPECT_EQ(kv.entries(), 200u);
}

}  // namespace
}  // namespace vdep::app
