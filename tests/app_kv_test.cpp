// The replicated key-value store: servant semantics, snapshot/restore, and a
// full end-to-end run on the replicated stack via the servant factory —
// proving the replication API is application-agnostic.
#include <gtest/gtest.h>

#include "app/kv_store.hpp"
#include "harness/scenario.hpp"

namespace vdep::app {
namespace {

TEST(KvStore, PutGetEraseSemantics) {
  KvStoreServant kv;
  auto put1 = kv.invoke("put", KvStoreServant::encode_put("alpha", "1"));
  ASSERT_TRUE(put1.ok);
  EXPECT_FALSE(KvStoreServant::decode_flag(put1.output));  // fresh key

  auto put2 = kv.invoke("put", KvStoreServant::encode_put("alpha", "2"));
  EXPECT_TRUE(KvStoreServant::decode_flag(put2.output));  // overwrite

  auto got = kv.invoke("get", KvStoreServant::encode_key("alpha"));
  ASSERT_TRUE(got.ok);
  auto g = KvStoreServant::decode_get(got.output);
  EXPECT_TRUE(g.found);
  EXPECT_EQ(g.value, "2");

  auto missing = kv.invoke("get", KvStoreServant::encode_key("beta"));
  EXPECT_FALSE(KvStoreServant::decode_get(missing.output).found);

  auto erased = kv.invoke("erase", KvStoreServant::encode_key("alpha"));
  EXPECT_TRUE(KvStoreServant::decode_flag(erased.output));
  EXPECT_FALSE(KvStoreServant::decode_get(
                   kv.invoke("get", KvStoreServant::encode_key("alpha")).output)
                   .found);
  EXPECT_EQ(kv.entries(), 0u);
}

TEST(KvStore, ReadsCheaperThanWrites) {
  KvStoreServant kv;
  const auto w = kv.invoke("put", KvStoreServant::encode_put("k", "v")).cpu_time;
  const auto r = kv.invoke("get", KvStoreServant::encode_key("k")).cpu_time;
  EXPECT_GT(w, r);
}

TEST(KvStore, MalformedAndUnknownOperationsFail) {
  KvStoreServant kv;
  EXPECT_FALSE(kv.invoke("put", Bytes{1, 2}).ok);  // truncated CDR
  EXPECT_FALSE(kv.invoke("compare_and_swap", {}).ok);
}

TEST(KvStore, SnapshotRestoreAndDigest) {
  KvStoreServant a;
  (void)a.invoke("put", KvStoreServant::encode_put("x", "1"));
  (void)a.invoke("put", KvStoreServant::encode_put("y", "2"));

  KvStoreServant b;
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.restore(a.snapshot());
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(b.entries(), 2u);
  EXPECT_EQ(KvStoreServant::decode_get(
                b.invoke("get", KvStoreServant::encode_key("y")).output)
                .value,
            "2");
  // Digest is order-insensitive w.r.t. insertion (map-ordered).
  KvStoreServant c;
  (void)c.invoke("put", KvStoreServant::encode_put("y", "2"));
  (void)c.invoke("put", KvStoreServant::encode_put("x", "1"));
  EXPECT_EQ(a.state_digest(), c.state_digest());
}

TEST(KvStore, DeltaCarriesOnlyTheDirtySet) {
  KvStoreServant kv;
  for (int i = 0; i < 100; ++i) {
    (void)kv.invoke("put", KvStoreServant::encode_put("key" + std::to_string(i),
                                                      std::string(32, 'v')));
  }
  const std::uint64_t cut = kv.cut_epoch();
  (void)kv.invoke("put", KvStoreServant::encode_put("key7", "new"));

  auto delta = kv.snapshot_delta(cut);
  ASSERT_TRUE(delta.has_value());
  // One dirty key out of 100: the delta is a small fraction of the snapshot.
  EXPECT_LT(delta->size(), kv.snapshot().size() / 10);

  KvStoreServant other;
  other.restore(kv.snapshot());
  (void)other.invoke("put", KvStoreServant::encode_put("key7", "stale"));
  other.apply_delta(*delta);
  EXPECT_EQ(other.lookup("key7"), "new");
}

TEST(KvStore, DeltaReplaysErasesAsTombstones) {
  KvStoreServant a;
  (void)a.invoke("put", KvStoreServant::encode_put("keep", "1"));
  (void)a.invoke("put", KvStoreServant::encode_put("drop", "2"));

  KvStoreServant b;
  b.restore(a.snapshot());
  const std::uint64_t a_cut = a.cut_epoch();

  (void)a.invoke("erase", KvStoreServant::encode_key("drop"));
  (void)a.invoke("append", KvStoreServant::encode_append("keep", "+"));
  auto delta = a.snapshot_delta(a_cut);
  ASSERT_TRUE(delta.has_value());
  b.apply_delta(*delta);
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_FALSE(b.lookup("drop").has_value());
  EXPECT_EQ(b.lookup("keep"), "1+");
}

TEST(KvStore, DeltaUnanswerableForStaleOrFutureCutsAndAfterRestore) {
  KvStoreServant kv;
  (void)kv.invoke("put", KvStoreServant::encode_put("k", "v"));
  const std::uint64_t cut = kv.cut_epoch();
  EXPECT_TRUE(kv.snapshot_delta(cut).has_value());
  // A cut that was never taken (the open epoch) is unanswerable.
  EXPECT_FALSE(kv.snapshot_delta(cut + 1).has_value());

  // restore() discards the per-key stamps: the old cut is now below the
  // delta floor and must be refused, not misanswered.
  kv.restore(kv.snapshot());
  EXPECT_FALSE(kv.snapshot_delta(cut).has_value());
  const std::uint64_t fresh = kv.cut_epoch();
  EXPECT_TRUE(kv.snapshot_delta(fresh).has_value());
}

TEST(KvStore, AnchorPlusDeltaChainMatchesMonolithicSnapshot) {
  // The replicator's chain invariant at app level: full snapshot at cut 0,
  // then a delta per cut, applied in order, lands on the same digest as one
  // final snapshot/restore.
  KvStoreServant primary;
  KvStoreServant backup;
  (void)primary.invoke("put", KvStoreServant::encode_put("a", "0"));
  backup.restore(primary.snapshot());
  std::uint64_t cut = primary.cut_epoch();
  for (int round = 0; round < 5; ++round) {
    (void)primary.invoke("put", KvStoreServant::encode_put(
                                    "k" + std::to_string(round % 2), "r" +
                                    std::to_string(round)));
    if (round == 3) (void)primary.invoke("erase", KvStoreServant::encode_key("a"));
    auto delta = primary.snapshot_delta(cut);
    ASSERT_TRUE(delta.has_value());
    cut = primary.cut_epoch();
    backup.apply_delta(*delta);
    EXPECT_EQ(backup.state_digest(), primary.state_digest());
  }
  KvStoreServant monolithic;
  monolithic.restore(primary.snapshot());
  EXPECT_EQ(monolithic.state_digest(), backup.state_digest());
}

TEST(KvStore, StateSizeTracksContent) {
  KvStoreServant kv;
  const auto empty = kv.state_size();
  (void)kv.invoke("put", KvStoreServant::encode_put("key", std::string(100, 'v')));
  EXPECT_GT(kv.state_size(), empty + 100);
}

// --- end-to-end on the replicated stack -------------------------------------

TEST(KvStore, ReplicatedClusterSurvivesPrimaryCrash) {
  harness::ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.make_servant = [](int) { return std::make_unique<KvStoreServant>(); };
  harness::Scenario scenario(config);
  scenario.fault_plan().crash_process(msec(700), scenario.replica_pid(0));
  scenario.arm_faults();  // we drive the kernel manually: arm explicitly
  scenario.kernel().run_until(msec(300));  // group forms

  // The scenario's built-in drivers speak the micro-benchmark protocol, so
  // drive typed KV operations through a hand-assembled client: a process, a
  // client ORB, and a replicated (coordinator) transport — the same pieces
  // an application would wire up.
  sim::Process client_process(scenario.kernel(), ProcessId{7777}, NodeId{0},
                              "kv-client");
  orb::ClientOrb orb(scenario.network(), client_process);
  orb.use_transport(std::make_unique<replication::ClientCoordinator>(
      scenario.network(), scenario.daemon_on(NodeId{0}), client_process));

  int replies = 0;
  std::string read_back;
  for (int i = 0; i < 200; ++i) {
    scenario.kernel().post(msec(2) * i, [&, i] {
      orb.invoke(scenario.object_ref(), "put",
                 KvStoreServant::encode_put("key" + std::to_string(i),
                                            "value" + std::to_string(i)),
                 [&](orb::ReplyStatus status, Bytes) {
                   if (status == orb::ReplyStatus::kNoException) ++replies;
                 });
    });
  }
  scenario.kernel().post_at(sec(2), [&] {
    orb.invoke(scenario.object_ref(), "get", KvStoreServant::encode_key("key42"),
               [&](orb::ReplyStatus, Bytes body) {
                 read_back = KvStoreServant::decode_get(body).value;
               });
  });
  scenario.kernel().run_until(sec(4));

  EXPECT_EQ(replies, 200);
  EXPECT_FALSE(scenario.replica_process(0).alive());  // the crash really fired
  EXPECT_EQ(read_back, "value42");  // written before the crash, read after
  // The promoted backup holds the full dataset.
  auto& kv = dynamic_cast<KvStoreServant&>(scenario.app(1));
  EXPECT_EQ(kv.entries(), 200u);
}

}  // namespace
}  // namespace vdep::app
