// Schedule generator: determinism, fault-budget accounting, and the
// survivability constraints that keep generated chaos schedules fair.
#include <gtest/gtest.h>

#include <map>

#include "chaos/schedule.hpp"
#include "harness/scenario.hpp"

namespace vdep::chaos {
namespace {

harness::Scenario make_scenario(int clients = 2, int replicas = 3) {
  harness::ScenarioConfig config;
  config.clients = clients;
  config.replicas = replicas;
  config.max_replicas = replicas;
  config.style = replication::ReplicationStyle::kWarmPassive;
  return harness::Scenario(std::move(config));
}

TEST(ChaosSchedule, DeterministicInSeedAndPolicy) {
  auto scenario = make_scenario();
  SchedulePolicy policy;
  Rng a(42), b(42), c(43);
  const auto plan1 = generate_schedule(a, policy, scenario);
  const auto plan2 = generate_schedule(b, policy, scenario);
  const auto plan3 = generate_schedule(c, policy, scenario);
  EXPECT_EQ(plan1, plan2);
  EXPECT_EQ(plan1.encode(), plan2.encode());
  EXPECT_NE(plan1, plan3);  // different seed, different schedule
}

TEST(ChaosSchedule, SpendsTheWholeFaultBudget) {
  auto scenario = make_scenario();
  SchedulePolicy policy;
  policy.crash_recoveries = 2;
  policy.node_kills = 0;
  policy.loss_bursts = 3;
  policy.partitions = 2;
  policy.slow_hosts = 1;
  Rng rng(7);
  const auto plan = generate_schedule(rng, policy, scenario);

  std::map<net::FaultAction::Kind, int> counts;
  for (const auto& a : plan.actions()) ++counts[a.kind];
  EXPECT_EQ(counts[net::FaultAction::Kind::kCrashProcess], 2);
  EXPECT_EQ(counts[net::FaultAction::Kind::kRestartProcess], 2);
  EXPECT_EQ(counts[net::FaultAction::Kind::kLossBurst], 3);
  EXPECT_EQ(counts[net::FaultAction::Kind::kPartition], 2);
  EXPECT_EQ(counts[net::FaultAction::Kind::kSlowHost], 1);
}

TEST(ChaosSchedule, SilencingWindowsStayUnderDetectorThresholdWithGaps) {
  auto scenario = make_scenario();
  SchedulePolicy policy;
  policy.loss_bursts = 3;
  policy.partitions = 2;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const auto plan = generate_schedule(rng, policy, scenario);
    // Collect silencing windows (loss, partition) in schedule order.
    std::vector<std::pair<SimTime, SimTime>> windows;
    for (const auto& a : plan.actions()) {
      if (a.kind == net::FaultAction::Kind::kLossBurst ||
          a.kind == net::FaultAction::Kind::kPartition) {
        EXPECT_LE((a.until - a.at).count(), policy.max_window.count()) << "seed " << seed;
        EXPECT_GE((a.until - a.at).count(), policy.min_window.count()) << "seed " << seed;
        windows.emplace_back(a.at, a.until);
      }
    }
    std::sort(windows.begin(), windows.end());
    for (std::size_t i = 1; i < windows.size(); ++i) {
      EXPECT_GE((windows[i].first - windows[i - 1].second).count(),
                policy.min_gap.count())
          << "seed " << seed << ": silencing faults must not chain into "
          << "detector-visible silence";
    }
  }
}

TEST(ChaosSchedule, NeverCrashesClientsAndKeepsAServingReplica) {
  auto scenario = make_scenario(/*clients=*/2, /*replicas=*/3);
  SchedulePolicy policy;
  policy.crash_recoveries = 2;
  policy.node_kills = 2;  // asks for more than survivability allows
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const auto plan = generate_schedule(rng, policy, scenario);
    std::set<NodeId> killed;
    for (const auto& a : plan.actions()) {
      if (a.kind == net::FaultAction::Kind::kCrashProcess ||
          a.kind == net::FaultAction::Kind::kRestartProcess) {
        bool is_replica = false;
        for (int r = 0; r < 3; ++r) {
          if (a.pid == scenario.replica_pid(r)) is_replica = true;
        }
        EXPECT_TRUE(is_replica) << "seed " << seed << ": only replicas crash";
      }
      if (a.kind == net::FaultAction::Kind::kCrashNode) {
        killed.insert(a.node);
        for (int c = 0; c < 2; ++c) {
          EXPECT_NE(a.node, NodeId{static_cast<std::uint64_t>(c)})
              << "client hosts carry the GCS leader and are never killed";
        }
      }
    }
    // Kill cap: with a crash/recovery also in the budget, at most one
    // permanent loss out of three replicas.
    EXPECT_LE(killed.size(), 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vdep::chaos
