#include <gtest/gtest.h>

#include "sim/actor.hpp"
#include "sim/kernel.hpp"
#include "sim/trace.hpp"

namespace vdep::sim {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(usec(10), [&] { order.push_back(1); });
  q.schedule(usec(5), [&] { order.push_back(2); });
  q.schedule(usec(10), [&] { order.push_back(3); });  // same time, later insert
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, CancelledEventsSkipped) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(usec(1), [&] { ++fired; });
  q.schedule(usec(2), [&] { ++fired; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  auto h = q.schedule(usec(1), [] {});
  q.schedule(usec(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  h.cancel();
  EXPECT_FALSE(q.empty());
  (void)q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(Kernel, ClockAdvancesWithEvents) {
  Kernel k(1);
  SimTime seen = kTimeZero;
  k.post(usec(100), [&] { seen = k.now(); });
  k.run();
  EXPECT_EQ(seen, usec(100));
  EXPECT_EQ(k.now(), usec(100));
}

TEST(Kernel, RunUntilStopsAtDeadline) {
  Kernel k(1);
  int fired = 0;
  k.post(usec(10), [&] { ++fired; });
  k.post(usec(30), [&] { ++fired; });
  k.run_until(usec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), usec(20));
  k.run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, EventsCanScheduleEvents) {
  Kernel k(1);
  std::vector<SimTime> times;
  k.post(usec(1), [&] {
    times.push_back(k.now());
    k.post(usec(2), [&] { times.push_back(k.now()); });
  });
  k.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], usec(1));
  EXPECT_EQ(times[1], usec(3));
}

TEST(Kernel, StopHaltsRun) {
  Kernel k(1);
  int fired = 0;
  k.post(usec(1), [&] {
    ++fired;
    k.stop();
  });
  k.post(usec(2), [&] { ++fired; });
  k.run();
  EXPECT_EQ(fired, 1);
  k.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunStepsBounded) {
  Kernel k(1);
  int fired = 0;
  for (int i = 0; i < 10; ++i) k.post(usec(i), [&] { ++fired; });
  EXPECT_EQ(k.run_steps(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Kernel, DeterministicAcrossRuns) {
  auto run = [] {
    Kernel k(99);
    Rng rng = k.fork_rng(1);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 5; ++i) {
      k.post(usec(rng.below(100)), [&values, &k] {
        values.push_back(static_cast<std::uint64_t>(k.now().count()));
      });
    }
    k.run();
    return values;
  };
  EXPECT_EQ(run(), run());
}

TEST(Process, GuardedCallbackDiesWithProcess) {
  Kernel k(1);
  Process p(k, ProcessId{1}, NodeId{0}, "p");
  int fired = 0;
  p.post(usec(10), [&] { ++fired; });
  k.post(usec(5), [&] { p.crash(); });
  k.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(p.alive());
}

TEST(Process, RestartInvalidatesOldCallbacks) {
  Kernel k(1);
  Process p(k, ProcessId{1}, NodeId{0}, "p");
  int fired = 0;
  p.post(usec(10), [&] { ++fired; });
  k.post(usec(5), [&] {
    p.crash();
    p.restart();  // new incarnation: old callback must NOT run
  });
  k.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(p.alive());
  EXPECT_EQ(p.incarnation(), 2u);
}

TEST(Process, CrashListenersFireOnce) {
  Kernel k(1);
  Process p(k, ProcessId{1}, NodeId{0}, "p");
  int notified = 0;
  p.subscribe_crash([&](ProcessId) { ++notified; });
  p.crash();
  p.crash();  // idempotent
  EXPECT_EQ(notified, 1);
}

TEST(TimeSeries, ResampleCarriesLastValueForward) {
  TimeSeries ts("x");
  ts.record(msec(10), 1.0);
  ts.record(msec(25), 2.0);
  auto points = ts.resample(kTimeZero, msec(40), msec(10));
  ASSERT_EQ(points.size(), 5u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);  // before first point: first value
  EXPECT_DOUBLE_EQ(points[1].value, 1.0);
  EXPECT_DOUBLE_EQ(points[2].value, 1.0);  // 20ms: still 1.0
  EXPECT_DOUBLE_EQ(points[3].value, 2.0);
  EXPECT_DOUBLE_EQ(points[4].value, 2.0);
}

TEST(TraceRecorder, DisabledByDefault) {
  TraceRecorder t;
  t.add(usec(1), "a", "b");
  EXPECT_TRUE(t.entries().empty());
  t.enable();
  t.add(usec(2), "c", "d");
  ASSERT_EQ(t.entries().size(), 1u);
  EXPECT_EQ(t.render(), "2000 c d\n");
}

}  // namespace
}  // namespace vdep::sim
