#include <gtest/gtest.h>

#include "util/config.hpp"

namespace vdep {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValuesAndPositionals) {
  Config cfg = parse({"requests=500", "seed=7", "verbose"});
  EXPECT_EQ(cfg.get_int("requests", 0), 500);
  EXPECT_EQ(cfg.get_int("seed", 0), 7);
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "verbose");
}

TEST(Config, FallbacksWhenMissing) {
  Config cfg = parse({});
  EXPECT_EQ(cfg.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(cfg.get_double("y", 2.5), 2.5);
  EXPECT_EQ(cfg.get_str("z", "abc"), "abc");
  EXPECT_TRUE(cfg.get_bool("b", true));
  EXPECT_FALSE(cfg.get("missing").has_value());
}

TEST(Config, DoublesAndBooleans) {
  Config cfg = parse({"rate=3.5", "on=true", "off=0"});
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0), 3.5);
  EXPECT_TRUE(cfg.get_bool("on", false));
  EXPECT_FALSE(cfg.get_bool("off", true));
}

TEST(Config, DuplicateKeyThrows) {
  EXPECT_THROW(parse({"a=1", "a=2"}), std::invalid_argument);
}

TEST(Config, BadBooleanThrows) {
  Config cfg = parse({"b=maybe"});
  EXPECT_THROW((void)cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, ValueWithEqualsSign) {
  Config cfg = parse({"expr=a=b"});
  EXPECT_EQ(cfg.get_str("expr", ""), "a=b");
}

TEST(Config, SetOverridesAndAdds) {
  Config cfg = parse({"a=1"});
  cfg.set("a", "2");
  cfg.set("b", "3");
  EXPECT_EQ(cfg.get_int("a", 0), 2);
  EXPECT_EQ(cfg.get_int("b", 0), 3);
}

}  // namespace
}  // namespace vdep
