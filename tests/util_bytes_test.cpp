#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace vdep {
namespace {

TEST(ByteWriter, RoundTripsAllPrimitives) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.bytes(Bytes{1, 2, 3});

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(ByteReader, UnderrunThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(ByteReader, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  ByteReader r(w.data());
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(ByteReader, BadBooleanThrows) {
  Bytes raw{2};
  ByteReader r(raw);
  EXPECT_THROW((void)r.boolean(), DecodeError);
}

TEST(ByteReader, EmptyBytesAndStrings) {
  ByteWriter w;
  w.str("");
  w.bytes({});
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, RemainingTracksPosition) {
  ByteWriter w;
  w.u64(1);
  w.u64(2);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(FillerBytes, DeterministicAndSized) {
  EXPECT_EQ(filler_bytes(0).size(), 0u);
  EXPECT_EQ(filler_bytes(100).size(), 100u);
  EXPECT_EQ(filler_bytes(100), filler_bytes(100));
  EXPECT_NE(filler_bytes(100), filler_bytes(100, 0x11));
}

TEST(Fnv1a, KnownProperties) {
  EXPECT_EQ(fnv1a({}), 14695981039346656037ULL);  // offset basis
  const Bytes a = filler_bytes(64);
  Bytes b = a;
  b[10] ^= 1;
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_EQ(fnv1a(a), fnv1a(a));
}

}  // namespace
}  // namespace vdep
