// Edge cases for the timer-wheel EventQueue: cancellation interleavings,
// handles outliving the queue, generation wraparound in the slot pool, and a
// property test pinning the wheel's pop order to the reference semantics —
// a binary heap keyed on (time, insertion sequence).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace vdep::sim {
namespace {

TEST(EventQueueEdge, CancelThenPopSkipsOnlyTheCancelled) {
  EventQueue q;
  std::vector<int> fired;
  auto a = q.schedule(SimTime{10}, [&] { fired.push_back(1); });
  auto b = q.schedule(SimTime{10}, [&] { fired.push_back(2); });
  auto c = q.schedule(SimTime{10}, [&] { fired.push_back(3); });
  (void)a;
  (void)c;
  b.cancel();
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueEdge, CancelAfterFireIsANoOp) {
  EventQueue q;
  int runs = 0;
  auto h = q.schedule(SimTime{1}, [&] { ++runs; });
  EXPECT_TRUE(h.active());
  q.pop().fn();
  EXPECT_FALSE(h.active());
  h.cancel();  // already fired: must not disturb the queue
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdge, CancelLastPendingEventEmptiesQueue) {
  EventQueue q;
  auto h = q.schedule(SimTime{5}, [] {});
  EXPECT_FALSE(q.empty());
  h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  h.cancel();  // idempotent: no double decrement
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdge, CopiedHandlesShareCancellation) {
  EventQueue q;
  auto h = q.schedule(SimTime{5}, [] {});
  EventHandle copy = h;
  copy.cancel();
  EXPECT_FALSE(h.active());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdge, NextTimeSkipsCancelledWithoutAdvancingCursor) {
  EventQueue q;
  auto near = q.schedule(SimTime{5}, [] {});
  q.schedule(SimTime{1'000'000}, [] {});  // lands in a coarse wheel level
  near.cancel();
  EXPECT_EQ(q.next_time(), SimTime{1'000'000});
  // The peek must not advance the wheel: scheduling before the peeked time
  // (but after the last pop) is still legal — run_until depends on this.
  q.schedule(SimTime{10}, [] {});
  EXPECT_EQ(q.next_time(), SimTime{10});
  auto p = q.pop();
  EXPECT_EQ(p.at, SimTime{10});
}

TEST(EventQueueEdge, HandleOutlivesQueueSafely) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule(SimTime{42}, [] {});
    EXPECT_TRUE(h.active());
  }
  EXPECT_FALSE(h.active());
  h.cancel();  // must not crash or touch freed memory
}

TEST(EventSlotPool, GenerationWraparoundInvalidatesOldHandles) {
  detail::EventSlotPool pool;
  const std::uint32_t idx = pool.acquire();
  pool.slots[idx].gen = 0xFFFFFFFFu;
  EXPECT_TRUE(pool.current(idx, 0xFFFFFFFFu));
  pool.retire(idx);  // wraps to 0
  EXPECT_EQ(pool.slots[idx].gen, 0u);
  EXPECT_FALSE(pool.current(idx, 0xFFFFFFFFu));
  const std::uint32_t again = pool.acquire();
  EXPECT_EQ(again, idx);  // recycled through the free list
  EXPECT_TRUE(pool.current(again, 0u));
}

// The wheel must deliver exactly the order a binary heap keyed on
// (time, insertion sequence) would, under random schedules with same-time
// ties, huge time jumps (exercising every wheel level), cancellations, and
// scheduling interleaved with popping.
TEST(EventQueueDeterminism, MatchesReferenceHeapOrder) {
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    std::mt19937_64 rng(seed);
    EventQueue q;

    struct RefEv {
      std::int64_t at;
      std::uint64_t seq;
      int id;
    };
    auto later = [](const RefEv& a, const RefEv& b) {
      return std::tie(a.at, a.seq) > std::tie(b.at, b.seq);
    };
    std::priority_queue<RefEv, std::vector<RefEv>, decltype(later)> ref(later);
    std::vector<EventHandle> handles;
    std::vector<int> handle_ids;
    std::set<int> cancelled;
    std::vector<int> got;
    std::vector<int> want;
    std::int64_t floor = 0;
    std::uint64_t seq = 0;
    std::uint64_t ref_live = 0;  // scheduled minus fired minus cancelled
    int next_id = 0;

    auto ref_skip_cancelled = [&] {
      while (!ref.empty() && cancelled.contains(ref.top().id)) ref.pop();
    };
    auto pop_both = [&] {
      auto popped = q.pop();
      popped.fn();
      floor = popped.at.count();
      ref_skip_cancelled();
      ASSERT_FALSE(ref.empty());
      ASSERT_EQ(popped.at.count(), ref.top().at);
      want.push_back(ref.top().id);
      ref.pop();
      --ref_live;
    };

    for (int step = 0; step < 20000; ++step) {
      const auto r = rng() % 100;
      if (r < 55 || q.empty()) {
        std::int64_t jump = 0;
        switch (rng() % 4) {
          case 0: jump = 0; break;                                     // exact tie
          case 1: jump = static_cast<std::int64_t>(rng() % 4); break;  // near cluster
          case 2: jump = static_cast<std::int64_t>(rng() % 1000); break;
          default:  // far future: files into high wheel levels
            jump = static_cast<std::int64_t>(rng() % (std::uint64_t{1} << 40));
        }
        const std::int64_t at = floor + jump;
        const int id = next_id++;
        handles.push_back(q.schedule(SimTime{at}, [id, &got] { got.push_back(id); }));
        handle_ids.push_back(id);
        ref.push(RefEv{at, seq++, id});
        ++ref_live;
      } else if (r < 70 && !handles.empty()) {
        const auto k = rng() % handles.size();
        if (handles[k].active()) {
          handles[k].cancel();
          cancelled.insert(handle_ids[k]);
          --ref_live;
        }
      } else if (r < 75 && !q.empty()) {
        ref_skip_cancelled();
        ASSERT_FALSE(ref.empty());
        EXPECT_EQ(q.next_time().count(), ref.top().at);
      } else {
        pop_both();
      }
      ASSERT_EQ(q.size(), ref_live)
          << "live-count bookkeeping diverged at step " << step;
    }
    while (!q.empty()) pop_both();
    ref_skip_cancelled();
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(got, want) << "pop order diverged for seed " << seed;
  }
}

}  // namespace
}  // namespace vdep::sim
