// Serial-vs-parallel campaign determinism.
//
// The trial fleet's contract is that workers is a pure throughput knob: for
// the same campaign seed, the summary JSON, the on_trial callback sequence,
// the per-trial trace digests, and the health event streams are all
// byte-identical whether the trials ran on 1, 2, or 8 workers. These tests
// pin that contract property-style; the wide variant in
// parallel_campaign_chaos_test.cpp repeats it at the full 200-trial
// acceptance width (ctest label `chaos`).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "monitor/health/events.hpp"

namespace vdep::chaos {
namespace {

// Everything a campaign run exposes, flattened to one comparable string:
// the summary JSON plus, per trial (in index order), the sweep position,
// verdict, trace digest and rendered health event stream.
std::string campaign_witness(CampaignConfig config, int workers) {
  config.workers = workers;
  std::string witness;
  const CampaignResult result = run_campaign(
      config, [&witness](int index, const TrialConfig& trial, const TrialResult& r) {
        witness += "trial " + std::to_string(index) + " " +
                   replication::style_code(trial.style) +
                   " r" + std::to_string(trial.replicas) +
                   " cp" + std::to_string(trial.checkpoint_every_requests) +
                   " seed" + std::to_string(trial.seed) +
                   (r.pass() ? " PASS" : " FAIL") +
                   " digest=" + std::to_string(r.trace_digest) +
                   " ops=" + std::to_string(r.completed_ops) + "\n";
        if (r.health_observation.enabled) {
          witness += "health_events=" +
                     std::to_string(r.health_observation.events.size()) + "\n" +
                     monitor::health::render_text(r.health_observation.events);
        }
      });
  witness += to_json(config, result);
  return witness;
}

TEST(ParallelCampaign, ByteIdenticalAcrossWorkerCounts) {
  CampaignConfig config;
  config.seed = 7;
  config.trials = 24;
  config.base.clients = 2;
  config.base.ops_per_client = 40;
  config.base.record_trace = true;

  const std::string serial = campaign_witness(config, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(campaign_witness(config, 2), serial);
  EXPECT_EQ(campaign_witness(config, 8), serial);
}

TEST(ParallelCampaign, HealthPlaneByteIdenticalAcrossWorkerCounts) {
  // Health-enabled trials additionally stream HealthEvents (suspicion, SLO);
  // the parallel fleet must reproduce those streams exactly, per trial.
  CampaignConfig config;
  config.seed = 11;
  config.trials = 16;
  config.base.clients = 2;
  config.base.ops_per_client = 40;
  config.base.health = true;

  const std::string serial = campaign_witness(config, 1);
  ASSERT_NE(serial.find("health_events="), std::string::npos);
  EXPECT_EQ(campaign_witness(config, 2), serial);
  EXPECT_EQ(campaign_witness(config, 8), serial);
}

TEST(ParallelCampaign, ShardedTrialsByteIdenticalAcrossWorkerCounts) {
  CampaignConfig config;
  config.seed = 3;
  config.trials = 12;
  config.base.clients = 2;
  config.base.ops_per_client = 30;
  config.shard_counts = {1, 2};

  const std::string serial = campaign_witness(config, 1);
  EXPECT_EQ(campaign_witness(config, 2), serial);
  EXPECT_EQ(campaign_witness(config, 8), serial);
}

TEST(ParallelCampaign, OnTrialObservesIndexOrder) {
  CampaignConfig config;
  config.seed = 5;
  config.trials = 20;
  config.base.clients = 2;
  config.base.ops_per_client = 30;
  config.workers = 8;

  std::vector<int> order;
  (void)run_campaign(config, [&order](int index, const TrialConfig&,
                                      const TrialResult&) { order.push_back(index); });
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace vdep::chaos
