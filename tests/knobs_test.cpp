#include <gtest/gtest.h>

#include "knobs/availability.hpp"
#include "knobs/cost.hpp"
#include "knobs/design_space.hpp"
#include "knobs/knob.hpp"
#include "knobs/low_level.hpp"
#include "knobs/throughput.hpp"
#include "knobs/versatile.hpp"

namespace vdep::knobs {
namespace {

using replication::ReplicationStyle;

// --- cost function: checked against the paper's own Table 2 cost column -----

TEST(CostFunction, ReproducesPaperTable2Costs) {
  // Cost = 0.5 * L/7000 + 0.5 * B/3 with the paper's measured L and B.
  EXPECT_NEAR(configuration_cost(1245.8, 1.074), 0.268, 0.002);
  EXPECT_NEAR(configuration_cost(1457.2, 2.032), 0.443, 0.002);
  EXPECT_NEAR(configuration_cost(4966.0, 1.887), 0.669, 0.002);
  EXPECT_NEAR(configuration_cost(6141.1, 2.315), 0.825, 0.002);
  EXPECT_NEAR(configuration_cost(6006.2, 2.799), 0.895, 0.002);
}

TEST(CostFunction, WeightsAreConvex) {
  CostParams latency_only{1.0, 7000, 3};
  CostParams bandwidth_only{0.0, 7000, 3};
  EXPECT_DOUBLE_EQ(configuration_cost(3500, 999, latency_only), 0.5);
  EXPECT_DOUBLE_EQ(configuration_cost(999, 1.5, bandwidth_only), 0.5);
}

TEST(CostFunction, CustomFunctionFactory) {
  auto cost = make_paper_cost_function({0.5, 7000, 3});
  EXPECT_NEAR(cost(1245.8, 1.074), 0.268, 0.002);
}

// --- knob registry ------------------------------------------------------------

TEST(KnobRegistry, RegisterFindList) {
  KnobRegistry registry;
  int value = 1;
  registry.register_knob(std::make_unique<FunctionKnob>(
      "TestKnob", KnobLevel::kLow, "a knob",
      [&value] { return std::to_string(value); },
      [&value](const std::string& v) { value = std::stoi(v); },
      std::vector<std::string>{"1", "2"}));

  Knob* k = registry.find("TestKnob");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->get(), "1");
  k->set("2");
  EXPECT_EQ(value, 2);
  EXPECT_EQ(k->choices().size(), 2u);
  EXPECT_EQ(registry.list(KnobLevel::kLow).size(), 1u);
  EXPECT_TRUE(registry.list(KnobLevel::kHigh).empty());
  EXPECT_EQ(registry.find("nope"), nullptr);
  EXPECT_THROW((void)registry.at("nope"), std::out_of_range);
}

TEST(KnobRegistry, DuplicateNameRejected) {
  KnobRegistry registry;
  auto make = [] {
    return std::make_unique<FunctionKnob>("K", KnobLevel::kLow, "",
                                          [] { return ""; },
                                          [](const std::string&) {});
  };
  registry.register_knob(make());
  EXPECT_THROW(registry.register_knob(make()), std::invalid_argument);
}

// --- low-level knobs against a fake controller --------------------------------

struct FakeController : ReplicaGroupController {
  void set_style(ReplicationStyle s) override { style_ = s; }
  ReplicationStyle style() const override { return style_; }
  void set_replica_count(int n) override { replicas_ = n; }
  int replica_count() const override { return replicas_; }
  void set_checkpoint_interval(SimTime t) override { interval_ = t; }
  SimTime checkpoint_interval() const override { return interval_; }
  void set_checkpoint_anchor_interval(std::uint32_t k) override { anchor_interval_ = k; }
  std::uint32_t checkpoint_anchor_interval() const override { return anchor_interval_; }

  ReplicationStyle style_ = ReplicationStyle::kWarmPassive;
  int replicas_ = 2;
  SimTime interval_ = msec(50);
  std::uint32_t anchor_interval_ = 1;
};

TEST(LowLevelKnobs, StyleKnobRoundTrips) {
  FakeController controller;
  auto knob = make_replication_style_knob(controller);
  EXPECT_EQ(knob->get(), "warm_passive");
  knob->set("active");
  EXPECT_EQ(controller.style_, ReplicationStyle::kActive);
  EXPECT_THROW(knob->set("bogus"), std::invalid_argument);
  EXPECT_EQ(knob->choices().size(), 5u);
  EXPECT_EQ(knob->level(), KnobLevel::kLow);
}

TEST(LowLevelKnobs, NumReplicasKnobEnforcesRange) {
  FakeController controller;
  auto knob = make_num_replicas_knob(controller, 1, 3);
  knob->set("3");
  EXPECT_EQ(controller.replicas_, 3);
  EXPECT_THROW(knob->set("4"), std::invalid_argument);
  EXPECT_THROW(knob->set("0"), std::invalid_argument);
  EXPECT_EQ(knob->get(), "3");
}

TEST(LowLevelKnobs, CheckpointIntervalKnobUsesMicroseconds) {
  FakeController controller;
  auto knob = make_checkpoint_interval_knob(controller);
  EXPECT_EQ(knob->get(), "50000");
  knob->set("25000");
  EXPECT_EQ(controller.interval_, msec(25));
}

TEST(LowLevelKnobs, CheckpointAnchorIntervalKnobRoundTrips) {
  FakeController controller;
  auto knob = make_checkpoint_anchor_interval_knob(controller);
  EXPECT_EQ(knob->get(), "1");
  knob->set("8");
  EXPECT_EQ(controller.anchor_interval_, 8u);
  EXPECT_EQ(knob->get(), "8");
  EXPECT_THROW(knob->set("0"), std::invalid_argument);  // 1 = deltas off, minimum
  EXPECT_EQ(knob->level(), KnobLevel::kLow);
}

TEST(LowLevelKnobs, ParseStyleNames) {
  EXPECT_EQ(parse_style("active"), ReplicationStyle::kActive);
  EXPECT_EQ(parse_style("semi_active"), ReplicationStyle::kSemiActive);
  EXPECT_THROW((void)parse_style(""), std::invalid_argument);
}

// --- design space ---------------------------------------------------------------

DesignSpaceMap synthetic_map() {
  DesignSpaceMap map;
  for (int clients = 1; clients <= 3; ++clients) {
    map.add({{ReplicationStyle::kActive, 3}, clients, 1000.0 * clients,
             50.0, 1.2 * clients, 900.0 / clients, 2});
    map.add({{ReplicationStyle::kWarmPassive, 3}, clients, 3000.0 * clients,
             200.0, 0.8 * clients, 300.0 / clients, 2});
  }
  return map;
}

TEST(DesignSpaceMap, FindAndFilter) {
  const auto map = synthetic_map();
  EXPECT_EQ(map.points().size(), 6u);
  auto p = map.find({ReplicationStyle::kActive, 3}, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->latency_us, 2000.0);
  EXPECT_FALSE(map.find({ReplicationStyle::kActive, 2}, 1).has_value());
  EXPECT_EQ(map.client_counts(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(map.configurations().size(), 2u);
  EXPECT_EQ(map.at_clients(2).size(), 2u);
  // Constraint planes (inclusive): A(3)@{1,2} and P(3)@1 survive; A(3)@3
  // breaks the bandwidth plane (3.6), P(3)@{2,3} the latency plane.
  EXPECT_EQ(map.satisfying(3000, 3.0).size(), 3u);
}

TEST(DesignSpaceMap, NormalizationSpansUnitCube) {
  const auto normalized = synthetic_map().normalized();
  double max_perf = 0;
  double max_res = 0;
  for (const auto& n : normalized) {
    EXPECT_GE(n.performance, 0.0);
    EXPECT_LE(n.performance, 1.0);
    EXPECT_GE(n.resources, 0.0);
    EXPECT_LE(n.resources, 1.0);
    EXPECT_DOUBLE_EQ(n.fault_tolerance, 1.0);  // all points tolerate 2 == max
    max_perf = std::max(max_perf, n.performance);
    max_res = std::max(max_res, n.resources);
  }
  EXPECT_DOUBLE_EQ(max_perf, 1.0);
  EXPECT_DOUBLE_EQ(max_res, 1.0);
}

TEST(Configuration, PaperNotation) {
  EXPECT_EQ((Configuration{ReplicationStyle::kActive, 3}).code(), "A (3)");
  EXPECT_EQ((Configuration{ReplicationStyle::kWarmPassive, 2}).code(), "P (2)");
}

// --- availability knob -------------------------------------------------------------

TEST(Availability, MoreReplicasMoreNines) {
  AvailabilityModel model;
  const double a1 =
      predicted_availability({ReplicationStyle::kWarmPassive, 1}, model);
  const double a2 =
      predicted_availability({ReplicationStyle::kWarmPassive, 2}, model);
  const double a3 =
      predicted_availability({ReplicationStyle::kWarmPassive, 3}, model);
  EXPECT_LT(a1, a2);
  // Beyond two replicas the failover outage dominates; gains saturate.
  EXPECT_LE(a3, 1.0);
  EXPECT_GT(a2, 0.99);
}

TEST(Availability, FasterFailoverHigherAvailability) {
  AvailabilityModel model;
  const double active = predicted_availability({ReplicationStyle::kActive, 2}, model);
  const double warm =
      predicted_availability({ReplicationStyle::kWarmPassive, 2}, model);
  const double cold =
      predicted_availability({ReplicationStyle::kColdPassive, 2}, model);
  EXPECT_GT(active, warm);
  EXPECT_GT(warm, cold);
}

TEST(Availability, ChoosePicksCheapestMeetingTarget) {
  AvailabilityModel model;
  // Modest target: one replica of the frugal style suffices.
  auto modest = choose_for_availability(0.9, model);
  ASSERT_TRUE(modest.has_value());
  EXPECT_EQ(modest->config.replicas, 1);

  // Aggressive target: needs replication and a fast-failover style.
  auto five_nines = choose_for_availability(0.99999, model);
  if (five_nines) {
    EXPECT_GE(five_nines->config.replicas, 2);
    EXPECT_GE(five_nines->availability, 0.99999);
  }

  // Impossible target: nullopt, not a bogus pick.
  EXPECT_FALSE(choose_for_availability(1.1, model).has_value());
}

TEST(Availability, FailoverTimesOrdered) {
  AvailabilityModel model;
  EXPECT_LT(failover_time(ReplicationStyle::kActive, model),
            failover_time(ReplicationStyle::kSemiActive, model));
  EXPECT_LT(failover_time(ReplicationStyle::kSemiActive, model),
            failover_time(ReplicationStyle::kWarmPassive, model));
  EXPECT_LT(failover_time(ReplicationStyle::kWarmPassive, model),
            failover_time(ReplicationStyle::kColdPassive, model));
}

// --- incremental-checkpoint profile ----------------------------------------------

TEST(CheckpointProfileMath, AveragesOneFullPlusDeltasPerAnchorPeriod) {
  const CheckpointProfile profile{1000.0, 50.0, 4};
  // F D D D: (1000 + 3*50) / 4.
  EXPECT_DOUBLE_EQ(profile.average_bytes(), 287.5);
  EXPECT_DOUBLE_EQ(profile.average_ratio(), 0.2875);

  // K = 1: every checkpoint full, ratio exactly 1 (the seed protocol).
  EXPECT_DOUBLE_EQ((CheckpointProfile{1000.0, 50.0, 1}).average_ratio(), 1.0);
  // A delta never counts for more than a full (dense-write worst case).
  EXPECT_DOUBLE_EQ((CheckpointProfile{1000.0, 2000.0, 2}).average_ratio(), 1.0);
  // Empty profile degrades to neutral, not NaN.
  EXPECT_DOUBLE_EQ(CheckpointProfile{}.average_ratio(), 1.0);
}

TEST(Availability, DeltaProfileShrinksPassiveFailoverOnly) {
  AvailabilityModel model;
  const CheckpointProfile profile{10000.0, 1000.0, 10};  // ratio 0.19
  const double ratio = profile.average_ratio();
  EXPECT_NEAR(ratio, 0.19, 1e-9);

  // Warm replay shrinks in proportion; cold keeps its launch component.
  EXPECT_EQ(failover_time(ReplicationStyle::kWarmPassive, model, profile),
            sec_f(to_sec(model.warm_failover) * ratio));
  const SimTime cold = failover_time(ReplicationStyle::kColdPassive, model, profile);
  EXPECT_GT(cold, model.cold_failover - model.warm_failover);
  EXPECT_LT(cold, model.cold_failover);
  // Active styles take no checkpoints: unchanged.
  EXPECT_EQ(failover_time(ReplicationStyle::kActive, model, profile),
            failover_time(ReplicationStyle::kActive, model));

  // Net effect: the same warm-passive pair is predicted more available.
  const Configuration p2{ReplicationStyle::kWarmPassive, 2};
  EXPECT_GT(predicted_availability(p2, model, profile),
            predicted_availability(p2, model));
}

TEST(Availability, DeltaProfileCanUnlockATargetFullSnapshotsMiss) {
  // A model where warm-passive replay is the availability bottleneck.
  AvailabilityModel model;
  model.mttf = sec(600);
  model.warm_failover = msec(800);
  const CheckpointProfile profile{20000.0, 400.0, 16};

  const Configuration p3{ReplicationStyle::kWarmPassive, 3};
  const double target = predicted_availability(p3, model, profile);
  EXPECT_GT(target, predicted_availability(p3, model));

  // choose_for_availability under the profile meets a target the plain
  // model cannot reach with the same allowed styles.
  const std::vector<ReplicationStyle> warm_only = {ReplicationStyle::kWarmPassive};
  auto plain = choose_for_availability(target, model, 3, warm_only);
  auto with_profile =
      choose_for_availability(target, model, profile, 3, warm_only);
  EXPECT_FALSE(plain.has_value());
  ASSERT_TRUE(with_profile.has_value());
  EXPECT_GE(with_profile->availability, target);
}

// --- throughput knob ------------------------------------------------------------

TEST(Throughput, PicksSustainingConfiguration) {
  const auto map = synthetic_map();
  // 450 req/s within 3 MB/s: A(3) at 2 clients does 450.
  auto choice = choose_for_throughput(map, 440, 3.0);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->config.style, ReplicationStyle::kActive);
  EXPECT_GE(choice->throughput_rps, 440);
  // Unreachable rate.
  EXPECT_FALSE(choose_for_throughput(map, 5000, 3.0).has_value());
  // Bandwidth cap excludes everything.
  EXPECT_FALSE(choose_for_throughput(map, 100, 0.1).has_value());
}

// --- the facade ------------------------------------------------------------------

TEST(VersatileDependability, RegistersStandardKnobsAndActuates) {
  FakeController controller;
  VersatileDependability vd(controller);
  EXPECT_NE(vd.registry().find("ReplicationStyle"), nullptr);
  EXPECT_NE(vd.registry().find("MinimumNumberReplicas"), nullptr);
  EXPECT_NE(vd.registry().find("CheckpointInterval"), nullptr);

  vd.registry().at("ReplicationStyle").set("active");
  EXPECT_EQ(controller.style_, ReplicationStyle::kActive);

  vd.install_availability_knob(AvailabilityModel{});
  EXPECT_NE(vd.registry().find("Availability"), nullptr);
  auto choice = vd.tune_for_availability(0.999);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(controller.replicas_, choice->config.replicas);
}

TEST(VersatileDependability, CheckpointProfileActuatesAnchorIntervalKnob) {
  FakeController controller;
  VersatileDependability vd(controller);
  ASSERT_NE(vd.registry().find("CheckpointAnchorInterval"), nullptr);
  EXPECT_EQ(vd.registry().at("CheckpointAnchorInterval").get(), "1");

  vd.set_checkpoint_profile({20000.0, 400.0, 8});
  EXPECT_EQ(controller.anchor_interval_, 8u);
  EXPECT_EQ(vd.registry().at("CheckpointAnchorInterval").get(), "8");
  ASSERT_TRUE(vd.checkpoint_profile().has_value());
  EXPECT_LT(vd.checkpoint_profile()->average_ratio(), 0.15);

  // With the profile installed, availability tuning evaluates passive
  // styles under the rescaled failover model.
  vd.install_availability_knob(AvailabilityModel{});
  auto choice = vd.tune_for_availability(0.999);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(controller.replicas_, choice->config.replicas);
}

TEST(VersatileDependability, ScalabilityKnobDrivesController) {
  FakeController controller;
  VersatileDependability vd(controller);
  ScalabilityRequirements requirements;
  requirements.max_latency_us = 7000;
  requirements.max_bandwidth_mbps = 3.0;
  const auto& policy = vd.install_scalability_knob(synthetic_map(), requirements);
  EXPECT_FALSE(policy.entries.empty());
  EXPECT_NE(vd.registry().find("Scalability"), nullptr);

  auto entry = vd.tune_for_clients(2);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(controller.replicas_, entry->config.replicas);
  EXPECT_EQ(controller.style_, entry->config.style);
  EXPECT_EQ(vd.registry().at("Scalability").get(), "2");
}

TEST(VersatileDependability, ContractManagement) {
  FakeController controller;
  VersatileDependability vd(controller);
  adaptive::Contract main;
  main.max_latency_us = 2000;
  adaptive::Contract fallback;
  fallback.max_latency_us = 9000;
  vd.set_contract(main, {fallback});
  ASSERT_NE(vd.contract_monitor(), nullptr);
  EXPECT_DOUBLE_EQ(vd.contract_monitor()->active().max_latency_us, 2000);
}

}  // namespace
}  // namespace vdep::knobs
