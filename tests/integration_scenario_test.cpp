// End-to-end scenario tests: whole simulated testbeds driven through the
// public harness API. These are the system-level checks that the replicated
// request path works under every style, that failover preserves exactly-once
// semantics, and that the macroscopic shapes the paper reports (active
// faster, passive cheaper) hold.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

TEST(ScenarioSmoke, BaselineTcpPathCompletesCycle) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 1;
  config.replicated = false;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 200;
  cycle.warmup_requests = 20;
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 220u);
  EXPECT_GT(result.avg_latency_us, 0.0);
  // Baseline: ORB (398) + app (15) + two network crossings; well under 1 ms.
  EXPECT_LT(result.avg_latency_us, 1000.0);
}

TEST(ScenarioSmoke, ActiveReplicationOneReplica) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 1;
  config.style = replication::ReplicationStyle::kActive;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 200;
  cycle.warmup_requests = 20;
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 220u);
  // Fig. 3: the replicated path costs ~1.2 ms per round trip.
  EXPECT_GT(result.avg_latency_us, 800.0);
  EXPECT_LT(result.avg_latency_us, 2500.0);
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(ScenarioSmoke, ActiveReplicationThreeReplicasAllConsistent) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.style = replication::ReplicationStyle::kActive;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 300;
  cycle.warmup_requests = 20;
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 640u);
  EXPECT_EQ(result.faults_tolerated, 2);
  scenario.drain();
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(ScenarioSmoke, WarmPassiveCompletesCycle) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.style = replication::ReplicationStyle::kWarmPassive;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 300;
  cycle.warmup_requests = 20;
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 320u);
  EXPECT_GT(result.avg_latency_us, 0.0);
}

}  // namespace
}  // namespace vdep::harness
