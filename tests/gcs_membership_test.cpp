// Unit tests for the leader-side protocol state machine (pure logic, no
// network).
#include <gtest/gtest.h>

#include "gcs/membership.hpp"

namespace vdep::gcs {
namespace {

const GroupId kGroup{1};
const NodeId kLeader{0};
const NodeId kD1{1};
const NodeId kD2{2};
const ProcessId kP1{10};
const ProcessId kP2{20};

Forward make_join(ProcessId p, NodeId daemon, std::uint64_t seq) {
  Forward f;
  f.group = kGroup;
  f.kind = Forward::Kind::kJoin;
  f.origin = OriginId{p, seq};
  f.origin_daemon = daemon;
  return f;
}

Forward make_data(ProcessId p, NodeId daemon, std::uint64_t seq,
                  ServiceType svc = ServiceType::kAgreed) {
  Forward f;
  f.group = kGroup;
  f.kind = Forward::Kind::kData;
  f.svc = svc;
  f.origin = OriginId{p, seq};
  f.origin_daemon = daemon;
  f.payload = filler_bytes(10);
  return f;
}

// Flattens the per-message emissions back to (destination, message) pairs —
// one per destination — matching the order the daemon transmits them in.
template <typename T>
std::vector<std::pair<NodeId, T>> collect(const LeaderState::Emissions& emissions) {
  std::vector<std::pair<NodeId, T>> out;
  for (const auto& e : emissions) {
    if (const auto* m = std::get_if<T>(&e.msg)) {
      for (NodeId to : e.dests) out.push_back({to, *m});
    }
  }
  return out;
}

TEST(LeaderState, JoinCreatesViewAndAcksForward) {
  LeaderState leader(kLeader);
  auto emissions = leader.handle_forward(make_join(kP1, kD1, 1));

  auto views = collect<Ordered>(emissions);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].first, kD1);
  EXPECT_EQ(views[0].second.kind, Ordered::Kind::kView);
  EXPECT_EQ(views[0].second.epoch, 1u);
  EXPECT_EQ(views[0].second.seq, 0u);

  auto acks = collect<FwdAck>(emissions);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].first, kD1);

  auto view = leader.current_view(kGroup);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->contains(kP1));
}

TEST(LeaderState, SecondJoinBumpsEpochAndNotifiesBothDaemons) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  auto emissions = leader.handle_forward(make_join(kP2, kD2, 1));
  auto views = collect<Ordered>(emissions);
  ASSERT_EQ(views.size(), 2u);  // old daemon and new daemon
  EXPECT_EQ(views[0].second.epoch, 2u);
  EXPECT_EQ(leader.current_view(kGroup)->size(), 2u);
}

TEST(LeaderState, JoinIsIdempotent) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  auto emissions = leader.handle_forward(make_join(kP1, kD1, 2));
  EXPECT_TRUE(collect<Ordered>(emissions).empty());
  EXPECT_EQ(collect<FwdAck>(emissions).size(), 1u);  // still acked
}

TEST(LeaderState, DataOrderedToAllMemberDaemonsWithIncreasingSeqs) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  (void)leader.handle_forward(make_join(kP2, kD2, 1));

  auto e1 = leader.handle_forward(make_data(kP1, kD1, 2));
  auto e2 = leader.handle_forward(make_data(kP2, kD2, 2));
  auto o1 = collect<Ordered>(e1);
  auto o2 = collect<Ordered>(e2);
  ASSERT_EQ(o1.size(), 2u);  // two member daemons
  ASSERT_EQ(o2.size(), 2u);
  EXPECT_EQ(o1[0].second.seq, 1u);
  EXPECT_EQ(o2[0].second.seq, 2u);
  EXPECT_EQ(o1[0].second.epoch, 2u);
}

TEST(LeaderState, DuplicateForwardDropsButReacks) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  (void)leader.handle_forward(make_data(kP1, kD1, 2));
  auto dup = leader.handle_forward(make_data(kP1, kD1, 2));
  EXPECT_TRUE(collect<Ordered>(dup).empty());
  EXPECT_EQ(collect<FwdAck>(dup).size(), 1u);
}

TEST(LeaderState, NonMemberSenderAllowedOpenGroup) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  // kP2 on kD2 never joined; its data still gets ordered (client requests).
  auto emissions = leader.handle_forward(make_data(kP2, kD2, 1));
  auto ordered = collect<Ordered>(emissions);
  ASSERT_EQ(ordered.size(), 1u);
  EXPECT_EQ(ordered[0].first, kD1);  // member daemon only
  auto acks = collect<FwdAck>(emissions);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].first, kD2);  // origin daemon learns it was handled
}

TEST(LeaderState, DataToEmptyGroupDroppedButAcked) {
  LeaderState leader(kLeader);
  auto emissions = leader.handle_forward(make_data(kP1, kD1, 1));
  EXPECT_TRUE(collect<Ordered>(emissions).empty());
  EXPECT_EQ(collect<FwdAck>(emissions).size(), 1u);
}

TEST(LeaderState, LeaveShrinksViewIdempotently) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  (void)leader.handle_forward(make_join(kP2, kD2, 1));
  Forward leave;
  leave.group = kGroup;
  leave.kind = Forward::Kind::kLeave;
  leave.origin = OriginId{kP1, 2};
  leave.origin_daemon = kD1;
  auto emissions = leader.handle_forward(leave);
  auto views = collect<Ordered>(emissions);
  ASSERT_EQ(views.size(), 2u);  // leaver's daemon and survivor's daemon
  EXPECT_EQ(leader.current_view(kGroup)->size(), 1u);
  EXPECT_FALSE(leader.current_view(kGroup)->contains(kP1));

  leave.origin.seq = 3;
  auto again = leader.handle_forward(leave);
  EXPECT_TRUE(collect<Ordered>(again).empty());
}

TEST(LeaderState, StabilityPublishedOnTokenAfterAllAcks) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  (void)leader.handle_forward(make_join(kP2, kD2, 1));
  (void)leader.handle_forward(make_data(kP1, kD1, 2));  // epoch 2, seq 1

  // Only one daemon acked: nothing stable yet.
  leader.handle_ack(OrdAck{kD1, kGroup, 2, 1});
  auto none = leader.publish_stability();
  EXPECT_TRUE(collect<StableMsg>(none).empty());

  leader.handle_ack(OrdAck{kD2, kGroup, 2, 1});
  auto published = leader.publish_stability();
  auto stables = collect<StableMsg>(published);
  ASSERT_EQ(stables.size(), 2u);
  EXPECT_EQ(stables[0].second.upto, 2u);  // view + seq1 held everywhere

  // Nothing new: token publishes nothing.
  EXPECT_TRUE(leader.publish_stability().empty());
}

TEST(LeaderState, AckFromNonMemberDaemonIgnored) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  leader.handle_ack(OrdAck{kD2, kGroup, 1, 0});  // kD2 not a member daemon
  EXPECT_TRUE(leader.publish_stability().empty());
}

TEST(LeaderState, DaemonDeathRemovesItsProcessesAndUnblocksStability) {
  LeaderState leader(kLeader);
  (void)leader.handle_forward(make_join(kP1, kD1, 1));
  (void)leader.handle_forward(make_join(kP2, kD2, 1));
  (void)leader.handle_forward(make_data(kP1, kD1, 2));
  leader.handle_ack(OrdAck{kD1, kGroup, 2, 1});
  // kD2 never acks and then dies.
  auto emissions = leader.handle_daemon_death(kD2);
  auto views = collect<Ordered>(emissions);
  ASSERT_GE(views.size(), 1u);
  EXPECT_FALSE(leader.current_view(kGroup)->contains(kP2));
  // No emission goes to the dead daemon.
  for (const auto& e : emissions) {
    for (NodeId to : e.dests) EXPECT_NE(to, kD2);
  }
  // With kD2 out of the must-ack set, stability advances on the next token.
  auto published = leader.publish_stability();
  EXPECT_FALSE(collect<StableMsg>(published).empty());
}

TEST(LeaderState, BootstrapRebuildsFromSyncStates) {
  // Simulate: old leader ordered up to (epoch 2, seq 2); daemons hold
  // unstable copies; one pending forward never got ordered.
  View v;
  v.group = kGroup;
  v.view_id = 2;
  v.members = {{kP1, kD1}, {kP2, kD2}};

  Ordered data;
  data.group = kGroup;
  data.epoch = 2;
  data.seq = 1;
  data.kind = Ordered::Kind::kData;
  data.origin = OriginId{kP1, 5};
  data.origin_daemon = kD1;
  data.payload = filler_bytes(4);

  SyncState s1;
  s1.term = 1;
  s1.from = kD1;
  s1.views = {v};
  s1.buffered = {data};
  s1.acks = {OrdAck{kD1, kGroup, 2, 1}};

  SyncState s2;
  s2.term = 1;
  s2.from = kD2;
  s2.views = {v};
  s2.acks = {OrdAck{kD2, kGroup, 2, 0}};  // kD2 missed seq 1
  Forward pending = make_data(kP2, kD2, 7);
  s2.pending = {pending};

  LeaderState leader(kD1);
  auto emissions = leader.bootstrap({s1, s2}, {kD1, kD2});

  // The unstable message is replayed, a fresh view (epoch 3) installed, and
  // the pending forward ordered in the new epoch.
  auto ordered = collect<Ordered>(emissions);
  bool replayed = false;
  bool new_view = false;
  bool pending_ordered = false;
  for (const auto& [to, o] : ordered) {
    if (o.epoch == 2 && o.seq == 1 && o.kind == Ordered::Kind::kData) replayed = true;
    if (o.kind == Ordered::Kind::kView && o.epoch == 3) new_view = true;
    if (o.epoch == 3 && o.kind == Ordered::Kind::kData &&
        o.origin == (OriginId{kP2, 7})) {
      pending_ordered = true;
    }
  }
  EXPECT_TRUE(replayed);
  EXPECT_TRUE(new_view);
  EXPECT_TRUE(pending_ordered);
  EXPECT_EQ(leader.current_view(kGroup)->view_id, 3u);
}

TEST(LeaderState, BootstrapDropsProcessesOnDeadDaemons) {
  View v;
  v.group = kGroup;
  v.view_id = 1;
  v.members = {{kP1, kD1}, {kP2, kD2}};
  SyncState s1;
  s1.term = 1;
  s1.from = kD1;
  s1.views = {v};

  LeaderState leader(kD1);
  (void)leader.bootstrap({s1}, {kD1});  // kD2 is dead
  auto view = leader.current_view(kGroup);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(view->contains(kP1));
  EXPECT_FALSE(view->contains(kP2));
}

TEST(LeaderState, BootstrapDedupBaselinePreventsReordering) {
  // A buffered message with origin seq 5 must stop a replayed pending
  // forward with seq <= 5 from being ordered again.
  View v;
  v.group = kGroup;
  v.view_id = 1;
  v.members = {{kP1, kD1}};
  Ordered data;
  data.group = kGroup;
  data.epoch = 1;
  data.seq = 1;
  data.kind = Ordered::Kind::kData;
  data.origin = OriginId{kP1, 5};
  data.origin_daemon = kD1;

  SyncState s1;
  s1.term = 1;
  s1.from = kD1;
  s1.views = {v};
  s1.buffered = {data};
  s1.pending = {make_data(kP1, kD1, 5)};  // same origin seq: duplicate

  LeaderState leader(kD1);
  auto emissions = leader.bootstrap({s1}, {kD1});
  int new_epoch_data = 0;
  for (const auto& [to, o] : collect<Ordered>(emissions)) {
    if (o.kind == Ordered::Kind::kData && o.epoch == 2) ++new_epoch_data;
  }
  EXPECT_EQ(new_epoch_data, 0);
}

}  // namespace
}  // namespace vdep::gcs
