// Tests for the zero-copy message path: Payload sharing semantics, the
// owner-aware decode path (sub-views aliasing the received frame), and the
// encode-once fan-out invariant at the daemon layer.
#include <gtest/gtest.h>

#include "gcs/endpoint.hpp"
#include "gcs/message.hpp"
#include "util/payload.hpp"
#include "util/rng.hpp"

namespace vdep::gcs {
namespace {

// --- Payload unit semantics --------------------------------------------------

TEST(Payload, AdoptMoveSharesOnCopy) {
  Bytes buf = filler_bytes(64);
  const std::uint8_t* raw = buf.data();
  Payload p(std::move(buf));
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p.data(), raw);  // adoption moves the vector, no byte copy
  EXPECT_EQ(p.use_count(), 1);

  Payload q = p;  // refcount bump, same bytes
  EXPECT_EQ(q.data(), p.data());
  EXPECT_EQ(p.use_count(), 2);
  EXPECT_EQ(q.use_count(), 2);
  EXPECT_EQ(p, q);
}

TEST(Payload, CopyOfDeepCopies) {
  Bytes buf = filler_bytes(16);
  Payload p = Payload::copy_of(buf);
  EXPECT_NE(p.data(), buf.data());
  EXPECT_EQ(p, buf);
  buf[0] ^= 0xff;  // mutating the source must not affect the copy
  EXPECT_NE(p, buf);
}

TEST(Payload, AliasingViewKeepsOwnerAlive) {
  Payload sub;
  {
    Payload frame(filler_bytes(100));
    sub = Payload(frame.owner(), frame.view().subspan(10, 20));
    EXPECT_EQ(frame.use_count(), 2);
  }
  // The frame Payload is gone; the aliasing view still owns the buffer.
  EXPECT_EQ(sub.use_count(), 1);
  EXPECT_EQ(sub.size(), 20u);
  const Bytes reference = filler_bytes(100);
  EXPECT_EQ(sub, Bytes(reference.begin() + 10, reference.begin() + 30));
}

TEST(Payload, ReadPayloadAliasesOwnedFrameAndCopiesUnowned) {
  ByteWriter w;
  w.bytes(filler_bytes(40));
  Bytes encoded = std::move(w).take();

  {  // Owner-aware reader: the result aliases the frame.
    Payload frame{Bytes(encoded)};
    ByteReader r(frame.owner(), frame);
    Payload inner = read_payload(r);
    EXPECT_EQ(inner, filler_bytes(40));
    EXPECT_GE(inner.data(), frame.data());
    EXPECT_LE(inner.data() + inner.size(), frame.data() + frame.size());
    EXPECT_EQ(frame.use_count(), 3);  // frame + the reader's keepalive + inner
  }
  {  // Plain-span reader: the result must be an independent deep copy.
    ByteReader r(encoded);
    Payload inner = read_payload(r);
    EXPECT_EQ(inner, filler_bytes(40));
    EXPECT_TRUE(inner.data() < encoded.data() ||
                inner.data() >= encoded.data() + encoded.size());
  }
}

// --- InnerMsg round-trip property test --------------------------------------

// Randomized payload sizes spanning empty, tiny, fragment-sized, and >64 KiB
// (length prefixes are u32, so sizes past 16-bit boundaries must survive).
std::vector<std::size_t> random_sizes(Rng& rng) {
  std::vector<std::size_t> sizes = {0, 1, 65536 + 1337};  // always-on edges
  for (int i = 0; i < 5; ++i) {
    sizes.push_back(static_cast<std::size_t>(rng.next() % 70000));
  }
  return sizes;
}

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return out;
}

TEST(InnerMsgProperty, ForwardRoundTripRandomizedSizes) {
  Rng rng(0xf00d);
  for (std::size_t n : random_sizes(rng)) {
    Forward f;
    f.group = GroupId{rng.next() % 100};
    f.kind = static_cast<Forward::Kind>(rng.next() % 4);
    f.svc = static_cast<ServiceType>(rng.next() % 3);
    f.origin = OriginId{ProcessId{rng.next() % 1000}, rng.next()};
    f.origin_daemon = NodeId{rng.next() % 64};
    Bytes body = random_bytes(rng, n);
    f.payload = Payload::copy_of(body);

    EXPECT_EQ(inner_payload_size(InnerMsg{f}), n);
    Payload frame = encode_inner(f);
    auto decoded = decode_inner(frame);
    auto* d = std::get_if<Forward>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->group, f.group);
    EXPECT_EQ(d->kind, f.kind);
    EXPECT_EQ(d->svc, f.svc);
    EXPECT_EQ(d->origin, f.origin);
    EXPECT_EQ(d->origin_daemon, f.origin_daemon);
    EXPECT_EQ(d->payload, body);
    EXPECT_EQ(inner_payload_size(decoded), n);
    if (n > 0) {
      // Zero-copy receive: the decoded payload aliases the frame.
      EXPECT_GE(d->payload.data(), frame.data());
      EXPECT_LE(d->payload.data() + d->payload.size(), frame.data() + frame.size());
    }
  }
}

TEST(InnerMsgProperty, OrderedRoundTripRandomizedSizes) {
  Rng rng(0xbeef);
  for (std::size_t n : random_sizes(rng)) {
    Ordered o;
    o.group = GroupId{rng.next() % 100};
    o.epoch = rng.next();
    o.seq = rng.next();
    o.kind = static_cast<Ordered::Kind>(rng.next() % 2);
    o.svc = static_cast<ServiceType>(rng.next() % 3);
    o.origin = OriginId{ProcessId{rng.next() % 1000}, rng.next()};
    o.origin_daemon = NodeId{rng.next() % 64};
    o.prev_epoch_end = rng.next();
    o.stable_upto = rng.next();
    Bytes body = random_bytes(rng, n);
    o.payload = Payload::copy_of(body);

    EXPECT_EQ(inner_payload_size(InnerMsg{o}), n);
    Payload frame = encode_inner(o);
    auto decoded = decode_inner(frame);
    auto* d = std::get_if<Ordered>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->epoch, o.epoch);
    EXPECT_EQ(d->seq, o.seq);
    EXPECT_EQ(d->kind, o.kind);
    EXPECT_EQ(d->prev_epoch_end, o.prev_epoch_end);
    EXPECT_EQ(d->stable_upto, o.stable_upto);
    EXPECT_EQ(d->payload, body);
    EXPECT_EQ(inner_payload_size(decoded), n);
  }
}

TEST(InnerMsgProperty, PrivateMsgRoundTripRandomizedSizes) {
  Rng rng(0xcafe);
  for (std::size_t n : random_sizes(rng)) {
    PrivateMsg p;
    p.sender = ProcessId{rng.next() % 1000};
    p.sender_daemon = NodeId{rng.next() % 64};
    p.destination = ProcessId{rng.next() % 1000};
    Bytes body = random_bytes(rng, n);
    p.payload = Payload::copy_of(body);

    EXPECT_EQ(inner_payload_size(InnerMsg{p}), n);
    auto decoded = decode_inner(encode_inner(p));
    auto* d = std::get_if<PrivateMsg>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->sender, p.sender);
    EXPECT_EQ(d->sender_daemon, p.sender_daemon);
    EXPECT_EQ(d->destination, p.destination);
    EXPECT_EQ(d->payload, body);
  }
}

TEST(InnerMsgProperty, ControlMessagesAndSyncStateRoundTrip) {
  Rng rng(0xd00d);
  for (int iter = 0; iter < 8; ++iter) {
    {
      OrdAck a{NodeId{rng.next() % 64}, GroupId{rng.next() % 100}, rng.next(),
               rng.next()};
      auto decoded = decode_inner(encode_inner(a));
      auto* d = std::get_if<OrdAck>(&decoded);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->from, a.from);
      EXPECT_EQ(d->group, a.group);
      EXPECT_EQ(d->epoch, a.epoch);
      EXPECT_EQ(d->seq, a.seq);
      EXPECT_EQ(inner_payload_size(decoded), 0u);
    }
    {
      StableMsg s{GroupId{rng.next() % 100}, rng.next(), rng.next()};
      auto decoded = decode_inner(encode_inner(s));
      auto* d = std::get_if<StableMsg>(&decoded);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->group, s.group);
      EXPECT_EQ(d->epoch, s.epoch);
      EXPECT_EQ(d->upto, s.upto);
    }
    {
      Takeover t{rng.next(), NodeId{rng.next() % 64}};
      auto decoded = decode_inner(encode_inner(t));
      auto* d = std::get_if<Takeover>(&decoded);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->term, t.term);
      EXPECT_EQ(d->leader, t.leader);
    }
    {
      FwdAck f{GroupId{rng.next() % 100}, OriginId{ProcessId{rng.next() % 1000},
                                                   rng.next()}};
      auto decoded = decode_inner(encode_inner(f));
      auto* d = std::get_if<FwdAck>(&decoded);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->group, f.group);
      EXPECT_EQ(d->origin, f.origin);
    }
    {
      SyncState st;
      st.term = rng.next();
      st.from = NodeId{rng.next() % 64};
      Ordered o;
      o.group = GroupId{1};
      o.seq = rng.next();
      o.payload = Payload::copy_of(random_bytes(rng, rng.next() % 2000));
      st.buffered.push_back(o);
      Forward f;
      f.group = GroupId{1};
      f.origin = OriginId{ProcessId{9}, rng.next()};
      f.payload = Payload::copy_of(random_bytes(rng, rng.next() % 2000));
      st.pending.push_back(f);
      View v;
      v.group = GroupId{1};
      v.view_id = rng.next();
      st.views.push_back(v);
      st.acks.push_back(OrdAck{st.from, GroupId{1}, 1, rng.next()});

      const std::size_t expected =
          st.buffered[0].payload.size() + st.pending[0].payload.size();
      EXPECT_EQ(inner_payload_size(InnerMsg{st}), expected);
      auto decoded = decode_inner(encode_inner(st));
      auto* d = std::get_if<SyncState>(&decoded);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->term, st.term);
      ASSERT_EQ(d->buffered.size(), 1u);
      EXPECT_EQ(d->buffered[0].seq, o.seq);
      EXPECT_EQ(d->buffered[0].payload, o.payload);
      ASSERT_EQ(d->pending.size(), 1u);
      EXPECT_EQ(d->pending[0].payload, f.payload);
      ASSERT_EQ(d->views.size(), 1u);
      EXPECT_EQ(d->views[0].view_id, v.view_id);
      EXPECT_EQ(inner_payload_size(decoded), expected);
    }
  }
}

// --- daemon-level fan-out invariants -----------------------------------------

const GroupId kGroup{1};

struct FanoutMember {
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<Endpoint> endpoint;
  std::vector<GroupMessage> delivered;
};

struct FanoutWorld {
  void build(int hosts, std::uint64_t seed = 1) {
    kernel = std::make_unique<sim::Kernel>(seed);
    network = std::make_unique<net::Network>(*kernel);
    std::vector<NodeId> host_ids;
    for (int i = 0; i < hosts; ++i) {
      host_ids.push_back(network->add_host("h" + std::to_string(i)));
    }
    for (NodeId h : host_ids) {
      daemons.push_back(std::make_unique<Daemon>(*kernel, *network,
                                                 ProcessId{100 + h.value()}, h,
                                                 host_ids, DaemonParams{}));
    }
    for (auto& d : daemons) d->boot();
  }

  FanoutMember& add_member(NodeId host, std::uint64_t pid) {
    auto m = std::make_unique<FanoutMember>();
    m->process = std::make_unique<sim::Process>(*kernel, ProcessId{pid}, host,
                                                "m" + std::to_string(pid));
    m->endpoint = std::make_unique<Endpoint>(*daemons[host.value()], *m->process);
    FanoutMember* raw = m.get();
    m->endpoint->set_message_handler(
        [raw](const GroupMessage& gm) { raw->delivered.push_back(gm); });
    members.push_back(std::move(m));
    return *members.back();
  }

  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<Daemon>> daemons;
  std::vector<std::unique_ptr<FanoutMember>> members;
};

// One broadcast to N member daemons must encode the Ordered frame exactly
// once (and the stability watermark exactly once) — not once per destination.
// The full per-multicast encode budget, with the leader on host 0 and one
// member on each of hosts 1..N:
//   1  Forward     origin daemon -> leader
//   1  Ordered     leader -> N member daemons (THE fan-out frame, shared)
//   1  FwdAck      leader -> origin daemon
//   N  OrdAck      each member daemon -> leader
//   1  StableMsg   leader -> N member daemons (shared)
// Total: N + 4. A per-destination encoder would burn 3N + 2.
std::uint64_t fanout_encode_delta(int member_daemons) {
  FanoutWorld w;
  w.build(member_daemons + 1);
  std::vector<FanoutMember*> ms;
  for (int i = 0; i < member_daemons; ++i) {
    ms.push_back(&w.add_member(NodeId{static_cast<std::uint64_t>(i + 1)},
                               10 + static_cast<std::uint64_t>(i)));
  }
  for (auto* m : ms) m->endpoint->join(kGroup);
  w.kernel->run_until(msec(300));  // quiesce: joins, views, stability all settle

  const std::uint64_t before = encode_inner_count();
  ms[0]->endpoint->multicast(kGroup, ServiceType::kAgreed, filler_bytes(256));
  w.kernel->run_until(msec(600));
  for (auto* m : ms) {
    EXPECT_EQ(m->delivered.size(), 1u);  // sanity: the broadcast landed
  }
  return encode_inner_count() - before;
}

TEST(EncodeOnceFanout, BroadcastEncodesFrameOncePerMessageNotPerDestination) {
  const std::uint64_t delta2 = fanout_encode_delta(2);
  const std::uint64_t delta4 = fanout_encode_delta(4);
  EXPECT_EQ(delta2, 2u + 4u);
  EXPECT_EQ(delta4, 4u + 4u);
  // Growing the destination set only adds the per-member acks; the data and
  // stability frames are encoded once regardless of fan-out width.
  EXPECT_EQ(delta4 - delta2, 2u);
}

TEST(BufferSharing, CoLocatedMembersShareOneDeliveredBuffer) {
  FanoutWorld w;
  w.build(3);
  // Two members on the same daemon plus one remote: local deliveries of the
  // same ordered message must hand out views of one buffer, not copies.
  auto& m1 = w.add_member(NodeId{1}, 10);
  auto& m2 = w.add_member(NodeId{1}, 11);
  auto& m3 = w.add_member(NodeId{2}, 12);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  m3.endpoint->join(kGroup);
  w.kernel->run_until(msec(300));

  m3.endpoint->multicast(kGroup, ServiceType::kAgreed, filler_bytes(512));
  w.kernel->run_until(msec(600));

  ASSERT_EQ(m1.delivered.size(), 1u);
  ASSERT_EQ(m2.delivered.size(), 1u);
  ASSERT_EQ(m3.delivered.size(), 1u);
  EXPECT_EQ(m1.delivered[0].payload, filler_bytes(512));
  // Same daemon, same delivery: byte-identical *and* pointer-identical.
  EXPECT_EQ(m1.delivered[0].payload.data(), m2.delivered[0].payload.data());
  // The retained copies share the buffer with each other (and whatever the
  // daemon still holds for stability) — never 1 exclusive owner each.
  EXPECT_GE(m1.delivered[0].payload.use_count(), 2);
}

}  // namespace
}  // namespace vdep::gcs
