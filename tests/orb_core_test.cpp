// Client/server ORB over the plain TCP transport (the baseline path), plus
// POA routing and interception-only wrappers.
#include <gtest/gtest.h>

#include "interpose/interposer.hpp"
#include "orb/orb_core.hpp"

namespace vdep::orb {
namespace {

// Echo servant: returns its input reversed, with a configurable cpu time.
struct EchoServant : Servant {
  Result invoke(const std::string& operation, const Bytes& args) override {
    ++invocations;
    Result r;
    r.cpu_time = usec(15);
    if (operation == "echo") {
      r.output = Bytes(args.rbegin(), args.rend());
    } else if (operation == "boom") {
      r.ok = false;
    }
    return r;
  }
  int invocations = 0;
};

struct OrbFixture : ::testing::Test {
  OrbFixture() : kernel(1), network(kernel), channels(network) {
    client_host = network.add_host("client");
    server_host = network.add_host("server");
    client_proc = std::make_unique<sim::Process>(kernel, ProcessId{1}, client_host, "c");
    server_proc = std::make_unique<sim::Process>(kernel, ProcessId{2}, server_host, "s");
    server_orb = std::make_unique<ServerOrb>(network, *server_proc, poa);
    client_orb = std::make_unique<ClientOrb>(network, *client_proc);
    poa.activate(ObjectId{1}, servant);
  }

  ObjectRef direct_ref() {
    ObjectRef ref;
    ref.object_key = ObjectId{1};
    ref.direct = DirectProfile{server_host, 7000};
    return ref;
  }

  void use_direct_transport() {
    client_orb->use_transport(
        std::make_unique<DirectClientTransport>(channels, client_host));
  }

  sim::Kernel kernel;
  net::Network network;
  net::ChannelManager channels;
  NodeId client_host, server_host;
  std::unique_ptr<sim::Process> client_proc, server_proc;
  Poa poa;
  EchoServant servant;
  std::unique_ptr<ServerOrb> server_orb;
  std::unique_ptr<ClientOrb> client_orb;
};

TEST_F(OrbFixture, InvokeRoundTrip) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();

  bool got = false;
  client_orb->invoke(direct_ref(), "echo", Bytes{1, 2, 3},
                     [&](ReplyStatus status, Bytes body) {
                       got = true;
                       EXPECT_EQ(status, ReplyStatus::kNoException);
                       EXPECT_EQ(body, (Bytes{3, 2, 1}));
                     });
  kernel.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(servant.invocations, 1);
  EXPECT_EQ(client_orb->outstanding(), 0u);
}

TEST_F(OrbFixture, RoundTripTimeMatchesCalibration) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  SimTime done = kTimeZero;
  client_orb->invoke(direct_ref(), "echo", Bytes{1},
                     [&](ReplyStatus, Bytes) { done = kernel.now(); });
  kernel.run();
  // 4 ORB traversals (398 us) + app (15 us) + 2 network crossings.
  EXPECT_GT(to_usec(done), 550.0);
  EXPECT_LT(to_usec(done), 750.0);
}

TEST_F(OrbFixture, UserExceptionPropagates) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  ReplyStatus got = ReplyStatus::kNoException;
  client_orb->invoke(direct_ref(), "boom", {}, [&](ReplyStatus s, Bytes) { got = s; });
  kernel.run();
  EXPECT_EQ(got, ReplyStatus::kUserException);
}

TEST_F(OrbFixture, UnknownObjectKeyYieldsSystemException) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  ObjectRef ref = direct_ref();
  ref.object_key = ObjectId{999};
  ReplyStatus got = ReplyStatus::kNoException;
  client_orb->invoke(ref, "echo", {}, [&](ReplyStatus s, Bytes) { got = s; });
  kernel.run();
  EXPECT_EQ(got, ReplyStatus::kSystemException);
}

TEST_F(OrbFixture, ConcurrentRequestsCorrelatedById) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  std::vector<int> replies;
  for (int i = 0; i < 5; ++i) {
    client_orb->invoke(direct_ref(), "echo", Bytes{static_cast<std::uint8_t>(i)},
                       [&replies, i](ReplyStatus, Bytes body) {
                         ASSERT_EQ(body.size(), 1u);
                         EXPECT_EQ(body[0], i);
                         replies.push_back(i);
                       });
  }
  kernel.run();
  EXPECT_EQ(replies.size(), 5u);
}

TEST_F(OrbFixture, CancelDropsPendingCallback) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  bool fired = false;
  const std::uint32_t id =
      client_orb->invoke(direct_ref(), "echo", Bytes{1}, [&](ReplyStatus, Bytes) {
        fired = true;
      });
  client_orb->cancel(id);
  kernel.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(servant.invocations, 1);  // server still executed
}

TEST_F(OrbFixture, PoaActivateDeactivate) {
  EXPECT_EQ(poa.active_count(), 1u);
  EXPECT_EQ(poa.find(ObjectId{1}), &servant);
  poa.deactivate(ObjectId{1});
  EXPECT_EQ(poa.find(ObjectId{1}), nullptr);
  EXPECT_EQ(poa.active_count(), 0u);
}

TEST_F(OrbFixture, InterceptOnlyTransportsAddCostNotBehaviour) {
  interpose::InterceptOnlyServerAcceptor acceptor(channels, server_host, 7000,
                                                  *server_orb);
  client_orb->use_transport(std::make_unique<interpose::InterceptOnlyClientTransport>(
      network, *client_proc,
      std::make_unique<DirectClientTransport>(channels, client_host)));

  SimTime done = kTimeZero;
  Bytes body_out;
  client_orb->invoke(direct_ref(), "echo", Bytes{5, 6},
                     [&](ReplyStatus status, Bytes body) {
                       EXPECT_EQ(status, ReplyStatus::kNoException);
                       body_out = std::move(body);
                       done = kernel.now();
                     });
  kernel.run();
  EXPECT_EQ(body_out, (Bytes{6, 5}));
  // Both sides intercepted: 4 trampoline costs on top of the baseline.
  EXPECT_GT(to_usec(done), 600.0 + 4 * to_usec(calib::kInterceptOnlyTraversal) - 60);
}

TEST_F(OrbFixture, LargePayloadRoundTrip) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  const Bytes big = filler_bytes(50000);
  Bytes got;
  client_orb->invoke(direct_ref(), "echo", big,
                     [&](ReplyStatus, Bytes body) { got = std::move(body); });
  kernel.run();
  EXPECT_EQ(got, Bytes(big.rbegin(), big.rend()));
}

TEST_F(OrbFixture, CrashedClientIgnoresLateReply) {
  DirectServerAcceptor acceptor(channels, server_host, 7000, *server_orb);
  use_direct_transport();
  bool fired = false;
  client_orb->invoke(direct_ref(), "echo", Bytes{1},
                     [&](ReplyStatus, Bytes) { fired = true; });
  kernel.post(usec(200), [&] { client_proc->crash(); });
  kernel.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace vdep::orb
