// Acceptance-width fleet determinism: the full 200-trial campaign, serial vs
// 8 workers, byte-identical summary JSON. Labeled `chaos` (excluded from the
// tier1 quick gate; run by scripts/ci.sh and the full suite).
//
// Note there is deliberately no wall-clock speedup assertion here: CI
// machines may expose a single core, where 8 workers cannot be faster. The
// throughput story is recorded by bench/macro_campaign (trials/sec at 1, 4
// and 8 workers) and gated by scripts/check_bench_regression.py instead.
#include <gtest/gtest.h>

#include <string>

#include "chaos/campaign.hpp"

namespace vdep::chaos {
namespace {

TEST(ParallelCampaignWide, TwoHundredTrialsByteIdenticalSerialVsEightWorkers) {
  CampaignConfig config;
  config.seed = 1;
  config.trials = 200;

  config.workers = 1;
  const CampaignResult serial = run_campaign(config);
  EXPECT_EQ(serial.passed, 200);
  const std::string serial_json = to_json(config, serial);

  config.workers = 8;
  const CampaignResult fleet = run_campaign(config);
  EXPECT_EQ(fleet.passed, 200);
  EXPECT_EQ(to_json(config, fleet), serial_json);
}

}  // namespace
}  // namespace vdep::chaos
