// Client-side majority voting (paper Sec. 3.1: "it can do majority voting on
// all the responses it receives, if Byzantine failures can occur"): a
// value-corrupted replica must be outvoted, and the group's recovery
// machinery (crash + re-provision) must restore full redundancy.
#include <gtest/gtest.h>

#include "app/test_app.hpp"
#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

using replication::ReplicationStyle;

TEST(Voting, CorruptReplicaOutvoted) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  config.response_policy = replication::ResponsePolicy::kMajorityVoting;
  Scenario scenario(config);

  // Value fault: silently corrupt replica 0's state mid-run. Its replies
  // diverge from the other two from then on.
  scenario.kernel().post_at(sec(1), [&] {
    auto snapshot = scenario.servant(0).snapshot();
    snapshot[8] ^= 0xff;  // flip bits in the state digest: replies diverge
    scenario.servant(0).restore(snapshot);
  });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  // Every request completed: two honest replicas always form a majority.
  EXPECT_EQ(result.completed, 820u);
  // The corrupted replica really did diverge — the vote was load-bearing.
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_NE(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(Voting, WorksAcrossReplicaCrash) {
  // After a crash the view shrinks to 2; the majority threshold follows the
  // freshest view size the replicas report, so 2-of-2 still completes.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  config.response_policy = replication::ResponsePolicy::kMajorityVoting;
  Scenario scenario(config);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(2));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 820u);
}

TEST(Recovery, CrashThenReprovisionRestoresRedundancy) {
  // The full operational loop: lose a replica, re-provision through the
  // NumReplicas knob, survive a second fault that would otherwise have been
  // fatal for the remaining pair's fault-tolerance budget.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);

  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  scenario.kernel().post_at(sec(2), [&] {
    scenario.set_replica_count(3);  // new process on the freed host
  });
  scenario.fault_plan().crash_process(sec(3), scenario.replica_pid(1));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 2000;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(240);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 2020u);
  EXPECT_EQ(scenario.live_replicas(), 2);  // replica 2 + the replacement
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(Recovery, WarmPassiveReprovisionedBackupCanPromote) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);

  // Backup dies; a replacement joins (state transfer); then the primary
  // dies and the replacement must take over correctly.
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(1));
  scenario.kernel().post_at(sec(2), [&] { scenario.set_replica_count(2); });
  scenario.fault_plan().crash_process(sec(3), scenario.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 2000;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(240);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 2020u);
  EXPECT_EQ(scenario.live_replicas(), 1);
  // Exactly-once through join + state transfer + promotion + replay.
  EXPECT_EQ(scenario.servant(2).counter(), 2020u);
}

}  // namespace
}  // namespace vdep::harness
