#include <gtest/gtest.h>

#include "orb/cdr.hpp"

namespace vdep::orb {
namespace {

TEST(Cdr, PrimitiveRoundTrip) {
  CdrWriter w;
  w.octet(7);
  w.boolean(true);
  w.ushort(0x1234);
  w.ulong(0xdeadbeef);
  w.ulonglong(0x0123456789abcdefULL);
  w.longlong(-12345);
  w.cdr_double(2.71828);
  w.string("corba");
  w.octets(Bytes{9, 8, 7});

  CdrReader r(w.data());
  EXPECT_EQ(r.octet(), 7);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.ushort(), 0x1234);
  EXPECT_EQ(r.ulong(), 0xdeadbeefu);
  EXPECT_EQ(r.ulonglong(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.longlong(), -12345);
  EXPECT_DOUBLE_EQ(r.cdr_double(), 2.71828);
  EXPECT_EQ(r.string(), "corba");
  EXPECT_EQ(r.octets(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Cdr, AlignmentPadsRelativeToStreamStart) {
  CdrWriter w;
  w.octet(1);     // position 1
  w.ulong(5);     // aligns to 4: pads 3
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w.data()[1], 0);  // padding
  w.octet(2);     // position 9
  w.ulonglong(6); // aligns to 8: pads 7
  EXPECT_EQ(w.size(), 24u);

  CdrReader r(w.data());
  EXPECT_EQ(r.octet(), 1);
  EXPECT_EQ(r.ulong(), 5u);
  EXPECT_EQ(r.octet(), 2);
  EXPECT_EQ(r.ulonglong(), 6u);
}

TEST(Cdr, AlreadyAlignedAddsNoPadding) {
  CdrWriter w;
  w.ulong(1);
  w.ulong(2);
  EXPECT_EQ(w.size(), 8u);
}

TEST(Cdr, BigEndianReaderDecodesSwapped) {
  // Writer emits little-endian; a reader told the stream is big-endian must
  // produce the byte-swapped value — verifying the flag is honoured.
  CdrWriter w;
  w.ulong(0x01020304);
  CdrReader r(w.data(), /*little_endian=*/false);
  EXPECT_EQ(r.ulong(), 0x04030201u);
}

TEST(Cdr, StringRequiresNulTerminator) {
  CdrWriter w;
  w.ulong(3);  // length including NUL
  // Manually corrupt: append "abc" without NUL via octets of raw buffer.
  Bytes raw = w.data();
  raw.push_back('a');
  raw.push_back('b');
  raw.push_back('c');  // should be NUL
  CdrReader r(raw);
  EXPECT_THROW((void)r.string(), DecodeError);
}

TEST(Cdr, EmptyStringHasNul) {
  CdrWriter w;
  w.string("");
  CdrReader r(w.data());
  EXPECT_EQ(r.string(), "");
}

TEST(Cdr, UnderrunThrows) {
  CdrWriter w;
  w.ushort(1);
  CdrReader r(w.data());
  EXPECT_THROW((void)r.ulonglong(), DecodeError);
}

TEST(Cdr, ZeroLengthStringPrefixRejected) {
  CdrWriter w;
  w.ulong(0);  // CORBA strings always include their NUL: length >= 1
  CdrReader r(w.data());
  EXPECT_THROW((void)r.string(), DecodeError);
}

TEST(Cdr, DoubleSpecialValues) {
  CdrWriter w;
  w.cdr_double(0.0);
  w.cdr_double(-0.0);
  w.cdr_double(1e308);
  CdrReader r(w.data());
  EXPECT_DOUBLE_EQ(r.cdr_double(), 0.0);
  EXPECT_DOUBLE_EQ(r.cdr_double(), -0.0);
  EXPECT_DOUBLE_EQ(r.cdr_double(), 1e308);
}

}  // namespace
}  // namespace vdep::orb
