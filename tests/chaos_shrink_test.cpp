// Shrinker: a noisy failing schedule is delta-debugged down to a minimal
// reproducer that still fails, and the reproducer replays deterministically.
#include <gtest/gtest.h>

#include "chaos/shrink.hpp"
#include "harness/scenario.hpp"

namespace vdep::chaos {
namespace {

TrialConfig bug_trial() {
  TrialConfig config;
  config.seed = 5;
  config.clients = 2;
  config.replicas = 3;
  config.ops_per_client = 60;
  config.append_ratio = 1.0;       // every retried op exposes the bug
  config.inject_dedup_bug = true;  // the deliberately planted safety bug
  return config;
}

// The trigger — a client/replica partition that cuts an in-flight reply and
// forces a retransmission — buried in five decoy fault actions.
net::FaultPlan noisy_failing_plan(const TrialConfig& config) {
  harness::ScenarioConfig sc;
  sc.clients = config.clients;
  sc.replicas = config.replicas;
  sc.max_replicas = config.replicas;
  sc.style = config.style;
  harness::Scenario probe(sc);

  net::FaultPlan plan;
  plan.slow_host(msec(320), msec(480), probe.replica_host(1), 3.0);
  plan.partition_window(msec(500), msec(950),
                        {NodeId{0}, NodeId{1}},
                        {probe.replica_host(0), probe.replica_host(1),
                         probe.replica_host(2)});
  plan.loss_burst(msec(1100), msec(1250), probe.replica_host(1),
                  probe.replica_host(2), 0.6);
  plan.crash_process(msec(1500), probe.replica_pid(2));
  plan.restart_process(msec(1900), probe.replica_pid(2));
  plan.slow_host(msec(2200), msec(2400), probe.replica_host(2), 2.5);
  return plan;
}

TEST(ChaosShrink, MinimizesInjectedBugToAtMostThreeActions) {
  const TrialConfig config = bug_trial();
  const net::FaultPlan failing = noisy_failing_plan(config);

  // Precondition: the noisy schedule really does trip the oracle.
  ASSERT_FALSE(run_trial(config, failing).pass());

  // Pin the shrink to the exactly-once violation: without a predicate the
  // minimizer may happily morph the failure into a different one (e.g.
  // retime the partition past the expulsion threshold and fail liveness).
  const auto dedup_violated = [](const TrialResult& r) {
    return !check_exactly_once(r.observation).pass();
  };
  const ShrinkResult shrunk = shrink_schedule(config, failing, dedup_violated);
  EXPECT_LE(shrunk.minimal.size(), 3u)
      << "minimal reproducer:\n" << shrunk.minimal.to_string();
  EXPECT_LT(shrunk.minimal.size(), failing.size());
  EXPECT_GT(shrunk.probes, 1);
  EXPECT_FALSE(shrunk.reproduction.pass());

  // The printed reproducer is self-contained: replaying it from scratch
  // still fails, and the violation is the planted exactly-once bug.
  const TrialResult replay = run_trial(config, shrunk.minimal);
  EXPECT_FALSE(replay.pass());
  EXPECT_FALSE(check_exactly_once(replay.observation).pass())
      << replay.verdict.to_string();

  // With the bug toggle off the very same minimal schedule is tolerated.
  TrialConfig fixed = config;
  fixed.inject_dedup_bug = false;
  EXPECT_TRUE(run_trial(fixed, shrunk.minimal).pass());
}

TEST(ChaosShrink, ParallelRoundsFindTheSameMinimalSchedule) {
  // A ddmin round on the pool evaluates every candidate as a parallel trial
  // and commits the lowest-indexed failure — the same candidate the serial
  // scan commits, so the minimal schedule must be identical byte for byte
  // (only the probe count may differ: parallel rounds finish candidates the
  // serial scan would have skipped past).
  const TrialConfig config = bug_trial();
  const net::FaultPlan failing = noisy_failing_plan(config);
  const auto dedup_violated = [](const TrialResult& r) {
    return !check_exactly_once(r.observation).pass();
  };

  const ShrinkResult serial = shrink_schedule(config, failing, dedup_violated);
  sim::parallel::StealPool pool(8);
  const ShrinkResult fleet =
      shrink_schedule(config, failing, dedup_violated, &pool);

  EXPECT_EQ(fleet.minimal.to_string(), serial.minimal.to_string());
  EXPECT_GE(fleet.probes, serial.probes);
  EXPECT_FALSE(fleet.reproduction.pass());
}

}  // namespace
}  // namespace vdep::chaos
