// The live health plane: phi-accrual failure detection, windowed telemetry,
// SLO tracking, the deterministic HealthEvent stream, and the closed loop
// into adaptation — units first, then full-scenario integration.
#include <gtest/gtest.h>

#include "adaptive/policy.hpp"
#include "harness/scenario.hpp"
#include "monitor/health/events.hpp"
#include "monitor/health/health_monitor.hpp"
#include "monitor/health/phi_accrual.hpp"
#include "monitor/health/slo.hpp"
#include "monitor/health/window.hpp"
#include "shard/cluster.hpp"

namespace vdep::monitor::health {
namespace {

// --- phi accrual ---------------------------------------------------------------

TEST(PhiAccrual, SuspectsAfterSilenceAndRecovers) {
  PhiAccrualDetector d;
  SimTime t = kTimeZero;
  for (int i = 0; i < 50; ++i) {
    t += msec(20);
    d.heartbeat(t);
  }
  // On-schedule: low suspicion one interval after the last heartbeat.
  EXPECT_LT(d.phi(t + msec(20)), 1.0);
  // A long silence crosses the suspect threshold decisively.
  EXPECT_GT(d.phi(t + msec(200)), 8.0);
  // A resumed heartbeat collapses suspicion immediately.
  t += msec(200);
  d.heartbeat(t);
  EXPECT_LT(d.phi(t + msec(10)), 1.0);
}

TEST(PhiAccrual, BootstrapBeforeMinSamples) {
  PhiAccrualDetector d;
  EXPECT_DOUBLE_EQ(d.phi(msec(100)), 0.0);  // never started: no opinion
  d.heartbeat(msec(100));
  // Below min_samples the detector falls back to the bootstrap interval, so
  // it is already useful: quiet on schedule, loud after a long silence.
  EXPECT_DOUBLE_EQ(d.mean_interval_us(), to_usec(d.params().bootstrap_interval));
  EXPECT_LT(d.phi(msec(120)), 1.0);
  EXPECT_GT(d.phi(msec(400)), 8.0);
}

TEST(PhiAccrual, OutlierIntervalClamped) {
  PhiAccrualDetector d;
  SimTime t = kTimeZero;
  for (int i = 0; i < 50; ++i) {
    t += msec(20);
    d.heartbeat(t);
  }
  // One 500 ms outage-polluted gap is clamped to max_interval_factor x mean,
  // so the window mean cannot be dragged far from the true cadence.
  t += msec(500);
  d.heartbeat(t);
  EXPECT_LT(d.mean_interval_us(), 25'000.0);
}

// --- windowed telemetry --------------------------------------------------------

TEST(TimeSeriesWindows, DeltasRatesAndRollingPercentiles) {
  MetricsRegistry reg;
  TimeSeries series(8);
  SimTime t = kTimeZero;
  for (int w = 1; w <= 5; ++w) {
    reg.add("ops", 10);
    for (int i = 0; i < 10; ++i) reg.observe("lat", 100.0 * w);
    t += msec(100);
    series.cut(reg, t);
  }

  EXPECT_EQ(series.windows_cut(), 5u);
  EXPECT_EQ(series.window(0).deltas.counters.at("ops"), 10u);
  EXPECT_EQ(series.total("ops", 2), 20u);
  EXPECT_EQ(series.observations("lat", 3), 30u);
  // 40 ops across the last 4 windows' 400 ms span.
  EXPECT_NEAR(series.rate("ops", 4), 100.0, 1e-9);
  // Newest window is a point mass at 500.
  ASSERT_TRUE(series.percentile("lat", 50, 1).has_value());
  EXPECT_NEAR(*series.percentile("lat", 50, 1), 500.0, 500.0 * 0.05);
  // Unknown names are empty, not errors.
  EXPECT_EQ(series.total("missing", 4), 0u);
  EXPECT_FALSE(series.percentile("missing", 99, 4).has_value());
}

TEST(TimeSeriesWindows, RingWrapKeepsNewest) {
  MetricsRegistry reg;
  TimeSeries series(4);
  SimTime t = kTimeZero;
  for (int w = 0; w < 6; ++w) {
    reg.add("ops", static_cast<std::uint64_t>(w + 1));
    t += msec(50);
    series.cut(reg, t);
  }
  EXPECT_EQ(series.windows_cut(), 6u);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.window(0).index, 5u);  // newest
  EXPECT_EQ(series.window(3).index, 2u);  // oldest retained
  // Totals aggregate only what the ring still holds: windows 3..6 deltas.
  EXPECT_EQ(series.total("ops", 99), 3u + 4u + 5u + 6u);
}

// --- SLO tracking --------------------------------------------------------------

TEST(SloTracker, VacuousBelowMinRequests) {
  MetricsRegistry reg;
  TimeSeries series(8);
  series.cut(reg, msec(100));

  SloSpec spec;
  spec.name = "svc";
  spec.latency_metric = "lat";
  spec.request_counter = "req";
  spec.min_requests = 5;
  SloTracker tracker(spec);

  const SloStatus idle = tracker.evaluate(series);
  EXPECT_TRUE(idle.met());
  EXPECT_EQ(idle.requests, 0u);
  EXPECT_DOUBLE_EQ(idle.burn_rate, 0.0);
}

TEST(SloTracker, AvailabilityBurnAndLatencyBreach) {
  MetricsRegistry reg;
  TimeSeries series(8);

  SloSpec spec;
  spec.name = "svc";
  spec.latency_metric = "lat";
  spec.request_counter = "req";
  spec.failure_counter = "fail";
  spec.latency_p99_target_us = 1000.0;
  spec.availability_target = 0.9;
  spec.window = 1;
  SloTracker tracker(spec);

  // Healthy window: all requests fast, none failed.
  reg.add("req", 100);
  for (int i = 0; i < 100; ++i) reg.observe("lat", 500.0);
  series.cut(reg, msec(100));
  const SloStatus healthy = tracker.evaluate(series);
  EXPECT_TRUE(healthy.met());
  EXPECT_DOUBLE_EQ(healthy.availability, 1.0);
  EXPECT_DOUBLE_EQ(healthy.burn_rate, 0.0);

  // Availability breach: 20 of 100 fail -> 0.8 < 0.9 target, burn 2x budget.
  reg.add("req", 80);
  reg.add("fail", 20);
  series.cut(reg, msec(200));
  const SloStatus burning = tracker.evaluate(series);
  EXPECT_FALSE(burning.availability_met);
  EXPECT_DOUBLE_EQ(burning.availability, 0.8);
  EXPECT_NEAR(burning.burn_rate, 2.0, 1e-9);

  // Latency breach: successful but slow.
  reg.add("req", 100);
  for (int i = 0; i < 100; ++i) reg.observe("lat", 5000.0);
  series.cut(reg, msec(300));
  const SloStatus slow = tracker.evaluate(series);
  EXPECT_FALSE(slow.latency_met);
  EXPECT_TRUE(slow.availability_met);
  EXPECT_GT(slow.p99_us, 1000.0);
}

// --- event stream --------------------------------------------------------------

TEST(HealthEventStream, SequenceIdsAndCanonicalRender) {
  HealthEventStream stream;
  int fired = 0;
  stream.set_on_event([&](const HealthEvent& e) { fired += e.seq == 0 ? 1 : 10; });
  stream.emit(msec(1), HealthEventKind::kLinkSuspect, "link:1->2", 1, 2, 9.5, 8.0);
  stream.emit(msec(2), HealthEventKind::kLinkClear, "link:1->2", 1, 2, 0.25, 1.0);
  ASSERT_EQ(stream.events().size(), 2u);
  EXPECT_EQ(stream.events()[0].seq, 0u);
  EXPECT_EQ(stream.events()[1].seq, 1u);
  EXPECT_EQ(stream.next_seq(), 2u);
  EXPECT_EQ(fired, 11);  // live feed saw both, in order

  // Canonical bytes: integer-ns timestamps, fixed precision — the CI
  // determinism gate diffs exactly this rendering.
  EXPECT_EQ(render_text(stream.events()),
            "#000000 t=1000000ns link_suspect link:1->2 value=9.500 threshold=8.000\n"
            "#000001 t=2000000ns link_clear link:1->2 value=0.250 threshold=1.000\n");
}

// --- health-threshold adaptation policy ----------------------------------------

TEST(HealthThresholdPolicy, DegradesImmediatelyRecoversAfterDwell) {
  adaptive::HealthThresholdPolicy policy;
  adaptive::Signals s;
  s.now = msec(100);
  EXPECT_FALSE(policy.evaluate(s).has_value());  // healthy, already normal

  s.suspected_replicas = 1;  // degrade is immediate
  auto degraded = policy.evaluate(s);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(*degraded, replication::ReplicationStyle::kActive);

  s.suspected_replicas = 0;  // clearing within the dwell: hold degraded
  s.now = msec(200);
  EXPECT_FALSE(policy.evaluate(s).has_value());

  s.now = msec(700);  // dwell passed: recover to the normal style
  auto recovered = policy.evaluate(s);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, replication::ReplicationStyle::kWarmPassive);

  s.max_phi = 99.0;  // phi threshold degrades too
  s.now = msec(800);
  auto again = policy.evaluate(s);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, replication::ReplicationStyle::kActive);
}

// --- scenario integration ------------------------------------------------------

harness::ScenarioConfig health_scenario_config(std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  config.auto_recover = true;
  config.health = true;
  return config;
}

bool has_event(const std::vector<HealthEvent>& events, HealthEventKind kind,
               std::uint64_t id_a) {
  for (const auto& e : events) {
    if (e.kind == kind && e.id_a == id_a) return true;
  }
  return false;
}

TEST(HealthScenario, CrashSuspectedInstantlyAndClearedOnRejoin) {
  harness::Scenario scenario(health_scenario_config(11));
  scenario.fault_plan().crash_process(msec(800), scenario.replica_pid(1));
  scenario.fault_plan().restart_process(msec(1200), scenario.replica_pid(1));

  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = 1800;
  scenario.run_closed_loop(cycle);
  scenario.drain();

  const auto& events = scenario.health().events();
  const std::uint64_t pid = scenario.replica_pid(1).value();
  EXPECT_TRUE(has_event(events, HealthEventKind::kReplicaSuspect, pid));
  EXPECT_TRUE(has_event(events, HealthEventKind::kReplicaClear, pid));
  // The co-located daemon observes the crash directly: the suspect event is
  // emitted at the crash instant, not after a timeout.
  for (const auto& e : events) {
    if (e.kind == HealthEventKind::kReplicaSuspect && e.id_a == pid) {
      EXPECT_EQ(e.at, msec(800));
    }
  }
  EXPECT_EQ(scenario.health().suspected_replicas(), 0u);  // recovered
  EXPECT_GT(scenario.metrics().counter("service.requests"), 0u);
}

TEST(HealthScenario, PartitionRaisesLinkSuspicionThenClears) {
  harness::Scenario scenario(health_scenario_config(12));
  const NodeId isolated = scenario.replica_host(2);
  scenario.fault_plan().partition_window(
      msec(800), msec(1100), {isolated},
      {scenario.replica_host(0), scenario.replica_host(1)});

  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = 1800;
  scenario.run_closed_loop(cycle);
  scenario.drain();

  const auto& events = scenario.health().events();
  SimTime first_suspect = kTimeZero;
  bool cleared = false;
  for (const auto& e : events) {
    if (e.kind == HealthEventKind::kLinkSuspect && e.id_a == isolated.value() &&
        first_suspect == kTimeZero) {
      first_suspect = e.at;
    }
    if (e.kind == HealthEventKind::kLinkClear && e.id_a == isolated.value()) {
      cleared = true;
    }
  }
  ASSERT_GT(first_suspect, kTimeZero) << "partition never suspected";
  // Detection latency: well inside the partition window (the classic
  // heartbeat detector would need 500 ms of silence; phi crosses in ~50 ms).
  EXPECT_LT(first_suspect, msec(800) + msec(100));
  EXPECT_TRUE(cleared);
  EXPECT_EQ(scenario.health().suspected_links(), 0u);
}

TEST(HealthScenario, FaultFreeRunIsSilent) {
  harness::Scenario scenario(health_scenario_config(13));
  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = 1200;
  scenario.run_closed_loop(cycle);
  scenario.drain();

  auto& health = scenario.health();
  EXPECT_GT(health.series().windows_cut(), 0u);
  for (const auto& e : health.events()) {
    EXPECT_TRUE(e.kind == HealthEventKind::kReplicaClear ||
                e.kind == HealthEventKind::kLinkClear ||
                e.kind == HealthEventKind::kSloLatencyRecover ||
                e.kind == HealthEventKind::kSloAvailabilityRecover ||
                e.kind == HealthEventKind::kQueueDepthClear)
        << "false alarm: " << render_text({e});
  }
  for (const auto& [name, slo] : health.slo_status()) {
    EXPECT_TRUE(slo.met()) << name;
  }
}

TEST(HealthScenario, EventStreamByteIdenticalAcrossRuns) {
  auto run_once = [] {
    harness::Scenario scenario(health_scenario_config(14));
    scenario.fault_plan().crash_process(msec(800), scenario.replica_pid(0));
    scenario.fault_plan().restart_process(msec(1200), scenario.replica_pid(0));
    scenario.fault_plan().partition_window(
        msec(1600), msec(1900), {scenario.replica_host(2)},
        {scenario.replica_host(0), scenario.replica_host(1)});
    harness::Scenario::CycleConfig cycle;
    cycle.requests_per_client = 2200;
    scenario.run_closed_loop(cycle);
    scenario.drain();
    return render_text(scenario.health().events());
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(HealthScenario, AdaptationReactsToSuspicion) {
  harness::ScenarioConfig config = health_scenario_config(15);
  config.health_adaptation = adaptive::HealthThresholdPolicy::Config{};
  harness::Scenario scenario(config);
  scenario.fault_plan().partition_window(
      msec(800), msec(1200), {scenario.replica_host(2)},
      {scenario.replica_host(0), scenario.replica_host(1)});

  harness::Scenario::CycleConfig cycle;
  cycle.requests_per_client = 2200;
  scenario.run_closed_loop(cycle);
  scenario.drain();

  // The health-threshold policy saw the link suspicion and initiated a
  // switch to the degraded (active) style on at least one replica.
  bool switched = false;
  for (int r = 0; r < config.replicas; ++r) {
    for (const auto& record : scenario.replicator(r).switch_history()) {
      if (record.to == replication::ReplicationStyle::kActive) switched = true;
    }
  }
  EXPECT_TRUE(switched);
}

// --- sharded per-shard SLOs ----------------------------------------------------

TEST(HealthShard, PerShardSloTrackersCoverEveryShard) {
  shard::ShardedClusterConfig config;
  config.seed = 21;
  config.shards = 4;
  config.health = true;
  shard::ShardedCluster cluster(config);

  shard::ShardedCluster::WorkloadConfig wc;
  wc.ops_per_client = 60;
  const auto result = cluster.run_workload(wc);
  cluster.drain(msec(500));
  EXPECT_TRUE(result.all_done);

  auto& health = cluster.health();
  EXPECT_EQ(health.slo_status().size(), 4u);
  std::uint64_t shard_ops = 0;
  for (const auto& entry : cluster.initial_map().entries()) {
    const std::string prefix = "shard." + std::to_string(entry.shard);
    EXPECT_TRUE(health.slo_status().contains(prefix)) << prefix;
    shard_ops += cluster.metrics().counter(prefix + ".ops");
  }
  EXPECT_EQ(shard_ops, result.completed);
  // Healthy cluster: no SLO breach events.
  for (const auto& e : health.events()) {
    EXPECT_NE(e.kind, HealthEventKind::kSloAvailabilityBreach)
        << render_text({e});
  }
}

}  // namespace
}  // namespace vdep::monitor::health
