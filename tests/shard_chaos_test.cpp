// The sharded acceptance campaign: 200 seeded trials on a >= 32-shard
// cluster, every trial performing online splits with crashes, partitions and
// loss bursts injected inside the split windows. Both shard oracles (no key
// served by two shards in one epoch; no lost/duplicated key across a split)
// plus bounded recovery must hold on every trial. Labeled `chaos shard` in
// ctest — excluded from the tier1 quick gate, run by scripts/ci.sh.
#include <gtest/gtest.h>

#include "chaos/campaign.hpp"

namespace vdep::chaos {
namespace {

CampaignConfig shard_campaign(int trials) {
  CampaignConfig config;
  config.seed = 0x5AD;
  config.trials = trials;
  config.workers = 8;  // fleet execution; pure throughput knob
  config.shard_counts = {32};
  // Sharded trials build one replica group per shard; keep the per-group
  // footprint small so 32 groups fit one deterministic kernel comfortably.
  config.replica_counts = {2};
  config.styles = {replication::ReplicationStyle::kActive,
                   replication::ReplicationStyle::kWarmPassive};
  config.base.clients = 2;
  config.base.ops_per_client = 40;
  config.base.splits = 2;
  config.base.faults.crash_recoveries = 2;
  config.base.faults.partitions = 1;
  config.base.faults.loss_bursts = 1;
  config.base.faults.slow_hosts = 0;
  config.base.faults.node_kills = 0;
  return config;
}

TEST(ShardChaosCampaign, TwoHundredTrialsFaultsDuringSplitsOraclesHold) {
  const CampaignConfig config = shard_campaign(200);

  const CampaignResult result = run_campaign(config);

  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "trial " << failure.trial_index << " (style "
                  << replication::style_code(failure.config.style) << ", seed "
                  << failure.config.seed << ", " << failure.config.shards
                  << " shards):\n  "
                  << [&] {
                       std::string all;
                       for (const auto& f : failure.failures) all += f + "\n  ";
                       return all;
                     }()
                  << "schedule:\n"
                  << failure.plan.to_string();
  }
  EXPECT_EQ(result.passed, config.trials);
  EXPECT_TRUE(result.all_passed());

  EXPECT_EQ(result.metrics.counter("chaos.shard.trials"),
            static_cast<std::uint64_t>(config.trials));
  // Splits actually committed: the mean migration count per trial is > 0 and
  // the map epoch advanced past the initial one.
  const auto* migrations = result.metrics.distribution("chaos.shard.migrations");
  ASSERT_NE(migrations, nullptr);
  EXPECT_GT(migrations->mean(), 0.0);
  const auto* epochs = result.metrics.distribution("chaos.shard.final_epoch");
  ASSERT_NE(epochs, nullptr);
  EXPECT_GT(epochs->mean(), 1.0);
}

// A deterministic spot-check replays one sharded trial twice and expects
// byte-identical flight recordings (the campaign's post-mortem mechanism).
TEST(ShardChaosCampaign, ShardTrialIsDeterministic) {
  CampaignConfig config = shard_campaign(1);
  TrialConfig trial = campaign_trial_config(config, 0);
  trial.record_spans = true;

  const TrialResult a = run_trial(trial);
  const TrialResult b = run_trial(trial);

  EXPECT_EQ(a.pass(), b.pass());
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.spans_recorded, b.spans_recorded);
  EXPECT_EQ(a.flight_recording, b.flight_recording);
  EXPECT_EQ(a.shard_observation.final_map, b.shard_observation.final_map);
}

}  // namespace
}  // namespace vdep::chaos
