// Randomized stress of the group-communication core: across seeds, a group
// suffers random multicasts (mixed service levels), random member crashes
// and a possible leader-daemon crash — and the survivors must still agree
// exactly on the data stream and on where each membership change fell in it.
#include <gtest/gtest.h>

#include "gcs/endpoint.hpp"
#include "util/rng.hpp"

namespace vdep::gcs {
namespace {

const GroupId kGroup{1};

struct Member_ {
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<Endpoint> endpoint;
  std::vector<std::string> delivered;
};

class GcsStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcsStress, SurvivorsAgreeUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  sim::Kernel kernel(seed);
  net::Network network(kernel);

  constexpr int kHosts = 5;
  constexpr int kMembers = 4;  // on hosts 1..4; host 0 is the initial leader
  std::vector<NodeId> hosts;
  for (int i = 0; i < kHosts; ++i) hosts.push_back(network.add_host("h" + std::to_string(i)));
  std::vector<std::unique_ptr<Daemon>> daemons;
  for (NodeId h : hosts) {
    daemons.push_back(
        std::make_unique<Daemon>(kernel, network, ProcessId{100 + h.value()}, h, hosts));
  }
  for (auto& d : daemons) d->boot();

  std::vector<Member_> members(kMembers);
  for (int i = 0; i < kMembers; ++i) {
    auto& m = members[i];
    m.process = std::make_unique<sim::Process>(kernel,
                                               ProcessId{static_cast<std::uint64_t>(10 + i)},
                                               hosts[1 + i % 4],
                                               "m" + std::to_string(i));
    m.endpoint = std::make_unique<Endpoint>(*daemons[1 + i % 4], *m.process);
    auto* log = &m.delivered;
    m.endpoint->set_message_handler([log](const GroupMessage& gm) {
      log->push_back("msg:" + std::to_string(gm.sender.value()) + ":" +
                     std::string(gm.payload.begin(), gm.payload.end()));
    });
    m.endpoint->set_view_handler([log](const View& v) {
      log->push_back("view:" + std::to_string(v.view_id));
    });
    m.endpoint->join(kGroup);
  }
  kernel.run_until(msec(100));

  // Random traffic + faults, seeded.
  Rng rng(seed * 77 + 1);
  const ServiceType services[] = {ServiceType::kAgreed, ServiceType::kSafe,
                                  ServiceType::kFifo, ServiceType::kReliable};
  int victim = -1;
  const bool kill_leader_daemon = rng.chance(0.3);
  for (int i = 0; i < 120; ++i) {
    const SimTime at = msec(100) + usec(rng.below(900'000));
    const int sender = static_cast<int>(rng.below(kMembers));
    const ServiceType svc = services[rng.below(4)];
    kernel.post_at(at, [&members, sender, svc, i] {
      auto& m = members[sender];
      if (!m.process->alive()) return;
      m.endpoint->multicast(kGroup, svc,
                            Bytes{static_cast<std::uint8_t>(i),
                                  static_cast<std::uint8_t>(i >> 8)});
    });
  }
  if (rng.chance(0.8)) {
    victim = static_cast<int>(rng.below(kMembers));
    kernel.post_at(msec(100) + usec(rng.below(900'000)),
                   [&members, victim] { members[victim].process->crash(); });
  }
  if (kill_leader_daemon) {
    kernel.post_at(msec(100) + usec(rng.below(900'000)), [&] {
      network.set_host_up(hosts[0], false);
      daemons[0]->crash();
    });
  }
  kernel.run_until(sec(4));

  // Property 1: all surviving members delivered the same data stream.
  std::vector<std::string> reference;
  bool have_reference = false;
  auto msgs_only = [](const std::vector<std::string>& log) {
    std::vector<std::string> out;
    for (const auto& e : log) {
      if (e.rfind("msg:", 0) == 0) out.push_back(e);
    }
    return out;
  };
  for (int i = 0; i < kMembers; ++i) {
    if (!members[i].process->alive()) continue;
    auto msgs = msgs_only(members[i].delivered);
    if (!have_reference) {
      reference = std::move(msgs);
      have_reference = true;
    } else {
      EXPECT_EQ(msgs, reference) << "seed " << seed << " member " << i;
    }
  }
  ASSERT_TRUE(have_reference);

  // Property 2: no duplicates in anyone's stream.
  std::set<std::string> uniq(reference.begin(), reference.end());
  EXPECT_EQ(uniq.size(), reference.size()) << "seed " << seed;

  // Property 3: if a member crashed, every survivor saw the shrink view at
  // the same position in the data stream.
  if (victim >= 0 && !members[victim].process->alive()) {
    int at_position = -2;
    for (int i = 0; i < kMembers; ++i) {
      if (!members[i].process->alive() || i == victim) continue;
      int msg_count = 0;
      int found = -1;
      std::uint64_t max_view = 0;
      for (const auto& e : members[i].delivered) {
        if (e.rfind("view:", 0) == 0) {
          const auto id = std::stoull(e.substr(5));
          if (id > max_view) {
            max_view = id;
            found = msg_count;
          }
        } else {
          ++msg_count;
        }
      }
      if (at_position == -2) {
        at_position = found;
      } else {
        EXPECT_EQ(found, at_position) << "seed " << seed << " member " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcsStress,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u,
                                           89u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vdep::gcs
