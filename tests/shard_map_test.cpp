// ShardMap codec and algebra: golden wire bytes, random round-trip
// properties, split/reassign edge cases, and the servant/directory fencing
// statuses (wrong-shard, frozen, stale-epoch).
#include <gtest/gtest.h>

#include <stdexcept>

#include "orb/cdr.hpp"
#include "shard/directory.hpp"
#include "shard/map.hpp"
#include "shard/shard_servant.hpp"
#include "util/rng.hpp"

namespace vdep::shard {
namespace {

ShardPolicy test_policy() {
  ShardPolicy p;
  p.style = 0;
  p.replicas = 3;
  p.checkpoint_every_requests = 10;
  p.checkpoint_anchor_interval = 4;
  return p;
}

TEST(ShardMapTest, UniformCoversKeySpace) {
  for (int shards : {1, 2, 3, 7, 32, 64}) {
    const ShardMap map = ShardMap::uniform(shards, 10, test_policy());
    std::string why;
    EXPECT_TRUE(map.validate(&why)) << shards << " shards: " << why;
    EXPECT_EQ(map.size(), static_cast<std::size_t>(shards));
    EXPECT_EQ(map.epoch(), 1u);
    // Every probe position resolves to exactly the entry containing it.
    for (std::uint32_t h : {0u, 1u, 0x7fffffffu, 0xfffffffeu, 0xffffffffu}) {
      const ShardEntry* e = map.lookup(h);
      ASSERT_NE(e, nullptr);
      EXPECT_TRUE(e->range.contains(h));
      EXPECT_EQ(e->group.value(), 10u + e->shard);
    }
  }
}

// The wire format is pinned: these bytes must never change without a version
// bump (maps are replicated state and travel in AGREED commits).
TEST(ShardMapTest, GoldenBytes) {
  const ShardMap map = ShardMap::uniform(1, 7, test_policy(), /*epoch=*/5);
  const Bytes raw = map.encode();
  const std::uint8_t expected[] = {
      'S', 'M', 'A', 'P',       // magic
      0x01,                     // version
      5, 0, 0, 0, 0, 0, 0, 0,   // epoch u64 LE
      1, 0, 0, 0,               // entry count
      0, 0, 0, 0,               // shard id
      0, 0, 0, 0,               // range.lo
      0xff, 0xff, 0xff, 0xff,   // range.hi
      7, 0, 0, 0, 0, 0, 0, 0,   // group u64 LE
      0,                        // policy.style (active)
      3,                        // policy.replicas
      10, 0, 0, 0,              // checkpoint_every_requests
      4, 0, 0, 0,               // checkpoint_anchor_interval
  };
  ASSERT_EQ(raw.size(), sizeof(expected));
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(raw[i], expected[i]) << "byte " << i;
  }
  EXPECT_EQ(ShardMap::decode(raw), map);
}

TEST(ShardMapTest, RandomSplitReassignRoundTripProperty) {
  Rng rng(0x5eed);
  for (int trial = 0; trial < 50; ++trial) {
    ShardMap map = ShardMap::uniform(
        1 + static_cast<int>(rng.below(8)), 10, test_policy());
    std::uint64_t next_group = 100;
    for (int step = 0; step < 12; ++step) {
      const auto& entries = map.entries();
      const ShardEntry pick =
          entries[static_cast<std::size_t>(rng.below(entries.size()))];
      if (rng.chance(0.3)) {
        map = map.reassign(pick.shard, GroupId{next_group++});
      } else if (pick.range.lo < pick.range.hi) {
        const std::uint32_t point = static_cast<std::uint32_t>(
            rng.range(static_cast<std::int64_t>(pick.range.lo) + 1,
                      static_cast<std::int64_t>(pick.range.hi)));
        ShardPolicy policy = test_policy();
        policy.style = static_cast<std::uint8_t>(rng.below(5));
        policy.replicas = static_cast<std::uint8_t>(1 + rng.below(4));
        map = map.split(pick.shard, point, GroupId{next_group++}, policy);
      }
      std::string why;
      ASSERT_TRUE(map.validate(&why)) << why;
      ASSERT_EQ(ShardMap::decode(map.encode()), map);  // codec round-trip
    }
    EXPECT_EQ(map.epoch(), 13u);
  }
}

TEST(ShardMapTest, SplitEdgeCases) {
  const ShardMap map = ShardMap::uniform(2, 10, test_policy());
  const ShardEntry first = map.entries().front();

  // Splitting at lo would leave the lower side empty.
  EXPECT_THROW(map.split(first.shard, first.range.lo, GroupId{50}, test_policy()),
               std::invalid_argument);
  // Below the range / above the range are equally invalid.
  EXPECT_THROW(map.split(first.shard, 0, GroupId{50}, test_policy()),
               std::invalid_argument);
  // Unknown shard id.
  EXPECT_THROW(map.split(99, 1234, GroupId{50}, test_policy()),
               std::invalid_argument);
  // Splitting a single-key range is impossible: no valid split point exists.
  ShardMap narrow = map;
  while (narrow.entries().front().range.width() > 1) {
    const ShardEntry e = narrow.entries().front();
    narrow = narrow.split(e.shard, e.range.lo + 1, GroupId{1000 + narrow.epoch()},
                          test_policy());
    // The lower side is now exactly one key wide; loop terminates first pass.
    break;
  }
  const ShardEntry single = narrow.entries().front();
  ASSERT_EQ(single.range.width(), 1u);
  EXPECT_THROW(narrow.split(single.shard, single.range.lo, GroupId{51}, test_policy()),
               std::invalid_argument);

  // Split at hi is the minimal legal upper side: exactly one key moves.
  const ShardMap at_hi =
      map.split(first.shard, first.range.hi, GroupId{52}, test_policy());
  std::string why;
  ASSERT_TRUE(at_hi.validate(&why)) << why;
  EXPECT_EQ(at_hi.epoch(), map.epoch() + 1);
  const ShardEntry* moved = at_hi.lookup(first.range.hi);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->group, GroupId{52});
  EXPECT_EQ(moved->range.width(), 1u);
  EXPECT_EQ(moved->shard, map.max_shard_id() + 1);  // fresh id, never reused
  // The remainder still belongs to the original group.
  const ShardEntry* kept = at_hi.lookup(first.range.hi - 1);
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->group, first.group);
  EXPECT_EQ(kept->shard, first.shard);
}

TEST(ShardMapTest, ValidateRejectsMalformedMaps) {
  std::string why;
  EXPECT_FALSE(ShardMap{}.validate(&why));
  EXPECT_EQ(why, "empty map");

  // Craft a gapped cover by re-encoding a valid map and patching entry 1's lo.
  const ShardMap good = ShardMap::uniform(2, 10, test_policy());
  Bytes raw = good.encode();
  // Entry layout: 17-byte header (magic+version+epoch+count), 30 B per
  // entry; the second entry's lo sits after its 4-byte shard id.
  const std::size_t lo_offset = 17 + 30 + 4;
  raw[lo_offset] ^= 0x01;
  EXPECT_FALSE(ShardMap::decode(raw).validate(&why));
  EXPECT_NE(why.find("gap/overlap"), std::string::npos) << why;
}

TEST(ShardMapTest, DecodeRejectsBadMagicAndTrailingBytes) {
  const ShardMap map = ShardMap::uniform(1, 10, test_policy());
  Bytes raw = map.encode();
  Bytes bad_magic = raw;
  bad_magic[0] = 'X';
  EXPECT_THROW(ShardMap::decode(bad_magic), DecodeError);
  Bytes trailing = raw;
  trailing.push_back(0);
  EXPECT_THROW(ShardMap::decode(trailing), DecodeError);
}

// Servant-side fencing: a stale router lands on the wrong group and is
// bounced with kWrongShard; a frozen range answers kFrozen until released.
TEST(ShardServantTest, FencesStaleRoutesAndFrozenRanges) {
  const std::string key = "user42";
  const std::uint32_t h = shard_hash(key);
  // Owns only the half NOT containing the key.
  KeyRange other = h < 0x80000000u ? KeyRange{0x80000000u, 0xffffffffu}
                                   : KeyRange{0u, 0x7fffffffu};
  ShardServant wrong(ShardServant::Config{}, {other}, 1);
  const std::string value = "v";
  auto result = wrong.invoke("put", ShardServant::encode_data_args(1, key, &value));
  EXPECT_EQ(ShardServant::decode_data_reply(result.output).status,
            ShardStatus::kWrongShard);

  ShardServant owner(ShardServant::Config{}, {{0u, 0xffffffffu}}, 1);
  result = owner.invoke("put", ShardServant::encode_data_args(1, key, &value));
  EXPECT_EQ(ShardServant::decode_data_reply(result.output).status, ShardStatus::kOk);

  // Freeze the sub-range around the key: mid-donation requests bounce.
  orb::CdrWriter w;
  w.ulonglong(1);  // migration id
  w.ulong(h);      // lo
  w.ulong(h);      // hi
  w.ulonglong(2);  // post_epoch
  w.ulonglong(99); // target group
  auto freeze_reply = owner.invoke("shard.freeze", std::move(w).take());
  orb::CdrReader fr(freeze_reply.output);  // control replies carry status only
  ASSERT_EQ(static_cast<ShardStatus>(fr.ulong()), ShardStatus::kOk);
  result = owner.invoke("put", ShardServant::encode_data_args(1, key, &value));
  EXPECT_EQ(ShardServant::decode_data_reply(result.output).status,
            ShardStatus::kFrozen);
}

// Directory-side fencing: a commit must continue the epoch chain exactly;
// anything else is kStaleEpoch and the map in force does not change.
TEST(DirectoryServantTest, CommitRequiresNextEpoch) {
  const ShardMap initial = ShardMap::uniform(2, 10, test_policy());
  DirectoryServant dir(initial);

  const ShardMap next =
      initial.split(0, initial.entries().front().range.hi, GroupId{50}, test_policy());
  ASSERT_EQ(next.epoch(), initial.epoch() + 1);

  // Skipping an epoch (or replaying an old one) is rejected.
  const ShardMap skipped = next.split(
      next.entries().front().shard, next.entries().front().range.hi,
      GroupId{51}, test_policy());
  auto reply = dir.invoke("dir.commit", DirectoryServant::encode_commit(skipped));
  EXPECT_EQ(DirectoryServant::decode_commit_reply(reply.output),
            ShardStatus::kStaleEpoch);
  EXPECT_EQ(dir.map().epoch(), initial.epoch());

  reply = dir.invoke("dir.commit", DirectoryServant::encode_commit(next));
  EXPECT_EQ(DirectoryServant::decode_commit_reply(reply.output), ShardStatus::kOk);
  EXPECT_EQ(dir.map().epoch(), next.epoch());

  // A retransmitted commit of the map already in force is accepted
  // idempotently (the coordinator's retry path), but a *different* map at
  // the same epoch lost the reconfiguration race.
  reply = dir.invoke("dir.commit", DirectoryServant::encode_commit(next));
  EXPECT_EQ(DirectoryServant::decode_commit_reply(reply.output), ShardStatus::kOk);
  const ShardMap rival = initial.split(
      0, initial.entries().front().range.hi, GroupId{77}, test_policy());
  reply = dir.invoke("dir.commit", DirectoryServant::encode_commit(rival));
  EXPECT_EQ(DirectoryServant::decode_commit_reply(reply.output),
            ShardStatus::kStaleEpoch);

  // dir.get returns the committed map.
  reply = dir.invoke("dir.get", {});
  const auto got = DirectoryServant::decode_get_reply(reply.output);
  EXPECT_EQ(got.status, ShardStatus::kOk);
  EXPECT_EQ(got.map, next);
}

}  // namespace
}  // namespace vdep::shard
