// Failure injection: crash the responder (and others) mid-cycle under every
// style and verify the paper's recovery stories — active continues
// seamlessly, warm passive replays its log, cold passive launches a dormant
// backup — with exactly-once application semantics throughout.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

using replication::ReplicationStyle;

struct FailoverCase {
  ReplicationStyle style;
  const char* name;
};

class FailoverTest : public ::testing::TestWithParam<FailoverCase> {};

TEST_P(FailoverTest, PrimaryCrashMidCycleStillCompletesExactlyOnce) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = GetParam().style;
  Scenario scenario(config);

  // Crash the initial responder (lowest-rank replica) mid-run.
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 700;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 1440u);
  EXPECT_EQ(scenario.live_replicas(), 2);
  EXPECT_EQ(result.faults_tolerated, 1);

  // Exactly-once despite the failover: the surviving responder's counter is
  // exactly the number of unique requests (replay skipped nothing and
  // double-applied nothing — the reply cache travels in checkpoints).
  EXPECT_EQ(scenario.servant(1).counter(), 1440u)
      << "style " << GetParam().name;

  if (GetParam().style == ReplicationStyle::kActive ||
      GetParam().style == ReplicationStyle::kSemiActive) {
    // Both survivors executed everything and agree.
    EXPECT_EQ(scenario.servant(2).counter(), 1440u);
    scenario.drain();
  auto digests = scenario.live_state_digests();
    ASSERT_EQ(digests.size(), 2u);
    EXPECT_EQ(digests[0], digests[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStyles, FailoverTest,
    ::testing::Values(FailoverCase{ReplicationStyle::kActive, "active"},
                      FailoverCase{ReplicationStyle::kSemiActive, "semi_active"},
                      FailoverCase{ReplicationStyle::kWarmPassive, "warm_passive"},
                      FailoverCase{ReplicationStyle::kColdPassive, "cold_passive"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Failover, ActiveAbsorbsCrashWithoutRetransmissions) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 820u);
  // Other replicas were already replying: the client never had to retry.
  EXPECT_EQ(result.retransmissions, 0u);
}

TEST(Failover, WarmPassiveRecoveryGapVisibleButBounded) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 600;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 620u);
  // The request in flight at the crash needed a retransmission after the
  // backup promoted; its latency is the client-visible recovery gap.
  EXPECT_GE(result.max_latency_us, 10000.0);
  EXPECT_LT(result.max_latency_us, 2e6);
}

TEST(Failover, ColdPassivePaysLaunchDelay) {
  ScenarioConfig warm_config;
  warm_config.clients = 1;
  warm_config.replicas = 2;
  warm_config.max_replicas = 2;
  warm_config.style = ReplicationStyle::kWarmPassive;
  Scenario warm(warm_config);
  warm.fault_plan().crash_process(sec(1), warm.replica_pid(0));

  ScenarioConfig cold_config = warm_config;
  cold_config.style = ReplicationStyle::kColdPassive;
  Scenario cold(cold_config);
  cold.fault_plan().crash_process(sec(1), cold.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 500;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto rw = warm.run_closed_loop(cycle);
  const auto rc = cold.run_closed_loop(cycle);
  EXPECT_EQ(rw.completed, 520u);
  EXPECT_EQ(rc.completed, 520u);
  // Cold recovery adds the launch delay on top of warm's replay.
  EXPECT_GT(rc.max_latency_us, rw.max_latency_us + 0.5 * to_usec(msec(800)));
}

TEST(Failover, NodeCrashDetectedByHeartbeats) {
  // Killing the whole machine (daemon included) exercises the slow,
  // heartbeat-timeout detection path instead of local crash reporting.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.fault_plan().crash_node(sec(1), scenario.replica_host(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 600;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 620u);
  EXPECT_EQ(scenario.servant(1).counter(), 620u);
  // Detection took at least the heartbeat timeout.
  EXPECT_GE(result.max_latency_us,
            to_usec(calib::kDefaultHeartbeatInterval * calib::kDefaultHeartbeatMisses));
}

TEST(Failover, TwoSequentialCrashesWithThreeReplicas) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));
  scenario.fault_plan().crash_process(sec(2), scenario.replica_pid(1));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 1200;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(240);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 1220u);
  EXPECT_EQ(scenario.live_replicas(), 1);
  EXPECT_EQ(scenario.servant(2).counter(), 1220u);
}

TEST(Failover, ReplicaGrowthWithStateTransfer) {
  // The NumReplicas knob: grow 1 -> 3 mid-run; joiners converge via the
  // checkpoint state transfer and the group then tolerates their crashes.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 1;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);

  scenario.kernel().post_at(sec(1), [&] { scenario.set_replica_count(3); });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 820u);
  EXPECT_EQ(scenario.live_replicas(), 3);

  scenario.drain();
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(Failover, ReplicaShrinkGraceful) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);
  scenario.kernel().post_at(sec(1), [&] { scenario.set_replica_count(1); });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 600;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 620u);
  EXPECT_EQ(scenario.live_replicas(), 1);
  EXPECT_EQ(result.retransmissions, 0u);  // graceful leave loses nothing
}

TEST(Failover, PerformanceFaultDegradesButDoesNotBreak) {
  // Paper fault model: performance/timing faults. The primary's machine
  // runs 5x slower for a second; latency spikes, nothing is lost, and no
  // false failover occurs (heartbeats are CPU-load immune).
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.fault_plan().slow_host(sec(1), sec(2), scenario.replica_host(0), 5.0);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 820u);
  EXPECT_EQ(scenario.live_replicas(), 2);       // nobody got expelled
  EXPECT_GT(result.max_latency_us, 8000.0);     // the fault was visible
  EXPECT_EQ(scenario.servant(0).counter(), 820u);
}

TEST(Failover, TransientLossBurstSurvived) {
  // The paper's "transient communication faults": a lossy window between the
  // client's host and the primary's host.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);
  scenario.fault_plan().loss_burst(sec(1), sec(2), NodeId{0}, scenario.replica_host(0),
                                   0.4);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 820u);
  scenario.drain();
  auto digests = scenario.live_state_digests();
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace vdep::harness
