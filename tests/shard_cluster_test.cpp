// End-to-end sharded cluster: routed workloads across many groups, online
// splits with in-flight clients, stale-map retry, and per-shard knobs.
#include <gtest/gtest.h>

#include "chaos/history.hpp"
#include "shard/cluster.hpp"

namespace vdep::shard {
namespace {

ShardedClusterConfig small_cluster(int shards) {
  ShardedClusterConfig cc;
  cc.seed = 7;
  cc.shards = shards;
  cc.clients = 2;
  cc.client_hosts = 2;
  cc.server_hosts = 4;
  return cc;
}

TEST(ShardClusterTest, WorkloadRoutesAcrossShardsAndStaysOwned) {
  ShardedCluster cluster(small_cluster(4));
  ShardedCluster::WorkloadConfig wc;
  wc.ops_per_client = 40;
  const auto result = cluster.run_workload(wc);

  EXPECT_TRUE(result.all_done);
  EXPECT_EQ(result.completed, 80u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.throughput_rps, 0.0);

  // Every live replica holds only keys it owns, and at least two shards saw
  // traffic (the workload key space straddles the hash ring).
  int shards_hit = 0;
  for (GroupId g : cluster.data_groups()) {
    ASSERT_GT(cluster.replicas_in(g), 0);
    ASSERT_TRUE(cluster.replica_live(g, 0));
    EXPECT_EQ(cluster.shard_servant(g, 0).stray_keys(), 0u);
    if (!cluster.shard_servant(g, 0).store().items().empty()) ++shards_hit;
  }
  EXPECT_GE(shards_hit, 2);
  // Per-shard request counters were populated.
  std::uint64_t routed = 0;
  for (const auto& e : cluster.initial_map().entries()) {
    routed += cluster.metrics().counter("shard." + std::to_string(e.shard) +
                                        ".requests");
  }
  EXPECT_GE(routed, result.completed);  // >=: route retries count too
  EXPECT_GT(cluster.router(0).routed(), 0u);
}

TEST(ShardClusterTest, OnlineSplitMovesKeysExactlyOnce) {
  ShardedCluster cluster(small_cluster(2));

  // Seed a known key, then split its shard right at the key's hash while a
  // workload is in flight: the upper side (containing the key) moves.
  const std::string key = "moving-key";
  const std::uint32_t h = shard_hash(key);
  const ShardEntry before = *cluster.initial_map().lookup(h);

  bool seeded = false;
  cluster.kernel().post_at(msec(250), [&] {
    cluster.router(0).put(key, "v1", [&](ShardStatus status, const Bytes&) {
      seeded = status == ShardStatus::kOk;
    });
  });

  const std::uint32_t split_point = std::max(h, before.range.lo + 1);
  bool migrated = false;
  cluster.kernel().post_at(msec(450), [&] {
    ShardPolicy policy = cluster.config().default_policy;
    cluster.split_shard(before.shard, split_point, policy,
                        [&](const MigrationController::Record& rec) {
                          migrated = rec.success;
                        });
  });

  ShardedCluster::WorkloadConfig wc;
  wc.ops_per_client = 40;
  const auto result = cluster.run_workload(wc);
  for (int i = 0; i < 10 && !cluster.migration().idle(); ++i) cluster.drain(msec(500));
  cluster.drain();

  EXPECT_TRUE(result.all_done);
  ASSERT_TRUE(seeded);
  ASSERT_TRUE(migrated);

  const ShardMap& map = cluster.directory_map();
  EXPECT_EQ(map.epoch(), cluster.initial_map().epoch() + 1);
  std::string why;
  EXPECT_TRUE(map.validate(&why)) << why;

  // The key now lives at the new owner — and only there.
  const ShardEntry* owner = map.lookup(h);
  ASSERT_NE(owner, nullptr);
  EXPECT_NE(owner->group, before.group);
  int holders = 0;
  for (GroupId g : cluster.data_groups()) {
    if (!cluster.replica_live(g, 0)) continue;
    auto& servant = cluster.shard_servant(g, 0);
    EXPECT_EQ(servant.stray_keys(), 0u) << "group " << g.value();
    EXPECT_FALSE(servant.frozen());
    if (servant.store().lookup(key)) {
      ++holders;
      EXPECT_EQ(g, owner->group);
    }
  }
  EXPECT_EQ(holders, 1);
  EXPECT_GT(cluster.migration().bytes_moved_total(), 0u);
}

// A router still holding the pre-split map routes a moved key to the old
// owner, is bounced kWrongShard, refreshes the directory and retries — the
// epoch-fenced retry loop of the shard protocol.
TEST(ShardClusterTest, StaleRouterRefreshesAndRetries) {
  ShardedCluster cluster(small_cluster(2));

  const std::string key = "fenced-key";
  const std::uint32_t h = shard_hash(key);
  const ShardEntry before = *cluster.initial_map().lookup(h);

  bool migrated = false;
  cluster.kernel().post_at(msec(300), [&] {
    cluster.split_shard(before.shard, std::max(h, before.range.lo + 1),
                        cluster.config().default_policy,
                        [&](const MigrationController::Record& rec) {
                          migrated = rec.success;
                        });
  });
  cluster.kernel().run_until(sec(5));
  for (int i = 0; i < 10 && !cluster.migration().idle(); ++i) cluster.drain(msec(500));
  ASSERT_TRUE(migrated);

  // Router 0 never issued a request, so its cached map is still epoch 1.
  auto& router = cluster.router(0);
  ASSERT_EQ(router.map_epoch(), cluster.initial_map().epoch());

  ShardStatus status = ShardStatus::kBadRequest;
  bool done = false;
  router.put(key, "v2", [&](ShardStatus s, const Bytes&) {
    status = s;
    done = true;
  });
  cluster.drain(sec(2));

  ASSERT_TRUE(done);
  EXPECT_EQ(status, ShardStatus::kOk);
  EXPECT_GT(router.stale_rejections(), 0u);  // bounced at least once
  EXPECT_GT(router.refreshes(), 0u);
  EXPECT_EQ(router.map_epoch(), cluster.initial_map().epoch() + 1);
}

// Per-shard policy actuation: each shard's group has its own knob stack, so
// one shard can switch replication style while the others keep theirs.
TEST(ShardClusterTest, PerShardKnobsActuateIndependently) {
  auto cc = small_cluster(2);
  cc.default_policy.style =
      static_cast<std::uint8_t>(replication::ReplicationStyle::kWarmPassive);
  ShardedCluster cluster(cc);
  cluster.kernel().run_until(msec(300));  // let groups form

  const auto groups = cluster.data_groups();
  ASSERT_EQ(groups.size(), 2u);
  auto& controller = cluster.controller(groups[0]);
  controller.set_style(replication::ReplicationStyle::kActive);
  cluster.drain(sec(1));

  EXPECT_EQ(cluster.replicator(groups[0], 0).style(),
            replication::ReplicationStyle::kActive);
  EXPECT_EQ(cluster.replicator(groups[1], 0).style(),
            replication::ReplicationStyle::kWarmPassive);
}

}  // namespace
}  // namespace vdep::shard
