#include <gtest/gtest.h>

#include "sim/cpu.hpp"

namespace vdep::sim {
namespace {

TEST(Cpu, SerializesWorkFifo) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  std::vector<std::pair<int, SimTime>> done;
  cpu.execute(usec(10), [&] { done.push_back({1, k.now()}); });
  cpu.execute(usec(5), [&] { done.push_back({2, k.now()}); });
  k.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 1);
  EXPECT_EQ(done[0].second, usec(10));
  EXPECT_EQ(done[1].first, 2);
  EXPECT_EQ(done[1].second, usec(15));  // queued behind the first job
}

TEST(Cpu, IdleGapsDoNotAccumulate) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  SimTime completed = kTimeZero;
  k.post(usec(100), [&] {
    cpu.execute(usec(10), [&] { completed = k.now(); });
  });
  k.run();
  EXPECT_EQ(completed, usec(110));  // starts at 100, not at backlog of 0
}

TEST(Cpu, BacklogReflectsQueuedWork) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  cpu.execute(usec(30), [] {});
  cpu.execute(usec(20), [] {});
  EXPECT_EQ(cpu.backlog(), usec(50));
  k.run_until(usec(30));
  EXPECT_EQ(cpu.backlog(), usec(20));
}

TEST(Cpu, UtilizationTracksBusyFraction) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  cpu.execute(usec(50), [] {});
  k.run_until(usec(100));
  EXPECT_NEAR(cpu.utilization(), 0.5, 1e-9);
}

TEST(Cpu, LoadSinceLastSampleWindows) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  cpu.execute(usec(10), [] {});
  k.run_until(usec(100));
  EXPECT_NEAR(cpu.load_since_last_sample(), 0.1, 1e-9);
  // Second window: idle.
  k.run_until(usec(200));
  EXPECT_NEAR(cpu.load_since_last_sample(), 0.0, 1e-9);
}

TEST(Cpu, JobsCompletedCounts) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  for (int i = 0; i < 5; ++i) cpu.execute(usec(1), [] {});
  k.run();
  EXPECT_EQ(cpu.jobs_completed(), 5u);
}

TEST(Cpu, SlowdownStretchesWork) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  cpu.set_slowdown(3.0);
  SimTime done = kTimeZero;
  cpu.execute(usec(10), [&] { done = k.now(); });
  k.run();
  EXPECT_EQ(done, usec(30));
  // Restoring nominal speed affects only subsequent work.
  cpu.set_slowdown(1.0);
  cpu.execute(usec(10), [&] { done = k.now(); });
  k.run();
  EXPECT_EQ(done, usec(40));
}

TEST(Cpu, ZeroDurationWorkCompletesImmediately) {
  Kernel k(1);
  Cpu cpu(k, NodeId{0});
  bool done = false;
  cpu.execute(kTimeZero, [&] { done = true; });
  k.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(k.now(), kTimeZero);
}

}  // namespace
}  // namespace vdep::sim
