#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace vdep {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Sampler, Percentiles) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(Sampler, MergeCombinesSamples) {
  Sampler a;
  Sampler b;
  a.add(1);
  a.add(2);
  b.add(3);
  b.add(4);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.percentile(100), 4.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bucket 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(LogHistogram, CountsMomentsAndRange) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
}

TEST(LogHistogram, PercentileNearestRankWithinOneSubBucket) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // Bucket lower bounds are exact to within one sub-bucket (2^(1/16) ~ 4.4%).
  EXPECT_NEAR(h.percentile(50), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.percentile(95), 950.0, 950.0 * 0.05);
  EXPECT_NEAR(h.percentile(99), 990.0, 990.0 * 0.05);
  // Extremes clamp to the observed range exactly.
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(LogHistogram, PointMassIsExact) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(1), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 42.0);
}

TEST(LogHistogram, BucketIndexIsMonotone) {
  double prev = 0.0;
  std::size_t prev_index = 0;
  for (double v = 1e-6; v < 1e6; v *= 1.3) {
    const std::size_t index = LogHistogram::bucket_index(v);
    EXPECT_GE(index, prev_index) << "regressed at " << v << " from " << prev;
    EXPECT_LE(LogHistogram::bucket_lower_bound(index), v * (1 + 1e-12));
    prev = v;
    prev_index = index;
  }
}

TEST(LogHistogram, MergeMatchesCombined) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  for (int i = 1; i <= 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 51; i <= 100; ++i) {
    b.add(i);
    all.add(i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.percentile(50), all.percentile(50));
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(LogHistogram, MergeEmptyEdges) {
  LogHistogram empty;
  LogHistogram other;
  empty.merge(other);  // empty + empty stays empty
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  LogHistogram h;
  for (double v : {3.0, 7.0, 11.0}) h.add(v);
  h.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 11.0);

  empty.merge(h);  // empty absorbs the other side's exact range
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.min(), 3.0);
  EXPECT_DOUBLE_EQ(empty.max(), 11.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50), h.percentile(50));
}

TEST(LogHistogram, SingleBucketMergeStaysExact) {
  // Point masses occupy one bucket each; the merged histogram must keep
  // their exact values at the extremes (min/max are tracked exactly).
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 10; ++i) a.add(42.0);
  for (int i = 0; i < 10; ++i) b.add(42.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_DOUBLE_EQ(a.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 42.0);
}

TEST(LogHistogram, ExactP100AfterMerge) {
  LogHistogram low;
  LogHistogram high;
  for (int i = 1; i <= 100; ++i) low.add(static_cast<double>(i));
  high.add(54321.0);
  low.merge(high);
  EXPECT_DOUBLE_EQ(low.percentile(100), 54321.0);
  EXPECT_DOUBLE_EQ(low.percentile(0), 1.0);
}

TEST(LogHistogram, DeltaSinceIsolatesNewSamples) {
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  const LogHistogram earlier = h;
  for (int i = 0; i < 50; ++i) h.add(1000.0);

  const LogHistogram delta = h.delta_since(earlier);
  EXPECT_EQ(delta.count(), 50u);
  // The delta is a point mass at 1000 up to bucket resolution, tightened by
  // the lifetime max (exactly 1000).
  EXPECT_NEAR(delta.percentile(50), 1000.0, 1000.0 * 0.05);
  EXPECT_DOUBLE_EQ(delta.max(), 1000.0);
  EXPECT_GE(delta.min(), 1000.0 / 1.05);

  // Nothing new since the copy: the delta is empty.
  const LogHistogram none = h.delta_since(h);
  EXPECT_EQ(none.count(), 0u);
}

TEST(SlidingRate, WindowedRate) {
  SlidingRate rate(msec(100));
  for (int i = 0; i < 10; ++i) rate.record(msec(i * 10));
  // 10 events in the 100 ms window ending at 95 ms.
  EXPECT_NEAR(rate.rate(msec(95)), 100.0, 1.0);
  // Much later, everything evicted.
  EXPECT_DOUBLE_EQ(rate.rate(msec(500)), 0.0);
}

TEST(SlidingRate, EvictsOldEvents) {
  SlidingRate rate(msec(50));
  rate.record(msec(0));
  rate.record(msec(10));
  rate.record(msec(60));
  // Window (10, 60]: events at 60 only? 10 <= 60-50 evicted, 0 evicted.
  EXPECT_NEAR(rate.rate(msec(60)), 20.0, 0.1);
}

TEST(Ewma, SmoothsTowardSignal) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

}  // namespace
}  // namespace vdep
