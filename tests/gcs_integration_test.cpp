// System-level tests of the group-communication subsystem: real daemons over
// the simulated network, exercising total order, view synchrony, SAFE
// delivery, private messages, failure detection and leader takeover.
#include <gtest/gtest.h>

#include "gcs/endpoint.hpp"

namespace vdep::gcs {
namespace {

const GroupId kGroup{1};

struct Member_ {
  std::unique_ptr<sim::Process> process;
  std::unique_ptr<Endpoint> endpoint;
  std::vector<std::string> delivered;   // rendered delivery log
  std::vector<View> views;
  std::vector<PrivateMessage> privates;
};

struct World {
  void build(int hosts, std::uint64_t seed = 1, DaemonParams params = {}) {
    kernel = std::make_unique<sim::Kernel>(seed);
    network = std::make_unique<net::Network>(*kernel);
    std::vector<NodeId> host_ids;
    for (int i = 0; i < hosts; ++i) {
      host_ids.push_back(network->add_host("h" + std::to_string(i)));
    }
    for (NodeId h : host_ids) {
      daemons.push_back(std::make_unique<Daemon>(*kernel, *network,
                                                 ProcessId{100 + h.value()}, h,
                                                 host_ids, params));
    }
    for (auto& d : daemons) d->boot();
  }

  // Creates a process + endpoint on the given host.
  Member_& add_member(NodeId host, std::uint64_t pid) {
    auto m = std::make_unique<Member_>();
    m->process = std::make_unique<sim::Process>(*kernel, ProcessId{pid}, host,
                                                "m" + std::to_string(pid));
    m->endpoint = std::make_unique<Endpoint>(*daemons[host.value()], *m->process);
    Member_* raw = m.get();
    m->endpoint->set_message_handler([raw](const GroupMessage& gm) {
      raw->delivered.push_back("msg:" + std::to_string(gm.sender.value()) + ":" +
                               std::string(gm.payload.begin(), gm.payload.end()));
    });
    m->endpoint->set_view_handler([raw](const View& v) {
      raw->views.push_back(v);
      raw->delivered.push_back("view:" + std::to_string(v.view_id) + ":" +
                               std::to_string(v.size()));
    });
    m->endpoint->set_private_handler(
        [raw](const PrivateMessage& pm) { raw->privates.push_back(pm); });
    members.push_back(std::move(m));
    return *members.back();
  }

  static Bytes text(const std::string& s) { return Bytes(s.begin(), s.end()); }

  // Members that joined at different times legitimately see different view
  // prefixes; data-message streams must still agree exactly.
  static std::vector<std::string> msgs_only(const std::vector<std::string>& log) {
    std::vector<std::string> out;
    for (const auto& e : log) {
      if (e.rfind("msg:", 0) == 0) out.push_back(e);
    }
    return out;
  }

  // Number of data messages delivered before the first view of the given
  // view id — the order-position of that membership change.
  static int msgs_before_view(const std::vector<std::string>& log,
                              std::uint64_t view_id) {
    int count = 0;
    const std::string needle = "view:" + std::to_string(view_id) + ":";
    for (const auto& e : log) {
      if (e.rfind(needle, 0) == 0) return count;
      if (e.rfind("msg:", 0) == 0) ++count;
    }
    return -1;
  }

  std::unique_ptr<sim::Kernel> kernel;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<Daemon>> daemons;
  std::vector<std::unique_ptr<Member_>> members;
};

struct GcsFixture : ::testing::Test, World {};

TEST_F(GcsFixture, JoinDeliversViewToMember) {
  build(2);
  auto& m = add_member(NodeId{1}, 10);
  m.endpoint->join(kGroup);
  kernel->run_until(msec(50));
  ASSERT_EQ(m.views.size(), 1u);
  EXPECT_EQ(m.views[0].view_id, 1u);
  EXPECT_TRUE(m.views[0].contains(ProcessId{10}));
}

TEST_F(GcsFixture, TotalOrderAcrossMembersOnDifferentHosts) {
  build(3);
  auto& m1 = add_member(NodeId{1}, 10);
  auto& m2 = add_member(NodeId{2}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  // Both fire concurrently; all members must deliver identically.
  for (int i = 0; i < 10; ++i) {
    m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text("a" + std::to_string(i)));
    m2.endpoint->multicast(kGroup, ServiceType::kAgreed, text("b" + std::to_string(i)));
  }
  kernel->run_until(msec(200));

  EXPECT_EQ(msgs_only(m1.delivered), msgs_only(m2.delivered));
  EXPECT_EQ(msgs_only(m1.delivered).size(), 20u);
}

TEST_F(GcsFixture, SenderFifoPreserved) {
  build(2);
  auto& m1 = add_member(NodeId{0}, 10);
  auto& m2 = add_member(NodeId{1}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));
  for (int i = 0; i < 20; ++i) {
    m1.endpoint->multicast(kGroup, ServiceType::kFifo, text(std::to_string(i)));
  }
  kernel->run_until(msec(300));
  std::vector<int> seen;
  for (const auto& d : m2.delivered) {
    if (d.rfind("msg:10:", 0) == 0) seen.push_back(std::stoi(d.substr(7)));
  }
  ASSERT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i);
}

TEST_F(GcsFixture, NonMemberCanMulticastIntoOpenGroup) {
  build(2);
  auto& server = add_member(NodeId{1}, 10);
  auto& client = add_member(NodeId{0}, 99);
  server.endpoint->join(kGroup);
  kernel->run_until(msec(50));
  client.endpoint->multicast(kGroup, ServiceType::kAgreed, text("req"));
  kernel->run_until(msec(100));
  ASSERT_FALSE(server.delivered.empty());
  EXPECT_EQ(server.delivered.back(), "msg:99:req");
  // The client, not being a member, receives nothing.
  for (const auto& d : client.delivered) EXPECT_EQ(d.rfind("msg:", 0), std::string::npos);
}

TEST_F(GcsFixture, PrivateMessagesReliableFifo) {
  build(2);
  auto& m1 = add_member(NodeId{0}, 10);
  auto& m2 = add_member(NodeId{1}, 20);
  net::LinkParams lossy;
  lossy.loss_probability = 0.3;
  network->set_link_params(NodeId{0}, NodeId{1}, lossy);

  for (int i = 0; i < 20; ++i) {
    m1.endpoint->unicast(ProcessId{20}, NodeId{1}, text(std::to_string(i)));
  }
  kernel->run_until(msec(500));
  ASSERT_EQ(m2.privates.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(std::string(m2.privates[i].payload.begin(), m2.privates[i].payload.end()),
              std::to_string(i));
    EXPECT_EQ(m2.privates[i].sender, ProcessId{10});
  }
  EXPECT_TRUE(m1.privates.empty());
}

TEST_F(GcsFixture, ProcessCrashProducesOrderedViewChange) {
  build(3);
  auto& m1 = add_member(NodeId{1}, 10);
  auto& m2 = add_member(NodeId{2}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  kernel->post(msec(10), [&] { m1.process->crash(); });
  kernel->run_until(msec(200));

  ASSERT_GE(m2.views.size(), 2u);
  const View& last = m2.views.back();
  EXPECT_FALSE(last.contains(ProcessId{10}));
  EXPECT_TRUE(last.contains(ProcessId{20}));
  EXPECT_EQ(last.size(), 1u);
}

TEST_F(GcsFixture, MessagesOrderedConsistentlyWithViewChanges) {
  // The property the switch protocol needs: every survivor sees the same
  // sequence of messages and views.
  build(3);
  auto& m1 = add_member(NodeId{0}, 10);
  auto& m2 = add_member(NodeId{1}, 20);
  auto& m3 = add_member(NodeId{2}, 30);
  for (auto* m : {&m1, &m2, &m3}) m->endpoint->join(kGroup);
  kernel->run_until(msec(50));

  for (int i = 0; i < 30; ++i) {
    m2.endpoint->multicast(kGroup, ServiceType::kAgreed, text("x" + std::to_string(i)));
    if (i == 10) kernel->post(kTimeZero, [&] { m1.process->crash(); });
  }
  kernel->run_until(msec(500));

  // Survivors agree on the data stream and on *where* in it the crash view
  // landed — the "fault notifications are ordered consistently" property.
  EXPECT_EQ(msgs_only(m2.delivered), msgs_only(m3.delivered));
  std::uint64_t shrink_view_id = 0;
  for (const auto& v : m2.views) {
    if (!v.contains(ProcessId{10})) {
      shrink_view_id = v.view_id;
      break;
    }
  }
  ASSERT_GT(shrink_view_id, 0u);
  const int at2 = msgs_before_view(m2.delivered, shrink_view_id);
  const int at3 = msgs_before_view(m3.delivered, shrink_view_id);
  EXPECT_GE(at2, 0);
  EXPECT_EQ(at2, at3);
}

TEST_F(GcsFixture, SafeDeliveryWaitsButArrives) {
  build(3);
  auto& m1 = add_member(NodeId{1}, 10);
  auto& m2 = add_member(NodeId{2}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));
  m1.endpoint->multicast(kGroup, ServiceType::kSafe, text("safe"));
  kernel->run_until(msec(200));  // token rotations establish stability
  int safe_count = 0;
  for (const auto& d : m2.delivered) {
    if (d == "msg:10:safe") ++safe_count;
  }
  EXPECT_EQ(safe_count, 1);
  // Order agreement includes the safe message.
  EXPECT_EQ(msgs_only(m1.delivered), msgs_only(m2.delivered));
}

TEST_F(GcsFixture, LeaderDaemonCrashTakeoverPreservesDelivery) {
  // Host 0 runs the initial leader; members live on hosts 1 and 2. Killing
  // the leader mid-stream must not lose or reorder the survivors' stream.
  build(3);
  auto& m1 = add_member(NodeId{1}, 10);
  auto& m2 = add_member(NodeId{2}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  for (int i = 0; i < 5; ++i) {
    m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text("pre" + std::to_string(i)));
  }
  kernel->post(msec(30), [&] {
    network->set_host_up(NodeId{0}, false);
    daemons[0]->crash();
  });
  // After detection + takeover, send more.
  kernel->post(msec(400), [&] {
    for (int i = 0; i < 5; ++i) {
      m1.endpoint->multicast(kGroup, ServiceType::kAgreed,
                             text("post" + std::to_string(i)));
    }
  });
  kernel->run_until(sec(2));

  EXPECT_TRUE(daemons[1]->is_leader());
  EXPECT_EQ(msgs_only(m1.delivered), msgs_only(m2.delivered));
  int post = 0;
  for (const auto& d : m1.delivered) {
    if (d.rfind("msg:10:post", 0) == 0) ++post;
  }
  EXPECT_EQ(post, 5);
}

TEST_F(GcsFixture, MultipleGroupsAreIsolated) {
  // One process can belong to several groups (a replicator's app group and
  // its monitor group); traffic must not leak across them.
  build(2);
  auto& m1 = add_member(NodeId{0}, 10);
  auto& m2 = add_member(NodeId{1}, 20);
  const GroupId other{2};
  m1.endpoint->join(kGroup);
  m1.endpoint->join(other);
  m2.endpoint->join(kGroup);  // m2 is NOT in `other`
  kernel->run_until(msec(50));

  m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text("app"));
  m1.endpoint->multicast(other, ServiceType::kAgreed, text("monitor"));
  kernel->run_until(msec(100));

  int app2 = 0;
  int monitor2 = 0;
  for (const auto& d : m2.delivered) {
    if (d == "msg:10:app") ++app2;
    if (d == "msg:10:monitor") ++monitor2;
  }
  EXPECT_EQ(app2, 1);
  EXPECT_EQ(monitor2, 0);
  // m1, a member of both, received both.
  int app1 = 0;
  int monitor1 = 0;
  for (const auto& d : m1.delivered) {
    if (d == "msg:10:app") ++app1;
    if (d == "msg:10:monitor") ++monitor1;
  }
  EXPECT_EQ(app1, 1);
  EXPECT_EQ(monitor1, 1);
}

TEST_F(GcsFixture, VoluntaryLeaveStopsDeliveryAndShrinksView) {
  build(2);
  auto& m1 = add_member(NodeId{0}, 10);
  auto& m2 = add_member(NodeId{1}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  m2.endpoint->leave(kGroup);
  kernel->run_until(msec(100));
  const std::size_t m2_before = m2.delivered.size();

  m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text("post-leave"));
  kernel->run_until(msec(200));

  // The leaver receives nothing further; the survivor sees the shrink view
  // and its own message.
  EXPECT_EQ(m2.delivered.size(), m2_before);
  ASSERT_FALSE(m1.views.empty());
  EXPECT_FALSE(m1.views.back().contains(ProcessId{20}));
  EXPECT_EQ(m1.delivered.back(), "msg:10:post-leave");
}

TEST_F(GcsFixture, SafeMessageSurvivesLeaderTakeoverExactlyOnce) {
  // The hairy path: a SAFE multicast is in flight (awaiting stability) when
  // the leader daemon dies. The new leader must replay the unstable history
  // and re-establish stability so the SAFE message is delivered exactly once
  // at every member, in the same order.
  build(3);
  auto& m1 = add_member(NodeId{1}, 10);
  auto& m2 = add_member(NodeId{2}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text("before"));
  kernel->run_until(msec(60));
  m1.endpoint->multicast(kGroup, ServiceType::kSafe, text("critical"));
  // Kill the leader right after the SAFE message was forwarded, well inside
  // the stability-token window.
  kernel->post(msec(2), [&] {
    network->set_host_up(NodeId{0}, false);
    daemons[0]->crash();
  });
  kernel->run_until(sec(2));

  for (auto* m : {&m1, &m2}) {
    int critical = 0;
    for (const auto& d : m->delivered) {
      if (d == "msg:10:critical") ++critical;
    }
    EXPECT_EQ(critical, 1);
  }
  EXPECT_EQ(msgs_only(m1.delivered), msgs_only(m2.delivered));
  EXPECT_TRUE(daemons[1]->is_leader());
}

TEST_F(GcsFixture, NodeCrashRemovesItsMemberViaHeartbeatTimeout) {
  build(3);
  auto& m1 = add_member(NodeId{1}, 10);
  auto& m2 = add_member(NodeId{2}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  kernel->post(msec(10), [&] {
    network->set_host_up(NodeId{1}, false);
    daemons[1]->crash();
    m1.process->crash();
  });
  kernel->run_until(sec(1));
  ASSERT_FALSE(m2.views.empty());
  EXPECT_FALSE(m2.views.back().contains(ProcessId{10}));
}

TEST_F(GcsFixture, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    World f;
    f.build(3, seed);
    auto& m1 = f.add_member(NodeId{1}, 10);
    auto& m2 = f.add_member(NodeId{2}, 20);
    m1.endpoint->join(kGroup);
    m2.endpoint->join(kGroup);
    f.kernel->run_until(msec(50));
    for (int i = 0; i < 10; ++i) {
      m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text(std::to_string(i)));
    }
    f.kernel->run_until(msec(300));
    return m2.delivered;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  // A different seed changes jitter (and thus view interleaving) but never
  // the data stream: same sender, same messages, same order.
  EXPECT_EQ(World::msgs_only(run_once(7)), World::msgs_only(run_once(8)));
}

TEST_F(GcsFixture, MulticastSurvivesTransientLossBurst) {
  build(2, 3);
  auto& m1 = add_member(NodeId{0}, 10);
  auto& m2 = add_member(NodeId{1}, 20);
  m1.endpoint->join(kGroup);
  m2.endpoint->join(kGroup);
  kernel->run_until(msec(50));

  net::LinkParams lossy;
  lossy.loss_probability = 0.5;
  network->set_link_params(NodeId{0}, NodeId{1}, lossy);
  network->set_link_params(NodeId{1}, NodeId{0}, lossy);

  for (int i = 0; i < 25; ++i) {
    m1.endpoint->multicast(kGroup, ServiceType::kAgreed, text(std::to_string(i)));
  }
  kernel->run_until(sec(1));
  EXPECT_EQ(msgs_only(m1.delivered), msgs_only(m2.delivered));
  int msgs = 0;
  for (const auto& d : m2.delivered) {
    if (d.rfind("msg:", 0) == 0) ++msgs;
  }
  EXPECT_EQ(msgs, 25);
}

}  // namespace
}  // namespace vdep::gcs
