#include <gtest/gtest.h>

#include "gcs/ordering.hpp"

namespace vdep::gcs {
namespace {

const GroupId kGroup{1};
const NodeId kSelf{0};

Ordered make_view_msg(std::uint64_t epoch, std::vector<ProcessId> members,
                      std::uint64_t prev_epoch_end = 0) {
  View v;
  v.group = kGroup;
  v.view_id = epoch;
  for (ProcessId p : members) v.members.push_back(Member{p, kSelf});
  Ordered o;
  o.group = kGroup;
  o.epoch = epoch;
  o.seq = 0;
  o.kind = Ordered::Kind::kView;
  o.payload = v.encode();
  o.prev_epoch_end = prev_epoch_end;
  return o;
}

Ordered make_data(std::uint64_t epoch, std::uint64_t seq,
                  ServiceType svc = ServiceType::kAgreed) {
  Ordered o;
  o.group = kGroup;
  o.epoch = epoch;
  o.seq = seq;
  o.kind = Ordered::Kind::kData;
  o.svc = svc;
  o.origin = OriginId{ProcessId{1}, seq};
  o.payload = filler_bytes(16);
  return o;
}

TEST(GroupReceiveBuffer, AnchorsOnFirstViewThenDeliversInOrder) {
  GroupReceiveBuffer buf(kGroup);
  EXPECT_FALSE(buf.anchored());

  (void)buf.offer(make_data(1, 2), kSelf);  // out of order, before the view
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.offer(make_data(1, 1), kSelf);

  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, Ordered::Kind::kView);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(out[2].seq, 2u);
  EXPECT_TRUE(buf.anchored());
  EXPECT_TRUE(buf.last_delivered_view().has_value());
}

TEST(GroupReceiveBuffer, GapsBlockDelivery) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.offer(make_data(1, 2), kSelf);  // gap at seq 1
  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 1u);  // just the view
  (void)buf.offer(make_data(1, 1), kSelf);
  out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
}

TEST(GroupReceiveBuffer, DuplicatesRejected) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  auto first = buf.offer(make_data(1, 1), kSelf);
  EXPECT_TRUE(first.accepted);
  auto dup = buf.offer(make_data(1, 1), kSelf);
  EXPECT_FALSE(dup.accepted);
  (void)buf.take_deliverable();
  auto late_dup = buf.offer(make_data(1, 1), kSelf);  // after delivery too
  EXPECT_FALSE(late_dup.accepted);
}

TEST(GroupReceiveBuffer, AcksAreCumulativePerEpoch) {
  GroupReceiveBuffer buf(kGroup);
  auto r0 = buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  ASSERT_TRUE(r0.ack.has_value());
  EXPECT_EQ(r0.ack->seq, 0u);  // contiguous through the view

  auto r2 = buf.offer(make_data(1, 2), kSelf);
  EXPECT_TRUE(r2.accepted);
  ASSERT_TRUE(r2.ack.has_value());
  EXPECT_EQ(r2.ack->seq, 0u);  // still gap at 1

  auto r1 = buf.offer(make_data(1, 1), kSelf);
  ASSERT_TRUE(r1.ack.has_value());
  EXPECT_EQ(r1.ack->seq, 2u);  // contiguity jumped to 2
}

TEST(GroupReceiveBuffer, SafeMessagesWaitForStability) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.offer(make_data(1, 1, ServiceType::kSafe), kSelf);
  (void)buf.offer(make_data(1, 2), kSelf);  // agreed, behind the safe one

  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 1u);  // only the view; SAFE gates the stream

  buf.set_stable(1, 2);  // counts: view + seq1 stable
  out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].svc, ServiceType::kSafe);
  EXPECT_EQ(out[1].seq, 2u);
}

TEST(GroupReceiveBuffer, EpochTransitionRequiresPrevEpochComplete) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.offer(make_data(1, 1), kSelf);
  // View 2 claims epoch 1 ended at seq 2 — seq 2 not yet received.
  (void)buf.offer(make_view_msg(2, {ProcessId{1}}, 2), kSelf);
  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 2u);  // view1 + seq1; blocked before view2
  (void)buf.offer(make_data(1, 2), kSelf);
  out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 2u);  // seq2 then view2
  EXPECT_EQ(out[0].seq, 2u);
  EXPECT_EQ(out[1].kind, Ordered::Kind::kView);
  EXPECT_EQ(buf.current_epoch(), 2u);
}

TEST(GroupReceiveBuffer, EmptyEpochTransition) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.take_deliverable();
  (void)buf.offer(make_view_msg(2, {ProcessId{1}}, 0), kSelf);  // epoch 1 had no data
  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].epoch, 2u);
}

TEST(GroupReceiveBuffer, LateAnchorIgnoresOlderEpochs) {
  GroupReceiveBuffer buf(kGroup);
  // A daemon that joined at epoch 3 receives a takeover replay including
  // older history; everything below the anchor is a duplicate by definition.
  (void)buf.offer(make_data(2, 1), kSelf);
  (void)buf.offer(make_view_msg(3, {ProcessId{1}}, 5), kSelf);
  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].epoch, 3u);
  auto old = buf.offer(make_data(2, 2), kSelf);
  EXPECT_FALSE(old.accepted);
}

TEST(GroupReceiveBuffer, BufferRetainedUntilStableThenCollected) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.offer(make_data(1, 1), kSelf);
  (void)buf.take_deliverable();
  // Delivered but not stable: still buffered for takeover replay.
  EXPECT_EQ(buf.snapshot_buffered().size(), 2u);
  buf.set_stable(1, 2);
  EXPECT_TRUE(buf.snapshot_buffered().empty());
}

TEST(GroupReceiveBuffer, CurrentAcksReflectAllEpochs) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  (void)buf.offer(make_data(1, 1), kSelf);
  (void)buf.offer(make_view_msg(2, {ProcessId{1}}, 1), kSelf);
  auto acks = buf.current_acks(kSelf);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[0].epoch, 1u);
  EXPECT_EQ(acks[0].seq, 1u);
  EXPECT_EQ(acks[1].epoch, 2u);
  EXPECT_EQ(acks[1].seq, 0u);
}

TEST(GroupReceiveBuffer, StabilityPiggybackOnDuplicatesStillApplies) {
  GroupReceiveBuffer buf(kGroup);
  (void)buf.offer(make_view_msg(1, {ProcessId{1}}), kSelf);
  auto safe = make_data(1, 1, ServiceType::kSafe);
  (void)buf.offer(safe, kSelf);
  (void)buf.take_deliverable();
  // A duplicate arrives later carrying a fresher stability watermark.
  safe.stable_upto = 2;
  auto r = buf.offer(safe, kSelf);
  EXPECT_FALSE(r.accepted);
  auto out = buf.take_deliverable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].svc, ServiceType::kSafe);
}

}  // namespace
}  // namespace vdep::gcs
