#include <gtest/gtest.h>

#include <set>

#include "adaptive/adaptation_manager.hpp"
#include "adaptive/contract.hpp"
#include "adaptive/policy.hpp"
#include "adaptive/switch_protocol.hpp"
#include "harness/scenario.hpp"

namespace vdep::adaptive {
namespace {

using replication::ReplicationStyle;

TEST(RateThresholdPolicy, SwitchesUpAndDownWithHysteresis) {
  RateThresholdPolicy::Config config;
  config.low_rate = 300;
  config.high_rate = 600;
  config.min_dwell = msec(100);
  RateThresholdPolicy policy(config);

  Signals s;
  s.now = msec(0);
  s.request_rate = 450;  // between thresholds: no opinion
  EXPECT_FALSE(policy.evaluate(s).has_value());

  s.now = msec(10);
  s.request_rate = 700;
  auto up = policy.evaluate(s);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(*up, ReplicationStyle::kActive);

  // Still high: no repeated advice.
  s.now = msec(200);
  EXPECT_FALSE(policy.evaluate(s).has_value());

  s.now = msec(400);
  s.request_rate = 100;
  auto down = policy.evaluate(s);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(*down, ReplicationStyle::kWarmPassive);
}

TEST(ModePolicy, FollowsModeChanges) {
  ModePolicy policy;
  Signals s;
  EXPECT_EQ(policy.evaluate(s), ReplicationStyle::kWarmPassive);
  policy.set_mode(ModePolicy::Mode::kMissionCritical);
  EXPECT_EQ(policy.evaluate(s), ReplicationStyle::kActive);
}

TEST(Contract, SatisfactionBounds) {
  Contract c;
  c.max_latency_us = 7000;
  c.max_bandwidth_mbps = 3.0;
  c.min_faults_tolerated = 1;
  EXPECT_TRUE(c.satisfied_by(5000, 2.0, 2));
  EXPECT_FALSE(c.satisfied_by(8000, 2.0, 2));   // latency
  EXPECT_FALSE(c.satisfied_by(5000, 3.5, 2));   // bandwidth
  EXPECT_FALSE(c.satisfied_by(5000, 2.0, 0));   // fault tolerance
  EXPECT_TRUE(c.satisfied_by(7000, 3.0, 1));    // boundaries inclusive
}

TEST(ContractMonitor, TransientViolationForgiven) {
  ContractMonitor monitor(Contract{}, msec(100));
  EXPECT_FALSE(monitor.observe(msec(0), 9000, 1.0, 1));  // violating
  EXPECT_TRUE(monitor.observe(msec(50), 5000, 1.0, 1));  // recovered
  EXPECT_EQ(monitor.degradations(), 0u);
}

TEST(ContractMonitor, SustainedViolationDegrades) {
  Contract strict;
  strict.name = "strict";
  strict.max_latency_us = 2000;
  Contract relaxed;
  relaxed.name = "relaxed";
  relaxed.max_latency_us = 10000;

  ContractMonitor monitor(strict, msec(100));
  monitor.add_degraded_alternative(relaxed);
  std::string degraded_to;
  monitor.set_on_degrade(
      [&](const Contract&, const Contract& to) { degraded_to = to.name; });

  (void)monitor.observe(msec(0), 5000, 1.0, 1);
  (void)monitor.observe(msec(150), 5000, 1.0, 1);  // sustained -> degrade
  EXPECT_EQ(degraded_to, "relaxed");
  EXPECT_EQ(monitor.active().name, "relaxed");
  EXPECT_TRUE(monitor.observe(msec(200), 5000, 1.0, 1));  // relaxed holds
}

TEST(ContractMonitor, ExhaustionNotifiesOperator) {
  Contract only;
  only.max_latency_us = 1000;
  ContractMonitor monitor(only, msec(50));
  bool notified = false;
  monitor.set_on_exhausted([&](const Contract&) { notified = true; });
  (void)monitor.observe(msec(0), 5000, 1.0, 0);
  (void)monitor.observe(msec(100), 5000, 1.0, 0);
  EXPECT_TRUE(notified);
  EXPECT_TRUE(monitor.exhausted());
}

TEST(SwitchSummary, AggregatesHistory) {
  std::vector<replication::Replicator::SwitchRecord> history{
      {msec(100), msec(110), ReplicationStyle::kWarmPassive, ReplicationStyle::kActive},
      {msec(200), msec(202), ReplicationStyle::kActive, ReplicationStyle::kWarmPassive},
  };
  const SwitchSummary s = summarize_switches(history);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.to_active, 1u);
  EXPECT_EQ(s.to_passive, 1u);
  EXPECT_DOUBLE_EQ(s.mean_duration_us, 6000.0);
  EXPECT_DOUBLE_EQ(s.max_duration_us, 10000.0);
}

TEST(SwitchValidation, CatchesMalformedHistories) {
  using SR = replication::Replicator::SwitchRecord;
  // Completed before initiated.
  EXPECT_TRUE(validate_switch_history({SR{msec(10), msec(5),
                                          ReplicationStyle::kWarmPassive,
                                          ReplicationStyle::kActive}})
                  .has_value());
  // from == to.
  EXPECT_TRUE(validate_switch_history({SR{msec(1), msec(2), ReplicationStyle::kActive,
                                          ReplicationStyle::kActive}})
                  .has_value());
  // Discontinuous chain.
  EXPECT_TRUE(validate_switch_history(
                  {SR{msec(1), msec(2), ReplicationStyle::kWarmPassive,
                      ReplicationStyle::kActive},
                   SR{msec(3), msec(4), ReplicationStyle::kWarmPassive,
                      ReplicationStyle::kActive}})
                  .has_value());
  // Valid chain.
  EXPECT_FALSE(validate_switch_history(
                   {SR{msec(1), msec(2), ReplicationStyle::kWarmPassive,
                       ReplicationStyle::kActive},
                    SR{msec(3), msec(4), ReplicationStyle::kActive,
                       ReplicationStyle::kWarmPassive}})
                   .has_value());
}

TEST(SwitchValidation, CatchesDisagreement) {
  using SR = replication::Replicator::SwitchRecord;
  std::vector<SR> a{{msec(1), msec(2), ReplicationStyle::kWarmPassive,
                     ReplicationStyle::kActive}};
  std::vector<SR> b{{msec(1), msec(2), ReplicationStyle::kWarmPassive,
                     ReplicationStyle::kSemiActive}};
  EXPECT_TRUE(validate_switch_agreement({a, b}).has_value());
  EXPECT_FALSE(validate_switch_agreement({a, a}).has_value());
  EXPECT_TRUE(validate_switch_agreement({a, {}}).has_value());  // count mismatch
}

// End-to-end: the adaptation manager drives the Fig. 6 behaviour.
TEST(AdaptationManager, SwitchesStylesUnderBurstyLoad) {
  harness::ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  config.enable_replicated_state = true;
  RateThresholdPolicy::Config policy;
  policy.low_rate = 300;
  policy.high_rate = 600;
  config.adaptation = policy;
  harness::Scenario scenario(config);

  harness::Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan::fig6_burst(200, 1000, sec(3), 4);
  open.duration = sec(12);
  const auto result = scenario.run_open_loop(open);

  // The style followed the bursts: at least one switch each way.
  ASSERT_GE(result.switches.size(), 2u);
  std::size_t to_active = 0;
  std::size_t to_passive = 0;
  for (const auto& rec : result.switches) {
    if (rec.to == ReplicationStyle::kActive) ++to_active;
    if (rec.to == ReplicationStyle::kWarmPassive) ++to_passive;
  }
  EXPECT_GE(to_active, 1u);
  EXPECT_GE(to_passive, 1u);
  EXPECT_EQ(validate_switch_history(result.switches), std::nullopt);
  // The service kept serving throughout.
  EXPECT_GT(result.totals.completed, 5000u);
}

TEST(AdaptationManager, DecisionsEmitSpansThatParentTheSwitch) {
  harness::ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  config.enable_replicated_state = true;
  config.tracing = true;
  RateThresholdPolicy::Config policy;
  policy.low_rate = 300;
  policy.high_rate = 600;
  config.adaptation = policy;
  harness::Scenario scenario(config);

  harness::Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan::fig6_burst(200, 1000, sec(3), 4);
  open.duration = sec(12);
  const auto result = scenario.run_open_loop(open);
  ASSERT_GE(result.switches.size(), 2u);

  // Every initiated switch traces back to an adapt.decision root span with
  // the policy's reasoning attached, and the Fig. 5 protocol spans
  // (rep.switch on the members) land in the same trace.
  const auto& spans = scenario.kernel().tracer().spans();
  std::size_t initiated = 0;
  std::set<std::uint64_t> decision_traces;
  for (const auto& span : spans) {
    if (span.name != "adapt.decision") continue;
    EXPECT_EQ(span.parent, 0u) << "decisions are trace roots";
    bool has_policy = false;
    bool has_action = false;
    for (const auto& [key, value] : span.notes) {
      if (key == "policy") has_policy = value == "rate_threshold";
      if (key == "action" && value == "initiated") has_action = true;
    }
    EXPECT_TRUE(has_policy);
    if (has_action) {
      ++initiated;
      decision_traces.insert(span.trace);
    }
  }
  EXPECT_GE(initiated, result.switches.size());

  std::set<std::uint64_t> switch_traces;
  for (const auto& span : spans) {
    if (span.name == "rep.switch") switch_traces.insert(span.trace);
  }
  std::size_t linked = 0;
  for (std::uint64_t trace : switch_traces) {
    if (decision_traces.count(trace)) ++linked;
  }
  EXPECT_GE(linked, result.switches.size())
      << "each completed switch should descend from a decision span";
}

}  // namespace
}  // namespace vdep::adaptive
