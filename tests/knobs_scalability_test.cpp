// The scalability-knob policy synthesis, verified against the paper's own
// published measurements: feeding Table 2's numbers (plus the configurations
// the paper says were filtered out) through the 4-step rule must select
// exactly the paper's policy.
#include <gtest/gtest.h>

#include "knobs/scalability.hpp"

namespace vdep::knobs {
namespace {

using replication::ReplicationStyle;

constexpr Configuration kA3{ReplicationStyle::kActive, 3};
constexpr Configuration kA2{ReplicationStyle::kActive, 2};
constexpr Configuration kA1{ReplicationStyle::kActive, 1};
constexpr Configuration kP3{ReplicationStyle::kWarmPassive, 3};
constexpr Configuration kP2{ReplicationStyle::kWarmPassive, 2};

// A design-space map consistent with the paper's narrative: Table 2 rows are
// the paper's exact measurements; the other entries are plausible values
// that respect the paper's stated reasons for rejection (A(3) exceeds the
// bandwidth plane from 3 clients on; no 3-replica configuration meets the
// requirements at 5 clients).
DesignSpaceMap paper_map() {
  DesignSpaceMap map;
  auto add = [&map](Configuration c, int n, double lat, double bw) {
    map.add({c, n, lat, 0.0, bw, 0.0, c.replicas - 1});
  };
  // 1 client.
  add(kA3, 1, 1245.8, 1.074);   // Table 2
  add(kP3, 1, 2500.0, 1.40);
  add(kA2, 1, 1200.0, 0.85);
  add(kP2, 1, 2400.0, 1.10);
  add(kA1, 1, 1150.0, 0.45);
  // 2 clients.
  add(kA3, 2, 1457.2, 2.032);   // Table 2
  add(kP3, 2, 3700.0, 1.65);
  add(kA2, 2, 1400.0, 1.55);
  add(kP2, 2, 3500.0, 1.35);
  add(kA1, 2, 1350.0, 0.90);
  // 3 clients: A(3) violates the 3 MB/s plane.
  add(kA3, 3, 1700.0, 3.25);
  add(kP3, 3, 4966.0, 1.887);   // Table 2
  add(kA2, 3, 1650.0, 2.30);
  add(kP2, 3, 4800.0, 1.60);
  add(kA1, 3, 1600.0, 1.30);
  // 4 clients.
  add(kA3, 4, 2000.0, 4.20);
  add(kP3, 4, 6141.1, 2.315);   // Table 2
  add(kA2, 4, 1950.0, 3.05);    // also over the plane now
  add(kP2, 4, 5900.0, 1.95);
  add(kA1, 4, 1900.0, 1.70);
  // 5 clients: no 3-replica configuration fits; P(2) is chosen.
  add(kA3, 5, 2400.0, 5.20);
  add(kP3, 5, 7400.0, 2.70);    // over the latency plane
  add(kA2, 5, 2300.0, 3.70);
  add(kP2, 5, 6006.2, 2.799);   // Table 2
  add(kA1, 5, 2200.0, 2.10);
  return map;
}

TEST(ScalabilityPolicy, ReproducesPaperTable2Selections) {
  ScalabilityRequirements requirements;  // paper defaults: 7000 us, 3 MB/s, p=0.5
  const ScalabilityPolicy policy =
      synthesize_scalability_policy(paper_map(), requirements);

  ASSERT_EQ(policy.entries.size(), 5u);
  EXPECT_TRUE(policy.infeasible_clients.empty());

  const Configuration expected[] = {kA3, kA3, kP3, kP3, kP2};
  const int expected_faults[] = {2, 2, 2, 2, 1};
  const double expected_cost[] = {0.268, 0.443, 0.669, 0.825, 0.895};
  for (int i = 0; i < 5; ++i) {
    const PolicyEntry& e = policy.entries[i];
    EXPECT_EQ(e.clients, i + 1);
    EXPECT_EQ(e.config, expected[i]) << "Ncli=" << i + 1;
    EXPECT_EQ(e.faults_tolerated, expected_faults[i]);
    EXPECT_NEAR(e.cost, expected_cost[i], 0.002);
  }
  EXPECT_EQ(policy.max_supported_clients(), 5);
}

TEST(ScalabilityPolicy, FaultToleranceBeatsCost) {
  // At 1 client, A(1) has by far the lowest cost but tolerates 0 faults; the
  // rule prefers A(3) (2 faults) despite its higher cost.
  const ScalabilityPolicy policy =
      synthesize_scalability_policy(paper_map(), ScalabilityRequirements{});
  auto e = policy.for_clients(1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->config, kA3);
}

TEST(ScalabilityPolicy, CostBreaksTiesAmongEqualFaultTolerance) {
  // At 2 clients both A(3) and P(3) tolerate 2 faults and satisfy the
  // planes; A(3) wins on cost (0.443 < 0.539).
  const ScalabilityPolicy policy =
      synthesize_scalability_policy(paper_map(), ScalabilityRequirements{});
  auto e = policy.for_clients(2);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->config, kA3);
  EXPECT_LT(e->cost, configuration_cost(3700.0, 1.65));
}

TEST(ScalabilityPolicy, TighterRequirementsShrinkSupport) {
  ScalabilityRequirements tight;
  tight.max_latency_us = 2000.0;  // passive styles all excluded
  tight.max_bandwidth_mbps = 3.0;
  tight.cost.latency_limit_us = 2000.0;
  const ScalabilityPolicy policy = synthesize_scalability_policy(paper_map(), tight);
  // 1-3 clients: active configurations fit; at 4-5 clients latency or
  // bandwidth excludes everything but A(1)/A(2).
  for (const auto& e : policy.entries) {
    EXPECT_EQ(e.config.style, ReplicationStyle::kActive);
    EXPECT_LE(e.latency_us, 2000.0);
  }
}

TEST(ScalabilityPolicy, ImpossibleRequirementsReportInfeasible) {
  ScalabilityRequirements impossible;
  impossible.max_latency_us = 100.0;
  const ScalabilityPolicy policy =
      synthesize_scalability_policy(paper_map(), impossible);
  EXPECT_TRUE(policy.entries.empty());
  EXPECT_EQ(policy.infeasible_clients.size(), 5u);
  EXPECT_EQ(policy.max_supported_clients(), 0);
  EXPECT_FALSE(policy.for_clients(1).has_value());
}

TEST(ScalabilityPolicy, DeltaProfileRescuesPassiveBandwidth) {
  // ratio = (100 + 9*10) / (10 * 100) = 0.19; with half of passive bandwidth
  // being checkpoint multicast, passive points shrink to 59.5% of measured.
  const CheckpointProfile profile{100.0, 10.0, 10};
  const DesignSpaceMap rescaled = rescale_checkpoint_bandwidth(paper_map(), profile);

  // Passive points scaled, active points untouched, latency untouched.
  const auto p3_before = paper_map().find(kP3, 4);
  const auto p3_after = rescaled.find(kP3, 4);
  ASSERT_TRUE(p3_before && p3_after);
  EXPECT_NEAR(p3_after->bandwidth_mbps, p3_before->bandwidth_mbps * 0.595, 1e-9);
  EXPECT_DOUBLE_EQ(p3_after->latency_us, p3_before->latency_us);
  const auto a3_after = rescaled.find(kA3, 4);
  ASSERT_TRUE(a3_after);
  EXPECT_DOUBLE_EQ(a3_after->bandwidth_mbps, 4.20);

  // Under a 2 MB/s plane the full-snapshot map must fall back to P(2) at
  // 4 clients (P(3)'s 2.315 MB/s is over); the rescaled map keeps P(3)
  // feasible (1.377 MB/s) and its extra fault tolerance wins the selection.
  ScalabilityRequirements tight;
  tight.max_bandwidth_mbps = 2.0;
  const auto before = synthesize_scalability_policy(paper_map(), tight).for_clients(4);
  const auto after = synthesize_scalability_policy(rescaled, tight).for_clients(4);
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(before->config, kP2);
  EXPECT_EQ(after->config, kP3);
  EXPECT_GT(after->faults_tolerated, before->faults_tolerated);
}

TEST(ScalabilityKnob, AppliesPolicyThroughActuators) {
  const ScalabilityPolicy policy =
      synthesize_scalability_policy(paper_map(), ScalabilityRequirements{});
  ReplicationStyle applied_style = ReplicationStyle::kActive;
  int applied_replicas = 0;
  ScalabilityKnob knob(policy, ScalabilityKnob::Actuators{
                                   [&](ReplicationStyle s) { applied_style = s; },
                                   [&](int n) { applied_replicas = n; }});

  auto e = knob.apply(4);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(applied_style, ReplicationStyle::kWarmPassive);
  EXPECT_EQ(applied_replicas, 3);
  EXPECT_EQ(knob.current_clients(), 4);

  // Unsupported count leaves the system untouched.
  applied_replicas = 0;
  EXPECT_FALSE(knob.apply(9).has_value());
  EXPECT_EQ(applied_replicas, 0);
  EXPECT_EQ(knob.current_clients(), 4);
}

}  // namespace
}  // namespace vdep::knobs
