// End-to-end behaviour of every replication style on a live scenario:
// correct replies, replica consistency, exactly-once execution counters, and
// the style-specific properties (who replies, who logs, reply bandwidth).
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

using replication::ReplicationStyle;

struct StyleCase {
  ReplicationStyle style;
  const char* name;
};

class StylesTest : public ::testing::TestWithParam<StyleCase> {};

TEST_P(StylesTest, CycleCompletesWithConsistentReplicas) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = GetParam().style;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 250;
  cycle.warmup_requests = 20;
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 540u);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.faults_tolerated, 2);

  // Exactly-once at the application: total unique requests == 540.
  const std::uint64_t total = 540;
  if (GetParam().style == ReplicationStyle::kActive ||
      GetParam().style == ReplicationStyle::kSemiActive) {
    // Every replica executed everything, exactly once.
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(scenario.servant(i).counter(), total) << "replica " << i;
    }
    scenario.drain();
  auto digests = scenario.live_state_digests();
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[1], digests[2]);
  } else {
    // Passive: only the primary executed; backups hold checkpointed state.
    EXPECT_EQ(scenario.servant(0).counter(), total);
    // Warm backups lag by at most the checkpoint window: their logs stay
    // bounded because checkpoints keep truncating them.
    if (GetParam().style == ReplicationStyle::kWarmPassive) {
      EXPECT_LT(scenario.replicator(1).message_log().size(), 400u);
      EXPECT_GT(scenario.servant(1).counter(), total / 2);  // checkpoints applied
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStyles, StylesTest,
    ::testing::Values(StyleCase{ReplicationStyle::kActive, "active"},
                      StyleCase{ReplicationStyle::kSemiActive, "semi_active"},
                      StyleCase{ReplicationStyle::kWarmPassive, "warm_passive"},
                      StyleCase{ReplicationStyle::kColdPassive, "cold_passive"}),
    [](const auto& info) { return std::string(info.param.name); });

ExperimentResult run_style(ReplicationStyle style, int clients, int replicas,
                           int requests = 400) {
  ScenarioConfig config;
  config.clients = clients;
  config.replicas = replicas;
  config.max_replicas = replicas;
  config.style = style;
  Scenario scenario(config);
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = requests;
  cycle.warmup_requests = 40;
  return scenario.run_closed_loop(cycle);
}

TEST(StyleProperties, SemiActiveUsesLessWirePerRequestThanActive) {
  const auto active = run_style(ReplicationStyle::kActive, 2, 3);
  const auto semi = run_style(ReplicationStyle::kSemiActive, 2, 3);
  // Followers execute but stay silent: two of the three reply legs vanish.
  // Compare bytes *per request* — semi's lower latency raises its request
  // rate, which hides the saving in a plain MB/s comparison.
  const auto bytes_per_req = [](const ExperimentResult& r) {
    return r.bandwidth_mbps * 1e6 / r.throughput_rps;
  };
  EXPECT_LT(bytes_per_req(semi), bytes_per_req(active) * 0.85);
  // Latency comparable or better (one reply to race instead of three).
  EXPECT_LT(semi.avg_latency_us, active.avg_latency_us * 1.15);
}

TEST(StyleProperties, PassiveSlowerButLeaner) {
  const auto active = run_style(ReplicationStyle::kActive, 3, 3);
  const auto passive = run_style(ReplicationStyle::kWarmPassive, 3, 3);
  EXPECT_GT(passive.avg_latency_us, active.avg_latency_us * 1.3);
  // The paper's Fig. 7(b): at small client counts passive pays checkpoint
  // bandwidth, but its *request* traffic is 1/k of active's; the crossover
  // shows at higher client counts where active's fan-out dominates.
  EXPECT_GT(passive.jitter_us, active.jitter_us);
}

TEST(StyleProperties, ActiveBandwidthGrowsWithReplicas) {
  const auto a1 = run_style(ReplicationStyle::kActive, 2, 1);
  const auto a3 = run_style(ReplicationStyle::kActive, 2, 3);
  EXPECT_GT(a3.bandwidth_mbps, a1.bandwidth_mbps * 1.8);
}

TEST(StyleProperties, PassiveBandwidthBarelyGrowsWithBackups) {
  const auto p2 = run_style(ReplicationStyle::kWarmPassive, 2, 2);
  const auto p3 = run_style(ReplicationStyle::kWarmPassive, 2, 3);
  // One more backup adds one more checkpoint stream, not a full request fan-out.
  EXPECT_LT(p3.bandwidth_mbps, p2.bandwidth_mbps * 1.6);
}

TEST(StyleProperties, MajorityVotingDeliversSameResults) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  config.response_policy = replication::ResponsePolicy::kMajorityVoting;
  Scenario scenario(config);
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 200;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 220u);
  // Voting needs at least 2 of 3 replies: latency >= first-reply latency.
  const auto first = run_style(ReplicationStyle::kActive, 1, 3, 200);
  EXPECT_GE(result.avg_latency_us, first.avg_latency_us * 0.95);
}

TEST(StyleProperties, ExpiredRequestsAreDroppedDeterministically) {
  // FT_REQUEST expiration: requests the client gave up on long ago are not
  // worth executing. Inject one directly through a replicator endpoint.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);
  // Boot and let the group form.
  scenario.kernel().run_until(msec(300));

  orb::RequestMessage req;
  req.request_id = 777;
  req.object_key = ObjectId{1};
  req.operation = "process";
  req.body = filler_bytes(16);
  orb::FtRequestContext ctx;
  ctx.client = ProcessId{9999};
  ctx.retention_id = 777;
  ctx.client_daemon = NodeId{0};
  ctx.expiration = msec(1);  // expired long before delivery
  req.service_contexts.push_back(ctx.to_context());
  replication::RepEnvelope env{replication::RepEnvelope::Type::kRequest, req.encode()};
  scenario.replicator(0).endpoint().multicast(scenario.replicator(0).group(),
                                              gcs::ServiceType::kAgreed, env.encode());
  scenario.kernel().run_until(msec(600));

  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(scenario.replicator(i).expired_requests_dropped(), 1u) << i;
    EXPECT_EQ(scenario.servant(i).counter(), 0u) << i;
  }
}

TEST(StyleProperties, SingleReplicaAllStylesEquivalentCompletion) {
  for (auto style : {ReplicationStyle::kActive, ReplicationStyle::kWarmPassive,
                     ReplicationStyle::kColdPassive, ReplicationStyle::kSemiActive}) {
    const auto r = run_style(style, 1, 1, 150);
    EXPECT_EQ(r.completed, 190u) << replication::to_string(style);
  }
}

}  // namespace
}  // namespace vdep::harness
