#include <gtest/gtest.h>

#include "gcs/vector_clock.hpp"

namespace vdep::gcs {
namespace {

const ProcessId kA{1};
const ProcessId kB{2};
const ProcessId kC{3};

TEST(VectorClock, TickIncrements) {
  VectorClock vc;
  EXPECT_EQ(vc.get(kA), 0u);
  EXPECT_EQ(vc.tick(kA), 1u);
  EXPECT_EQ(vc.tick(kA), 2u);
  EXPECT_EQ(vc.get(kA), 2u);
  EXPECT_EQ(vc.get(kB), 0u);
}

TEST(VectorClock, MergeTakesComponentwiseMax) {
  VectorClock a;
  VectorClock b;
  a.set(kA, 5);
  a.set(kB, 1);
  b.set(kA, 2);
  b.set(kB, 7);
  b.set(kC, 1);
  a.merge(b);
  EXPECT_EQ(a.get(kA), 5u);
  EXPECT_EQ(a.get(kB), 7u);
  EXPECT_EQ(a.get(kC), 1u);
}

TEST(VectorClock, HappensBeforeStrict) {
  VectorClock a;
  VectorClock b;
  a.set(kA, 1);
  b.set(kA, 2);
  EXPECT_TRUE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
  EXPECT_FALSE(a.happens_before(a));  // irreflexive
}

TEST(VectorClock, ConcurrencyDetected) {
  VectorClock a;
  VectorClock b;
  a.set(kA, 1);
  b.set(kB, 1);
  EXPECT_TRUE(a.concurrent_with(b));
  EXPECT_TRUE(b.concurrent_with(a));
  EXPECT_FALSE(a.happens_before(b));
}

TEST(VectorClock, CausalChainThroughMerge) {
  VectorClock a;
  a.tick(kA);        // A: send
  VectorClock b = a; // B receives
  b.merge(a);
  b.tick(kB);        // B: send
  EXPECT_TRUE(a.happens_before(b));
}

TEST(VectorClock, ZeroComponentsIgnored) {
  VectorClock a;
  a.set(kA, 0);  // no-op
  VectorClock empty;
  EXPECT_EQ(a, empty);
}

TEST(VectorClock, EncodeDecodeRoundTrip) {
  VectorClock a;
  a.set(kA, 3);
  a.set(kC, 9);
  const VectorClock b = VectorClock::decode(a.encode());
  EXPECT_EQ(a, b);
}

TEST(VectorClock, EqualClocksNeitherBeforeNorConcurrent) {
  VectorClock a;
  a.set(kA, 2);
  VectorClock b = a;
  EXPECT_FALSE(a.happens_before(b));
  EXPECT_FALSE(a.concurrent_with(b));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace vdep::gcs
