// The acceptance campaign: 200 seeded trials sweeping {style x replicas x
// checkpoint frequency}; every oracle must hold on every trial. Labeled
// `chaos` in ctest — excluded from the tier1 quick gate, run by scripts/ci.sh
// and the full suite.
#include <gtest/gtest.h>

#include "chaos/campaign.hpp"

namespace vdep::chaos {
namespace {

TEST(ChaosCampaign, TwoHundredTrialsAllStylesAllOraclesHold) {
  CampaignConfig config;
  config.seed = 1;
  config.trials = 200;
  // Fleet execution (workers is a pure throughput knob — byte-identical
  // results; pinned by parallel_campaign_chaos_test on this exact config).
  config.workers = 8;

  const CampaignResult result = run_campaign(config);

  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "trial " << failure.trial_index << " (style "
                  << replication::style_code(failure.config.style) << ", "
                  << failure.config.replicas << " replicas, seed "
                  << failure.config.seed << "):\n  "
                  << [&] {
                       std::string all;
                       for (const auto& f : failure.failures) all += f + "\n  ";
                       return all;
                     }()
                  << "schedule:\n"
                  << failure.plan.to_string();
  }
  EXPECT_EQ(result.passed, 200);
  EXPECT_TRUE(result.all_passed());

  // Sweep coverage: all five styles, both replica counts, both checkpoint
  // frequencies appear — and the metrics agree with the verdict tally.
  for (const char* code : {"A", "P", "C", "S", "H"}) {
    EXPECT_GE(result.metrics.counter(std::string("chaos.pass.") + code), 20u) << code;
  }
  EXPECT_EQ(result.metrics.counter("chaos.pass"), 200u);
  EXPECT_EQ(result.metrics.counter("chaos.fail"), 0u);
  EXPECT_DOUBLE_EQ(result.metrics.gauge("chaos.pass_rate").value_or(0.0), 1.0);
  const auto* recovery = result.metrics.distribution("chaos.recovery_ms");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->count(), 200u);
}

}  // namespace
}  // namespace vdep::chaos
