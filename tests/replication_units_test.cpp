// Unit tests for the replicator's building blocks: reply cache, message log,
// quiescence tracking, envelope/checkpoint codecs, and the test application's
// state machine.
#include <gtest/gtest.h>

#include "app/test_app.hpp"
#include "replication/checkpoint.hpp"
#include "replication/message_log.hpp"
#include "replication/reply_cache.hpp"
#include "replication/types.hpp"

namespace vdep::replication {
namespace {

RequestId rid(std::uint64_t client, std::uint64_t seq) {
  return RequestId{ProcessId{client}, seq};
}

TEST(ReplyCache, PutGetContains) {
  ReplyCache cache(8);
  EXPECT_FALSE(cache.get(rid(1, 1)).has_value());
  cache.put(rid(1, 1), Bytes{1});
  ASSERT_TRUE(cache.get(rid(1, 1)).has_value());
  EXPECT_EQ(*cache.get(rid(1, 1)), Bytes{1});
  EXPECT_TRUE(cache.contains(rid(1, 1)));
  EXPECT_FALSE(cache.contains(rid(1, 2)));
}

TEST(ReplyCache, FifoEvictionAtCapacity) {
  ReplyCache cache(3);
  for (std::uint64_t i = 1; i <= 4; ++i) cache.put(rid(1, i), Bytes{std::uint8_t(i)});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains(rid(1, 1)));  // oldest evicted
  EXPECT_TRUE(cache.contains(rid(1, 4)));
}

TEST(ReplyCache, ReinsertKeepsOriginal) {
  ReplyCache cache(8);
  cache.put(rid(1, 1), Bytes{1});
  cache.put(rid(1, 1), Bytes{2});  // replay re-records: deterministic == same
  EXPECT_EQ(*cache.get(rid(1, 1)), Bytes{1});
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplyCache, SerializeRestoreRoundTrip) {
  ReplyCache cache(8);
  cache.put(rid(1, 1), Bytes{1});
  cache.put(rid(2, 5), Bytes{5, 5});
  ReplyCache other(8);
  other.restore(cache.serialize());
  EXPECT_EQ(other.size(), 2u);
  EXPECT_EQ(*other.get(rid(2, 5)), (Bytes{5, 5}));
}

TEST(ReplyCache, SerializeRecentKeepsNewest) {
  ReplyCache cache(16);
  for (std::uint64_t i = 1; i <= 10; ++i) cache.put(rid(1, i), Bytes{std::uint8_t(i)});
  ReplyCache other(16);
  other.restore(cache.serialize_recent(3));
  EXPECT_EQ(other.size(), 3u);
  EXPECT_FALSE(other.contains(rid(1, 7)));
  EXPECT_TRUE(other.contains(rid(1, 8)));
  EXPECT_TRUE(other.contains(rid(1, 10)));
}

TEST(MessageLog, AppendTruncateAppliedReplayWindow) {
  MessageLog log;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    log.append(LoggedRequest{i, rid(1, i), NodeId{0}, kTimeZero, filler_bytes(10)});
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.highest_index(), 10u);
  EXPECT_EQ(log.bytes(), 100u);

  // A checkpoint covering client 1 through retention id 4.
  log.truncate_applied({{ProcessId{1}, 4}});
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.bytes(), 60u);

  auto replay = log.take_all();
  ASSERT_EQ(replay.size(), 6u);
  EXPECT_EQ(replay[0].request_id.seq, 5u);
  EXPECT_EQ(replay[5].request_id.seq, 10u);
  EXPECT_TRUE(log.empty());
}

TEST(MessageLog, TruncateAppliedIsPerClient) {
  MessageLog log;
  log.append(LoggedRequest{1, rid(1, 3), NodeId{0}, kTimeZero, {}});
  log.append(LoggedRequest{2, rid(2, 3), NodeId{0}, kTimeZero, {}});
  log.truncate_applied({{ProcessId{1}, 5}});  // only client 1 covered
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.take_all()[0].request_id.client, ProcessId{2});
}

TEST(MessageLog, UnknownClientNeverTruncated) {
  MessageLog log;
  log.append(LoggedRequest{5, rid(7, 5), NodeId{0}, kTimeZero, {}});
  log.truncate_applied({{ProcessId{1}, 100}});
  EXPECT_EQ(log.size(), 1u);
}

TEST(MessageLog, TruncateWithRetentionIdGapsKeepsEverythingAboveFrontier) {
  // Clients may skip retention ids (expired requests are dropped before
  // execution); truncation is a <= comparison against the frontier, not a
  // membership test, so gaps below it vanish and gaps above it survive.
  MessageLog log;
  log.append(LoggedRequest{1, rid(1, 1), NodeId{0}, kTimeZero, {}});
  log.append(LoggedRequest{2, rid(1, 3), NodeId{0}, kTimeZero, {}});
  log.append(LoggedRequest{3, rid(1, 5), NodeId{0}, kTimeZero, {}});
  log.append(LoggedRequest{4, rid(2, 2), NodeId{0}, kTimeZero, {}});
  log.truncate_applied({{ProcessId{1}, 4}, {ProcessId{2}, 1}});
  auto rest = log.take_all();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].request_id, rid(1, 5));
  EXPECT_EQ(rest[1].request_id, rid(2, 2));
}

TEST(MessageLog, TruncateWithEmptyAppliedMapIsANoOp) {
  MessageLog log;
  log.append(LoggedRequest{1, rid(1, 1), NodeId{0}, kTimeZero, filler_bytes(8)});
  log.truncate_applied({});
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.bytes(), 8u);
}

TEST(MessageLog, TakeAllMovesPayloadsWithoutCopying) {
  MessageLog log;
  Payload giop = filler_bytes(64);
  const std::uint8_t* buffer = giop.data();
  log.append(LoggedRequest{1, rid(1, 1), NodeId{0}, kTimeZero, std::move(giop)});
  auto out = log.take_all();
  ASSERT_EQ(out.size(), 1u);
  // Same underlying buffer: the entry changed hands by move, not by copy.
  EXPECT_EQ(out[0].giop.data(), buffer);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.bytes(), 0u);
}

TEST(QuiescenceTracker, ImmediateWhenIdle) {
  QuiescenceTracker q;
  bool fired = false;
  q.when_quiescent([&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(QuiescenceTracker, WaitsForOutstanding) {
  QuiescenceTracker q;
  q.begin_execution();
  q.begin_execution();
  bool fired = false;
  q.when_quiescent([&] { fired = true; });
  EXPECT_FALSE(fired);
  q.end_execution();
  EXPECT_FALSE(fired);
  q.end_execution();
  EXPECT_TRUE(fired);
}

TEST(QuiescenceTracker, WaitersFireInOrder) {
  QuiescenceTracker q;
  q.begin_execution();
  std::vector<int> order;
  q.when_quiescent([&] { order.push_back(1); });
  q.when_quiescent([&] { order.push_back(2); });
  q.end_execution();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Checkpoint, SnapshotCpuTimeScalesLinearly) {
  EXPECT_EQ(snapshot_cpu_time(100'000'000, 100e6), sec(1));
  EXPECT_EQ(snapshot_cpu_time(0, 100e6), kTimeZero);
}

TEST(Envelope, RoundTripAllTypes) {
  for (auto type : {RepEnvelope::Type::kRequest, RepEnvelope::Type::kCheckpoint,
                    RepEnvelope::Type::kSwitch, RepEnvelope::Type::kStateRequest,
                    RepEnvelope::Type::kCheckpointDelta,
                    RepEnvelope::Type::kStateTransfer,
                    RepEnvelope::Type::kAnchorRequest}) {
    RepEnvelope env{type, filler_bytes(20)};
    RepEnvelope out = RepEnvelope::decode(env.encode());
    EXPECT_EQ(out.type, type);
    EXPECT_EQ(out.payload, filler_bytes(20));
  }
}

TEST(Envelope, BadTypeThrows) {
  Bytes junk{9, 0, 0, 0, 0};
  EXPECT_THROW((void)RepEnvelope::decode(Payload::copy_of(junk)), DecodeError);
}

TEST(CheckpointMsgCodec, RoundTrip) {
  CheckpointMsg msg;
  msg.checkpoint_id = 0xabcdef;
  msg.applied[ProcessId{1}] = 321;
  msg.applied[ProcessId{9}] = 7;
  msg.app_state = filler_bytes(100);
  msg.reply_cache = filler_bytes(30, 7);
  CheckpointMsg out = CheckpointMsg::decode(msg.encode());
  EXPECT_EQ(out.checkpoint_id, msg.checkpoint_id);
  EXPECT_EQ(out.applied, msg.applied);
  EXPECT_EQ(out.app_state, msg.app_state);
  EXPECT_EQ(out.reply_cache, msg.reply_cache);
}

TEST(CheckpointMsgCodec, FullEncodingIsByteIdenticalToPreDeltaFormat) {
  // The delta extension must not perturb full checkpoints on the wire: at
  // anchor-interval 1 the protocol is byte-for-byte the seed protocol. This
  // pins the original layout by hand.
  CheckpointMsg msg;
  msg.checkpoint_id = 0x12345678;
  msg.applied[ProcessId{2}] = 9;
  msg.app_state = Bytes{0xaa, 0xbb};
  msg.reply_cache = Bytes{0xcc};

  ByteWriter w;
  w.u64(0x12345678);             // checkpoint_id
  w.u32(1);                      // applied entries
  w.u64(2);                      // client pid
  w.u64(9);                      // retention id
  w.bytes(Bytes{0xaa, 0xbb});    // app_state (length-prefixed)
  w.bytes(Bytes{0xcc});          // reply_cache (length-prefixed)
  EXPECT_EQ(msg.encode(), std::move(w).take());
}

TEST(CheckpointMsgCodec, DeltaRoundTripCarriesChainEpochs) {
  CheckpointMsg msg;
  msg.kind = CheckpointMsg::Kind::kDelta;
  msg.checkpoint_id = (7ULL << 20) | 4;
  msg.base_epoch = (7ULL << 20) | 3;
  msg.delta_epoch = msg.checkpoint_id;
  msg.applied[ProcessId{1}] = 17;
  msg.app_state = filler_bytes(12, 3);
  msg.reply_cache = filler_bytes(5, 9);
  CheckpointMsg out = CheckpointMsg::decode(msg.encode(), CheckpointMsg::Kind::kDelta);
  EXPECT_EQ(out.kind, CheckpointMsg::Kind::kDelta);
  EXPECT_EQ(out.checkpoint_id, msg.checkpoint_id);
  EXPECT_EQ(out.base_epoch, msg.base_epoch);
  EXPECT_EQ(out.delta_epoch, msg.delta_epoch);
  EXPECT_EQ(out.applied, msg.applied);
  EXPECT_EQ(out.app_state, msg.app_state);
  EXPECT_EQ(out.reply_cache, msg.reply_cache);
}

TEST(CheckpointMsgCodec, DeltaValidationRejectsCorruptChains) {
  CheckpointMsg msg;
  msg.kind = CheckpointMsg::Kind::kDelta;
  msg.checkpoint_id = 10;
  msg.delta_epoch = 10;
  msg.base_epoch = 9;
  const Bytes good = msg.encode();

  // delta_epoch must equal checkpoint_id.
  {
    ByteWriter w;
    w.u64(10);   // checkpoint_id
    w.u64(9);    // base_epoch
    w.u64(11);   // delta_epoch != checkpoint_id
    w.u32(0);
    w.bytes(Bytes{});
    w.bytes(Bytes{});
    EXPECT_THROW((void)CheckpointMsg::decode(Payload(std::move(w).take()),
                                             CheckpointMsg::Kind::kDelta),
                 DecodeError);
  }
  // A delta must chain forwards (base < delta).
  {
    ByteWriter w;
    w.u64(10);
    w.u64(10);   // base_epoch == delta_epoch
    w.u64(10);
    w.u32(0);
    w.bytes(Bytes{});
    w.bytes(Bytes{});
    EXPECT_THROW((void)CheckpointMsg::decode(Payload(std::move(w).take()),
                                             CheckpointMsg::Kind::kDelta),
                 DecodeError);
  }
  EXPECT_NO_THROW((void)CheckpointMsg::decode(Payload(Bytes(good)),
                                              CheckpointMsg::Kind::kDelta));
}

TEST(StateTransferMsgCodec, RoundTripAnchorPlusDeltaSuffix) {
  StateTransferMsg msg;
  msg.anchor = filler_bytes(40, 1);
  msg.deltas.push_back(filler_bytes(8, 2));
  msg.deltas.push_back(filler_bytes(6, 3));
  StateTransferMsg out = StateTransferMsg::decode(msg.encode());
  EXPECT_EQ(out.anchor, msg.anchor);
  ASSERT_EQ(out.deltas.size(), 2u);
  EXPECT_EQ(out.deltas[0], msg.deltas[0]);
  EXPECT_EQ(out.deltas[1], msg.deltas[1]);
}

TEST(Checkpoint, DeltaCpuTimeChargesDirtyBytesClampedAtFull) {
  // A delta pays for its own bytes; a pathological delta larger than the
  // state never pays more than a full snapshot would.
  EXPECT_EQ(checkpoint_cpu_time(100'000'000, std::nullopt, 100e6), sec(1));
  EXPECT_EQ(checkpoint_cpu_time(100'000'000, 1'000'000, 100e6), msec(10));
  EXPECT_EQ(checkpoint_cpu_time(1'000'000, 100'000'000, 100e6), msec(10));
}

TEST(SwitchMsgCodec, RoundTrip) {
  SwitchMsg msg;
  msg.target = ReplicationStyle::kSemiActive;
  msg.initiator = ProcessId{9};
  SwitchMsg out = SwitchMsg::decode(msg.encode());
  EXPECT_EQ(out.target, ReplicationStyle::kSemiActive);
  EXPECT_EQ(out.initiator, ProcessId{9});
}

TEST(StyleNames, CodesMatchPaperNotation) {
  EXPECT_EQ(style_code(ReplicationStyle::kActive), "A");
  EXPECT_EQ(style_code(ReplicationStyle::kWarmPassive), "P");
  EXPECT_EQ(to_string(ReplicationStyle::kColdPassive), "cold_passive");
  EXPECT_EQ(to_string(ReplicationStyle::kSemiActive), "semi_active");
}

// --- TestServant: the deterministic state machine everything rides on -------

TEST(TestServant, DeterministicExecution) {
  app::TestServant a;
  app::TestServant b;
  for (int i = 0; i < 20; ++i) {
    auto ra = a.invoke("process", filler_bytes(32, std::uint8_t(i)));
    auto rb = b.invoke("process", filler_bytes(32, std::uint8_t(i)));
    EXPECT_EQ(ra.output, rb.output);
  }
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.counter(), 20u);
}

TEST(TestServant, StateActuallyChanges) {
  app::TestServant s;
  const auto d0 = s.state_digest();
  (void)s.invoke("process", filler_bytes(8));
  EXPECT_NE(s.state_digest(), d0);
}

TEST(TestServant, SnapshotRestoreRoundTrip) {
  app::TestServant a;
  for (int i = 0; i < 5; ++i) (void)a.invoke("process", filler_bytes(16, std::uint8_t(i)));

  app::TestServant b;
  b.restore(a.snapshot());
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.counter(), a.counter());

  // Divergence-free continuation: both execute the same next request.
  auto ra = a.invoke("process", filler_bytes(16, 99));
  auto rb = b.invoke("process", filler_bytes(16, 99));
  EXPECT_EQ(ra.output, rb.output);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(TestServant, ReplySizeConfigurable) {
  app::TestServant::Config config;
  config.reply_bytes = 256;
  app::TestServant s(config);
  auto r = s.invoke("process", filler_bytes(8));
  EXPECT_GE(r.output.size(), 200u);
  EXPECT_LE(r.output.size(), 300u);
}

TEST(TestServant, UnknownOperationFails) {
  app::TestServant s;
  EXPECT_FALSE(s.invoke("nonsense", {}).ok);
}

TEST(TestServant, GetDigestIsReadOnly) {
  app::TestServant s;
  (void)s.invoke("process", filler_bytes(8));
  const auto d = s.state_digest();
  auto r = s.invoke("get_digest", {});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(s.state_digest(), d);
  auto reply = app::ProcessReply::decode(r.output);
  EXPECT_EQ(reply.digest, d);
}

TEST(TestServant, ProcessReplyCarriesCounterAndDigest) {
  app::TestServant s;
  auto r = s.invoke("process", filler_bytes(8));
  auto reply = app::ProcessReply::decode(r.output);
  EXPECT_EQ(reply.counter, 1u);
  EXPECT_EQ(reply.digest, s.state_digest());
}

}  // namespace
}  // namespace vdep::replication
