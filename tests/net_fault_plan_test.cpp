// Edge cases of the typed fault-plan: overlapping windows, degenerate
// actions, clamping, and the wire round-trip the chaos shrinker relies on.
#include <gtest/gtest.h>

#include "net/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/actor.hpp"
#include "sim/kernel.hpp"

namespace vdep::net {
namespace {

struct Rig {
  sim::Kernel kernel{1};
  Network network{kernel};
  NodeId a, b, c;
  Rig() : a(network.add_host("a")), b(network.add_host("b")), c(network.add_host("c")) {}
};

TEST(FaultPlanEdge, OverlappingPartitionWindowsStayCutUntilBothLift) {
  Rig rig;
  FaultPlan plan;
  plan.partition_window(msec(10), msec(40), {rig.a}, {rig.b, rig.c});
  plan.partition_window(msec(20), msec(60), {rig.b}, {rig.a, rig.c});
  plan.arm(rig.kernel, rig.network, {});

  rig.kernel.run_until(msec(15));
  EXPECT_TRUE(rig.network.partitioned(rig.a, rig.b));
  EXPECT_FALSE(rig.network.partitioned(rig.b, rig.c));

  rig.kernel.run_until(msec(30));  // both windows active
  EXPECT_TRUE(rig.network.partitioned(rig.a, rig.b));
  EXPECT_TRUE(rig.network.partitioned(rig.b, rig.c));

  rig.kernel.run_until(msec(50));  // first lifted; second must still cut a|b
  EXPECT_TRUE(rig.network.partitioned(rig.a, rig.b));
  EXPECT_TRUE(rig.network.partitioned(rig.b, rig.c));
  EXPECT_FALSE(rig.network.partitioned(rig.a, rig.c));

  rig.kernel.run_until(msec(70));
  EXPECT_FALSE(rig.network.partitioned(rig.a, rig.b));
  EXPECT_FALSE(rig.network.partitioned(rig.b, rig.c));
}

TEST(FaultPlanEdge, OverlappingLossWindowsTakeTheWorstProbability) {
  Rig rig;
  FaultPlan plan;
  plan.loss_burst(msec(10), msec(50), rig.a, rig.b, 0.3);
  plan.loss_burst(msec(20), msec(30), rig.a, rig.b, 0.9);
  plan.arm(rig.kernel, rig.network, {});

  rig.kernel.run_until(msec(15));
  EXPECT_DOUBLE_EQ(rig.network.link_params(rig.a, rig.b).loss_probability, 0.3);
  rig.kernel.run_until(msec(25));
  EXPECT_DOUBLE_EQ(rig.network.link_params(rig.a, rig.b).loss_probability, 0.9);
  rig.kernel.run_until(msec(35));  // inner burst over, outer still on
  EXPECT_DOUBLE_EQ(rig.network.link_params(rig.a, rig.b).loss_probability, 0.3);
  rig.kernel.run_until(msec(55));
  EXPECT_DOUBLE_EQ(rig.network.link_params(rig.a, rig.b).loss_probability, 0.0);
}

TEST(FaultPlanEdge, RestartOfNeverCrashedProcessIsANoop) {
  Rig rig;
  sim::Process p(rig.kernel, ProcessId{7}, rig.a, "p");
  FaultPlan plan;
  plan.restart_process(msec(10), p.id());
  plan.arm(rig.kernel, rig.network, {&p});

  const auto before = p.incarnation();
  rig.kernel.run_until(msec(20));
  EXPECT_TRUE(p.alive());
  EXPECT_EQ(p.incarnation(), before);
}

TEST(FaultPlanEdge, LossProbabilityIsClampedToUnitInterval) {
  Rig rig;
  FaultPlan plan;
  plan.loss_burst(msec(10), msec(30), rig.a, rig.b, 1.7);
  plan.loss_burst(msec(10), msec(30), rig.a, rig.c, -0.4);
  plan.arm(rig.kernel, rig.network, {});

  rig.kernel.run_until(msec(20));
  EXPECT_DOUBLE_EQ(rig.network.link_params(rig.a, rig.b).loss_probability, 1.0);
  EXPECT_DOUBLE_EQ(rig.network.link_params(rig.a, rig.c).loss_probability, 0.0);
}

TEST(FaultPlanEdge, EncodeDecodeRoundTripsEveryKind) {
  FaultPlan plan;
  plan.crash_process(msec(10), ProcessId{4});
  plan.restart_process(msec(20), ProcessId{4});
  plan.crash_node(msec(30), NodeId{2});
  plan.restore_node(msec(40), NodeId{2});
  plan.loss_burst(msec(50), msec(80), NodeId{1}, NodeId{2}, 0.25);
  plan.partition_window(msec(60), msec(90), {NodeId{0}, NodeId{1}}, {NodeId{2}});
  plan.slow_host(msec(70), msec(100), NodeId{1}, 3.5);

  const Bytes wire = plan.encode();
  const FaultPlan copy = FaultPlan::decode(wire);
  EXPECT_EQ(plan, copy);
  EXPECT_EQ(plan.to_string(), copy.to_string());
  EXPECT_EQ(copy.last_effect_end(), msec(100));
}

TEST(FaultPlanEdge, DecodeRejectsCorruptKind) {
  FaultPlan plan;
  plan.crash_process(msec(10), ProcessId{4});
  Bytes wire = plan.encode();
  wire[wire.size() - 1] ^= 0xff;  // corrupt trailing byte
  bool threw = false;
  try {
    (void)FaultPlan::decode(wire);
  } catch (...) {
    threw = true;
  }
  // Either a decode exception or a mismatching plan is acceptable; silently
  // equal plans are not.
  if (!threw) {
    EXPECT_NE(plan, FaultPlan::decode(wire));
  }
}

}  // namespace
}  // namespace vdep::net
