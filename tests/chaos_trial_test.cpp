// Chaos trials: smoke coverage, (seed, config) determinism, and proof that
// the oracles actually catch a real safety violation (the deliberately
// injected reply-dedup bug).
#include <gtest/gtest.h>

#include <set>

#include "chaos/campaign.hpp"
#include "harness/scenario.hpp"

namespace vdep::chaos {
namespace {

TrialConfig small_trial(std::uint64_t seed) {
  TrialConfig config;
  config.seed = seed;
  config.clients = 2;
  config.replicas = 3;
  config.ops_per_client = 60;
  return config;
}

// A schedule that crashes the warm-passive primary mid-workload and brings
// it back: the restarted replica must rejoin as the most junior member and
// catch up by state transfer while the promoted backup keeps serving.
net::FaultPlan primary_crash_plan(const TrialConfig& config) {
  harness::ScenarioConfig sc;
  sc.clients = config.clients;
  sc.replicas = config.replicas;
  sc.max_replicas = config.replicas;
  sc.style = config.style;
  harness::Scenario probe(sc);  // same deterministic pid layout as the trial
  net::FaultPlan plan;
  plan.crash_process(msec(500), probe.replica_pid(0));
  plan.restart_process(msec(900), probe.replica_pid(0));
  return plan;
}

// A schedule that forces a client retry of an already-executed request: the
// partition cuts clients off from the replicas after their in-flight request
// was forwarded, so it executes but the reply never arrives; the client
// retransmits, and after the heal both copies are delivered. Exactly-once
// then hinges entirely on the reply cache.
net::FaultPlan reply_loss_partition_plan(const TrialConfig& config) {
  harness::ScenarioConfig sc;
  sc.clients = config.clients;
  sc.replicas = config.replicas;
  sc.max_replicas = config.replicas;
  sc.style = config.style;
  harness::Scenario probe(sc);
  std::set<NodeId> client_hosts, replica_hosts;
  for (int c = 0; c < config.clients; ++c) client_hosts.insert(NodeId{static_cast<std::uint64_t>(c)});
  for (int r = 0; r < config.replicas; ++r) replica_hosts.insert(probe.replica_host(r));
  net::FaultPlan plan;
  plan.partition_window(msec(500), msec(950), client_hosts, replica_hosts);
  return plan;
}

TEST(ChaosTrial, GeneratedScheduleSmokeTrialPasses) {
  const TrialResult result = run_trial(small_trial(11));
  EXPECT_TRUE(result.pass()) << result.verdict.to_string()
                             << "\nschedule:\n" << result.plan.to_string();
  EXPECT_FALSE(result.plan.empty());
  EXPECT_EQ(result.completed_ops, 120u);
  EXPECT_TRUE(result.observation.all_clients_done);
}

TEST(ChaosTrial, SameSeedSameConfigIsByteIdentical) {
  TrialConfig config = small_trial(23);
  config.record_trace = true;
  const TrialResult a = run_trial(config);
  const TrialResult b = run_trial(config);
  ASSERT_NE(a.trace_digest, 0u);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.finished_at, b.finished_at);

  TrialConfig other = config;
  other.seed = 24;
  const TrialResult c = run_trial(other);
  EXPECT_NE(a.trace_digest, c.trace_digest);
}

TEST(ChaosTrial, RecordedSpansMakeDeterministicFlightRecordings) {
  TrialConfig config = small_trial(23);
  config.record_spans = true;
  const TrialResult a = run_trial(config, primary_crash_plan(config));
  EXPECT_GT(a.spans_recorded, 0u);
  EXPECT_EQ(a.spans_dropped, 0u);
  ASSERT_FALSE(a.flight_recording.empty());
  EXPECT_NE(a.flight_recording.find("client.request"), std::string::npos);
  EXPECT_NE(a.flight_recording.find("rep.promote"), std::string::npos);

  // Re-running the same (config, plan) reproduces the recording byte for
  // byte — this is what gives failing campaign trials citable post-mortems.
  const TrialResult b = run_trial(config, primary_crash_plan(config));
  EXPECT_EQ(a.spans_recorded, b.spans_recorded);
  EXPECT_EQ(a.flight_recording, b.flight_recording);

  // And recording spans does not change the simulated outcome.
  TrialConfig plain = config;
  plain.record_spans = false;
  const TrialResult c = run_trial(plain, primary_crash_plan(plain));
  EXPECT_EQ(c.spans_recorded, 0u);
  EXPECT_TRUE(c.flight_recording.empty());
  EXPECT_EQ(a.completed_ops, c.completed_ops);
  EXPECT_EQ(a.finished_at, c.finished_at);
}

TEST(ChaosTrial, HealthyStackSurvivesPrimaryCrash) {
  const TrialConfig config = small_trial(5);
  const TrialResult result = run_trial(config, primary_crash_plan(config));
  EXPECT_TRUE(result.pass()) << result.verdict.to_string();
  EXPECT_EQ(result.completed_ops, 120u);
}

TEST(ChaosTrial, HealthyStackSurvivesReplyLossPartition) {
  TrialConfig config = small_trial(5);
  config.append_ratio = 1.0;  // every retried op would show a duplicate
  const TrialResult result = run_trial(config, reply_loss_partition_plan(config));
  EXPECT_TRUE(result.pass()) << result.verdict.to_string();
  EXPECT_EQ(result.completed_ops, 120u);
}

TEST(ChaosTrial, InjectedDedupBugIsCaughtByExactlyOnceOracle) {
  TrialConfig config = small_trial(5);
  config.append_ratio = 1.0;
  config.inject_dedup_bug = true;
  const TrialResult result = run_trial(config, reply_loss_partition_plan(config));
  EXPECT_FALSE(result.pass())
      << "reply-dedup disabled + retried request must double-execute";
  EXPECT_FALSE(check_exactly_once(result.observation).pass())
      << result.verdict.to_string();
}

TEST(ChaosTrial, CampaignSweepCoversTheDesignSpace) {
  CampaignConfig config;
  config.seed = 3;
  config.trials = 10;  // one full style cycle at both replica counts
  config.base = small_trial(0);
  config.base.ops_per_client = 40;
  const CampaignResult result = run_campaign(config);
  EXPECT_EQ(result.trials, 10);
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "trial " << failure.trial_index << " style "
                  << replication::style_code(failure.config.style) << ":\n"
                  << failure.plan.to_string();
  }
  EXPECT_TRUE(result.all_passed());
  // Every style ran at least once and the metrics kept score.
  EXPECT_EQ(result.metrics.counter("chaos.trials"), 10u);
  for (const char* code : {"A", "P", "C", "S", "H"}) {
    EXPECT_GE(result.metrics.counter(std::string("chaos.pass.") + code), 1u)
        << code;
  }
  EXPECT_EQ(result.recovery_series.points().size(), 10u);
}

}  // namespace
}  // namespace vdep::chaos
