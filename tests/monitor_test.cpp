#include <gtest/gtest.h>

#include "gcs/endpoint.hpp"
#include "monitor/bandwidth_meter.hpp"
#include "monitor/metrics.hpp"
#include "monitor/rate_estimator.hpp"
#include "monitor/replicated_state.hpp"

namespace vdep::monitor {
namespace {

TEST(MetricsRegistry, CountersGaugesDistributions) {
  MetricsRegistry m;
  m.add("requests");
  m.add("requests", 4);
  EXPECT_EQ(m.counter("requests"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);

  m.set_gauge("load", 0.7);
  ASSERT_TRUE(m.gauge("load").has_value());
  EXPECT_DOUBLE_EQ(*m.gauge("load"), 0.7);
  EXPECT_FALSE(m.gauge("missing").has_value());

  m.observe("latency", 10);
  m.observe("latency", 20);
  const RunningStats* d = m.distribution("latency");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->mean(), 15.0);
  EXPECT_EQ(m.distribution("missing"), nullptr);

  m.reset();
  EXPECT_EQ(m.counter("requests"), 0u);
}

TEST(MetricsRegistry, PercentilesFromLogHistogram) {
  MetricsRegistry m;
  for (int i = 1; i <= 1000; ++i) m.observe("latency", i);
  ASSERT_NE(m.histogram("latency"), nullptr);
  EXPECT_EQ(m.histogram("latency")->count(), 1000u);
  ASSERT_TRUE(m.percentile("latency", 50).has_value());
  EXPECT_NEAR(*m.percentile("latency", 50), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(*m.percentile("latency", 99), 990.0, 990.0 * 0.05);
  EXPECT_DOUBLE_EQ(*m.percentile("latency", 100), 1000.0);
  EXPECT_FALSE(m.percentile("missing", 50).has_value());
  EXPECT_EQ(m.histogram("missing"), nullptr);

  // distributions() exposes both views under one name.
  const auto& all = m.distributions();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_DOUBLE_EQ(all.at("latency").stats.max(), 1000.0);
  EXPECT_DOUBLE_EQ(all.at("latency").histogram.max(), 1000.0);
}

TEST(MetricsRegistry, SnapshotDiffGivesPerPhaseDeltas) {
  MetricsRegistry m;
  m.add("executed", 10);
  m.set_gauge("load", 0.4);
  m.observe("latency", 5.0);
  const MetricsSnapshot before = m.snapshot();

  m.add("executed", 7);
  m.add("new_counter", 3);  // appears only after the first snapshot
  m.set_gauge("load", 0.9);
  m.observe("latency", 6.0);
  m.observe("latency", 7.0);
  const MetricsSnapshot after = m.snapshot();

  const MetricsSnapshot delta = after.diff(before);
  EXPECT_EQ(delta.counters.at("executed"), 7u);
  EXPECT_EQ(delta.counters.at("new_counter"), 3u);  // missing-in-earlier = 0
  EXPECT_DOUBLE_EQ(delta.gauges.at("load"), 0.9);   // gauges keep last value
  EXPECT_EQ(delta.observations.at("latency"), 2u);
}

TEST(MetricsRegistry, SnapshotDiffEdgeCases) {
  MetricsRegistry m;
  m.add("stable", 5);
  m.set_gauge("old_gauge", 1.5);
  const MetricsSnapshot earlier = m.snapshot();

  // A distribution that did not exist in the earlier snapshot: its whole
  // observation count is the delta.
  m.observe("fresh_dist", 1.0);
  m.observe("fresh_dist", 2.0);
  m.observe("fresh_dist", 3.0);
  m.set_gauge("new_gauge", 9.0);
  const MetricsSnapshot later = m.snapshot();
  const MetricsSnapshot delta = later.diff(earlier);

  // Unchanged counter reads a zero delta (present, not dropped).
  EXPECT_EQ(delta.counters.at("stable"), 0u);
  // Missing-in-earlier distribution: full count.
  EXPECT_EQ(delta.observations.at("fresh_dist"), 3u);
  // Gauges carry the later snapshot's values — both the untouched one and
  // the newcomer.
  EXPECT_DOUBLE_EQ(delta.gauges.at("old_gauge"), 1.5);
  EXPECT_DOUBLE_EQ(delta.gauges.at("new_gauge"), 9.0);
}

TEST(RateEstimator, SmoothedRate) {
  RateEstimator est(msec(100), /*ewma_alpha=*/1.0);  // alpha 1: no smoothing
  for (int i = 0; i < 50; ++i) est.record(msec(i * 2));
  EXPECT_NEAR(est.rate(msec(99)), 500.0, 20.0);
}

TEST(RateEstimator, WindowRollover) {
  RateEstimator est(msec(100), /*ewma_alpha=*/1.0);
  for (int i = 0; i < 10; ++i) est.record(msec(i * 10));
  EXPECT_GT(est.rate(msec(95)), 0.0);
  // The window has rolled past every recorded event: the rate reads zero
  // (not a stale value from the old window).
  EXPECT_DOUBLE_EQ(est.rate(msec(300)), 0.0);
}

TEST(ThresholdWatcher, HysteresisAndDwell) {
  ThresholdWatcher w(100, 200, msec(50));
  // Starts low; values between the thresholds never transition.
  EXPECT_FALSE(w.update(msec(0), 150).has_value());
  auto up = w.update(msec(1), 250);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(*up, ThresholdWatcher::State::kHigh);
  // Falling below low within the dwell does nothing.
  EXPECT_FALSE(w.update(msec(20), 50).has_value());
  // After the dwell it transitions down.
  auto down = w.update(msec(60), 50);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(*down, ThresholdWatcher::State::kLow);
}

TEST(ThresholdWatcher, NoThrashingAtBoundary) {
  ThresholdWatcher w(100, 200, msec(10));
  int transitions = 0;
  for (int t = 0; t < 1000; t += 5) {
    // Noise oscillating inside the hysteresis band.
    if (w.update(msec(t), 150 + (t % 2 ? 30 : -30))) ++transitions;
  }
  EXPECT_EQ(transitions, 0);
}

TEST(BandwidthMeter, MeasuresTrafficRate) {
  sim::Kernel kernel(1);
  net::Network network(kernel);
  const NodeId a = network.add_host("a");
  const NodeId b = network.add_host("b");
  network.bind(b, net::Port::kTcp, [](net::Packet&&) {});

  BandwidthMeter meter(kernel, network, msec(100));
  meter.start();
  // 1 MB over 1 second.
  for (int i = 0; i < 100; ++i) {
    kernel.post(msec(i * 10), [&network, a, b] {
      net::Packet p;
      p.src = a;
      p.dst = b;
      p.port = net::Port::kTcp;
      p.payload = filler_bytes(100);
      p.wire_bytes = 10000;
      network.send(std::move(p));
    });
  }
  kernel.run_until(sec(1));
  EXPECT_NEAR(meter.average_rate(), 1.0, 0.15);
  EXPECT_FALSE(meter.series().empty());
  meter.stop();
}

// --- replicated system-state object over a real GCS world ---------------------

struct StateWorld {
  StateWorld() : kernel(3), network(kernel) {
    for (int i = 0; i < 3; ++i) hosts.push_back(network.add_host("h" + std::to_string(i)));
    for (NodeId h : hosts) {
      daemons.push_back(std::make_unique<gcs::Daemon>(kernel, network,
                                                      ProcessId{100 + h.value()}, h,
                                                      hosts));
    }
    for (auto& d : daemons) d->boot();
  }

  sim::Kernel kernel;
  net::Network network;
  std::vector<NodeId> hosts;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;
};

TEST(ReplicatedStateObject, MembersConvergeOnIdenticalState) {
  StateWorld w;
  sim::Process p1(w.kernel, ProcessId{10}, w.hosts[1], "p1");
  sim::Process p2(w.kernel, ProcessId{20}, w.hosts[2], "p2");

  ReplicatedStateObject s1(*w.daemons[1], p1, GroupId{50},
                           [] { return StateEntry{{}, kTimeZero, 0.25, 100.0, {}}; });
  ReplicatedStateObject s2(*w.daemons[2], p2, GroupId{50},
                           [] { return StateEntry{{}, kTimeZero, 0.75, 300.0, {}}; });
  s1.start();
  s2.start();
  w.kernel.run_until(sec(1));

  // Both hold entries for both reporters, with the same values.
  ASSERT_EQ(s1.entries().size(), 2u);
  ASSERT_EQ(s2.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(s1.entries().at(ProcessId{10}).cpu_load, 0.25);
  EXPECT_DOUBLE_EQ(s1.entries().at(ProcessId{20}).cpu_load, 0.75);
  EXPECT_DOUBLE_EQ(s2.entries().at(ProcessId{10}).cpu_load, 0.25);

  // Deterministic aggregates agree — the paper's "decisions ... based on data
  // that is already available and agreed upon".
  EXPECT_DOUBLE_EQ(s1.aggregate_request_rate(), s2.aggregate_request_rate());
  EXPECT_DOUBLE_EQ(s1.aggregate_request_rate(), 200.0);
  EXPECT_DOUBLE_EQ(s1.max_cpu_load(), 0.75);
}

TEST(ReplicatedStateObject, DepartedMemberDropsFromState) {
  StateWorld w;
  sim::Process p1(w.kernel, ProcessId{10}, w.hosts[1], "p1");
  sim::Process p2(w.kernel, ProcessId{20}, w.hosts[2], "p2");
  ReplicatedStateObject s1(*w.daemons[1], p1, GroupId{50},
                           [] { return StateEntry{{}, kTimeZero, 0.1, 10.0, {}}; });
  ReplicatedStateObject s2(*w.daemons[2], p2, GroupId{50},
                           [] { return StateEntry{{}, kTimeZero, 0.9, 90.0, {}}; });
  s1.start();
  s2.start();
  w.kernel.run_until(sec(1));
  ASSERT_EQ(s1.entries().size(), 2u);

  p2.crash();
  w.kernel.run_until(sec(2));
  EXPECT_EQ(s1.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(s1.max_cpu_load(), 0.1);
}

TEST(StateEntryCodec, RoundTripWithExtras) {
  StateEntry e;
  e.reporter = ProcessId{7};
  e.reported_at = msec(123);
  e.cpu_load = 0.5;
  e.request_rate = 42.5;
  e.extra["queue_depth"] = 17.0;
  StateEntry out = StateEntry::decode(e.encode());
  EXPECT_EQ(out.reporter, ProcessId{7});
  EXPECT_EQ(out.reported_at, msec(123));
  EXPECT_DOUBLE_EQ(out.cpu_load, 0.5);
  EXPECT_DOUBLE_EQ(out.request_rate, 42.5);
  EXPECT_DOUBLE_EQ(out.extra.at("queue_depth"), 17.0);
}

}  // namespace
}  // namespace vdep::monitor
