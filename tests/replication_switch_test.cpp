// The Fig. 5 runtime style-switch protocol, under traffic and under crashes
// injected at many points around the switch — the property the paper claims:
// "the protocol ... can tolerate the crash failure of either the primary or
// of any of the backups", with every survivor agreeing on the switch
// sequence and application state staying exactly-once.
#include <gtest/gtest.h>

#include <tuple>

#include "adaptive/switch_protocol.hpp"
#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

using replication::ReplicationStyle;

Scenario make_scenario(ReplicationStyle style, int replicas = 3, int clients = 2) {
  ScenarioConfig config;
  config.clients = clients;
  config.replicas = replicas;
  config.max_replicas = replicas;
  config.style = style;
  return Scenario(config);
}

std::vector<std::vector<replication::Replicator::SwitchRecord>> live_histories(
    Scenario& scenario, int replicas) {
  std::vector<std::vector<replication::Replicator::SwitchRecord>> out;
  for (int i = 0; i < replicas; ++i) {
    if (scenario.replica_process(i).alive()) {
      out.push_back(scenario.replicator(i).switch_history());
    }
  }
  return out;
}

TEST(SwitchProtocol, PassiveToActiveUnderTraffic) {
  Scenario scenario = make_scenario(ReplicationStyle::kWarmPassive);
  scenario.kernel().post_at(sec(1), [&] {
    scenario.replicator(1).request_style_switch(ReplicationStyle::kActive);
  });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 600;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 1240u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(scenario.replicator(i).style(), ReplicationStyle::kActive);
  }
  // After the final checkpoint synchronized everyone, all replicas execute;
  // their states converge.
  scenario.drain();
  auto digests = scenario.live_state_digests();
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);

  auto histories = live_histories(scenario, 3);
  EXPECT_EQ(adaptive::validate_switch_agreement(histories), std::nullopt);
  ASSERT_EQ(histories[0].size(), 1u);
  EXPECT_EQ(histories[0][0].from, ReplicationStyle::kWarmPassive);
  EXPECT_EQ(histories[0][0].to, ReplicationStyle::kActive);
}

TEST(SwitchProtocol, ActiveToPassiveUnderTraffic) {
  Scenario scenario = make_scenario(ReplicationStyle::kActive);
  scenario.kernel().post_at(sec(1), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kWarmPassive);
  });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 600;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 1240u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(scenario.replicator(i).style(), ReplicationStyle::kWarmPassive);
  }
  // The new primary (rank 0) kept executing; exactly-once holds.
  EXPECT_EQ(scenario.servant(0).counter(), 1240u);
  EXPECT_TRUE(scenario.replicator(0).is_responder());
  EXPECT_FALSE(scenario.replicator(1).is_responder());
}

TEST(SwitchProtocol, DuplicateInitiationsCollapse) {
  // Fig. 5 step I: several replicas initiate concurrently; duplicates are
  // discarded and exactly one switch happens.
  Scenario scenario = make_scenario(ReplicationStyle::kWarmPassive);
  scenario.kernel().post_at(sec(1), [&] {
    for (int i = 0; i < 3; ++i) {
      scenario.replicator(i).request_style_switch(ReplicationStyle::kActive);
    }
  });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 400;
  cycle.warmup_requests = 20;
  (void)scenario.run_closed_loop(cycle);

  auto histories = live_histories(scenario, 3);
  EXPECT_EQ(adaptive::validate_switch_agreement(histories), std::nullopt);
  for (const auto& h : histories) EXPECT_EQ(h.size(), 1u);
}

TEST(SwitchProtocol, BackAndForthRepeatedly) {
  Scenario scenario = make_scenario(ReplicationStyle::kWarmPassive);
  for (int k = 0; k < 4; ++k) {
    scenario.kernel().post_at(msec(500) + msec(350) * k, [&, k] {
      scenario.replicator(0).request_style_switch(
          k % 2 == 0 ? ReplicationStyle::kActive : ReplicationStyle::kWarmPassive);
    });
  }

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 1200;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 2440u);

  auto histories = live_histories(scenario, 3);
  EXPECT_EQ(adaptive::validate_switch_agreement(histories), std::nullopt);
  ASSERT_EQ(histories[0].size(), 4u);
  EXPECT_EQ(scenario.replicator(0).style(), ReplicationStyle::kWarmPassive);
  // Exactly-once through all four switches: the final primary's counter is
  // the number of unique requests. (Backups legitimately lag by a checkpoint
  // window under the final warm-passive style, so digests are not compared.)
  scenario.drain();
  EXPECT_EQ(scenario.servant(0).counter(), 2440u);
}

TEST(SwitchProtocol, SemiActiveAndColdTargetsWork) {
  Scenario scenario = make_scenario(ReplicationStyle::kActive);
  scenario.kernel().post_at(msec(500), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kSemiActive);
  });
  scenario.kernel().post_at(msec(1000), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kColdPassive);
  });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 900;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 1840u);
  EXPECT_EQ(scenario.replicator(0).style(), ReplicationStyle::kColdPassive);
  EXPECT_EQ(scenario.servant(0).counter(), 1840u);
}

TEST(SwitchProtocol, SwitchRacingWithJoinerStateTransfer) {
  // A new replica is still waiting for its state transfer when the group
  // switches warm-passive -> active; the single checkpoint must serve as
  // both the transfer and the switch synchronization point.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.kernel().post_at(sec(1), [&] { scenario.set_replica_count(3); });
  scenario.kernel().post_at(sec(1) + msec(5), [&] {
    scenario.replicator(0).request_style_switch(ReplicationStyle::kActive);
  });

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 800;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  scenario.drain();

  EXPECT_EQ(result.completed, 820u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(scenario.replicator(i).style(), ReplicationStyle::kActive) << i;
  }
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

// Crash-at-every-offset sweep: a replica dies at a parameterized delay
// around the switch point. Whatever the interleaving (before the switch
// message, during the checkpoint, after completion), the survivors must
// finish the cycle, agree on the switch sequence, and preserve exactly-once.
class SwitchCrashTest
    : public ::testing::TestWithParam<std::tuple<int /*victim*/, int /*offset_ms*/>> {};

TEST_P(SwitchCrashTest, CrashAroundSwitchPreservesInvariants) {
  const int victim = std::get<0>(GetParam());
  const int offset_ms = std::get<1>(GetParam());

  Scenario scenario = make_scenario(ReplicationStyle::kWarmPassive);
  scenario.kernel().post_at(sec(1), [&] {
    scenario.replicator(2).request_style_switch(ReplicationStyle::kActive);
  });
  scenario.fault_plan().crash_process(sec(1) + msec(offset_ms),
                                      scenario.replica_pid(victim));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 700;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(240);
  const auto result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 1440u);
  EXPECT_EQ(scenario.live_replicas(), 2);

  // All survivors agree on what switches happened.
  auto histories = live_histories(scenario, 3);
  EXPECT_EQ(adaptive::validate_switch_agreement(histories), std::nullopt)
      << "victim=" << victim << " offset=" << offset_ms;

  // Exactly-once: every live responder's counter equals unique requests.
  std::uint64_t max_counter = 0;
  for (int i = 0; i < 3; ++i) {
    if (scenario.replica_process(i).alive()) {
      max_counter = std::max(max_counter, scenario.servant(i).counter());
    }
  }
  EXPECT_EQ(max_counter, 1440u);
}

INSTANTIATE_TEST_SUITE_P(
    CrashMatrix, SwitchCrashTest,
    ::testing::Combine(::testing::Values(0, 1, 2),  // primary or backups
                       // ms around the switch point, covering every protocol
                       // step: before initiation, the AGREED switch message,
                       // quiescence, the SAFE sync checkpoint, completion.
                       ::testing::Values(-50, 0, 1, 2, 5, 10, 25, 50, 100)),
    [](const auto& info) {
      const int victim = std::get<0>(info.param);
      const int offset = std::get<1>(info.param);
      return "victim" + std::to_string(victim) + "_offset" +
             (offset < 0 ? "m" + std::to_string(-offset) : std::to_string(offset));
    });

TEST(SwitchProtocol, CrashScheduleReplaysIdenticallyAfterWireRoundTrip) {
  // The chaos shrinker ships minimal reproducers as serialized fault plans;
  // a decoded plan must drive the switch-crash scenario to the exact same
  // outcome as the original.
  auto run_once = [](const net::FaultPlan& plan) {
    Scenario scenario = make_scenario(ReplicationStyle::kWarmPassive);
    scenario.fault_plan() = plan;
    scenario.kernel().post_at(sec(1), [&] {
      scenario.replicator(2).request_style_switch(ReplicationStyle::kActive);
    });
    Scenario::CycleConfig cycle;
    cycle.requests_per_client = 400;
    cycle.warmup_requests = 20;
    cycle.max_duration = sec(240);
    const auto result = scenario.run_closed_loop(cycle);
    scenario.drain();
    return std::make_tuple(result.completed, scenario.live_replicas(),
                           scenario.live_state_digests());
  };

  Scenario probe = make_scenario(ReplicationStyle::kWarmPassive);
  net::FaultPlan plan;
  plan.crash_process(sec(1) + msec(5), probe.replica_pid(0));

  const net::FaultPlan decoded = net::FaultPlan::decode(plan.encode());
  ASSERT_EQ(plan, decoded);
  const auto original = run_once(plan);
  const auto replayed = run_once(decoded);
  EXPECT_EQ(std::get<0>(original), 840u);
  EXPECT_EQ(original, replayed);
}

}  // namespace
}  // namespace vdep::harness
