#include <gtest/gtest.h>

#include "net/fault_plan.hpp"
#include "net/link.hpp"
#include "net/network.hpp"

namespace vdep::net {
namespace {

struct NetFixture : ::testing::Test {
  NetFixture() : kernel(1), network(kernel) {
    a = network.add_host("a");
    b = network.add_host("b");
  }

  void bind_collector(NodeId host, std::vector<Payload>& sink) {
    network.bind(host, Port::kTcp, [&sink](Packet&& p) {
      sink.push_back(std::move(p.payload));
    });
  }

  Packet make_packet(NodeId from, NodeId to, std::size_t size = 100) {
    Packet p;
    p.src = from;
    p.dst = to;
    p.port = Port::kTcp;
    p.payload = filler_bytes(size);
    return p;
  }

  sim::Kernel kernel;
  Network network;
  NodeId a, b;
};

TEST_F(NetFixture, DeliversToBoundHandler) {
  std::vector<Payload> got;
  bind_collector(b, got);
  network.send(make_packet(a, b));
  kernel.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], filler_bytes(100));
}

TEST_F(NetFixture, PropagationAndSerializationDelay) {
  std::vector<Payload> got;
  SimTime arrival = kTimeZero;
  network.bind(b, Port::kTcp, [&](Packet&&) { arrival = kernel.now(); });
  LinkParams link;
  link.propagation = usec(100);
  link.jitter_stddev = kTimeZero;
  link.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1000 bytes take 1 ms
  network.set_link_params(a, b, link);
  Packet p = make_packet(a, b);
  p.wire_bytes = 1000;
  network.send(std::move(p));
  kernel.run();
  EXPECT_EQ(arrival, usec(1100));
}

TEST_F(NetFixture, SerializationQueuesBackToBack) {
  std::vector<SimTime> arrivals;
  network.bind(b, Port::kTcp, [&](Packet&&) { arrivals.push_back(kernel.now()); });
  LinkParams link;
  link.propagation = kTimeZero;
  link.jitter_stddev = kTimeZero;
  link.bandwidth_bytes_per_sec = 1e6;
  network.set_link_params(a, b, link);
  for (int i = 0; i < 2; ++i) {
    Packet p = make_packet(a, b);
    p.wire_bytes = 1000;
    network.send(std::move(p));
  }
  kernel.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], msec(1));
  EXPECT_EQ(arrivals[1], msec(2));  // queued behind the first
}

TEST_F(NetFixture, LoopbackIsFreeAndUncounted) {
  std::vector<Payload> got;
  bind_collector(a, got);
  network.send(make_packet(a, a));
  kernel.run();
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(network.totals().bytes, 0u);
}

TEST_F(NetFixture, AccountingCountsWireBytes) {
  std::vector<Payload> got;
  bind_collector(b, got);
  Packet p = make_packet(a, b);
  p.wire_bytes = 500;
  network.send(std::move(p));
  kernel.run();
  EXPECT_EQ(network.totals().packets, 1u);
  EXPECT_EQ(network.totals().bytes, 500u);
  EXPECT_EQ(network.host_sent(a).bytes, 500u);
  EXPECT_EQ(network.host_sent(b).bytes, 0u);
}

TEST_F(NetFixture, UncountedControlTrafficExcluded) {
  std::vector<Payload> got;
  bind_collector(b, got);
  Packet p = make_packet(a, b);
  p.counted = false;
  network.send(std::move(p));
  kernel.run();
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(network.totals().bytes, 0u);
}

TEST_F(NetFixture, LossDropsUnreliablePackets) {
  std::vector<Payload> got;
  bind_collector(b, got);
  LinkParams link;
  link.loss_probability = 1.0;
  network.set_link_params(a, b, link);
  network.send(make_packet(a, b));
  kernel.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(network.totals().dropped_packets, 1u);
}

TEST_F(NetFixture, ReliablePacketsSurviveLossWithPenalty) {
  SimTime arrival = kTimeZero;
  network.bind(b, Port::kTcp, [&](Packet&&) { arrival = kernel.now(); });
  LinkParams link;
  link.loss_probability = 1.0;
  link.jitter_stddev = kTimeZero;
  network.set_link_params(a, b, link);
  Packet p = make_packet(a, b);
  p.reliable = true;
  network.send(std::move(p));
  kernel.run();
  EXPECT_GT(arrival, msec(1));  // retransmission penalty applied
}

TEST_F(NetFixture, PartitionCutsBothDirections) {
  std::vector<Payload> got_a, got_b;
  bind_collector(a, got_a);
  bind_collector(b, got_b);
  network.partition({a}, {b});
  Packet p1 = make_packet(a, b);
  p1.reliable = true;  // even reliable traffic cannot cross a partition
  network.send(std::move(p1));
  network.send(make_packet(b, a));
  kernel.run();
  EXPECT_TRUE(got_a.empty());
  EXPECT_TRUE(got_b.empty());
  network.heal_partitions();
  network.send(make_packet(a, b));
  kernel.run();
  EXPECT_EQ(got_b.size(), 1u);
}

TEST_F(NetFixture, DeadHostNeitherSendsNorReceives) {
  std::vector<Payload> got;
  bind_collector(b, got);
  network.set_host_up(a, false);
  network.send(make_packet(a, b));
  kernel.run();
  EXPECT_TRUE(got.empty());
  network.set_host_up(a, true);
  network.set_host_up(b, false);
  network.send(make_packet(a, b));
  kernel.run();
  EXPECT_TRUE(got.empty());
}

TEST_F(NetFixture, ResetTotalsClearsCounters) {
  std::vector<Payload> got;
  bind_collector(b, got);
  network.send(make_packet(a, b));
  kernel.run();
  EXPECT_GT(network.totals().bytes, 0u);
  network.reset_totals();
  EXPECT_EQ(network.totals().bytes, 0u);
  EXPECT_EQ(network.host_sent(a).bytes, 0u);
}

TEST(LinkHelpers, FragmentCounts) {
  EXPECT_EQ(fragment_count(0), 1u);
  EXPECT_EQ(fragment_count(1), 1u);
  EXPECT_EQ(fragment_count(1400), 1u);
  EXPECT_EQ(fragment_count(1401), 2u);
  EXPECT_EQ(fragment_count(14000), 10u);
}

TEST(LinkHelpers, WireBytesIncludePerFragmentHeaders) {
  EXPECT_EQ(wire_bytes(100, 50), 150u);
  EXPECT_EQ(wire_bytes(2800, 50), 2800u + 2u * 50u);
}

TEST(FaultPlan, CrashAndRestartProcesses) {
  sim::Kernel kernel(1);
  Network network(kernel);
  const NodeId h = network.add_host("h");
  sim::Process p(kernel, ProcessId{1}, h, "p");

  FaultPlan plan;
  plan.crash_process(msec(10), p.id());
  plan.restart_process(msec(20), p.id());
  plan.arm(kernel, network, {&p});

  kernel.run_until(msec(15));
  EXPECT_FALSE(p.alive());
  kernel.run_until(msec(25));
  EXPECT_TRUE(p.alive());
}

TEST(FaultPlan, NodeCrashKillsResidentProcesses) {
  sim::Kernel kernel(1);
  Network network(kernel);
  const NodeId h0 = network.add_host("h0");
  const NodeId h1 = network.add_host("h1");
  sim::Process p0(kernel, ProcessId{1}, h0, "p0");
  sim::Process p1(kernel, ProcessId{2}, h1, "p1");

  FaultPlan plan;
  plan.crash_node(msec(10), h0);
  plan.restore_node(msec(30), h0);
  plan.arm(kernel, network, {&p0, &p1});

  kernel.run_until(msec(20));
  EXPECT_FALSE(p0.alive());
  EXPECT_TRUE(p1.alive());
  EXPECT_FALSE(network.host_up(h0));
  kernel.run_until(msec(40));
  EXPECT_TRUE(network.host_up(h0));
}

TEST(FaultPlan, SlowHostWindowIsPerformanceFault) {
  sim::Kernel kernel(1);
  Network network(kernel);
  const NodeId h = network.add_host("h");
  FaultPlan plan;
  plan.slow_host(msec(10), msec(20), h, 4.0);
  plan.arm(kernel, network, {});
  kernel.run_until(msec(15));
  EXPECT_DOUBLE_EQ(network.cpu(h).slowdown(), 4.0);
  kernel.run_until(msec(25));
  EXPECT_DOUBLE_EQ(network.cpu(h).slowdown(), 1.0);
}

TEST(FaultPlan, LossBurstWindowRestoresCleanLink) {
  sim::Kernel kernel(1);
  Network network(kernel);
  const NodeId a = network.add_host("a");
  const NodeId b = network.add_host("b");
  FaultPlan plan;
  plan.loss_burst(msec(10), msec(20), a, b, 0.7);
  plan.arm(kernel, network, {});
  kernel.run_until(msec(15));
  EXPECT_DOUBLE_EQ(network.link_params(a, b).loss_probability, 0.7);
  EXPECT_DOUBLE_EQ(network.link_params(b, a).loss_probability, 0.7);
  kernel.run_until(msec(25));
  EXPECT_DOUBLE_EQ(network.link_params(a, b).loss_probability, 0.0);
}

}  // namespace
}  // namespace vdep::net
