// Incremental checkpointing end to end: anchored delta chains on a live
// warm-passive group, the bandwidth they save, the gap-recovery protocol,
// reply-cache retention under deltas, and crashes timed into the delta
// broadcast windows. Complements the codec/unit tests in
// replication_units_test.cpp and the app-level tests in app_kv_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "app/kv_store.hpp"
#include "chaos/campaign.hpp"
#include "harness/scenario.hpp"
#include "util/rng.hpp"

namespace vdep::harness {
namespace {

using app::KvStoreServant;
using replication::ReplicationStyle;

// --- delta cadence on the default micro-benchmark servant --------------------

TEST(DeltaCheckpoints, WarmPassiveCutsDeltasBetweenAnchors) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  config.checkpoint_anchor_interval = 4;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 250;
  cycle.warmup_requests = 20;
  const ExperimentResult result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 540u);

  // With K = 4 the chain runs F D D D F D D D ... — deltas dominate.
  auto& primary = scenario.replicator(0);
  EXPECT_GT(primary.checkpoints_full_taken(), 0u);
  EXPECT_GT(primary.checkpoints_delta_taken(), primary.checkpoints_full_taken());

  // Backups installed both kinds, in chain order, without ever needing an
  // anchor re-request on the healthy path.
  for (int i = 1; i < 3; ++i) {
    EXPECT_GT(scenario.replicator(i).installs_full(), 0u) << "replica " << i;
    EXPECT_GT(scenario.replicator(i).installs_delta(), 0u) << "replica " << i;
    EXPECT_EQ(scenario.replicator(i).anchor_requests_sent(), 0u) << "replica " << i;
  }

  // One more (delta) cut brings every backup to the primary's exact state.
  primary.take_checkpoint();
  scenario.drain();
  const auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

TEST(DeltaCheckpoints, AnchorIntervalOneNeverCutsADelta) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  config.checkpoint_anchor_interval = 1;  // the seed protocol
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 250;
  cycle.warmup_requests = 20;
  (void)scenario.run_closed_loop(cycle);

  EXPECT_GT(scenario.replicator(0).checkpoints_full_taken(), 0u);
  EXPECT_EQ(scenario.replicator(0).checkpoints_delta_taken(), 0u);
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(scenario.replicator(i).installs_delta(), 0u) << "replica " << i;
  }
}

// --- checkpoint bandwidth on a sparse-write KV workload -----------------------

// Builds a 2-replica warm-passive KV group, seeds `keys` entries, anchors,
// then runs `rounds` single-key writes with one checkpoint cut per write.
// Returns the primary's total checkpoint bytes; asserts the backup converged.
std::uint64_t sparse_write_checkpoint_bytes(std::uint32_t anchor_interval,
                                            int keys, int rounds) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kWarmPassive;
  config.checkpoint_anchor_interval = anchor_interval;
  // Checkpoints are driven manually below; push the periodic cadence out of
  // the simulated horizon so the cut schedule is identical across runs.
  config.checkpoint_interval = sec(600);
  config.checkpoint_every_requests = 1000000;
  config.make_servant = [](int) { return std::make_unique<KvStoreServant>(); };
  Scenario scenario(config);
  scenario.kernel().run_until(msec(300));  // group forms

  // Checkpoint content is application state, so seeding the primary servant
  // directly keeps the test free of client plumbing; the backup catches up
  // purely through the checkpoint stream.
  auto& primary_kv = dynamic_cast<KvStoreServant&>(scenario.app(0));
  for (int i = 0; i < keys; ++i) {
    (void)primary_kv.invoke("put",
                            KvStoreServant::encode_put("key" + std::to_string(i),
                                                       std::string(64, 'v')));
  }
  scenario.replicator(0).take_checkpoint(/*force_full=*/true);
  scenario.drain();

  for (int round = 0; round < rounds; ++round) {
    (void)primary_kv.invoke(
        "put", KvStoreServant::encode_put("key" + std::to_string(round % 3),
                                          "round" + std::to_string(round)));
    scenario.replicator(0).take_checkpoint();
    scenario.drain();
  }

  EXPECT_EQ(scenario.app(1).state_digest(), primary_kv.state_digest())
      << "anchor_interval " << anchor_interval;
  return scenario.replicator(0).checkpoint_bytes_sent();
}

TEST(DeltaCheckpoints, SparseWritesCutCheckpointBytesAtLeastFivefold) {
  // ~1% of 256 keys dirty per cut: the ISSUE's headline ratio, measured on
  // the live wire (encoded CheckpointMsg bytes, not raw app deltas).
  const std::uint64_t full_every_time = sparse_write_checkpoint_bytes(1, 256, 12);
  const std::uint64_t anchored_chain = sparse_write_checkpoint_bytes(16, 256, 12);
  EXPECT_GT(full_every_time, anchored_chain * 5)
      << "full=" << full_every_time << " delta-chain=" << anchored_chain;
}

// --- property: random ops + random cut boundaries == monolithic restore -------

TEST(DeltaCheckpoints, RandomChainReplayMatchesMonolithicSnapshot) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    ScenarioConfig config;
    config.clients = 1;
    config.replicas = 2;
    config.max_replicas = 2;
    config.style = ReplicationStyle::kWarmPassive;
    config.checkpoint_anchor_interval =
        static_cast<std::uint32_t>(rng.range(2, 6));
    config.checkpoint_interval = sec(600);
    config.checkpoint_every_requests = 1000000;
    config.make_servant = [](int) { return std::make_unique<KvStoreServant>(); };
    Scenario scenario(config);
    scenario.kernel().run_until(msec(300));

    auto& primary_kv = dynamic_cast<KvStoreServant&>(scenario.app(0));
    const int cuts = static_cast<int>(rng.range(4, 10));
    for (int cut = 0; cut < cuts; ++cut) {
      const int ops = static_cast<int>(rng.range(0, 12));
      for (int op = 0; op < ops; ++op) {
        const std::string key = "k" + std::to_string(rng.range(0, 15));
        switch (rng.range(0, 2)) {
          case 0:
            (void)primary_kv.invoke(
                "put", KvStoreServant::encode_put(key, std::to_string(rng.next() % 1000)));
            break;
          case 1:
            (void)primary_kv.invoke("append",
                                    KvStoreServant::encode_append(key, "+"));
            break;
          default:
            (void)primary_kv.invoke("erase", KvStoreServant::encode_key(key));
        }
      }
      // Random full/delta boundary: occasionally force an anchor mid-chain.
      scenario.replicator(0).take_checkpoint(/*force_full=*/rng.chance(0.25));
      scenario.drain();
    }

    // The backup assembled its state purely from the anchor + delta chain;
    // a monolithic snapshot/restore of the primary must land on the same
    // digest, byte for byte.
    KvStoreServant monolithic;
    monolithic.restore(primary_kv.snapshot());
    EXPECT_EQ(scenario.app(1).state_digest(), monolithic.state_digest())
        << "seed " << seed;
    EXPECT_EQ(scenario.replicator(1).anchor_requests_sent(), 0u) << "seed " << seed;
  }
}

// --- failover and retention under delta chains --------------------------------

TEST(DeltaCheckpoints, PromotedBackupStaysExactlyOnceUnderDeltas) {
  // The reply cache travels in every checkpoint — full or delta — so a
  // promoted warm backup must still dedup the in-flight retransmission.
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  config.checkpoint_anchor_interval = 4;
  Scenario scenario(config);
  scenario.fault_plan().crash_process(sec(1), scenario.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 700;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 1440u);
  EXPECT_EQ(scenario.live_replicas(), 2);
  // Exactly-once at the application despite failover mid-chain.
  EXPECT_EQ(scenario.servant(1).counter(), 1440u);
  // The restored cache stays bounded by the per-checkpoint retention window.
  EXPECT_LE(scenario.replicator(1).reply_cache().size(), std::size_t{4096});
  EXPECT_GT(scenario.replicator(1).reply_cache().size(), 0u);
}

TEST(DeltaCheckpoints, RecoveredReplicaRejoinsThroughDeltaStateTransfer) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kWarmPassive;
  config.checkpoint_anchor_interval = 4;
  config.auto_recover = true;
  Scenario scenario(config);
  // A backup dies mid-chain and comes back: the rejoin donation must bundle
  // the anchor plus the delta suffix, never a bare delta.
  scenario.fault_plan().crash_process(msec(500), scenario.replica_pid(2));
  scenario.fault_plan().restart_process(msec(900), scenario.replica_pid(2));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 400;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 840u);
  EXPECT_EQ(scenario.live_replicas(), 3);
  EXPECT_TRUE(scenario.replicator(2).initialized());
  // The rejoiner got at least one full install (the donated anchor)…
  EXPECT_GE(scenario.replicator(2).installs_full(), 1u);

  // …and converges with the primary once one more cut lands.
  scenario.replicator(0).take_checkpoint();
  scenario.drain();
  const auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
}

}  // namespace
}  // namespace vdep::harness

// --- chaos matrix: crashes timed into the delta chain -------------------------

namespace vdep::chaos {
namespace {

// Sweeps the crash instant across a window that covers several checkpoint
// rounds (every 10 requests ≈ every ~60 ms here), so some trials kill the
// primary mid-delta-broadcast and others between an anchor and its dependent
// delta. The invariant oracles judge each run: no wedge, no stale promote,
// exactly-once, all clients finish. Deterministic from (seed, crash time).
TEST(ChaosDeltaMatrix, PrimaryCrashSweptAcrossDeltaBroadcastWindows) {
  for (int step = 0; step < 8; ++step) {
    TrialConfig config;
    config.seed = 41 + static_cast<std::uint64_t>(step);
    config.style = replication::ReplicationStyle::kWarmPassive;
    config.clients = 2;
    config.replicas = 3;
    config.checkpoint_every_requests = 10;
    config.checkpoint_anchor_interval = 4;

    net::FaultPlan plan;
    const SimTime crash_at = msec(500) + msec(37) * step;
    // Replica pids are deterministic per scenario layout; pid of replica 0
    // is the same across trials of identical shape, so build a throwaway
    // scenario to read it.
    {
      harness::ScenarioConfig sc;
      sc.replicas = config.replicas;
      sc.max_replicas = config.replicas;
      harness::Scenario scenario(sc);
      plan.crash_process(crash_at, scenario.replica_pid(0));
    }

    const TrialResult result = run_trial(config, plan);
    EXPECT_TRUE(result.pass())
        << "crash at step " << step << ":\n"
        << [&] {
             std::string all;
             for (const auto& f : result.verdict.failures) all += f + "\n";
             return all;
           }();
    EXPECT_GT(result.completed_ops, 0u);
  }
}

// Same sweep with the anchor cadence stretched (K = 8) and the crash window
// pushed right after checkpoint rounds begin: long delta chains make the
// anchor → dependent-delta gap wide, so a promote in that gap exercises the
// anchor re-request path instead of wedging on an uninstallable delta.
TEST(ChaosDeltaMatrix, CrashBetweenAnchorAndDependentDeltaRecovers) {
  for (int step = 0; step < 6; ++step) {
    TrialConfig config;
    config.seed = 97 + static_cast<std::uint64_t>(step);
    config.style = replication::ReplicationStyle::kWarmPassive;
    config.clients = 2;
    config.replicas = 3;
    config.checkpoint_every_requests = 10;
    config.checkpoint_anchor_interval = 8;

    net::FaultPlan plan;
    const SimTime crash_at = msec(620) + msec(53) * step;
    {
      harness::ScenarioConfig sc;
      sc.replicas = config.replicas;
      sc.max_replicas = config.replicas;
      harness::Scenario scenario(sc);
      plan.crash_process(crash_at, scenario.replica_pid(0));
    }

    const TrialResult result = run_trial(config, plan);
    EXPECT_TRUE(result.pass())
        << "crash at step " << step << ":\n"
        << [&] {
             std::string all;
             for (const auto& f : result.verdict.failures) all += f + "\n";
             return all;
           }();
  }
}

}  // namespace
}  // namespace vdep::chaos
