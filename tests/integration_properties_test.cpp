// Property-style sweeps over seeds: the macroscopic invariants and paper
// shapes must hold for every random seed, not just the default one.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

using replication::ReplicationStyle;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, ActiveReplicasStayConsistentAndExactlyOnce) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.clients = 2;
  config.replicas = 3;
  config.max_replicas = 3;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 300;
  cycle.warmup_requests = 20;
  const auto result = scenario.run_closed_loop(cycle);

  EXPECT_EQ(result.completed, 640u);
  scenario.drain();
  auto digests = scenario.live_state_digests();
  ASSERT_EQ(digests.size(), 3u);
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[1], digests[2]);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(scenario.servant(i).counter(), 640u);
}

TEST_P(SeedSweep, WarmPassiveFailoverExactlyOnce) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 2;
  config.style = ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  scenario.fault_plan().crash_process(msec(700), scenario.replica_pid(0));

  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 500;
  cycle.warmup_requests = 20;
  cycle.max_duration = sec(120);
  const auto result = scenario.run_closed_loop(cycle);
  EXPECT_EQ(result.completed, 520u);
  scenario.drain();
  EXPECT_EQ(scenario.servant(1).counter(), 520u) << "seed " << GetParam();
}

TEST_P(SeedSweep, PaperShapePassiveSlowerActiveHungrier) {
  SweepConfig sweep;
  sweep.seed = GetParam();
  sweep.requests_per_client = 1500;
  const auto active = run_design_point(sweep, ReplicationStyle::kActive, 3, 3);
  const auto passive = run_design_point(sweep, ReplicationStyle::kWarmPassive, 3, 3);

  // Fig. 7(a): passive pays checkpoint quiescence.
  EXPECT_GT(passive.latency_us, active.latency_us * 1.4) << "seed " << GetParam();
  // Fig. 7(b): active's request fan-out dominates passive's checkpoint
  // stream at 3 clients.
  EXPECT_GT(active.bandwidth_mbps, passive.bandwidth_mbps * 0.95)
      << "seed " << GetParam();
  // Jitter: checkpoint blackouts dominate (Fig. 4's tall error bar).
  EXPECT_GT(passive.jitter_us, active.jitter_us) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u, 987654321u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(Determinism, IdenticalSeedsIdenticalResults) {
  auto run_once = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.seed = seed;
    config.clients = 2;
    config.replicas = 2;
    config.style = ReplicationStyle::kWarmPassive;
    Scenario scenario(config);
    Scenario::CycleConfig cycle;
    cycle.requests_per_client = 300;
    cycle.warmup_requests = 20;
    const auto r = scenario.run_closed_loop(cycle);
    scenario.drain();
    return std::make_tuple(r.avg_latency_us, r.bandwidth_mbps, r.completed,
                           scenario.servant(0).state_digest());
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(std::get<0>(run_once(99)), std::get<0>(run_once(100)));
}

TEST(PaperShape, Figure3BreakdownBallpark) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 1;
  config.max_replicas = 1;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = 2000;
  const auto result = scenario.run_closed_loop(cycle);
  // Paper Fig. 3: 1187 us total. Within 15%.
  EXPECT_NEAR(result.avg_latency_us, 1187.0, 180.0);
}

TEST(PaperShape, Figure4InterceptionCheapReplicationCostly) {
  auto run_mode = [](bool replicated, interpose::InterceptMode mode) {
    ScenarioConfig config;
    config.clients = 1;
    config.replicas = 1;
    config.max_replicas = 1;
    config.replicated = replicated;
    config.intercept = mode;
    Scenario scenario(config);
    Scenario::CycleConfig cycle;
    cycle.requests_per_client = 800;
    return scenario.run_closed_loop(cycle).avg_latency_us;
  };
  const double baseline = run_mode(false, interpose::InterceptMode::kNone);
  const double both = run_mode(false, interpose::InterceptMode::kBoth);
  const double active = run_mode(true, interpose::InterceptMode::kNone);

  // Interception alone adds little; the replication path roughly doubles RTT.
  EXPECT_LT(both, baseline * 1.25);
  EXPECT_GT(both, baseline * 1.02);
  EXPECT_GT(active, baseline * 1.7);
}

TEST(PaperShape, ScalabilityCrossoverNearThreeClients) {
  // The decisive Table 2 shape: A(3) fits the 3 MB/s plane at 2 clients and
  // breaks it at 3 — that bandwidth crossover is what flips the policy to
  // warm passive.
  SweepConfig sweep;
  sweep.requests_per_client = 2500;
  const auto a3_2 = run_design_point(sweep, ReplicationStyle::kActive, 3, 2);
  const auto a3_3 = run_design_point(sweep, ReplicationStyle::kActive, 3, 3);
  EXPECT_LT(a3_2.bandwidth_mbps, 3.0);
  EXPECT_GT(a3_3.bandwidth_mbps, 3.0);
}

TEST(OpenLoop, ServesPlannedRate) {
  ScenarioConfig config;
  config.clients = 2;
  config.replicas = 2;
  config.style = ReplicationStyle::kActive;
  Scenario scenario(config);
  Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan::constant(400);
  open.duration = sec(5);
  const auto result = scenario.run_open_loop(open);
  // ~2000 requests offered; active absorbs them all.
  EXPECT_NEAR(static_cast<double>(result.totals.completed), 2000.0, 200.0);
  EXPECT_LT(result.totals.avg_latency_us, 4000.0);
}

}  // namespace
}  // namespace vdep::harness
