// Harness-layer units: report rendering, rate plans, open/closed-loop
// drivers, and the design-space profiler plumbing.
#include <gtest/gtest.h>

#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"

namespace vdep::harness {
namespace {

TEST(Report, TableAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22.5  |"), std::string::npos);
  // Frame rules above header, below header, below body (count rule *lines*).
  std::size_t rules = 0;
  for (std::size_t pos = 0; pos < out.size();) {
    if (out[pos] == '+') ++rules;
    pos = out.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Report, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1000.0), "1000.0");
  EXPECT_EQ(Table::num(0.5, 3), "0.500");
}

TEST(Report, BarsScaleToMax) {
  const std::string out = render_bars("title", "us",
                                      {{"a", 50.0, 0.0}, {"b", 100.0, 10.0}}, 10);
  EXPECT_NE(out.find("title"), std::string::npos);
  // b occupies ~10/11 of the width (value+error scales the axis), a about half.
  EXPECT_NE(out.find("+/- 10.0"), std::string::npos);
  EXPECT_NE(out.find("50.0 us"), std::string::npos);
}

TEST(Report, SeriesRendersResampledRows) {
  sim::TimeSeries series("x");
  series.record(msec(100), 5.0);
  series.record(msec(600), 10.0);
  const std::string out =
      render_series("t", series, kTimeZero, sec(1), msec(500), 10.0, 10);
  // Three rows: 0s, 0.5s, 1.0s.
  EXPECT_NE(out.find("0.00s"), std::string::npos);
  EXPECT_NE(out.find("0.50s"), std::string::npos);
  EXPECT_NE(out.find("1.00s"), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);
}

TEST(Report, WriteCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vdep_test.csv";
  ASSERT_TRUE(write_csv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[128];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n3,4\n");
  EXPECT_FALSE(write_csv("/nonexistent-dir/x.csv", {"a"}, {}));
}

TEST(RatePlan, PiecewiseLookup) {
  std::vector<app::RatePlan::Segment> segments{{kTimeZero, 100.0}, {sec(2), 500.0}};
  app::RatePlan plan(segments);
  EXPECT_DOUBLE_EQ(plan.rate_at(sec(1)), 100.0);
  EXPECT_DOUBLE_EQ(plan.rate_at(sec(2)), 500.0);
  EXPECT_DOUBLE_EQ(plan.rate_at(sec(9)), 500.0);
  EXPECT_EQ(plan.end_of_last_segment(), sec(2));
}

TEST(RatePlan, ConstantAndBurstFactories) {
  EXPECT_DOUBLE_EQ(app::RatePlan::constant(42).rate_at(sec(100)), 42.0);
  const auto burst = app::RatePlan::fig6_burst(100, 900, sec(1), 4);
  EXPECT_DOUBLE_EQ(burst.rate_at(msec(500)), 100.0);
  EXPECT_DOUBLE_EQ(burst.rate_at(msec(1500)), 900.0);
  EXPECT_DOUBLE_EQ(burst.rate_at(msec(2500)), 100.0);
  EXPECT_DOUBLE_EQ(burst.rate_at(msec(3500)), 900.0);
}

TEST(Experiment, RunDesignPointProducesSaneMetrics) {
  SweepConfig sweep;
  sweep.requests_per_client = 300;
  sweep.warmup_requests = 30;
  const auto p =
      run_design_point(sweep, replication::ReplicationStyle::kActive, 2, 1);
  EXPECT_EQ(p.config.replicas, 2);
  EXPECT_EQ(p.clients, 1);
  EXPECT_EQ(p.faults_tolerated, 1);
  EXPECT_GT(p.latency_us, 1000.0);
  EXPECT_GT(p.bandwidth_mbps, 0.1);
  EXPECT_GT(p.throughput_rps, 100.0);
  EXPECT_GT(p.jitter_us, 0.0);
}

TEST(Experiment, ProfileGridCoversAllCombinations) {
  SweepConfig sweep;
  sweep.requests_per_client = 120;
  sweep.warmup_requests = 20;
  sweep.styles = {replication::ReplicationStyle::kActive};
  sweep.replica_counts = {1, 2};
  sweep.client_counts = {1, 2};
  int observed = 0;
  const auto map = harness::profile_design_space(
      sweep, [&observed](const knobs::DesignPoint&) { ++observed; });
  EXPECT_EQ(observed, 4);
  EXPECT_EQ(map.points().size(), 4u);
  EXPECT_TRUE(map.find({replication::ReplicationStyle::kActive, 2}, 2).has_value());
}

TEST(Scenario, KnobControllerInterfaceRoundTrips) {
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 2;
  config.max_replicas = 3;
  config.style = replication::ReplicationStyle::kWarmPassive;
  Scenario scenario(config);
  // Boot the replicas.
  scenario.kernel().run_until(msec(100));

  EXPECT_EQ(scenario.replica_count(), 2);
  EXPECT_EQ(scenario.style(), replication::ReplicationStyle::kWarmPassive);
  EXPECT_EQ(scenario.checkpoint_interval(), calib::kDefaultCheckpointInterval);

  scenario.set_checkpoint_interval(msec(80));
  EXPECT_EQ(scenario.checkpoint_interval(), msec(80));
  EXPECT_EQ(scenario.replicator(0).checkpoint_interval(), msec(80));

  scenario.set_replica_count(3);
  scenario.kernel().run_until(msec(600));
  EXPECT_EQ(scenario.replica_count(), 3);

  scenario.set_style(replication::ReplicationStyle::kActive);
  scenario.kernel().run_until(msec(1200));
  EXPECT_EQ(scenario.style(), replication::ReplicationStyle::kActive);
}

TEST(Scenario, OpenLoopSuppressionUnderOverload) {
  // Offered far beyond capacity: the client caps in-flight work and sheds
  // the excess instead of melting down.
  ScenarioConfig config;
  config.clients = 1;
  config.replicas = 1;
  config.max_replicas = 1;
  config.style = replication::ReplicationStyle::kActive;
  Scenario scenario(config);
  Scenario::OpenLoopConfig open;
  open.plan = app::RatePlan::constant(5000);  // >> ~800/s capacity of 1 closed pipe
  open.duration = sec(2);
  const auto result = scenario.run_open_loop(open);
  EXPECT_GT(result.totals.completed, 500u);
  EXPECT_LT(result.totals.completed, 9000u);
}

}  // namespace
}  // namespace vdep::harness
