#include <gtest/gtest.h>

#include "gcs/message.hpp"

namespace vdep::gcs {
namespace {

TEST(View, EncodeDecodeAndQueries) {
  View v;
  v.group = GroupId{7};
  v.view_id = 3;
  v.members = {{ProcessId{10}, NodeId{1}}, {ProcessId{20}, NodeId{2}}};

  const View d = View::decode(v.encode());
  EXPECT_EQ(d, v);
  EXPECT_TRUE(d.contains(ProcessId{10}));
  EXPECT_FALSE(d.contains(ProcessId{11}));
  EXPECT_EQ(d.daemon_of(ProcessId{20}), NodeId{2});
  EXPECT_EQ(d.rank_of(ProcessId{10}), 0u);
  EXPECT_EQ(d.rank_of(ProcessId{20}), 1u);
  EXPECT_FALSE(d.rank_of(ProcessId{99}).has_value());
  EXPECT_EQ(d.size(), 2u);
}

TEST(InnerMsg, ForwardRoundTrip) {
  Forward f;
  f.group = GroupId{1};
  f.kind = Forward::Kind::kJoin;
  f.svc = ServiceType::kSafe;
  f.origin = OriginId{ProcessId{5}, 42};
  f.origin_daemon = NodeId{3};
  f.payload = filler_bytes(33);

  auto decoded = decode_inner(encode_inner(f));
  auto* d = std::get_if<Forward>(&decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, Forward::Kind::kJoin);
  EXPECT_EQ(d->svc, ServiceType::kSafe);
  EXPECT_EQ(d->origin, (OriginId{ProcessId{5}, 42}));
  EXPECT_EQ(d->origin_daemon, NodeId{3});
  EXPECT_EQ(d->payload, filler_bytes(33));
}

TEST(InnerMsg, OrderedRoundTrip) {
  Ordered o;
  o.group = GroupId{2};
  o.epoch = 4;
  o.seq = 17;
  o.kind = Ordered::Kind::kView;
  o.svc = ServiceType::kAgreed;
  o.origin = OriginId{ProcessId{1}, 2};
  o.origin_daemon = NodeId{0};
  o.payload = filler_bytes(8);
  o.prev_epoch_end = 12;
  o.stable_upto = 9;

  auto decoded = decode_inner(encode_inner(o));
  auto* d = std::get_if<Ordered>(&decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->epoch, 4u);
  EXPECT_EQ(d->seq, 17u);
  EXPECT_EQ(d->kind, Ordered::Kind::kView);
  EXPECT_EQ(d->prev_epoch_end, 12u);
  EXPECT_EQ(d->stable_upto, 9u);
}

TEST(InnerMsg, AcksAndControlRoundTrip) {
  {
    auto decoded = decode_inner(encode_inner(OrdAck{NodeId{1}, GroupId{2}, 3, 4}));
    auto* d = std::get_if<OrdAck>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->from, NodeId{1});
    EXPECT_EQ(d->seq, 4u);
  }
  {
    auto decoded = decode_inner(encode_inner(StableMsg{GroupId{2}, 3, 11}));
    auto* d = std::get_if<StableMsg>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->upto, 11u);
  }
  {
    auto decoded = decode_inner(encode_inner(Takeover{9, NodeId{4}}));
    auto* d = std::get_if<Takeover>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->term, 9u);
    EXPECT_EQ(d->leader, NodeId{4});
  }
  {
    auto decoded =
        decode_inner(encode_inner(FwdAck{GroupId{1}, OriginId{ProcessId{2}, 3}}));
    auto* d = std::get_if<FwdAck>(&decoded);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->origin.seq, 3u);
  }
}

TEST(InnerMsg, SyncStateRoundTrip) {
  SyncState st;
  st.term = 2;
  st.from = NodeId{1};
  Ordered o;
  o.group = GroupId{1};
  o.epoch = 1;
  o.seq = 5;
  st.buffered.push_back(o);
  Forward f;
  f.group = GroupId{1};
  f.origin = OriginId{ProcessId{9}, 1};
  st.pending.push_back(f);
  View v;
  v.group = GroupId{1};
  v.view_id = 1;
  st.views.push_back(v);
  st.acks.push_back(OrdAck{NodeId{1}, GroupId{1}, 1, 4});

  auto decoded = decode_inner(encode_inner(st));
  auto* d = std::get_if<SyncState>(&decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->buffered.size(), 1u);
  EXPECT_EQ(d->pending.size(), 1u);
  EXPECT_EQ(d->views.size(), 1u);
  EXPECT_EQ(d->acks.size(), 1u);
  EXPECT_EQ(d->buffered[0].seq, 5u);
  EXPECT_EQ(d->acks[0].seq, 4u);
}

TEST(InnerMsg, PrivateMsgRoundTrip) {
  PrivateMsg p;
  p.sender = ProcessId{1};
  p.sender_daemon = NodeId{0};
  p.destination = ProcessId{2};
  p.payload = filler_bytes(64);
  auto decoded = decode_inner(encode_inner(p));
  auto* d = std::get_if<PrivateMsg>(&decoded);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->destination, ProcessId{2});
  EXPECT_EQ(d->payload, filler_bytes(64));
}

TEST(InnerMsg, BadTagThrows) {
  Bytes junk{99, 0, 0};
  EXPECT_THROW((void)decode_inner(junk), DecodeError);
}

TEST(InnerMsg, PayloadSizeAccounting) {
  Forward f;
  f.payload = filler_bytes(100);
  EXPECT_EQ(inner_payload_size(InnerMsg{f}), 100u);
  EXPECT_EQ(inner_payload_size(InnerMsg{OrdAck{}}), 0u);
  PrivateMsg p;
  p.payload = filler_bytes(7);
  EXPECT_EQ(inner_payload_size(InnerMsg{p}), 7u);
}

TEST(ServiceType, Names) {
  EXPECT_EQ(to_string(ServiceType::kAgreed), "agreed");
  EXPECT_EQ(to_string(ServiceType::kSafe), "safe");
  EXPECT_EQ(to_string(ServiceType::kBestEffort), "best_effort");
}

}  // namespace
}  // namespace vdep::gcs
