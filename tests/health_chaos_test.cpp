// The health-plane acceptance campaign: 200 seeded chaos trials with the
// live health plane attached and the detection oracle armed — every injected
// replica crash and partition must be flagged by a matching HealthEvent
// within the configured detection bound, with no missed detections — plus
// fault-free control trials that must stay completely silent (zero suspect /
// breach events), and a byte-determinism check on the event stream. Labeled
// `chaos`: excluded from the tier1 quick gate, run by scripts/ci.sh.
#include <gtest/gtest.h>

#include "chaos/campaign.hpp"

namespace vdep::chaos {
namespace {

TEST(HealthChaosCampaign, TwoHundredTrialsEveryFaultDetectedInBound) {
  CampaignConfig config;
  config.seed = 5;
  config.trials = 200;
  config.base.health = true;
  // Run on the trial fleet: the campaign contract makes workers a pure
  // throughput knob (byte-identical results), and this keeps the health
  // campaign exercising the parallel path at acceptance width.
  config.workers = 8;

  const CampaignResult result = run_campaign(config);

  for (const auto& failure : result.failures) {
    ADD_FAILURE() << "trial " << failure.trial_index << " (style "
                  << replication::style_code(failure.config.style) << ", "
                  << failure.config.replicas << " replicas, seed "
                  << failure.config.seed << "):\n  "
                  << [&] {
                       std::string all;
                       for (const auto& f : failure.failures) all += f + "\n  ";
                       return all;
                     }()
                  << "schedule:\n"
                  << failure.plan.to_string();
  }
  EXPECT_EQ(result.passed, 200);
  EXPECT_TRUE(result.all_passed());

  // No injected crash/partition escaped detection, and the campaign recorded
  // a per-fault detection-latency distribution whose tail respects the bound.
  EXPECT_EQ(result.metrics.counter("chaos.detection_missed"), 0u);
  const auto* detection = result.metrics.distribution("chaos.detection_ms");
  ASSERT_NE(detection, nullptr);
  EXPECT_GT(detection->count(), 100u);  // most trials inject >= 1 detectable fault
  const auto p50 = result.metrics.percentile("chaos.detection_ms", 50);
  const auto p99 = result.metrics.percentile("chaos.detection_ms", 99);
  ASSERT_TRUE(p50.has_value());
  ASSERT_TRUE(p99.has_value());
  EXPECT_LE(*p50, *p99);
  EXPECT_LE(*p99, to_msec(config.base.detection_bound));
  EXPECT_GT(result.metrics.counter("chaos.health_events"), 0u);
}

TEST(HealthChaosCampaign, FaultFreeControlTrialsRaiseNoAlarm) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    TrialConfig config;
    config.seed = seed;
    config.health = true;
    config.faults = SchedulePolicy{};
    config.faults.crash_recoveries = 0;
    config.faults.loss_bursts = 0;
    config.faults.partitions = 0;
    config.faults.slow_hosts = 0;

    const TrialResult result = run_trial(config);
    // check_detection treats every alarm in a fault-free trial as a failure,
    // so pass() already covers "zero false alarms" — assert it explicitly
    // and double-check the observation was judged in control mode.
    EXPECT_TRUE(result.health_observation.fault_free) << "seed " << seed;
    EXPECT_TRUE(result.pass())
        << "seed " << seed << ":\n"
        << result.verdict.to_string() << "\nevents:\n"
        << monitor::health::render_text(result.health_observation.events);
  }
}

TEST(HealthChaosCampaign, EventStreamByteIdenticalAcrossReruns) {
  for (std::uint64_t seed : {3u, 17u, 42u}) {
    TrialConfig config;
    config.seed = seed;
    config.health = true;
    const TrialResult first = run_trial(config);
    const TrialResult second = run_trial(config);
    const std::string a = monitor::health::render_text(first.health_observation.events);
    const std::string b = monitor::health::render_text(second.health_observation.events);
    EXPECT_FALSE(a.empty()) << "seed " << seed;
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

}  // namespace
}  // namespace vdep::chaos
