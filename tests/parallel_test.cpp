// Work-stealing pool and lookahead-windowed engine tests.
//
// The StealPool tests pin the pool's liveness contract (every submitted task
// runs exactly once, from outside threads and from nested fan-outs alike);
// the WindowedEngine tests pin the determinism contract — a seeded model run
// at workers {1, 2, 8} produces a byte-identical execution log.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/parallel/steal_deque.hpp"
#include "sim/parallel/steal_pool.hpp"
#include "sim/parallel/windowed.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace vdep::sim::parallel {
namespace {

// --- StealDeque (single-threaded semantics) --------------------------------

TEST(StealDeque, OwnerPushPopIsLifo) {
  StealDeque<int> dq;
  int a = 1, b = 2, c = 3;
  ASSERT_TRUE(dq.push_bottom(&a));
  ASSERT_TRUE(dq.push_bottom(&b));
  ASSERT_TRUE(dq.push_bottom(&c));
  EXPECT_EQ(dq.pop_bottom(), &c);
  EXPECT_EQ(dq.pop_bottom(), &b);
  EXPECT_EQ(dq.pop_bottom(), &a);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
}

TEST(StealDeque, StealTakesOldestFirst) {
  StealDeque<int> dq;
  int a = 1, b = 2;
  ASSERT_TRUE(dq.push_bottom(&a));
  ASSERT_TRUE(dq.push_bottom(&b));
  EXPECT_EQ(dq.steal_top(), &a);  // FIFO from the top
  EXPECT_EQ(dq.pop_bottom(), &b);
  EXPECT_EQ(dq.steal_top(), nullptr);
}

TEST(StealDeque, RejectsPushWhenFull) {
  StealDeque<int> dq;
  int x = 0;
  std::size_t pushed = 0;
  while (dq.push_bottom(&x)) ++pushed;
  EXPECT_EQ(pushed, dq.capacity());
  EXPECT_FALSE(dq.push_bottom(&x));
  EXPECT_EQ(dq.pop_bottom(), &x);
  EXPECT_TRUE(dq.push_bottom(&x));  // slot freed
}

// --- StealPool --------------------------------------------------------------

TEST(StealPool, RunsEverySubmittedTaskExactlyOnce) {
  constexpr int kTasks = 4096;
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  {
    StealPool pool(4);
    TaskGroup group;
    for (int i = 0; i < kTasks; ++i) {
      pool.submit(group, [&runs, i] { runs[static_cast<std::size_t>(i)].fetch_add(1); });
    }
    group.wait(pool);
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(StealPool, NestedFanOutFromWorkerDoesNotDeadlock) {
  // Each outer task fans out an inner batch and waits on it from inside the
  // pool — the classic helping-wait deadlock shape (parallel shrinker inside
  // a campaign worker). With 2 workers and 8 outer tasks this deadlocks
  // unless wait() helps.
  StealPool pool(2);
  TaskGroup outer;
  std::atomic<int> inner_runs{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit(outer, [&pool, &inner_runs] {
      TaskGroup inner;
      for (int j = 0; j < 16; ++j) {
        pool.submit(inner, [&inner_runs] { inner_runs.fetch_add(1); });
      }
      inner.wait(pool);
    });
  }
  outer.wait(pool);
  EXPECT_EQ(inner_runs.load(), 8 * 16);
}

TEST(StealPool, GroupIsReusableAcrossWaves) {
  StealPool pool(2);
  TaskGroup group;
  std::atomic<int> runs{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 32; ++i) pool.submit(group, [&runs] { runs.fetch_add(1); });
    group.wait(pool);
    EXPECT_EQ(group.pending(), 0u);
  }
  EXPECT_EQ(runs.load(), 10 * 32);
}

TEST(StealPool, TryRunOneDrainsInjector) {
  StealPool pool(1);
  // Park the worker in a blocking task so the tasks injected afterwards stay
  // available to the caller; wait until the worker has actually taken it, or
  // this thread's try_run_one could grab the blocker and spin forever.
  std::atomic<bool> grabbed{false};
  std::atomic<bool> release{false};
  TaskGroup group;
  pool.submit(group, [&grabbed, &release] {
    grabbed.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  while (!grabbed.load(std::memory_order_acquire)) std::this_thread::yield();

  std::atomic<int> runs{0};
  for (int i = 0; i < 4; ++i) pool.submit(group, [&runs] { runs.fetch_add(1); });
  while (runs.load() < 4) {
    if (!pool.try_run_one()) std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  group.wait(pool);
  EXPECT_EQ(runs.load(), 4);
}

// --- WindowedEngine ----------------------------------------------------------
//
// Model used by the determinism tests: a small cluster where every host runs
// seeded local churn (self-reposting events at sub-lookahead delays, i.e.
// heavy intra-window work) and periodically sends seeded "requests" to a
// neighbour, which replies. Every executed event appends a line to a log
// keyed by (time, host, per-host sequence); sorting by that key gives a
// total order that must not depend on the worker count.

struct LogEntry {
  std::int64_t at_ns;
  int host;
  std::uint64_t seq;
  std::string what;

  bool operator<(const LogEntry& o) const {
    if (at_ns != o.at_ns) return at_ns < o.at_ns;
    if (host != o.host) return host < o.host;
    return seq < o.seq;
  }
};

std::string run_model(int workers, std::uint64_t seed, int hosts, SimTime horizon) {
  WindowedEngine::Config config;
  config.workers = workers;
  config.seed = seed;
  config.lookahead = usec(10);
  WindowedEngine engine(config);

  std::vector<int> ids;
  for (int h = 0; h < hosts; ++h) ids.push_back(engine.add_host("h" + std::to_string(h)));

  std::mutex log_mutex;
  std::vector<LogEntry> log;
  std::vector<std::uint64_t> seq(static_cast<std::size_t>(hosts), 0);
  std::vector<Rng> rng;
  for (int h = 0; h < hosts; ++h) rng.push_back(engine.fork_rng(h, 0));

  auto record = [&](int host, const std::string& what) {
    // Worker threads of different hosts append concurrently; the sort below
    // removes the arrival-order nondeterminism this lock allows.
    std::lock_guard<std::mutex> hold(log_mutex);
    log.push_back(LogEntry{engine.now(host).count(), host, seq[static_cast<std::size_t>(host)]++, what});
  };

  // Local churn: self-repost at a seeded sub-lookahead delay.
  std::function<void(int, int)> churn = [&](int host, int remaining) {
    record(host, "churn r" + std::to_string(remaining) + " x" + std::to_string(rng[static_cast<std::size_t>(host)].next() & 0xff));
    if (remaining > 0) {
      const auto delay = SimTime{static_cast<std::int64_t>(rng[static_cast<std::size_t>(host)].below(3000)) + 1};
      engine.post(host, delay, [&churn, host, remaining] { churn(host, remaining - 1); });
    }
  };

  // Cross-host ping/pong at >= lookahead delays.
  std::function<void(int, int, int)> ping = [&](int from, int to, int remaining) {
    record(from, "ping->" + std::to_string(to));
    engine.send(from, to, usec(10) + SimTime{static_cast<std::int64_t>(rng[static_cast<std::size_t>(from)].below(5000))},
                [&, from, to, remaining] {
                  record(to, "pong<-" + std::to_string(from));
                  if (remaining > 0) {
                    engine.post(to, usec(2), [&ping, to, from, remaining] {
                      ping(to, from, remaining - 1);
                    });
                  }
                });
  };

  for (int h = 0; h < hosts; ++h) {
    engine.post(h, SimTime{static_cast<std::int64_t>(rng[static_cast<std::size_t>(h)].below(2000))},
                [&churn, h] { churn(h, 60); });
    engine.post(h, usec(1), [&ping, h, hosts] { ping(h, (h + 1) % hosts, 12); });
  }

  engine.run_until(horizon);

  std::sort(log.begin(), log.end());
  std::string rendered;
  for (const auto& e : log) {
    rendered += std::to_string(e.at_ns) + " h" + std::to_string(e.host) + " #" +
                std::to_string(e.seq) + " " + e.what + "\n";
  }
  rendered += "events=" + std::to_string(engine.events_executed()) +
              " windows=" + std::to_string(engine.windows_run()) + "\n";
  return rendered;
}

TEST(WindowedEngine, ByteIdenticalAcrossWorkerCounts) {
  for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
    const std::string serial = run_model(1, seed, 6, msec(5));
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(run_model(2, seed, 6, msec(5)), serial) << "seed " << seed;
    EXPECT_EQ(run_model(8, seed, 6, msec(5)), serial) << "seed " << seed;
  }
}

TEST(WindowedEngine, SkipsEmptyWindows) {
  WindowedEngine::Config config;
  config.workers = 2;
  config.lookahead = usec(10);
  WindowedEngine engine(config);
  const int a = engine.add_host("a");
  const int b = engine.add_host("b");

  int ran = 0;
  engine.post(a, msec(100), [&] { ++ran; });
  engine.post(b, msec(200), [&] { ++ran; });
  engine.run_until(sec(1));

  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.events_executed(), 2u);
  // A sparse simulation pays per event, not per window: two events far apart
  // must cost two windows, not 100k empty ones.
  EXPECT_EQ(engine.windows_run(), 2u);
}

TEST(WindowedEngine, ClocksLandOnDeadline) {
  WindowedEngine::Config config;
  WindowedEngine engine(config);
  const int a = engine.add_host("a");
  const int b = engine.add_host("b");
  engine.post(a, usec(3), [] {});
  engine.run_until(msec(1));
  EXPECT_EQ(engine.now(a), msec(1));
  EXPECT_EQ(engine.now(b), msec(1));
}

TEST(WindowedEngine, SetupSendDeliversDirectly) {
  WindowedEngine::Config config;
  config.workers = 2;
  WindowedEngine engine(config);
  const int a = engine.add_host("a");
  const int b = engine.add_host("b");
  bool delivered = false;
  engine.send(a, b, usec(50), [&] { delivered = true; });
  engine.run_until(msec(1));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(engine.events_executed(), 1u);
}

}  // namespace
}  // namespace vdep::sim::parallel
