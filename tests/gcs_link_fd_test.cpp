// Unit tests for the daemon substrate pieces: the reliable FIFO link layer
// and the heartbeat failure detector.
#include <gtest/gtest.h>

#include "gcs/failure_detector.hpp"
#include "gcs/reliable_link.hpp"

namespace vdep::gcs {
namespace {

struct LinkFixture : ::testing::Test {
  LinkFixture() : kernel(1), network(kernel) {
    a = network.add_host("a");
    b = network.add_host("b");
    pa = std::make_unique<sim::Process>(kernel, ProcessId{1}, a, "pa");
    pb = std::make_unique<sim::Process>(kernel, ProcessId{2}, b, "pb");

    link_a = std::make_unique<ReliableLink>(
        *pa, network,
        [this](NodeId from, Payload&& inner) {
          at_a.push_back({from, std::move(inner)});
        },
        [this](NodeId from, Payload&&) { raw_a.push_back(from); });
    link_b = std::make_unique<ReliableLink>(
        *pb, network,
        [this](NodeId from, Payload&& inner) {
          at_b.push_back({from, std::move(inner)});
        },
        [this](NodeId from, Payload&&) { raw_b.push_back(from); });

    network.bind(a, net::Port::kGcsDaemon,
                 [this](net::Packet&& p) { link_a->handle_packet(std::move(p)); });
    network.bind(b, net::Port::kGcsDaemon,
                 [this](net::Packet&& p) { link_b->handle_packet(std::move(p)); });
  }

  sim::Kernel kernel;
  net::Network network;
  NodeId a, b;
  std::unique_ptr<sim::Process> pa, pb;
  std::unique_ptr<ReliableLink> link_a, link_b;
  std::vector<std::pair<NodeId, Payload>> at_a, at_b;
  std::vector<NodeId> raw_a, raw_b;
};

TEST_F(LinkFixture, DeliversInOrder) {
  for (std::uint8_t i = 0; i < 10; ++i) link_a->send(b, Bytes{i}, 1);
  kernel.run();
  ASSERT_EQ(at_b.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(at_b[i].second, Bytes{i});
  EXPECT_EQ(at_b[0].first, a);
}

TEST_F(LinkFixture, RecoversFromHeavyLoss) {
  net::LinkParams lossy;
  lossy.loss_probability = 0.6;
  network.set_link_params(a, b, lossy);
  network.set_link_params(b, a, lossy);  // acks lossy too
  for (std::uint8_t i = 0; i < 30; ++i) link_a->send(b, Bytes{i}, 1);
  kernel.run_until(sec(5));
  ASSERT_EQ(at_b.size(), 30u);
  for (std::uint8_t i = 0; i < 30; ++i) EXPECT_EQ(at_b[i].second, Bytes{i});
  EXPECT_GT(link_a->retransmissions(), 0u);
}

TEST_F(LinkFixture, NoDuplicateDeliveryDespiteRetransmissions) {
  // Drop only the acks: every data frame arrives, is re-sent anyway, and the
  // receiver must dedup.
  net::LinkParams ack_lossy;
  ack_lossy.loss_probability = 0.9;
  network.set_link_params(b, a, ack_lossy);
  for (std::uint8_t i = 0; i < 10; ++i) link_a->send(b, Bytes{i}, 1);
  kernel.run_until(sec(3));
  EXPECT_EQ(at_b.size(), 10u);
}

TEST_F(LinkFixture, RawFramesBypassReliability) {
  link_a->send_raw(b, Bytes{7});
  kernel.run();
  ASSERT_EQ(raw_b.size(), 1u);
  EXPECT_EQ(raw_b[0], a);
  EXPECT_TRUE(at_b.empty());
  // Raw traffic is uncounted control traffic.
  EXPECT_EQ(network.totals().bytes, 0u);
}

TEST_F(LinkFixture, ForgetPeerStopsRetransmitting) {
  network.set_host_up(b, false);
  link_a->send(b, Bytes{1}, 1);
  kernel.run_until(msec(100));
  const auto before = link_a->retransmissions();
  EXPECT_GT(before, 0u);
  link_a->forget_peer(b);
  kernel.run_until(msec(400));
  EXPECT_EQ(link_a->retransmissions(), before);
}

TEST_F(LinkFixture, BidirectionalTrafficIndependent) {
  link_a->send(b, Bytes{1}, 1);
  link_b->send(a, Bytes{2}, 1);
  kernel.run();
  ASSERT_EQ(at_b.size(), 1u);
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].second, Bytes{2});
}

// --- failure detector -----------------------------------------------------------

struct FdFixture : ::testing::Test {
  FdFixture() : kernel(1) {
    owner = std::make_unique<sim::Process>(kernel, ProcessId{1}, NodeId{0}, "fd-owner");
  }

  std::unique_ptr<FailureDetector> make(std::vector<NodeId> peers,
                                        SimTime interval = msec(20), int misses = 3) {
    auto fd = std::make_unique<FailureDetector>(
        *owner, std::move(peers), [this](NodeId peer) { heartbeats_sent.push_back(peer); },
        interval, misses);
    fd->set_on_suspect([this](NodeId peer) { suspected.push_back(peer); });
    return fd;
  }

  sim::Kernel kernel;
  std::unique_ptr<sim::Process> owner;
  std::vector<NodeId> heartbeats_sent;
  std::vector<NodeId> suspected;
};

TEST_F(FdFixture, SendsHeartbeatsPeriodically) {
  auto fd = make({NodeId{1}, NodeId{2}});
  fd->start();
  // Keep the peers alive so sends continue.
  kernel.post(msec(1), [&] {});
  for (int t = 0; t < 10; ++t) {
    kernel.post(msec(t * 20 + 10), [&] {
      fd->heartbeat_received(NodeId{1});
      fd->heartbeat_received(NodeId{2});
    });
  }
  kernel.run_until(msec(200));
  EXPECT_GE(heartbeats_sent.size(), 18u);  // ~10 rounds x 2 peers
  EXPECT_TRUE(suspected.empty());
}

TEST_F(FdFixture, SilentPeerSuspectedAfterTimeout) {
  auto fd = make({NodeId{1}}, msec(20), 3);
  fd->start();
  kernel.run_until(msec(300));
  ASSERT_EQ(suspected.size(), 1u);
  EXPECT_EQ(suspected[0], NodeId{1});
  EXPECT_FALSE(fd->alive(NodeId{1}));
}

TEST_F(FdFixture, HeartbeatsKeepPeerAlive) {
  auto fd = make({NodeId{1}}, msec(20), 3);
  fd->start();
  for (int t = 10; t < 500; t += 30) {
    kernel.post(msec(t), [&] { fd->heartbeat_received(NodeId{1}); });
  }
  kernel.run_until(msec(500));
  EXPECT_TRUE(suspected.empty());
  EXPECT_TRUE(fd->alive(NodeId{1}));
}

TEST_F(FdFixture, SuspicionIsSticky) {
  auto fd = make({NodeId{1}}, msec(20), 3);
  fd->start();
  kernel.run_until(msec(300));
  ASSERT_EQ(suspected.size(), 1u);
  // Late heartbeats from a suspected peer are ignored (crash-stop model).
  fd->heartbeat_received(NodeId{1});
  kernel.run_until(msec(600));
  EXPECT_FALSE(fd->alive(NodeId{1}));
  EXPECT_EQ(suspected.size(), 1u);  // no duplicate notification
}

TEST_F(FdFixture, MarkDeadImmediate) {
  auto fd = make({NodeId{1}, NodeId{2}});
  fd->start();
  fd->mark_dead(NodeId{2});
  EXPECT_FALSE(fd->alive(NodeId{2}));
  EXPECT_TRUE(fd->alive(NodeId{1}));
  ASSERT_EQ(suspected.size(), 1u);
  EXPECT_EQ(suspected[0], NodeId{2});
  EXPECT_EQ(fd->live_peers(), std::vector<NodeId>{NodeId{1}});
}

TEST_F(FdFixture, UnknownPeerNeverAlive) {
  auto fd = make({NodeId{1}});
  EXPECT_FALSE(fd->alive(NodeId{9}));
  fd->heartbeat_received(NodeId{9});  // ignored, no crash
}

}  // namespace
}  // namespace vdep::gcs
