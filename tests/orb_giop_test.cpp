#include <gtest/gtest.h>

#include "orb/giop.hpp"

namespace vdep::orb {
namespace {

TEST(Giop, RequestRoundTrip) {
  RequestMessage req;
  req.request_id = 42;
  req.response_expected = true;
  req.object_key = ObjectId{7};
  req.operation = "process";
  req.body = filler_bytes(100);

  const Bytes wire = req.encode();
  EXPECT_EQ(peek_giop_type(wire), GiopMsgType::kRequest);
  GiopMessage msg = decode_giop(wire);
  ASSERT_TRUE(msg.request.has_value());
  EXPECT_EQ(msg.request->request_id, 42u);
  EXPECT_TRUE(msg.request->response_expected);
  EXPECT_EQ(msg.request->object_key, ObjectId{7});
  EXPECT_EQ(msg.request->operation, "process");
  EXPECT_EQ(msg.request->body, filler_bytes(100));
}

TEST(Giop, OnewayRequest) {
  RequestMessage req;
  req.request_id = 1;
  req.response_expected = false;
  req.operation = "notify";
  GiopMessage msg = decode_giop(req.encode());
  ASSERT_TRUE(msg.request.has_value());
  EXPECT_FALSE(msg.request->response_expected);
}

TEST(Giop, ReplyRoundTripAllStatuses) {
  for (auto status : {ReplyStatus::kNoException, ReplyStatus::kUserException,
                      ReplyStatus::kSystemException, ReplyStatus::kLocationForward}) {
    ReplyMessage rep;
    rep.request_id = 9;
    rep.status = status;
    rep.body = filler_bytes(16);
    GiopMessage msg = decode_giop(rep.encode());
    ASSERT_TRUE(msg.reply.has_value());
    EXPECT_EQ(msg.reply->status, status);
    EXPECT_EQ(msg.reply->request_id, 9u);
    EXPECT_EQ(msg.reply->body, filler_bytes(16));
  }
}

TEST(Giop, CancelRequestRoundTrip) {
  CancelRequestMessage c;
  c.request_id = 77;
  GiopMessage msg = decode_giop(c.encode());
  EXPECT_EQ(msg.type, GiopMsgType::kCancelRequest);
  ASSERT_TRUE(msg.cancel.has_value());
  EXPECT_EQ(msg.cancel->request_id, 77u);
}

TEST(Giop, ServiceContextsSurviveRoundTrip) {
  RequestMessage req;
  req.request_id = 1;
  req.operation = "op";
  req.service_contexts.push_back(ServiceContext{123, Bytes{1, 2}});
  req.service_contexts.push_back(ServiceContext{456, Bytes{}});
  GiopMessage msg = decode_giop(req.encode());
  ASSERT_EQ(msg.request->service_contexts.size(), 2u);
  EXPECT_EQ(msg.request->service_contexts[0].context_id, 123u);
  EXPECT_EQ(msg.request->service_contexts[0].data, (Bytes{1, 2}));
  EXPECT_EQ(msg.request->service_contexts[1].context_id, 456u);
}

TEST(Giop, FtRequestContextRoundTrip) {
  FtRequestContext ctx;
  ctx.client = ProcessId{5001};
  ctx.retention_id = 88;
  ctx.client_daemon = NodeId{3};
  ctx.expiration = sec(12);

  RequestMessage req;
  req.request_id = 88;
  req.operation = "process";
  req.service_contexts.push_back(ctx.to_context());

  GiopMessage msg = decode_giop(req.encode());
  auto decoded = FtRequestContext::from_contexts(msg.request->service_contexts);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->client, ProcessId{5001});
  EXPECT_EQ(decoded->retention_id, 88u);
  EXPECT_EQ(decoded->client_daemon, NodeId{3});
  EXPECT_EQ(decoded->expiration, sec(12));
}

TEST(Giop, FtContextAbsentReturnsNullopt) {
  EXPECT_FALSE(FtRequestContext::from_contexts({}).has_value());
  EXPECT_FALSE(FtRequestContext::from_contexts({ServiceContext{1, {}}}).has_value());
}

TEST(Giop, RewritingRequestPreservesBody) {
  // What the client coordinator does: decode, add a context, re-encode.
  RequestMessage req;
  req.request_id = 3;
  req.operation = "process";
  req.body = filler_bytes(64);
  GiopMessage msg = decode_giop(req.encode());
  FtRequestContext ctx;
  ctx.client = ProcessId{1};
  ctx.retention_id = 3;
  msg.request->service_contexts.push_back(ctx.to_context());
  GiopMessage re = decode_giop(msg.request->encode());
  EXPECT_EQ(re.request->body, filler_bytes(64));
  EXPECT_EQ(re.request->operation, "process");
  EXPECT_TRUE(FtRequestContext::from_contexts(re.request->service_contexts).has_value());
}

TEST(Giop, BadMagicThrows) {
  RequestMessage req;
  req.operation = "x";
  Bytes wire = req.encode();
  wire[0] = 'X';
  EXPECT_THROW((void)decode_giop(wire), DecodeError);
}

TEST(Giop, TruncatedHeaderThrows) {
  Bytes tiny{'G', 'I', 'O', 'P'};
  EXPECT_THROW((void)peek_giop_type(tiny), DecodeError);
  EXPECT_THROW((void)decode_giop(tiny), DecodeError);
}

TEST(Giop, BadVersionThrows) {
  RequestMessage req;
  req.operation = "x";
  Bytes wire = req.encode();
  wire[4] = 9;  // major version
  EXPECT_THROW((void)decode_giop(wire), DecodeError);
}

TEST(Giop, BadReplyStatusThrows) {
  ReplyMessage rep;
  rep.request_id = 1;
  Bytes wire = rep.encode();
  // Reply status is the second ulong after the 12-byte header.
  wire[16] = 200;
  EXPECT_THROW((void)decode_giop(wire), DecodeError);
}

TEST(Giop, EmptyBodySupported) {
  RequestMessage req;
  req.request_id = 2;
  req.operation = "ping";
  GiopMessage msg = decode_giop(req.encode());
  EXPECT_TRUE(msg.request->body.empty());
}

}  // namespace
}  // namespace vdep::orb
