#!/usr/bin/env python3
"""Fails when recorded benchmark baselines regress beyond their allowance.

Two modes:

Legacy single-counter mode (kept for ad-hoc use):
  check_bench_regression.py BASELINE.json CURRENT.json \
      --counter events_per_sec [--max-regression 0.20]

Gate-file mode — one gate per recorded BENCH_*.json baseline, each with its
own metric allowlist and thresholds (scripts/bench_gates.json):
  check_bench_regression.py --gate-file scripts/bench_gates.json \
      --baseline-dir . --current-dir /tmp/bench
  check_bench_regression.py --gate-file scripts/bench_gates.json --list-gates

A gate entry looks like:
  {"baseline": "BENCH_kernel.json",        # recorded file at the repo root
   "current": "BENCH_kernel.json",         # fresh-measurement file name in
                                           # --current-dir (optional; defaults
                                           # to the baseline name — set it when
                                           # two gated binaries share one
                                           # recorded baseline so their fresh
                                           # runs don't clobber each other)
   "binary": "bench/macro_events",         # producer (ci.sh runs it)
   "filter": "BM_MacroKernelChurn",        # --benchmark_filter, optional
   "kind": "gbench",                       # or "chaos" (flat JSON report)
   "metrics": {"events_per_sec": {"direction": "higher",
                                  "max_regression": 0.20}}}

"higher" metrics fail when current < baseline * (1 - max_regression);
"lower" metrics (times) fail when current > baseline * (1 + max_regression).
For "gbench" gates the metric is read from each benchmark entry (counters and
the built-in real_time/cpu_time); for "chaos" gates the metric name is a
dotted path into the flat report (e.g. "recovery_ms.mean"). Only benchmarks
present in both files are compared; a metric missing from both sides of a
gate is an error (the allowlist names something the benchmark no longer
emits).
"""
import argparse
import json
import os
import sys


def load_json(path):
    with open(path) as f:
        return json.load(f)


def dotted(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def gbench_values(doc, metric):
    out = {}
    for bench in doc.get("benchmarks", []):
        if metric in bench and isinstance(bench[metric], (int, float)):
            out[bench["name"]] = float(bench[metric])
    return out


def compare(name, metric, direction, allowance, base, cur):
    """Returns (ok, line) for one metric comparison."""
    ratio = cur / base if base != 0 else float("inf")
    if direction == "lower":
        ok = cur <= base * (1.0 + allowance)
    else:
        ok = cur >= base * (1.0 - allowance)
    verdict = "OK" if ok else "REGRESSION"
    return ok, (f"{name}: {metric} {base:.4g} -> {cur:.4g} "
                f"({ratio:.2f}x baseline, {direction} is better) {verdict}")


def run_gate(gate, baseline_dir, current_dir):
    """Returns (ok, skipped) for one gate."""
    name = gate["baseline"]
    base_path = os.path.join(baseline_dir, name)
    cur_path = os.path.join(current_dir, gate.get("current", name))
    if not os.path.exists(base_path):
        print(f"{name}: no recorded baseline; skipping")
        return True, True
    if not os.path.exists(cur_path):
        print(f"error: {name}: baseline exists but no current measurement "
              f"at {cur_path}", file=sys.stderr)
        return False, False

    base_doc = load_json(base_path)
    cur_doc = load_json(cur_path)
    kind = gate.get("kind", "gbench")
    ok = True
    for metric, spec in gate["metrics"].items():
        direction = spec.get("direction", "higher")
        allowance = float(spec.get("max_regression", 0.20))
        if kind == "chaos":
            base_v = dotted(base_doc, metric)
            cur_v = dotted(cur_doc, metric)
            if base_v is None or cur_v is None:
                print(f"error: {name}: metric {metric!r} missing "
                      f"(baseline: {base_v}, current: {cur_v})", file=sys.stderr)
                ok = False
                continue
            good, line = compare(name, metric, direction, allowance, base_v, cur_v)
            print(line)
            ok = ok and good
        else:
            base_vals = gbench_values(base_doc, metric)
            cur_vals = gbench_values(cur_doc, metric)
            common = sorted(set(base_vals) & set(cur_vals))
            if not common:
                print(f"error: {name}: no common benchmarks carry metric "
                      f"{metric!r}", file=sys.stderr)
                ok = False
                continue
            for bench in common:
                good, line = compare(f"{name}:{bench}", metric, direction,
                                     allowance, base_vals[bench], cur_vals[bench])
                print(line)
                ok = ok and good
    return ok, False


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--counter")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fail when current < baseline * (1 - this)")
    ap.add_argument("--gate-file", help="scripts/bench_gates.json")
    ap.add_argument("--baseline-dir", default=".")
    ap.add_argument("--current-dir")
    ap.add_argument("--list-gates", action="store_true",
                    help="print baseline<TAB>current<TAB>binary<TAB>filter"
                         "<TAB>kind per gate")
    args = ap.parse_args()

    if args.gate_file:
        gates = load_json(args.gate_file)["gates"]
        if args.list_gates:
            for g in gates:
                print(f"{g['baseline']}\t{g.get('current', g['baseline'])}\t"
                      f"{g.get('binary', '')}\t{g.get('filter', '')}\t"
                      f"{g.get('kind', 'gbench')}")
            return 0
        if not args.current_dir:
            print("error: --current-dir is required with --gate-file",
                  file=sys.stderr)
            return 2
        all_ok = True
        for gate in gates:
            ok, _ = run_gate(gate, args.baseline_dir, args.current_dir)
            all_ok = all_ok and ok
        if not all_ok:
            print("error: benchmark baselines regressed beyond allowance",
                  file=sys.stderr)
            return 1
        return 0

    # Legacy mode.
    if not (args.baseline and args.current and args.counter):
        print("error: BASELINE CURRENT --counter NAME (or --gate-file)",
              file=sys.stderr)
        return 2
    base = gbench_values(load_json(args.baseline), args.counter)
    cur = gbench_values(load_json(args.current), args.counter)
    common = sorted(set(base) & set(cur))
    if not common:
        print(f"error: no common benchmarks with counter {args.counter!r} "
              f"between {args.baseline} and {args.current}", file=sys.stderr)
        return 2
    failed = False
    for name in common:
        ok, line = compare(name, args.counter, "higher", args.max_regression,
                           base[name], cur[name])
        print(line)
        failed = failed or not ok
    if failed:
        print(f"error: {args.counter} regressed more than "
              f"{args.max_regression:.0%} vs baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
