#!/usr/bin/env python3
"""Fails when a benchmark counter regressed beyond a threshold vs a baseline.

Compares google-benchmark JSON outputs by benchmark name. Only benchmarks
present in both files are compared; higher counter values are better (the
counters gated here are rates, e.g. events_per_sec).

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json \
      --counter events_per_sec [--max-regression 0.20]
"""
import argparse
import json
import sys


def load_counters(path, counter):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if counter in bench:
            out[bench["name"]] = float(bench[counter])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--counter", required=True)
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="fail when current < baseline * (1 - this)")
    args = ap.parse_args()

    base = load_counters(args.baseline, args.counter)
    cur = load_counters(args.current, args.counter)
    common = sorted(set(base) & set(cur))
    if not common:
        print(f"error: no common benchmarks with counter {args.counter!r} "
              f"between {args.baseline} and {args.current}", file=sys.stderr)
        return 2

    failed = False
    for name in common:
        ratio = cur[name] / base[name]
        verdict = "OK"
        if ratio < 1.0 - args.max_regression:
            verdict = "REGRESSION"
            failed = True
        print(f"{name}: {args.counter} {base[name]:.3g} -> {cur[name]:.3g} "
              f"({ratio:.2f}x baseline) {verdict}")
    if failed:
        print(f"error: {args.counter} regressed more than "
              f"{args.max_regression:.0%} vs baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
