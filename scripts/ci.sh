#!/usr/bin/env bash
# CI gate: the tier-1 quick suite on the default build, then the trace and
# health-event determinism gates (two same-seed runs must export byte-
# identical recordings / HealthEvent streams), then the same suite under
# ASan/UBSan (VDEP_SANITIZE=ON), then the long chaos campaign.
#
# Usage: scripts/ci.sh [--skip-sanitize] [--skip-chaos]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc)"
skip_sanitize=0
skip_chaos=0
for arg in "$@"; do
  case "${arg}" in
    --skip-sanitize) skip_sanitize=1 ;;
    --skip-chaos) skip_chaos=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1 (default build) =="
cmake -B "${repo_root}/build" -S "${repo_root}"
cmake --build "${repo_root}/build" -j"${jobs}"
ctest --test-dir "${repo_root}/build" -L tier1 --output-on-failure -j"${jobs}"

echo "== shard quick gate =="
# The sharded scale-out layer has its own label; -LE chaos keeps the long
# shard campaign out of the quick gate (scripts/ci.sh runs it below).
ctest --test-dir "${repo_root}/build" -L shard -LE chaos --output-on-failure -j"${jobs}"

echo "== kv_cluster multi-shard smoke =="
cmake --build "${repo_root}/build" -j"${jobs}" --target kv_cluster
"${repo_root}/build/examples/kv_cluster" --shards 4 > /dev/null
echo "kv_cluster --shards 4 runs clean"

echo "== checkpoint micro-benchmark smoke run =="
cmake --build "${repo_root}/build" -j"${jobs}" --target micro_checkpoint
"${repo_root}/build/bench/micro_checkpoint" --benchmark_min_time=0.001 > /dev/null
echo "micro_checkpoint runs clean"

echo "== health micro-benchmark smoke run =="
cmake --build "${repo_root}/build" -j"${jobs}" --target micro_health
"${repo_root}/build/bench/micro_health" --benchmark_min_time=0.001 > /dev/null
echo "micro_health runs clean"

echo "== macro-benchmark smoke runs =="
# The whole-scenario events/sec benchmark and the sharded-fleet benchmark
# must run on the default build (small configurations; the recorded
# baselines are measured in Release below).
cmake --build "${repo_root}/build" -j"${jobs}" --target macro_events \
  --target macro_shard --target macro_campaign
"${repo_root}/build/bench/macro_events" \
  --benchmark_filter='BM_MacroKernelChurn' --benchmark_min_time=0.01 > /dev/null
"${repo_root}/build/bench/macro_events" \
  --benchmark_filter='BM_Windowed(Churn|ActiveFanout)/8' \
  --benchmark_min_time=0.01 > /dev/null
"${repo_root}/build/bench/macro_shard" \
  --benchmark_filter='BM_MacroShardFleet/8/1000' --benchmark_min_time=0.01 > /dev/null
"${repo_root}/build/bench/macro_campaign" \
  --benchmark_filter='BM_CampaignTrials/8' --benchmark_min_time=0.01 > /dev/null
echo "macro_events, macro_shard and macro_campaign run clean"

echo "== benchmark regression gates (scripts/bench_gates.json) =="
# Re-measures every gated binary in Release and compares each recorded
# BENCH_*.json baseline against the fresh numbers, with the per-file metric
# allowlists and allowances in scripts/bench_gates.json. Gates whose
# baseline file is absent are skipped.
gate_file="${repo_root}/scripts/bench_gates.json"
need_bench=0
while IFS=$'\t' read -r baseline current binary filter kind; do
  [[ -f "${repo_root}/${baseline}" ]] && need_bench=1
done < <(python3 "${repo_root}/scripts/check_bench_regression.py" \
           --gate-file "${gate_file}" --list-gates)
if [[ "${need_bench}" -eq 1 ]]; then
  cmake -B "${repo_root}/build-bench" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
  bench_dir="$(mktemp -d)"
  # Fresh measurements land at the gate's "current" name (distinct from the
  # baseline name when several gated binaries share one recorded baseline).
  while IFS=$'\t' read -r baseline current binary filter kind; do
    [[ -f "${repo_root}/${baseline}" ]] || continue
    cmake --build "${repo_root}/build-bench" -j"${jobs}" \
      --target "$(basename "${binary}")"
    if [[ "${kind}" == "chaos" ]]; then
      "${repo_root}/build-bench/${binary}" trials=200 seed=1 \
        out="${bench_dir}/${current}" > /dev/null
    else
      bench_args=(--benchmark_format=json
                  --benchmark_out="${bench_dir}/${current}"
                  --benchmark_out_format=json)
      [[ -n "${filter}" ]] && bench_args+=("--benchmark_filter=${filter}")
      "${repo_root}/build-bench/${binary}" "${bench_args[@]}" > /dev/null
    fi
  done < <(python3 "${repo_root}/scripts/check_bench_regression.py" \
             --gate-file "${gate_file}" --list-gates)
  python3 "${repo_root}/scripts/check_bench_regression.py" \
    --gate-file "${gate_file}" \
    --baseline-dir "${repo_root}" --current-dir "${bench_dir}"
  rm -rf "${bench_dir}"
else
  echo "no recorded baselines; skipping regression gates"
fi

echo "== trace determinism gate =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
"${repo_root}/build/examples/trace_explorer" seed=42 \
  out="${trace_dir}/run1.json" txt="${trace_dir}/run1.txt" > /dev/null
"${repo_root}/build/examples/trace_explorer" seed=42 \
  out="${trace_dir}/run2.json" txt="${trace_dir}/run2.txt" > /dev/null
diff "${trace_dir}/run1.json" "${trace_dir}/run2.json"
diff "${trace_dir}/run1.txt" "${trace_dir}/run2.txt"
echo "trace exports are byte-identical across same-seed runs"

echo "== health-event determinism gate =="
# One seeded chaos trial with the live health plane, run twice: the rendered
# HealthEvent stream (suspect/clear, SLO breach/recover — with sequence ids
# and sim-time stamps) must replay byte-identically from the seed.
cmake --build "${repo_root}/build" -j"${jobs}" --target health_dashboard
"${repo_root}/build/examples/health_dashboard" chaos=1 seed=42 \
  events="${trace_dir}/health1.txt" > /dev/null
"${repo_root}/build/examples/health_dashboard" chaos=1 seed=42 \
  events="${trace_dir}/health2.txt" > /dev/null
diff "${trace_dir}/health1.txt" "${trace_dir}/health2.txt"
echo "health-event streams are byte-identical across same-seed runs"

if [[ "${skip_sanitize}" -eq 0 ]]; then
  echo "== tier-1 (ASan + UBSan) =="
  cmake -B "${repo_root}/build-asan" -S "${repo_root}" -DVDEP_SANITIZE=ON
  cmake --build "${repo_root}/build-asan" -j"${jobs}"
  ctest --test-dir "${repo_root}/build-asan" -L tier1 --output-on-failure -j"${jobs}"

  echo "== tier-1 (TSan) =="
  # The work-stealing pool, the trial fleet and the windowed engine are real
  # multi-threaded code now; the whole tier-1 suite (which includes the
  # parallel pool/engine tests and the serial-vs-parallel campaign
  # determinism tests) must be data-race-free under ThreadSanitizer.
  cmake -B "${repo_root}/build-tsan" -S "${repo_root}" -DVDEP_SANITIZE=thread
  cmake --build "${repo_root}/build-tsan" -j"${jobs}"
  ctest --test-dir "${repo_root}/build-tsan" -L tier1 --output-on-failure -j"${jobs}"
fi

if [[ "${skip_chaos}" -eq 0 ]]; then
  echo "== chaos campaign (200 seeded trials) =="
  ctest --test-dir "${repo_root}/build" -L chaos --output-on-failure
fi

echo "CI green."
