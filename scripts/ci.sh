#!/usr/bin/env bash
# CI gate: the tier-1 quick suite on the default build, then the trace
# determinism gate (two same-seed failover runs must export byte-identical
# recordings), then the same suite under ASan/UBSan (VDEP_SANITIZE=ON), then
# the long chaos campaign.
#
# Usage: scripts/ci.sh [--skip-sanitize] [--skip-chaos]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc)"
skip_sanitize=0
skip_chaos=0
for arg in "$@"; do
  case "${arg}" in
    --skip-sanitize) skip_sanitize=1 ;;
    --skip-chaos) skip_chaos=1 ;;
    *) echo "unknown argument: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1 (default build) =="
cmake -B "${repo_root}/build" -S "${repo_root}"
cmake --build "${repo_root}/build" -j"${jobs}"
ctest --test-dir "${repo_root}/build" -L tier1 --output-on-failure -j"${jobs}"

echo "== checkpoint micro-benchmark smoke run =="
cmake --build "${repo_root}/build" -j"${jobs}" --target micro_checkpoint
"${repo_root}/build/bench/micro_checkpoint" --benchmark_min_time=0.001 > /dev/null
echo "micro_checkpoint runs clean"

echo "== kernel macro-benchmark smoke + regression gate =="
# Smoke: the whole-scenario events/sec benchmark must run on the default
# build. The regression gate then re-measures the kernel-churn workload in
# Release and fails if events/sec fell more than 20% below the recorded
# BENCH_kernel.json baseline (kernel hot-path regressions land here first).
cmake --build "${repo_root}/build" -j"${jobs}" --target macro_events
"${repo_root}/build/bench/macro_events" \
  --benchmark_filter='BM_MacroKernelChurn' --benchmark_min_time=0.01 > /dev/null
echo "macro_events runs clean"
if [[ -f "${repo_root}/BENCH_kernel.json" ]]; then
  cmake -B "${repo_root}/build-bench" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG"
  cmake --build "${repo_root}/build-bench" -j"${jobs}" --target macro_events
  bench_dir="$(mktemp -d)"
  "${repo_root}/build-bench/bench/macro_events" \
    --benchmark_filter='BM_MacroKernelChurn' \
    --benchmark_format=json --benchmark_out="${bench_dir}/kernel.json" \
    --benchmark_out_format=json > /dev/null
  python3 "${repo_root}/scripts/check_bench_regression.py" \
    "${repo_root}/BENCH_kernel.json" "${bench_dir}/kernel.json" \
    --counter events_per_sec --max-regression 0.20
  rm -rf "${bench_dir}"
else
  echo "no BENCH_kernel.json baseline; skipping regression gate"
fi

echo "== trace determinism gate =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "${trace_dir}"' EXIT
"${repo_root}/build/examples/trace_explorer" seed=42 \
  out="${trace_dir}/run1.json" txt="${trace_dir}/run1.txt" > /dev/null
"${repo_root}/build/examples/trace_explorer" seed=42 \
  out="${trace_dir}/run2.json" txt="${trace_dir}/run2.txt" > /dev/null
diff "${trace_dir}/run1.json" "${trace_dir}/run2.json"
diff "${trace_dir}/run1.txt" "${trace_dir}/run2.txt"
echo "trace exports are byte-identical across same-seed runs"

if [[ "${skip_sanitize}" -eq 0 ]]; then
  echo "== tier-1 (ASan + UBSan) =="
  cmake -B "${repo_root}/build-asan" -S "${repo_root}" -DVDEP_SANITIZE=ON
  cmake --build "${repo_root}/build-asan" -j"${jobs}"
  ctest --test-dir "${repo_root}/build-asan" -L tier1 --output-on-failure -j"${jobs}"
fi

if [[ "${skip_chaos}" -eq 0 ]]; then
  echo "== chaos campaign (200 seeded trials) =="
  ctest --test-dir "${repo_root}/build" -L chaos --output-on-failure
fi

echo "CI green."
