// Single-server FIFO CPU model, one per host.
//
// Every piece of simulated work (ORB marshalling, daemon packet processing,
// application execution, checkpoint serialization) occupies the host CPU for
// its calibrated duration; contention between co-located components emerges
// naturally as queueing delay — this is what bends the latency curves upward
// as clients are added in Fig. 7(a).
#pragma once

#include <cstdint>

#include "sim/kernel.hpp"
#include "util/ids.hpp"

namespace vdep::sim {

class Cpu {
 public:
  Cpu(Kernel& kernel, NodeId node);

  // Enqueues `duration` of work; `on_done` runs when it completes. Work is
  // served FIFO; callers wrap `on_done` in Process::guarded when the work
  // belongs to a crashable process.
  void execute(SimTime duration, EventFn on_done);

  // Performance/timing faults (paper Sec. 3.1): a factor > 1 stretches every
  // subsequently enqueued duration (a thermally throttled or overcommitted
  // machine); 1.0 restores nominal speed.
  void set_slowdown(double factor);
  [[nodiscard]] double slowdown() const { return slowdown_; }

  // Time already committed but not yet served (queue depth in time units).
  [[nodiscard]] SimTime backlog() const;

  // Fraction of time busy since construction.
  [[nodiscard]] double utilization() const;

  // Fraction of time busy since the last call to this function; used by the
  // resource monitor as the "CPU load" metric.
  [[nodiscard]] double load_since_last_sample();

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_; }

 private:
  Kernel& kernel_;
  NodeId node_;
  double slowdown_ = 1.0;
  SimTime next_free_ = kTimeZero;
  SimTime busy_total_ = kTimeZero;
  SimTime sample_mark_time_ = kTimeZero;
  SimTime sample_mark_busy_ = kTimeZero;
  std::uint64_t jobs_ = 0;
};

}  // namespace vdep::sim
