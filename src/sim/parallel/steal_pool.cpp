#include "sim/parallel/steal_pool.hpp"

#include <chrono>

namespace vdep::sim::parallel {

namespace {

// Identifies the calling thread as worker `index` of `pool` (set for the
// lifetime of the worker loop). submit() and try_run_one() use it to route
// work to the caller's own deque.
struct WorkerTls {
  StealPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerTls t_worker;

}  // namespace

void TaskGroup::wait(StealPool& pool) {
  int idle = 0;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (pool.try_run_one()) {
      idle = 0;
      continue;
    }
    // Nothing runnable from here: the remaining tasks are mid-execution on
    // workers. Yield for a while, then nap — the group has no cv on purpose
    // (see the header: the final fetch_sub must be the last group access).
    if (++idle < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

StealPool::StealPool(int workers) {
  const int n = workers < 1 ? 1 : workers;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.push_back(std::make_unique<Worker>());
  for (int i = 0; i < n; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

StealPool::~StealPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  work_available_.notify_all();
  for (auto& w : workers_) w->thread.join();
  // Unexecuted tasks (a caller tearing down mid-fan-out) are dropped, not
  // run: destruction is not a completion point.
  for (auto& w : workers_) {
    while (Node* node = w->deque.pop_bottom()) delete node;
  }
  for (Node* node : injector_) delete node;
}

void StealPool::submit_node(Node* node) {
  const WorkerTls& tls = t_worker;
  bool queued = false;
  if (tls.pool == this) {
    queued = workers_[tls.index]->deque.push_bottom(node);
  }
  if (!queued) {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    injector_.push_back(node);
  }
  wake_one();
}

void StealPool::wake_one() {
  // Epoch first: a worker that re-checked the queues before this push and
  // is about to sleep will see the epoch moved and not block.
  epoch_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    work_available_.notify_all();
  }
}

StealPool::Node* StealPool::take_shared(std::size_t start_victim) {
  {
    std::lock_guard<std::mutex> lock(injector_mutex_);
    if (!injector_.empty()) {
      Node* node = injector_.front();
      injector_.pop_front();
      return node;
    }
  }
  const std::size_t n = workers_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t victim = (start_victim + probe) % n;
    if (Node* node = workers_[victim]->deque.steal_top()) return node;
  }
  return nullptr;
}

void StealPool::run_node(Node* node) {
  node->fn();
  TaskGroup* group = node->group;
  delete node;
  // The decrement is the last access to *group: once it hits zero a waiter
  // may return and destroy the group immediately.
  if (group != nullptr) group->pending_.fetch_sub(1, std::memory_order_acq_rel);
}

bool StealPool::try_run_one() {
  const WorkerTls& tls = t_worker;
  Node* node = nullptr;
  if (tls.pool == this) {
    node = workers_[tls.index]->deque.pop_bottom();
    if (node == nullptr) node = take_shared(tls.index + 1);
  } else {
    node = take_shared(0);
  }
  if (node == nullptr) return false;
  run_node(node);
  return true;
}

void StealPool::worker_loop(std::size_t self) {
  t_worker = WorkerTls{this, self};
  Worker& me = *workers_[self];
  while (true) {
    Node* node = me.deque.pop_bottom();
    if (node == nullptr) node = take_shared(self + 1);
    if (node != nullptr) {
      run_node(node);
      continue;
    }
    // Idle backoff: a brief spin of re-probes (steal CASes fail spuriously
    // under contention), then sleep until a submit moves the epoch.
    bool found = false;
    for (int spin = 0; spin < 32 && !found; ++spin) {
      found = (node = take_shared(self + 1)) != nullptr;
    }
    if (found) {
      run_node(node);
      continue;
    }
    const std::uint64_t seen = epoch_.load(std::memory_order_acquire);
    if ((node = take_shared(self + 1)) != nullptr) {  // final re-check
      run_node(node);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_release);
    work_available_.wait(lock, [this, seen] {
      return stopping_.load(std::memory_order_relaxed) ||
             epoch_.load(std::memory_order_relaxed) != seen;
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace vdep::sim::parallel
