// Chase-Lev work-stealing deque: the classic single-owner double-ended queue
// where the owner pushes and pops at the bottom (LIFO, cache-warm) and any
// number of thieves steal from the top (FIFO, oldest first).
//
// The implementation follows Chase & Lev (SPAA '05) as corrected for weak
// memory models by Lê et al. (PPoPP '13), with one deliberate deviation: the
// orderings that the paper expresses through standalone fences are expressed
// here as seq_cst operations on `top_`/`bottom_` directly. That is strictly
// stronger (identical codegen on x86, one extra barrier on ARM) and — the
// actual reason — ThreadSanitizer models atomic operations precisely but
// standalone fences only approximately, and the TSan preset
// (`VDEP_SANITIZE=thread`) is a hard CI gate for everything under
// `sim/parallel`.
//
// The ring has a fixed power-of-two capacity instead of the paper's growable
// array: callers (StealPool) fall back to a shared injector queue when an
// owner deque is full, so the bound costs only a detour, never a deadlock.
// Steals are lock-free (a failed CAS means another thief or the owner won —
// system-wide progress is guaranteed); the owner never blocks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdep::sim::parallel {

template <typename T>
class StealDeque {
 public:
  explicit StealDeque(std::size_t capacity = 1 << 13)
      : ring_(round_up_pow2(capacity)), mask_(ring_.size() - 1) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  // Owner only. False when the ring is full (caller reroutes the item).
  bool push_bottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(ring_.size())) return false;
    slot(b).store(item, std::memory_order_relaxed);
    // Publishes the slot write to thieves that acquire `bottom_`.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  // Owner only. The newest item, or nullptr when empty (or a thief won the
  // race for the last one).
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // seq_cst store-then-load: the reservation of slot b must be globally
    // ordered before reading `top_`, or owner and thief could both take the
    // last item (the store->load reordering the paper's fence forbids).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = slot(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last item: race thieves for it through the same CAS they use.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  // Any thread. The oldest item, or nullptr when empty or the CAS lost to a
  // concurrent steal/pop (callers just move to the next victim).
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    T* item = slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  // Approximate (racy) size; used only for idle heuristics.
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::atomic<T*>& slot(std::int64_t index) {
    return ring_[static_cast<std::size_t>(index) & mask_];
  }

  // top_ only ever grows (thieves consume); bottom_ moves both ways (owner).
  // Both on their own cache lines so steals don't bounce the owner's line.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<T*>> ring_;
  std::size_t mask_;
};

}  // namespace vdep::sim::parallel
