// Conservative lookahead-windowed parallel discrete-event engine.
//
// The serial sim::Kernel runs one global event queue; this engine partitions
// the simulation into logical processes ("hosts"), each with its own event
// queue, clock and random stream, and executes them on a StealPool in
// *windows* derived from the network's minimum propagation delay (the
// classic conservative-DES lookahead argument):
//
//   - A host may schedule work for itself at any delay >= 0 (post).
//   - Cross-host interaction goes through send(), whose delay must be at
//     least the configured lookahead.
//
// Because a message sent at time t inside window [W, W+L) arrives at
// t + delay >= W + L, no host can receive an event *for the current window*
// from another host mid-window. That makes every host's window execution
// independent: the engine runs all hosts with pending events through
// [W, W+L) as pool tasks, barriers at the window edge, then merges the
// buffered cross-host sends into the target queues — in (sender index,
// emission order) order, so FIFO tie-breaking in the target queues is
// identical no matter how many workers ran the window.
//
// Determinism contract (pinned by tests/parallel_test.cpp): for a given
// seed and model, the per-host event sequences — and any log sorted by
// (time, host, per-host sequence) — are byte-identical across worker
// counts, including workers == 1. Within one simulated nanosecond, events
// on *different* hosts have no defined relative order (they are causally
// concurrent by construction); per-host order is FIFO, as in the serial
// kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/parallel/steal_pool.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace vdep::sim::parallel {

class WindowedEngine {
 public:
  struct Config {
    int workers = 1;
    // Window width == minimum cross-host propagation delay. send() asserts
    // its delay against this.
    SimTime lookahead = usec(10);
    std::uint64_t seed = 1;
  };

  explicit WindowedEngine(const Config& config);

  WindowedEngine(const WindowedEngine&) = delete;
  WindowedEngine& operator=(const WindowedEngine&) = delete;

  // Topology is fixed before run_until: hosts are added up front.
  int add_host(std::string name);
  [[nodiscard]] int hosts() const { return static_cast<int>(hosts_.size()); }

  // Host-local scheduling, relative to the host's clock. Call either during
  // setup or from within one of `host`'s own events (never from another
  // host's event — that is what send() is for).
  void post(int host, SimTime delay, EventFn fn);
  // Absolute-time variant for setup code.
  void post_at(int host, SimTime at, EventFn fn);

  // Cross-host event: runs on `to` at from-now + delay. delay >= lookahead
  // (asserted — the windowing proof depends on it). Must be called from
  // within one of `from`'s events (or setup, where it is equivalent to
  // post_at on the target).
  void send(int from, int to, SimTime delay, EventFn fn);

  // The calling host's clock (valid inside that host's events).
  [[nodiscard]] SimTime now(int host) const {
    return hosts_[static_cast<std::size_t>(host)]->now;
  }

  // Independent per-host random stream, forked from the engine seed and the
  // host index — stable under changes to other hosts.
  [[nodiscard]] Rng fork_rng(int host, std::uint64_t stream_index) {
    return Rng(seed_).fork(static_cast<std::uint64_t>(host) * 0x10001ULL + 1)
        .fork(stream_index);
  }

  // Runs events with timestamp <= deadline, window by window. Empty windows
  // are skipped (the cursor jumps to the window containing the earliest
  // pending event), so a sparse simulation pays per event, not per window.
  void run_until(SimTime deadline);

  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }
  [[nodiscard]] int workers() const { return pool_.workers(); }

 private:
  struct PendingSend {
    int to = 0;
    SimTime at = kTimeZero;
    EventFn fn;
  };

  struct Host {
    std::string name;
    EventQueue queue;
    SimTime now = kTimeZero;
    std::uint64_t executed = 0;
    // Cross-host sends emitted during the current window; drained at the
    // barrier by the driver. Only this host's window task touches it
    // mid-window, so it needs no lock.
    std::vector<PendingSend> outbox;
  };

  // Runs every event of `host` with timestamp < window_end (serially, FIFO).
  void run_host_window(Host& host, SimTime window_end);

  // Earliest pending event across all hosts, or kTimeInfinity when idle.
  [[nodiscard]] SimTime earliest_event() const;

  SimTime lookahead_;
  std::uint64_t seed_;
  // unique_ptr: EventQueue is pinned (non-movable), and separate allocations
  // keep concurrently-executing hosts off each other's cache lines.
  std::vector<std::unique_ptr<Host>> hosts_;
  std::uint64_t windows_run_ = 0;
  bool running_ = false;
  StealPool pool_;
};

}  // namespace vdep::sim::parallel
