#include "sim/parallel/windowed.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::sim::parallel {

namespace {

constexpr SimTime kNever = SimTime::max();

}  // namespace

WindowedEngine::WindowedEngine(const Config& config)
    : lookahead_(config.lookahead), seed_(config.seed), pool_(config.workers) {
  VDEP_ASSERT_MSG(lookahead_ > kTimeZero, "lookahead must be positive");
}

int WindowedEngine::add_host(std::string name) {
  VDEP_ASSERT_MSG(!running_, "topology is fixed once run_until starts");
  hosts_.push_back(std::make_unique<Host>());
  hosts_.back()->name = std::move(name);
  return static_cast<int>(hosts_.size()) - 1;
}

void WindowedEngine::post(int host, SimTime delay, EventFn fn) {
  VDEP_ASSERT_MSG(delay >= kTimeZero, "cannot schedule in the past");
  Host& h = *hosts_[static_cast<std::size_t>(host)];
  h.queue.schedule(h.now + delay, std::move(fn));
}

void WindowedEngine::post_at(int host, SimTime at, EventFn fn) {
  Host& h = *hosts_[static_cast<std::size_t>(host)];
  VDEP_ASSERT_MSG(at >= h.now, "cannot schedule in the past");
  h.queue.schedule(at, std::move(fn));
}

void WindowedEngine::send(int from, int to, SimTime delay, EventFn fn) {
  VDEP_ASSERT_MSG(delay >= lookahead_,
                  "cross-host delay below the lookahead breaks window isolation");
  Host& src = *hosts_[static_cast<std::size_t>(from)];
  if (!running_) {
    // Setup time: both clocks are at zero, deliver directly.
    hosts_[static_cast<std::size_t>(to)]->queue.schedule(src.now + delay, std::move(fn));
    return;
  }
  src.outbox.push_back(PendingSend{to, src.now + delay, std::move(fn)});
}

void WindowedEngine::run_host_window(Host& host, SimTime window_end) {
  while (!host.queue.empty() && host.queue.next_time() < window_end) {
    auto [at, fn] = host.queue.pop();
    VDEP_ASSERT(at >= host.now);
    host.now = at;
    fn();
    ++host.executed;
  }
}

SimTime WindowedEngine::earliest_event() const {
  SimTime earliest = kNever;
  for (const auto& h : hosts_) {
    if (!h->queue.empty()) earliest = std::min(earliest, h->queue.next_time());
  }
  return earliest;
}

void WindowedEngine::run_until(SimTime deadline) {
  running_ = true;
  const std::int64_t width = lookahead_.count();
  TaskGroup window_done;
  std::vector<Host*> active;
  active.reserve(hosts_.size());

  for (;;) {
    const SimTime earliest = earliest_event();
    if (earliest == kNever || earliest > deadline) break;

    // Window grid is anchored at time zero with lookahead-wide cells, so
    // the window sequence depends only on event times — never on worker
    // count or scheduling. run_until's contract is `<= deadline`, hence the
    // half-open window end is clamped to deadline + 1ns.
    const SimTime window_start = SimTime{(earliest.count() / width) * width};
    const SimTime window_end =
        std::min(window_start + lookahead_, deadline + SimTime{1});

    active.clear();
    for (auto& h : hosts_) {
      if (!h->queue.empty() && h->queue.next_time() < window_end) active.push_back(h.get());
    }

    if (active.size() == 1) {
      // One busy host: run it inline, skip the barrier round-trip.
      run_host_window(*active.front(), window_end);
    } else {
      for (Host* h : active) {
        pool_.submit(window_done, [this, h, window_end] {
          run_host_window(*h, window_end);
        });
      }
      window_done.wait(pool_);
    }

    // Barrier: merge buffered cross-host sends in (sender, emission) order.
    // Every delivery time is >= window_start + lookahead >= window_end, so
    // the merge never schedules into a host's executed past.
    for (auto& h : hosts_) {
      for (PendingSend& send : h->outbox) {
        hosts_[static_cast<std::size_t>(send.to)]->queue.schedule(send.at,
                                                                  std::move(send.fn));
      }
      h->outbox.clear();
    }
    ++windows_run_;
  }

  // Mirror Kernel::run_until: clocks land on the deadline.
  for (auto& h : hosts_) h->now = std::max(h->now, deadline);
  running_ = false;
}

std::uint64_t WindowedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& h : hosts_) total += h->executed;
  return total;
}

}  // namespace vdep::sim::parallel
