// Work-stealing thread pool for the parallel simulation tiers.
//
// Shape: one Chase-Lev deque per worker (see steal_deque.hpp) plus a
// mutex-guarded injector queue for submissions from outside the pool. A
// worker takes work local-first (LIFO from its own deque — cache-warm,
// obstruction-free), then from the injector, then steals the oldest task
// from a sibling; an idle worker spins briefly and then sleeps on a
// condition variable until a submit wakes it.
//
// Two usage rules keep the rest of the codebase simple:
//  - Tasks are plain std::function<void()> thunks and must not throw: a
//    trial that violates an invariant aborts via VDEP_ASSERT exactly as it
//    does on the serial path.
//  - Determinism is the *caller's* job. The pool executes tasks in an
//    arbitrary order on arbitrary threads; callers that need reproducible
//    results (the chaos campaign, the windowed engine) write into
//    pre-assigned slots and merge in a deterministic order afterwards.
//
// TaskGroup is the completion primitive: every submit against a group
// increments its pending count, finishing the task decrements it, and
// wait() *helps* — the waiting thread drains pool tasks instead of
// blocking, so nested fan-outs (a pool task waiting on a sub-batch, e.g.
// the parallel shrinker inside a campaign worker) cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/parallel/steal_deque.hpp"

namespace vdep::sim::parallel {

class StealPool;

// Counts outstanding tasks of one fan-out. A group may be reused for
// several waves (submit / wait / submit / wait ...), but must outlive every
// task submitted against it.
//
// Deliberately a bare atomic, no mutex/cv: a finishing task's *last* access
// to the group is the final fetch_sub itself, so the moment wait() observes
// zero the group can be destroyed (TaskGroups live on waiters' stacks — a
// cv notify after the decrement would race that destruction). The waiter
// never idles long anyway: wait() *helps*, draining pool tasks on the
// calling thread, and only naps briefly when nothing is runnable.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Blocks until every task submitted against this group has finished,
  // executing pool tasks on the calling thread while it waits.
  void wait(StealPool& pool);

  [[nodiscard]] std::uint64_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  friend class StealPool;

  std::atomic<std::uint64_t> pending_{0};
};

class StealPool {
 public:
  using Task = std::function<void()>;

  // Spawns `workers` threads (floored at 1).
  explicit StealPool(int workers);
  ~StealPool();

  StealPool(const StealPool&) = delete;
  StealPool& operator=(const StealPool&) = delete;

  [[nodiscard]] int workers() const { return static_cast<int>(workers_.size()); }

  // Schedules `fn`. From a worker thread of this pool the task goes to that
  // worker's own deque (stealable by siblings); from any other thread it
  // goes to the shared injector queue.
  void submit(Task fn) { submit_node(make_node(std::move(fn), nullptr)); }

  // Same, tracked by `group` for TaskGroup::wait.
  void submit(TaskGroup& group, Task fn) {
    group.pending_.fetch_add(1, std::memory_order_acq_rel);
    submit_node(make_node(std::move(fn), &group));
  }

  // Runs one pending task on the calling thread if one can be found.
  // Returns false when nothing was runnable (which does not mean the pool
  // is idle — tasks may be mid-execution on workers).
  bool try_run_one();

 private:
  struct Node {
    Task fn;
    TaskGroup* group = nullptr;
  };

  struct Worker {
    StealDeque<Node> deque;
    std::thread thread;
  };

  static Node* make_node(Task fn, TaskGroup* group) {
    return new Node{std::move(fn), group};
  }

  void submit_node(Node* node);
  void worker_loop(std::size_t self);
  // Injector first (external work is oldest), then steal round-robin.
  Node* take_shared(std::size_t start_victim);
  void run_node(Node* node);
  void wake_one();

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex injector_mutex_;
  std::deque<Node*> injector_;

  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  // Bumped by every submit; an idle worker records it before its final
  // queue re-check and sleeps only while it is unchanged, which closes the
  // check-then-sleep race without taking a lock on the submit fast path.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace vdep::sim::parallel
