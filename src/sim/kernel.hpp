// The discrete-event simulation kernel: a virtual clock, an event queue and
// the root random stream for one experiment.
//
// Everything in the repository — network, group communication, ORB,
// replicator, workloads — runs as callbacks scheduled on one Kernel, so a
// whole distributed experiment is a single deterministic computation.
//
// A Kernel and its entire object graph (tracer, interner, pools, every
// component scheduled on it) are confined to one thread at a time. Parallel
// execution never shares a kernel: the chaos trial fleet runs one isolated
// Kernel per trial on pool workers, and the windowed engine
// (sim/parallel/windowed.hpp) partitions a simulation into per-host queues
// with its own cross-thread handoff rules.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/tracer.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace vdep::sim {

class Kernel {
 public:
  explicit Kernel(std::uint64_t seed);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  EventHandle post(SimTime delay, EventFn fn);

  // Schedules at an absolute time (>= now()).
  EventHandle post_at(SimTime at, EventFn fn);

  // Runs until the queue drains or stop() is called.
  void run();

  // Runs events with timestamp <= deadline; afterwards now() == deadline
  // unless stopped early or already past it.
  void run_until(SimTime deadline);

  // Runs at most `n` further events; returns the number executed.
  std::size_t run_steps(std::size_t n);

  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  // Derives an independent random stream; components call this once at
  // construction with a unique index so that adding a component never
  // perturbs another component's randomness.
  [[nodiscard]] Rng fork_rng(std::uint64_t stream_index) {
    return root_rng_.fork(stream_index);
  }

  // Statistics about the run.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  // The experiment's tracer: one per kernel so span/trace ids are sequential
  // within a run and independent across runs. Off by default; the disabled
  // path is a single branch (see obs/tracer.hpp).
  [[nodiscard]] obs::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const obs::Tracer& tracer() const { return tracer_; }

 private:
  void execute_one();

  SimTime now_ = kTimeZero;
  EventQueue queue_;
  Rng root_rng_;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  obs::Tracer tracer_{[this] { return now_; }};
};

}  // namespace vdep::sim
