#include "sim/cpu.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::sim {

Cpu::Cpu(Kernel& kernel, NodeId node) : kernel_(kernel), node_(node) {}

void Cpu::set_slowdown(double factor) {
  VDEP_ASSERT(factor > 0.0);
  slowdown_ = factor;
}

void Cpu::execute(SimTime duration, EventFn on_done) {
  VDEP_ASSERT(duration >= kTimeZero);
  duration = SimTime{static_cast<std::int64_t>(
      static_cast<double>(duration.count()) * slowdown_)};
  const SimTime start = std::max(kernel_.now(), next_free_);
  const SimTime done = start + duration;
  next_free_ = done;
  busy_total_ += duration;
  ++jobs_;
  kernel_.post_at(done, std::move(on_done));
}

SimTime Cpu::backlog() const {
  return std::max(kTimeZero, next_free_ - kernel_.now());
}

double Cpu::utilization() const {
  const SimTime elapsed = kernel_.now();
  if (elapsed <= kTimeZero) return 0.0;
  // busy_total_ counts enqueued work; cap at elapsed so a deep backlog does
  // not report > 100%.
  const auto busy = std::min(busy_total_, elapsed);
  return static_cast<double>(busy.count()) / static_cast<double>(elapsed.count());
}

double Cpu::load_since_last_sample() {
  const SimTime now = kernel_.now();
  const SimTime window = now - sample_mark_time_;
  const SimTime busy = busy_total_ - sample_mark_busy_;
  sample_mark_time_ = now;
  sample_mark_busy_ = busy_total_;
  if (window <= kTimeZero) return 0.0;
  return std::min(1.0, static_cast<double>(busy.count()) /
                           static_cast<double>(window.count()));
}

}  // namespace vdep::sim
