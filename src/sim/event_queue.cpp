#include "sim/event_queue.hpp"

#include "util/assert.hpp"

namespace vdep::sim {

namespace detail {

std::uint32_t EventSlotPool::acquire() {
  if (!free.empty()) {
    std::uint32_t idx = free.back();
    free.pop_back();
    slots[idx].cancelled = false;
    return idx;
  }
  slots.push_back(Slot{});
  return static_cast<std::uint32_t>(slots.size() - 1);
}

void EventSlotPool::retire(std::uint32_t idx) {
  // Bumping the generation invalidates every outstanding handle for this
  // event; the slot is then free to be reused by a future schedule().
  ++slots[idx].gen;
  free.push_back(idx);
}

}  // namespace detail

void EventHandle::cancel() {
  if (pool_ && pool_->current(slot_, gen_)) pool_->slots[slot_].cancelled = true;
}

bool EventHandle::active() const {
  return pool_ && pool_->current(slot_, gen_) && !pool_->slots[slot_].cancelled;
}

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  const std::uint32_t slot = pool_->acquire();
  heap_.push(Entry{at, seq_++, slot, std::move(fn)});
  ++live_;
  return EventHandle{pool_, slot, pool_->slots[slot].gen};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && pool_->slots[heap_.top().slot].cancelled) {
    pool_->retire(heap_.top().slot);
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  VDEP_ASSERT(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  VDEP_ASSERT(!heap_.empty());
  const Entry& top = heap_.top();
  Popped out{top.at, std::move(top.fn)};
  // A popped event is no longer pending: its handle reports inactive, and a
  // late cancel() becomes a harmless no-op.
  pool_->retire(top.slot);
  heap_.pop();
  --live_;
  return out;
}

}  // namespace vdep::sim
