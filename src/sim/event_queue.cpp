#include "sim/event_queue.hpp"

#include "util/assert.hpp"

namespace vdep::sim {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::active() const { return cancelled_ && !*cancelled_; }

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{at, seq_++, cancelled, std::move(fn)});
  ++live_;
  return EventHandle{std::move(cancelled)};
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  VDEP_ASSERT(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  VDEP_ASSERT(!heap_.empty());
  const Entry& top = heap_.top();
  Popped out{top.at, std::move(top.fn)};
  // A popped event is no longer pending: its handle reports inactive, and a
  // late cancel() becomes a harmless no-op.
  *top.cancelled = true;
  heap_.pop();
  --live_;
  return out;
}

}  // namespace vdep::sim
