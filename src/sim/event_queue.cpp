#include "sim/event_queue.hpp"

#include <bit>

#include "util/assert.hpp"

namespace vdep::sim {

namespace detail {

std::uint32_t EventSlotPool::acquire() {
  if (!free.empty()) {
    std::uint32_t idx = free.back();
    free.pop_back();
    Slot& s = slots[idx];
    s.cancelled = false;
    s.next = kNil;
    return idx;
  }
  slots.push_back(Slot{});
  return static_cast<std::uint32_t>(slots.size() - 1);
}

void EventSlotPool::retire(std::uint32_t idx) {
  // Bumping the generation invalidates every outstanding handle for this
  // event; the slot is then free to be reused by a future schedule().
  Slot& s = slots[idx];
  ++s.gen;
  s.fn.reset();  // release captured resources now, not at reuse time
  free.push_back(idx);
}

}  // namespace detail

void EventHandle::cancel() {
  if (pool_ && pool_->current(slot_, gen_) && !pool_->slots[slot_].cancelled) {
    pool_->slots[slot_].cancelled = true;
    --pool_->live;
  }
}

bool EventHandle::active() const {
  return pool_ && pool_->current(slot_, gen_) && !pool_->slots[slot_].cancelled;
}

EventQueue::EventQueue() {
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      head_[level][slot] = kNil;
      tail_[level][slot] = kNil;
    }
  }
}

EventQueue::~EventQueue() {
  // Retire every pending event: closures release their captures, and any
  // handle that outlives the queue goes inert (generation bumped).
  for (int level = 0; level < kLevels; ++level) {
    for (int slot = 0; slot < kSlots; ++slot) {
      std::uint32_t idx = head_[level][slot];
      while (idx != kNil) {
        const std::uint32_t next = pool_->slots[idx].next;
        pool_->retire(idx);
        idx = next;
      }
    }
  }
  pool_->live = 0;
}

void EventQueue::place(std::uint32_t idx, std::uint64_t at) const {
  const std::uint64_t diff = at ^ cursor_;
  const int level =
      diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kLevelBits;
  const int slot =
      static_cast<int>((at >> (level * kLevelBits)) & (kSlots - 1));
  detail::EventSlotPool::Slot& s = pool_->slots[idx];
  s.next = kNil;
  if (head_[level][slot] == kNil) {
    head_[level][slot] = idx;
  } else {
    pool_->slots[tail_[level][slot]].next = idx;
  }
  tail_[level][slot] = idx;
  bitmap_[level] |= std::uint64_t{1} << slot;
}

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  const auto t = static_cast<std::uint64_t>(at.count());
  VDEP_ASSERT_MSG(at.count() >= 0 && t >= cursor_,
                  "cannot schedule before the last popped event time");
  const std::uint32_t idx = pool_->acquire();
  detail::EventSlotPool::Slot& s = pool_->slots[idx];
  s.at = at.count();
  s.fn = std::move(fn);
  place(idx, t);
  ++seq_;
  ++pool_->live;
  return EventHandle{pool_, idx, s.gen};
}

int EventQueue::lowest_level() const {
  for (int level = 0; level < kLevels; ++level) {
    if (bitmap_[level] != 0) return level;
  }
  VDEP_ASSERT_MSG(false, "event wheel empty");
  return -1;
}

void EventQueue::cascade(int level, int slot) const {
  // The cursor advances to the slot's base time. Legal: every pending event
  // is >= that base (this is the earliest occupied slot of the lowest
  // non-empty level), and cascades run only inside pop(), whose result pins
  // the schedule() floor at the popped time anyway. Events are re-filed in
  // list order, which preserves same-time FIFO.
  const int shift = level * kLevelBits;
  const int span_bits = shift + kLevelBits;
  const std::uint64_t span_mask =
      span_bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << span_bits) - 1);
  cursor_ = (cursor_ & ~span_mask) | (static_cast<std::uint64_t>(slot) << shift);

  std::uint32_t idx = head_[level][slot];
  head_[level][slot] = kNil;
  tail_[level][slot] = kNil;
  bitmap_[level] &= ~(std::uint64_t{1} << slot);
  while (idx != kNil) {
    const std::uint32_t next = pool_->slots[idx].next;
    if (pool_->slots[idx].cancelled) {
      pool_->retire(idx);
    } else {
      place(idx, static_cast<std::uint64_t>(pool_->slots[idx].at));
    }
    idx = next;
  }
}

SimTime EventQueue::next_time() const {
  VDEP_ASSERT(!empty());
  for (;;) {
    const int level = lowest_level();
    const int slot = std::countr_zero(bitmap_[level]);
    if (level == 0) {
      // Exact-time slot: the head is the earliest event; sweep cancelled
      // carcasses off the front as we go.
      const std::uint32_t idx = head_[0][slot];
      detail::EventSlotPool::Slot& s = pool_->slots[idx];
      if (!s.cancelled) return SimTime{s.at};
      head_[0][slot] = s.next;
      if (head_[0][slot] == kNil) {
        tail_[0][slot] = kNil;
        bitmap_[0] &= ~(std::uint64_t{1} << slot);
      }
      pool_->retire(idx);
      continue;
    }
    // Coarse slot: events inside span different times, so scan for the
    // minimum (sweeping cancelled ones out of the list). No cascade here —
    // next_time() must not advance the cursor, because callers may still
    // schedule between the last popped time and this slot's base.
    std::int64_t best = -1;
    std::uint32_t idx = head_[level][slot];
    std::uint32_t prev = kNil;
    while (idx != kNil) {
      detail::EventSlotPool::Slot& s = pool_->slots[idx];
      const std::uint32_t next = s.next;
      if (s.cancelled) {
        if (prev == kNil) {
          head_[level][slot] = next;
        } else {
          pool_->slots[prev].next = next;
        }
        if (next == kNil) tail_[level][slot] = prev;
        pool_->retire(idx);
      } else {
        if (best < 0 || s.at < best) best = s.at;
        prev = idx;
      }
      idx = next;
    }
    if (head_[level][slot] == kNil) {
      bitmap_[level] &= ~(std::uint64_t{1} << slot);
      continue;
    }
    return SimTime{best};
  }
}

EventQueue::Popped EventQueue::pop() {
  VDEP_ASSERT(!empty());
  for (;;) {
    const int level = lowest_level();
    const int slot = std::countr_zero(bitmap_[level]);
    if (level != 0) {
      cascade(level, slot);
      continue;
    }
    const std::uint32_t idx = head_[0][slot];
    detail::EventSlotPool::Slot& s = pool_->slots[idx];
    head_[0][slot] = s.next;
    if (head_[0][slot] == kNil) {
      tail_[0][slot] = kNil;
      bitmap_[0] &= ~(std::uint64_t{1} << slot);
    }
    if (s.cancelled) {
      pool_->retire(idx);
      continue;
    }
    cursor_ = static_cast<std::uint64_t>(s.at);
    Popped out{SimTime{s.at}, std::move(s.fn)};
    --pool_->live;
    // A popped event is no longer pending: its handle reports inactive, and a
    // late cancel() becomes a harmless no-op.
    pool_->retire(idx);
    return out;
  }
}

}  // namespace vdep::sim
