// Priority queue of timestamped events with deterministic tie-breaking.
//
// Events at the same simulated time fire in insertion order (FIFO), which is
// what makes whole-system runs bit-reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace vdep::sim {

using EventFn = std::function<void()>;

namespace detail {

// Generation-counted slot pool backing event cancellation. One pool per
// queue: scheduling an event claims a slot (recycled from the free list, so
// the steady state performs no allocation — unlike a shared_ptr<bool> per
// event), and popping or dropping the event retires it, bumping the
// generation so stale handles go inert.
struct EventSlotPool {
  struct Slot {
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  std::vector<Slot> slots;
  std::vector<std::uint32_t> free;

  std::uint32_t acquire();
  void retire(std::uint32_t idx);
  [[nodiscard]] bool current(std::uint32_t idx, std::uint32_t gen) const {
    return slots[idx].gen == gen;
  }
};

}  // namespace detail

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert. Cancellation is O(1): the event stays in the heap but is skipped.
// active() means "still pending": false before scheduling, after cancel(),
// and after the event has fired. Copies share cancellation state. Handles
// hold the pool alive, so they remain safe after the queue is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventSlotPool> pool, std::uint32_t slot,
              std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::EventSlotPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Must not be earlier than the last
  // popped event time.
  EventHandle schedule(SimTime at, EventFn fn);

  // True when no non-cancelled events remain.
  [[nodiscard]] bool empty() const;

  // Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and returns the earliest event. Queue must not be empty.
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  [[nodiscard]] Popped pop();

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    // Slot in the queue's pool; the generation is implicitly current while
    // the entry sits in the heap (slots are retired only on pop/drop).
    std::uint32_t slot;
    // Mutable so pop() can move the closure out of the priority queue's
    // const top() without copying.
    mutable EventFn fn;

    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  std::shared_ptr<detail::EventSlotPool> pool_ =
      std::make_shared<detail::EventSlotPool>();
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace vdep::sim
