// Timestamped event queue with deterministic tie-breaking, implemented as a
// hierarchical timer wheel.
//
// Events at the same simulated time fire in insertion order (FIFO), which is
// what makes whole-system runs bit-reproducible for a given seed. The wheel
// delivers exactly the order a binary heap keyed on (time, sequence) would —
// the structure is a performance choice, not a semantics change (pinned by
// the old-vs-new property test in sim_event_queue_test.cpp).
//
// Layout: 11 levels of 64 slots. Level 0 slots are 1 ns wide — every event
// in a level-0 slot shares an exact timestamp, so its FIFO list *is* the
// delivery order. Level L slots are 64^L ns wide; an event is filed at the
// level of the highest bit where its time differs from the wheel cursor
// (the last popped time). Each slot keeps an occupancy bit in a per-level
// bitmap, so "earliest pending slot" is a count-trailing-zeros on the first
// non-empty level. Popping cascades the earliest slot of the lowest
// non-empty level down (re-filing its events against the advanced cursor,
// preserving list order) until the earliest event sits in level 0.
//
// Scheduling is O(1): claim a pooled slot (recycled from a free list — no
// allocation in steady state, and the closure itself is stored inline, see
// event_closure.hpp), compute level/slot with an XOR and a CLZ, append to
// the slot's intrusive list. Each event cascades at most once per level on
// its way out, so pop is amortized O(levels) worst case and O(1) when
// events cluster near the cursor (the common case in scenarios).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_closure.hpp"
#include "util/time.hpp"

namespace vdep::sim {

using EventFn = EventClosure;

namespace detail {

// Generation-counted slot pool backing the wheel's event storage and the
// cancellation contract. One pool per queue: scheduling an event claims a
// slot (recycled from the free list, so the steady state performs no
// allocation), and popping or dropping the event retires it, bumping the
// generation so stale handles go inert. The slot embeds the event itself
// (timestamp, intrusive list link, inline closure), so the pool doubles as
// the arena for all pending-event state.
//
// Generation wraparound: generations are 32-bit and wrap. A stale handle
// could only be confused after exactly 2^32 schedule/retire cycles reuse
// its slot while the handle is still held — pops retire slots round-robin
// through the free list, so this is unreachable in practice (pinned by the
// wraparound test).
struct EventSlotPool {
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    std::int64_t at = 0;         // absolute time, ns
    std::uint32_t gen = 0;
    std::uint32_t next = kNil;   // intrusive FIFO link within a wheel slot
    bool cancelled = false;
    EventClosure fn;
  };

  std::vector<Slot> slots;
  std::vector<std::uint32_t> free;
  // Number of scheduled, non-cancelled events. Cancellation decrements this
  // immediately (the carcass is swept from the wheel lazily), so emptiness
  // is O(1) without the heap-top scrubbing the old implementation needed.
  std::uint64_t live = 0;

  std::uint32_t acquire();
  void retire(std::uint32_t idx);
  [[nodiscard]] bool current(std::uint32_t idx, std::uint32_t gen) const {
    return slots[idx].gen == gen;
  }
};

}  // namespace detail

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert. Cancellation is O(1): the event stays in the wheel but is skipped.
// active() means "still pending": false before scheduling, after cancel(),
// and after the event has fired. Copies share cancellation state. Handles
// hold the pool alive, so they remain safe after the queue is destroyed
// (the queue retires every pending event on destruction, so such handles
// report inactive).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventSlotPool> pool, std::uint32_t slot,
              std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::EventSlotPool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  EventQueue();
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` at absolute time `at`. Must not be earlier than the last
  // popped event time.
  EventHandle schedule(SimTime at, EventFn fn);

  // True when no non-cancelled events remain.
  [[nodiscard]] bool empty() const { return pool_->live == 0; }

  // Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and returns the earliest event. Queue must not be empty.
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  [[nodiscard]] Popped pop();

  [[nodiscard]] std::size_t size() const { return pool_->live; }
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

 private:
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 1 << kLevelBits;            // 64
  static constexpr int kLevels = 11;                        // 11*6 = 66 >= 63 bits
  static constexpr std::uint32_t kNil = detail::EventSlotPool::kNil;

  // Files slot `idx` (time `at`) into the wheel relative to cursor_.
  void place(std::uint32_t idx, std::uint64_t at) const;
  // Index of the lowest level with any occupied slot; queue must hold events.
  [[nodiscard]] int lowest_level() const;
  // Moves every event out of (level, slot) into lower levels after the
  // cursor advanced to the slot's base time, preserving FIFO order.
  void cascade(int level, int slot) const;

  std::shared_ptr<detail::EventSlotPool> pool_ =
      std::make_shared<detail::EventSlotPool>();
  // All wheel state is mutable: next_time() lazily sweeps cancelled events
  // and pop()-driven cascades are shared with it, the same const-laundering
  // the old heap's drop_cancelled() did.
  mutable std::uint64_t cursor_ = 0;  // last popped time (wheel origin)
  mutable std::uint64_t bitmap_[kLevels] = {};
  mutable std::uint32_t head_[kLevels][kSlots];
  mutable std::uint32_t tail_[kLevels][kSlots];
  std::uint64_t seq_ = 0;  // events ever scheduled
};

}  // namespace vdep::sim
