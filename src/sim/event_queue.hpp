// Priority queue of timestamped events with deterministic tie-breaking.
//
// Events at the same simulated time fire in insertion order (FIFO), which is
// what makes whole-system runs bit-reproducible for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace vdep::sim {

using EventFn = std::function<void()>;

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert. Cancellation is O(1): the event stays in the heap but is skipped.
// active() means "still pending": false before scheduling, after cancel(),
// and after the event has fired.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  // Schedules `fn` at absolute time `at`. Must not be earlier than the last
  // popped event time.
  EventHandle schedule(SimTime at, EventFn fn);

  // True when no non-cancelled events remain.
  [[nodiscard]] bool empty() const;

  // Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and returns the earliest event. Queue must not be empty.
  struct Popped {
    SimTime at;
    EventFn fn;
  };
  [[nodiscard]] Popped pop();

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    // Shared with EventHandle; true once cancelled.
    std::shared_ptr<bool> cancelled;
    // Mutable so pop() can move the closure out of the priority queue's
    // const top() without copying.
    mutable EventFn fn;

    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::size_t live_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace vdep::sim
