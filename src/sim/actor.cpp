#include "sim/actor.hpp"

#include "util/logging.hpp"

namespace vdep::sim {

Process::Process(Kernel& kernel, ProcessId id, NodeId host, std::string name)
    : kernel_(kernel), id_(id), host_(host), name_(std::move(name)) {}

void Process::crash() {
  if (!alive_) return;
  log_info(kernel_.now(), "process", name_ + " CRASH");
  alive_ = false;
  ++epoch_;
  on_crash();
  // Copy: listeners may unsubscribe/re-subscribe during iteration.
  auto listeners = crash_listeners_;
  for (auto& l : listeners) l(id_);
}

void Process::restart() {
  if (alive_) return;
  log_info(kernel_.now(), "process", name_ + " RESTART");
  alive_ = true;
  ++epoch_;
  on_start();
  auto listeners = restart_listeners_;
  for (auto& l : listeners) l(id_);
}

void Process::subscribe_crash(std::function<void(ProcessId)> listener) {
  crash_listeners_.push_back(std::move(listener));
}

void Process::subscribe_restart(std::function<void(ProcessId)> listener) {
  restart_listeners_.push_back(std::move(listener));
}

}  // namespace vdep::sim
