#include "sim/trace.hpp"

#include <sstream>

namespace vdep::sim {

std::vector<TimeSeries::Point> TimeSeries::resample(SimTime start, SimTime end,
                                                    SimTime step) const {
  std::vector<Point> out;
  if (step <= kTimeZero || end < start) return out;
  std::size_t i = 0;
  double last = points_.empty() ? 0.0 : points_.front().value;
  for (SimTime t = start; t <= end; t += step) {
    while (i < points_.size() && points_[i].at <= t) {
      last = points_[i].value;
      ++i;
    }
    out.push_back({t, last});
  }
  return out;
}

void TraceRecorder::add(SimTime at, std::string_view component,
                        std::string_view event) {
  if (!enabled_) return;
  entries_.push_back({at, std::string(component), std::string(event)});
}

std::string TraceRecorder::render() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << e.at.count() << " " << e.component << " " << e.event << "\n";
  }
  return os.str();
}

}  // namespace vdep::sim
