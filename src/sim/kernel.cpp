#include "sim/kernel.hpp"

#include "util/assert.hpp"

namespace vdep::sim {

Kernel::Kernel(std::uint64_t seed) : root_rng_(seed) {}

EventHandle Kernel::post(SimTime delay, EventFn fn) {
  VDEP_ASSERT_MSG(delay >= kTimeZero, "cannot schedule in the past");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Kernel::post_at(SimTime at, EventFn fn) {
  VDEP_ASSERT_MSG(at >= now_, "cannot schedule in the past");
  return queue_.schedule(at, std::move(fn));
}

void Kernel::execute_one() {
  auto [at, fn] = queue_.pop();
  VDEP_ASSERT(at >= now_);
  now_ = at;
  fn();
  ++executed_;
}

void Kernel::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) execute_one();
}

void Kernel::run_until(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    execute_one();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

std::size_t Kernel::run_steps(std::size_t n) {
  stopped_ = false;
  std::size_t done = 0;
  while (done < n && !stopped_ && !queue_.empty()) {
    execute_one();
    ++done;
  }
  return done;
}

}  // namespace vdep::sim
