// Trace recording: named time-series and a structured event trace.
//
// TimeSeries feeds the Fig. 6 style plots (request rate / replication style
// over time); TraceRecorder supports determinism tests (two runs with the
// same seed must produce identical traces).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace vdep::sim {

class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(SimTime at, double value) { points_.push_back({at, value}); }

  struct Point {
    SimTime at;
    double value;
  };

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  // Resamples onto a regular grid [start, end] with `step`, carrying the last
  // value forward (suits step signals like "current replication style").
  [[nodiscard]] std::vector<Point> resample(SimTime start, SimTime end,
                                            SimTime step) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Append-only structured trace. Disabled by default; when disabled, add() is
// a true no-op — the string_view parameters mean no std::string is
// constructed for the arguments, so hot paths can trace unconditionally.
// (Callers that *concatenate* into their arguments should still guard on
// enabled() to skip building the temporaries.)
class TraceRecorder {
 public:
  void enable() { enabled_ = true; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void add(SimTime at, std::string_view component, std::string_view event);

  struct Entry {
    SimTime at;
    std::string component;
    std::string event;
  };

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  // Canonical one-line-per-entry rendering, for golden comparisons.
  [[nodiscard]] std::string render() const;

 private:
  bool enabled_ = false;
  std::vector<Entry> entries_;
};

}  // namespace vdep::sim
