// Simulated processes with crash-stop semantics.
//
// A Process is the unit of failure (the paper replicates and recovers whole
// CORBA processes). Crashing a process invalidates every callback it has
// scheduled — including CPU work completions — via an epoch counter, so no
// stale event can run "after death". Restart bumps the epoch again, modelling
// a cold-passive launch of a fresh replica.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/kernel.hpp"
#include "util/ids.hpp"

namespace vdep::sim {

class Process {
 public:
  Process(Kernel& kernel, ProcessId id, NodeId host, std::string name);
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] NodeId host() const { return host_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] Kernel& kernel() { return kernel_; }
  [[nodiscard]] SimTime now() const { return kernel_.now(); }

  // Wraps `fn` so that it is a no-op unless this process is still alive in
  // the same incarnation as when the wrapper was created. Returns the raw
  // lambda (not a type-erased EventFn): the guard adds only 16 bytes to the
  // wrapped callable, so hot-path captures still fit EventClosure's inline
  // buffer instead of forcing a nested closure-in-closure heap allocation.
  template <typename F>
  [[nodiscard]] auto guarded(F&& fn) {
    return [this, epoch = epoch_, f = std::forward<F>(fn)]() mutable {
      if (alive_ && epoch_ == epoch) f();
    };
  }

  // Schedules `fn` guarded by this process's liveness.
  template <typename F>
  EventHandle post(SimTime delay, F&& fn) {
    return kernel_.post(delay, guarded(std::forward<F>(fn)));
  }

  // Kills the process (crash-stop). Idempotent. Fires crash listeners once.
  void crash();

  // Brings a crashed process back as a new incarnation and calls on_start().
  void restart();

  // Called on restart; subclasses reinitialise volatile state here.
  virtual void on_start() {}
  // Called on crash, before external listeners.
  virtual void on_crash() {}

  // External observers (e.g. the local group-communication daemon) register
  // to learn of this process's crash the way an OS would report a dead child.
  void subscribe_crash(std::function<void(ProcessId)> listener);

  // Observers of the opposite transition (e.g. the scenario harness
  // rebuilding a replica's replication stack when the fault plan brings the
  // process back). Fired after on_start(), once per restart.
  void subscribe_restart(std::function<void(ProcessId)> listener);

  [[nodiscard]] std::uint64_t incarnation() const { return epoch_; }

 protected:
  Kernel& kernel_;

 private:
  ProcessId id_;
  NodeId host_;
  std::string name_;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  std::vector<std::function<void(ProcessId)>> crash_listeners_;
  std::vector<std::function<void(ProcessId)>> restart_listeners_;
};

}  // namespace vdep::sim
