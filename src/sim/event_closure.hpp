// Small-buffer event closure for the simulation hot path.
//
// Every simulated action in the repository is a closure scheduled on the
// kernel; with std::function, any capture beyond two pointers heap-allocates
// on every schedule. EventClosure stores callables up to kInlineBytes inline
// (64 bytes covers the daemon/link/replicator hot-path lambdas: a `this`
// pointer, a liveness guard and a Payload all fit), falling back to the heap
// only for cold, bulky captures such as loopback copies of whole messages.
// Move-only: an event fires once, so there is nothing to copy.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace vdep::sim {

class EventClosure {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  EventClosure() = default;

  // Implicit, like std::function: any move-constructible callable. Copyable
  // callables (e.g. a std::function handed in by cold-path code) still work —
  // they are moved or copied in once, never copied again.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventClosure> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventClosure(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(buf_)) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventClosure(EventClosure&& other) noexcept { move_from(other); }
  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() { reset(); }

  // Destroys the held callable (releasing captured resources) and empties.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    VDEP_ASSERT_MSG(ops_ != nullptr, "invoking an empty EventClosure");
    ops_->invoke(buf_);
  }

  // True when a callable of type Fn is stored inline (no heap allocation).
  template <typename Fn>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs the callable at dst from src, then destroys src.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* src, void* dst) {
        auto* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* self) { static_cast<Fn*>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* self) { (**static_cast<Fn**>(self))(); },
      [](void* src, void* dst) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* self) { delete *static_cast<Fn**>(self); },
  };

  void move_from(EventClosure& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace vdep::sim
