// The causal identity a request carries across process and host boundaries:
// which trace (one per client request / view change / checkpoint round) and
// which span within it caused the message being processed.
//
// A TraceContext is always wire-encoded — zeros when tracing is disabled —
// so enabling tracing never changes message sizes, and therefore never
// changes simulated timing. Determinism tests rely on that.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace vdep::obs {

struct TraceContext {
  std::uint64_t trace = 0;  // 0 = "no trace" (tracing off, or orphan message)
  std::uint64_t span = 0;   // causing span within the trace

  [[nodiscard]] bool valid() const { return trace != 0; }

  void encode_to(ByteWriter& w) const {
    w.u64(trace);
    w.u64(span);
  }
  static TraceContext decode(ByteReader& r) {
    TraceContext ctx;
    ctx.trace = r.u64();
    ctx.span = r.u64();
    return ctx;
  }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

}  // namespace vdep::obs
