// Exporters for recorded traces.
//
// Two renderings, both byte-deterministic for a given tracer state:
//  - Chrome-trace / Perfetto JSON ("X" complete events, microsecond
//    timestamps formatted from integer nanoseconds — no floating point in
//    the formatting path), loadable in chrome://tracing or ui.perfetto.dev;
//  - a canonical indented text tree, for golden tests and terminal reading.
#pragma once

#include <string>

#include "obs/tracer.hpp"

namespace vdep::obs {

// Chrome trace-event JSON. Process labels map to deterministic integer pids
// (first-appearance order) with process_name metadata events.
[[nodiscard]] std::string to_chrome_trace(const Tracer& tracer);

// Canonical text rendering: one tree per trace, children indented under
// their parent, ids/timestamps in nanoseconds.
[[nodiscard]] std::string render_text(const Tracer& tracer);

// Writes `content` to `path` (truncating); returns false on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace vdep::obs
