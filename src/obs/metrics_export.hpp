// Metrics-snapshot JSON exporter: MetricsRegistry -> stable-key JSON,
// emitted next to the Chrome-trace output (see obs/export.hpp).
//
// Keys appear in sorted (std::map) order and numbers render with fixed
// precision, so the same registry state always produces the same bytes.
// Note on layering: the declaration lives here with the other exporters,
// but the definition is compiled into vdep_monitor (the registry type's
// library) — vdep_obs itself does not depend on the monitor layer.
#pragma once

#include <string>

#include "monitor/metrics.hpp"

namespace vdep::obs {

[[nodiscard]] std::string to_metrics_json(const monitor::MetricsRegistry& registry);

}  // namespace vdep::obs
