// Deterministic simulation-time tracer: RAII spans, a propagated "current
// context", and an append-only span table that exporters render.
//
// Design constraints, in order:
//  - Compiled in, off by default. The disabled hot path is a single branch:
//    no allocation, no clock read, no string construction.
//  - Deterministic. Span and trace ids are sequential per tracer (one tracer
//    per sim::Kernel, so per experiment); timestamps are SimTime. Two runs
//    with the same seed produce byte-identical exports.
//  - Causal across async hops. Work in this codebase is deferred through CPU
//    queues and the network; callers capture `current()` (or a span's
//    context()) synchronously and re-establish it inside the callback with a
//    Scope. Wire messages carry a TraceContext explicitly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace_context.hpp"
#include "util/arena.hpp"
#include "util/time.hpp"

namespace vdep::obs {

class Tracer;

// Move-only RAII handle on an open span. A default-constructed (or disabled-
// tracer) Span is inert: every member is a no-op. The span ends at end() or
// destruction, whichever comes first, stamped with the tracer's clock.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::size_t index) : tracer_(tracer), index_(index) {}
  ~Span() { end(); }

  Span(Span&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)), index_(other.index_) {}
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = std::exchange(other.tracer_, nullptr);
      index_ = other.index_;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  // Context that makes children of this span (invalid if inert).
  [[nodiscard]] TraceContext context() const;

  // Attaches a key=value annotation (threshold values, cache hit/miss, ...).
  void note(std::string_view key, std::string_view value);

  void end();

 private:
  Tracer* tracer_ = nullptr;
  std::size_t index_ = 0;
};

class Tracer {
 public:
  using Clock = std::function<SimTime()>;

  explicit Tracer(Clock clock, std::size_t capacity = kDefaultCapacity)
      : clock_(std::move(clock)), capacity_(capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // Starts a span. An invalid `parent` starts a new trace (fresh trace id);
  // a valid one attaches the span to that trace under that parent span.
  // Returns an inert Span when disabled — the check is this branch only.
  [[nodiscard]] Span start_span(std::string_view name, std::string_view category,
                                std::string_view proc,
                                TraceContext parent = TraceContext{}) {
    if (!enabled_) return Span{};
    return start_span_slow(name, category, proc, parent);
  }

  // Like start_span with the current context as parent.
  [[nodiscard]] Span start_child(std::string_view name, std::string_view category,
                                 std::string_view proc) {
    if (!enabled_) return Span{};
    return start_span_slow(name, category, proc, current_);
  }

  // The context propagated to work started "now" (set via Scope).
  [[nodiscard]] TraceContext current() const { return current_; }

  // RAII save/set/restore of the current context across a callback body.
  class Scope {
   public:
    Scope(Tracer& tracer, TraceContext ctx) : tracer_(&tracer) {
      if (!tracer_->enabled()) {
        tracer_ = nullptr;
        return;
      }
      saved_ = tracer_->current_;
      tracer_->current_ = ctx;
    }
    ~Scope() {
      if (tracer_ != nullptr) tracer_->current_ = saved_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_;
    TraceContext saved_;
  };

  struct SpanRecord {
    std::uint64_t trace = 0;
    std::uint64_t id = 0;      // == table index + 1
    std::uint64_t parent = 0;  // 0 = root
    // Interned in the tracer's arena (labels repeat endlessly, so recording
    // a span allocates nothing for them after warmup); valid for the
    // tracer's lifetime, including across clear().
    std::string_view name;
    std::string_view category;
    std::string_view proc;  // process/host label ("replica0@srv0")
    SimTime start = kTimeZero;
    SimTime end = kTimeZero;
    bool open = true;
    std::vector<std::pair<std::string, std::string>> notes;
  };

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t spans_recorded() const { return spans_.size(); }
  // Spans refused because the table hit capacity (flight recorder is full).
  [[nodiscard]] std::uint64_t spans_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t traces_started() const { return next_trace_; }

  void clear() {
    spans_.clear();
    dropped_ = 0;
    next_trace_ = 0;
    current_ = TraceContext{};
  }

  static constexpr std::size_t kDefaultCapacity = 1 << 20;

 private:
  friend class Span;

  [[nodiscard]] Span start_span_slow(std::string_view name, std::string_view category,
                                     std::string_view proc, TraceContext parent);

  void end_span(std::size_t index);
  void note_span(std::size_t index, std::string_view key, std::string_view value);
  [[nodiscard]] TraceContext span_context(std::size_t index) const {
    const SpanRecord& rec = spans_[index];
    return TraceContext{rec.trace, rec.id};
  }

  Clock clock_;
  std::size_t capacity_;
  bool enabled_ = false;
  StringInterner interner_;  // backs SpanRecord name/category/proc
  std::vector<SpanRecord> spans_;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_trace_ = 0;
  TraceContext current_;
};

inline TraceContext Span::context() const {
  if (tracer_ == nullptr) return TraceContext{};
  return tracer_->span_context(index_);
}

inline void Span::note(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr) tracer_->note_span(index_, key, value);
}

inline void Span::end() {
  if (tracer_ != nullptr) {
    tracer_->end_span(index_);
    tracer_ = nullptr;
  }
}

}  // namespace vdep::obs
