#include "obs/tracer.hpp"

namespace vdep::obs {

Span Tracer::start_span_slow(std::string_view name, std::string_view category,
                             std::string_view proc, TraceContext parent) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return Span{};
  }
  SpanRecord rec;
  rec.id = spans_.size() + 1;
  rec.trace = parent.valid() ? parent.trace : ++next_trace_;
  rec.parent = parent.valid() ? parent.span : 0;
  rec.name = interner_.intern(name);
  rec.category = interner_.intern(category);
  rec.proc = interner_.intern(proc);
  rec.start = clock_();
  rec.end = rec.start;
  spans_.push_back(std::move(rec));
  return Span{this, spans_.size() - 1};
}

void Tracer::end_span(std::size_t index) {
  SpanRecord& rec = spans_[index];
  if (!rec.open) return;
  rec.open = false;
  rec.end = clock_();
}

void Tracer::note_span(std::size_t index, std::string_view key, std::string_view value) {
  spans_[index].notes.emplace_back(std::string(key), std::string(value));
}

}  // namespace vdep::obs
