#include "obs/export.hpp"

#include <cstdio>
#include <functional>
#include <map>
#include <vector>

namespace vdep::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with three fixed decimals, computed from integer nanoseconds
// so the formatting is exact and platform-independent.
void append_usec(std::string& out, SimTime t) {
  const auto ns = static_cast<std::uint64_t>(t.count());
  out += std::to_string(ns / 1000);
  out += '.';
  const std::uint64_t frac = ns % 1000;
  if (frac < 100) out += '0';
  if (frac < 10) out += '0';
  out += std::to_string(frac);
}

}  // namespace

std::string to_chrome_trace(const Tracer& tracer) {
  // Deterministic pids: first-appearance order of the process label.
  std::map<std::string, int, std::less<>> pids;
  std::vector<const std::string*> pid_names;
  const auto pid_of = [&](std::string_view proc) {
    auto it = pids.find(proc);
    if (it == pids.end()) {
      it = pids.emplace(std::string(proc), static_cast<int>(pids.size()) + 1).first;
      pid_names.push_back(&it->first);
    }
    return it->second;
  };
  for (const auto& span : tracer.spans()) pid_of(span.proc);

  std::string out;
  out.reserve(tracer.spans().size() * 160 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < pid_names.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(i + 1);
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(out, *pid_names[i]);
    out += "\"}}";
  }
  for (const auto& span : tracer.spans()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, span.name);
    out += "\",\"cat\":\"";
    append_escaped(out, span.category);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_usec(out, span.start);
    out += ",\"dur\":";
    append_usec(out, span.end - span.start);
    out += ",\"pid\":";
    out += std::to_string(pid_of(span.proc));
    out += ",\"tid\":0,\"args\":{\"trace\":";
    out += std::to_string(span.trace);
    out += ",\"span\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    for (const auto& [key, value] : span.notes) {
      out += ",\"";
      append_escaped(out, key);
      out += "\":\"";
      append_escaped(out, value);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string render_text(const Tracer& tracer) {
  const auto& spans = tracer.spans();
  // Children of span id -> list of span ids, in id (== start) order. Spans
  // whose parent id is unknown (dropped or foreign) render as roots.
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;
  std::vector<std::uint64_t> roots;
  for (const auto& span : spans) {
    if (span.parent != 0 && span.parent <= spans.size()) {
      children[span.parent].push_back(span.id);
    } else {
      roots.push_back(span.id);
    }
  }

  std::string out;
  const std::function<void(std::uint64_t, int)> render = [&](std::uint64_t id,
                                                             int depth) {
    const auto& span = spans[id - 1];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += '[';
    out += std::to_string(span.trace);
    out += '/';
    out += std::to_string(span.id);
    out += "] ";
    out += span.name;
    out += ' ';
    out += span.proc;
    out += ' ';
    out += std::to_string(span.start.count());
    out += "..";
    out += std::to_string(span.end.count());
    for (const auto& [key, value] : span.notes) {
      out += ' ';
      out += key;
      out += '=';
      out += value;
    }
    out += '\n';
    auto it = children.find(id);
    if (it == children.end()) return;
    for (std::uint64_t child : it->second) render(child, depth + 1);
  };
  for (std::uint64_t id : roots) render(id, 0);
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace vdep::obs
