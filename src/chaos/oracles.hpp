// Invariant oracles: what "the faults were tolerated" means, checked
// mechanically against a completed trial.
//
// Mapping to the paper's claims:
//   exactly-once    — Sec. 3.1's client coordination + reply caching: a
//                     retransmitted request is answered from the reply cache,
//                     never re-executed (checked in replica state via unique
//                     append tokens).
//   view agreement  — the group-communication substrate (Sec. 3.2, Spread):
//                     surviving members share one agreed view of the group.
//   checkpoint      — the checkpointing low-level knob (Sec. 3.3): snapshot
//   monotonicity      ids taken by one replica incarnation only move forward.
//   bounded         — crash-tolerance of the replication styles and of the
//   recovery          Fig. 5 switch protocol: after the last fault lifts, the
//                     workload finishes within a bounded recovery window.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "chaos/history.hpp"
#include "monitor/health/events.hpp"
#include "net/fault_plan.hpp"
#include "shard/map.hpp"
#include "util/ids.hpp"

namespace vdep::chaos {

// Everything the oracles look at, collected after the trial's kernel has
// drained. Plain data: oracles never touch the live scenario.
struct TrialObservation {
  struct ReplicaState {
    int index = 0;
    bool live = false;        // process alive, replicator running
    bool initialized = true;  // finished joiner state transfer
    bool responder = false;   // would answer clients in the current view
    std::optional<std::uint64_t> view_id;
    std::vector<ProcessId> view_members;
    // Final value of every audited log key on this replica (absent key =
    // no entry). Recorded for dead replicas too: a frozen crashed state must
    // still contain no duplicate.
    std::map<std::string, std::string> logs;
  };

  struct CheckpointEvent {
    int replica = 0;
    std::uint64_t incarnation = 0;  // replicator build counter per replica
    std::uint64_t checkpoint_id = 0;
  };

  std::vector<OpRecord> history;  // all clients, merged
  std::vector<ReplicaState> replicas;
  std::vector<CheckpointEvent> checkpoints;
  // Replica indexes the schedule permanently removed (node kills): exempt
  // from agreement/liveness expectations, still audited for duplicates.
  std::set<int> expected_lost;
  bool all_clients_done = false;
  SimTime finished_at = kTimeZero;   // last client completion (or deadline)
  SimTime last_fault_end = kTimeZero;
  SimTime recovery_bound = sec(12);  // covers the client retry budget (~10 s)
};

struct Verdict {
  std::vector<std::string> failures;
  [[nodiscard]] bool pass() const { return failures.empty(); }
  [[nodiscard]] std::string to_string() const;
  void merge(const Verdict& other);
};

// Each oracle returns the (possibly empty) list of violated invariants.
[[nodiscard]] Verdict check_exactly_once(const TrialObservation& obs);
[[nodiscard]] Verdict check_view_agreement(const TrialObservation& obs);
[[nodiscard]] Verdict check_checkpoint_monotonic(const TrialObservation& obs);
[[nodiscard]] Verdict check_bounded_recovery(const TrialObservation& obs);

// All of the above, merged.
[[nodiscard]] Verdict check_all(const TrialObservation& obs);

// --- sharded trials ------------------------------------------------------------
//
// What a multi-group trial additionally observes: the directory's committed
// map history and, per data group, the serving state a live replica reports.
// Plain data again — collected after the kernel drains.
struct ShardObservation {
  struct GroupState {
    GroupId group;
    bool any_live = false;  // at least one replica serving
    bool frozen = false;    // a live replica still holds a frozen range
    std::vector<shard::KeyRange> owned;        // serving ranges (live replica)
    std::map<std::string, std::string> logs;   // audited log keys present
    std::set<std::string> keys;                // every key in the store
  };

  std::uint64_t initial_epoch = 1;
  shard::ShardMap final_map;                    // directory truth at the end
  std::vector<shard::ShardMap> committed_maps;  // successful migrations, in order
  std::vector<GroupState> groups;
  int migrations_attempted = 0;
  int migrations_committed = 0;
};

// No key is served by two shards in the same epoch: every committed map
// validates and continues the epoch chain, and the final serving ownership
// (live groups' owned ranges) is disjoint and matches the final map exactly.
[[nodiscard]] Verdict check_shard_ownership(const ShardObservation& obs);

// No key is lost or duplicated across a split: every acknowledged append
// token appears exactly once across ALL groups — on the group the final map
// assigns its key to — and acknowledged puts are present at (only) the owner.
[[nodiscard]] Verdict check_shard_migration_integrity(
    const TrialObservation& obs, const ShardObservation& shard_obs);

// --- health plane --------------------------------------------------------------
//
// What a health-enabled trial additionally observes: the deterministic
// HealthEvent stream and the fault schedule it must explain. Plain data.
struct HealthObservation {
  bool enabled = false;
  // Control trial (empty schedule): ANY suspicion or SLO-breach event is a
  // false alarm.
  bool fault_free = false;
  // Every detectable fault must be flagged within this of its strike time.
  SimTime detection_bound = msec(400);
  std::vector<monitor::health::HealthEvent> events;
  std::vector<net::FaultAction> faults;  // the injected schedule, in order
};

// One injected fault carrying a detection obligation, matched against the
// event stream: process crashes must raise kReplicaSuspect for that pid,
// node crashes a kLinkSuspect from the dead host, partitions a kLinkSuspect
// crossing the cut.
struct DetectionRecord {
  std::string fault;  // FaultAction::to_string() of the injected fault
  SimTime injected_at = kTimeZero;
  bool detected = false;
  double latency_ms = 0.0;  // strike -> matching event (when detected)
};

[[nodiscard]] std::vector<DetectionRecord> match_detections(
    const HealthObservation& obs);

// Detection-latency oracle: every crash/partition flagged within the bound,
// and fault-free control trials raise no alarm at all.
[[nodiscard]] Verdict check_detection(const HealthObservation& obs);

}  // namespace vdep::chaos
