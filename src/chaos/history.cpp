#include "chaos/history.hpp"

#include "app/kv_store.hpp"
#include "util/assert.hpp"

namespace vdep::chaos {

std::string client_log_key(int client_index) {
  return "log:c" + std::to_string(client_index);
}

std::string append_token(int client_index, std::uint64_t seq) {
  return "[c" + std::to_string(client_index) + "#" + std::to_string(seq) + "]";
}

std::vector<std::string> parse_tokens(const std::string& log_value) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = log_value.find('[', pos)) != std::string::npos) {
    const std::size_t end = log_value.find(']', pos);
    if (end == std::string::npos) break;
    out.push_back(log_value.substr(pos, end - pos + 1));
    pos = end + 1;
  }
  return out;
}

WorkloadClient::WorkloadClient(harness::Scenario& scenario, Config config, Rng rng,
                               sim::TraceRecorder* trace)
    : scenario_(scenario),
      config_(config),
      rng_(rng),
      trace_(trace),
      process_(scenario.kernel(), ProcessId{7000 + static_cast<std::uint64_t>(config.index)},
               NodeId{static_cast<std::uint64_t>(config.index)},
               "chaos-client" + std::to_string(config.index)),
      orb_(scenario.network(), process_) {
  VDEP_ASSERT_MSG(config_.index < scenario.config().clients,
                  "one workload client per scenario client host");
  orb_.use_transport(std::make_unique<replication::ClientCoordinator>(
      scenario.network(), scenario.daemon_on(process_.host()), process_));
}

void WorkloadClient::start() {
  scenario_.kernel().post_at(config_.start_at + usec(125) * config_.index,
                             process_.guarded([this] { issue_next(); }));
}

void WorkloadClient::issue_next() {
  if (next_seq_ >= static_cast<std::uint64_t>(config_.ops)) return;
  const std::uint64_t seq = next_seq_++;

  OpRecord rec;
  rec.client = config_.index;
  rec.seq = seq;
  rec.issued_at = process_.now();

  const double draw = rng_.uniform01();
  Bytes args;
  if (draw < config_.append_ratio) {
    rec.op = "append";
    rec.key = client_log_key(config_.index);
    rec.token = append_token(config_.index, seq);
    args = app::KvStoreServant::encode_append(rec.key, rec.token);
  } else if (draw < config_.append_ratio + (1.0 - config_.append_ratio) / 2.0) {
    rec.op = "put";
    rec.key = "kv:c" + std::to_string(config_.index) + ":" +
              std::to_string(rng_.below(8));
    args = app::KvStoreServant::encode_put(rec.key, "v" + std::to_string(seq));
  } else {
    rec.op = "get";
    rec.key = "kv:c" + std::to_string(config_.index) + ":" +
              std::to_string(rng_.below(8));
    args = app::KvStoreServant::encode_key(rec.key);
  }

  const std::size_t slot = history_.size();
  history_.push_back(rec);
  if (trace_ != nullptr) {
    trace_->add(process_.now(), "client" + std::to_string(config_.index),
                "issue " + rec.op + " " + rec.key +
                    (rec.token.empty() ? "" : " " + rec.token));
  }

  orb_.invoke(scenario_.object_ref(), rec.op, std::move(args),
              [this, slot](orb::ReplyStatus status, Bytes /*body*/) {
                OpRecord& done = history_[slot];
                done.completed_at = process_.now();
                done.ok = status == orb::ReplyStatus::kNoException;
                last_completed_ = process_.now();
                ++completed_;
                if (scenario_.health_enabled()) {
                  auto& metrics = scenario_.metrics();
                  metrics.observe("service.latency_us",
                                  to_usec(process_.now() - done.issued_at));
                  metrics.add("service.requests");
                  if (!done.ok) metrics.add("service.failures");
                }
                if (trace_ != nullptr) {
                  trace_->add(process_.now(), "client" + std::to_string(config_.index),
                              "complete " + done.op + " " + done.key +
                                  (done.ok ? " ok" : " fail"));
                }
                if (this->done()) {
                  if (on_done) on_done();
                } else {
                  process_.post(config_.gap, [this] { issue_next(); });
                }
              });
}

}  // namespace vdep::chaos
