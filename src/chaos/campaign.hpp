// Chaos campaign runner: seeded trials over the dependability design space.
//
// One trial = build a replicated KV scenario, generate (or accept) a fault
// schedule, run a recorded client workload through it, then judge the
// completed run with the invariant oracles. A trial is reproducible from
// (seed, config) alone — the schedule, the workload mix, every network
// coin-flip and the final verdict all derive from them deterministically.
//
// A campaign sweeps trials across {replication style x replica count x
// checkpoint frequency} and aggregates verdicts and recovery-time metrics
// into monitor::MetricsRegistry / sim::TimeSeries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "chaos/oracles.hpp"
#include "chaos/schedule.hpp"
#include "monitor/metrics.hpp"
#include "replication/types.hpp"

namespace vdep::chaos {

struct TrialConfig {
  std::uint64_t seed = 1;
  replication::ReplicationStyle style = replication::ReplicationStyle::kWarmPassive;
  int clients = 2;
  int replicas = 3;
  SimTime checkpoint_interval = msec(50);
  std::uint32_t checkpoint_every_requests = 25;
  // Incremental checkpointing: every K-th checkpoint is a full anchor (1 =
  // all full, the pre-delta protocol).
  std::uint32_t checkpoint_anchor_interval = 1;

  int ops_per_client = 100;
  SimTime op_gap = msec(12);
  double append_ratio = 0.7;

  SchedulePolicy faults;

  // Judging knobs.
  SimTime recovery_bound = sec(12);  // client retry budget is ~10 s
  SimTime hard_deadline = sec(25);   // absolute per-trial cutoff

  // Deliberate safety bug (reply dedup disabled) — used to validate that
  // the oracles actually catch violations. See ReplicatorParams.
  bool inject_dedup_bug = false;

  // Record a structured trace and digest it (determinism tests).
  bool record_trace = false;

  // Live health plane: attach a HealthMonitor to the trial scenario, feed
  // client latencies into the service SLO, and judge the run with the
  // detection oracle — every injected crash/partition must be flagged within
  // detection_bound, and fault-free control trials must raise no alarm.
  bool health = false;
  SimTime detection_bound = msec(400);

  // Record causal spans (obs::Tracer) during the trial and attach a
  // Chrome-trace flight recording to the result. Deterministic: re-running
  // the same (seed, config) reproduces the recording byte for byte, which is
  // how failing campaign trials get their post-mortem recordings.
  bool record_spans = false;

  // Sharded scale-out trials: shards > 1 builds a shard::ShardedCluster
  // (directory group + one replica group per shard, routed clients) instead
  // of a single-group Scenario, performs `splits` online shard splits while
  // the workload runs, and injects the fault budget *inside* the split
  // windows. Judged by the shard oracles (ownership + migration integrity)
  // plus bounded recovery; see run_shard_trial.
  int shards = 1;
  int splits = 2;
};

struct TrialResult {
  net::FaultPlan plan;
  Verdict verdict;
  TrialObservation observation;
  ShardObservation shard_observation;    // populated when shards > 1
  HealthObservation health_observation;  // populated when health is on
  SimTime finished_at = kTimeZero;
  SimTime last_fault_end = kTimeZero;
  double recovery_ms = 0.0;  // last fault effect -> workload completion
  std::uint64_t completed_ops = 0;
  std::uint64_t trace_digest = 0;  // fnv1a over the rendered trace

  // Span telemetry (populated when TrialConfig::record_spans is set).
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  std::string flight_recording;  // Chrome-trace JSON of the whole trial

  [[nodiscard]] bool pass() const { return verdict.pass(); }
};

// Runs one trial with a schedule generated from the trial seed.
[[nodiscard]] TrialResult run_trial(const TrialConfig& config);

// Runs one trial with an explicit schedule (the shrinker's entry point; also
// how a minimal reproducer is replayed).
[[nodiscard]] TrialResult run_trial(const TrialConfig& config,
                                    const net::FaultPlan& plan);

struct CampaignConfig {
  std::uint64_t seed = 1;
  int trials = 200;
  std::vector<replication::ReplicationStyle> styles = {
      replication::ReplicationStyle::kActive,
      replication::ReplicationStyle::kWarmPassive,
      replication::ReplicationStyle::kColdPassive,
      replication::ReplicationStyle::kSemiActive,
      replication::ReplicationStyle::kHybrid,
  };
  std::vector<int> replica_counts = {2, 3};
  std::vector<std::uint32_t> checkpoint_frequencies = {10, 25};
  // Outermost sweep dimension (so adding it kept the configs at existing
  // sweep positions unchanged): full-anchor cadence for delta checkpoints.
  std::vector<std::uint32_t> anchor_intervals = {1, 4};
  // New outermost dimension (same preservation rule): shard counts. 1 =
  // classic single-group trial; > 1 = sharded trial with online splits.
  std::vector<int> shard_counts = {1};
  TrialConfig base;  // everything not swept

  // Trial-fleet parallelism: > 1 runs trials on a work-stealing pool (one
  // isolated Kernel per trial) and commits results in trial-index order, so
  // the campaign output — metrics, failures, JSON, on_trial sequence — is
  // byte-identical to the serial (workers == 1) run with the same seeds.
  int workers = 1;
};

struct CampaignFailure {
  int trial_index = 0;
  TrialConfig config;
  net::FaultPlan plan;
  std::vector<std::string> failures;
  // Post-mortem: the failing trial re-run deterministically with span
  // recording on; load in chrome://tracing / ui.perfetto.dev.
  std::string flight_recording;
};

struct CampaignResult {
  int trials = 0;
  int passed = 0;
  monitor::MetricsRegistry metrics;          // counters + recovery distribution
  sim::TimeSeries recovery_series{"chaos_recovery_ms"};  // x = trial index (ns)
  std::vector<CampaignFailure> failures;

  [[nodiscard]] bool all_passed() const { return passed == trials; }
};

// Derives the trial config for sweep position `index` (public so a failing
// trial can be reproduced from the campaign seed and its index alone).
[[nodiscard]] TrialConfig campaign_trial_config(const CampaignConfig& config, int index);

// Runs the sweep. `on_trial` (optional) observes each finished trial, always
// in trial-index order — with workers > 1 a trial's callback fires once every
// lower-indexed trial has committed.
[[nodiscard]] CampaignResult run_campaign(
    const CampaignConfig& config,
    const std::function<void(int, const TrialConfig&, const TrialResult&)>& on_trial = {});

// The campaign summary as JSON (what examples/chaos_runner records to
// BENCH_chaos.json; also the byte-identity witness for the serial-vs-parallel
// determinism tests).
[[nodiscard]] std::string to_json(const CampaignConfig& config,
                                  const CampaignResult& result);

}  // namespace vdep::chaos
