#include "chaos/shrink.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::chaos {

namespace {

net::FaultPlan plan_from(const std::vector<net::FaultAction>& actions) {
  net::FaultPlan plan;
  for (const auto& a : actions) plan.add(a);
  return plan;
}

SimTime snap_down(SimTime t, SimTime grid) {
  const auto g = grid.count();
  return SimTime{(t.count() / g) * g};
}

}  // namespace

ShrinkResult shrink_schedule(const TrialConfig& config, const net::FaultPlan& failing,
                             const FailPredicate& still_fails,
                             sim::parallel::StealPool* pool) {
  const FailPredicate fails_pred =
      still_fails ? still_fails
                  : [](const TrialResult& r) { return !r.pass(); };

  ShrinkResult out;
  auto probe = [&](const net::FaultPlan& candidate) {
    ++out.probes;
    TrialResult r = run_trial(config, candidate);
    const bool failed = fails_pred(r);
    if (failed) {
      out.minimal = candidate;
      out.reproduction = std::move(r);
    }
    return failed;
  };

  const bool reproduced = probe(failing);
  VDEP_ASSERT_MSG(reproduced, "shrink_schedule needs a failing schedule");

  // Degenerate witness first: if the bug fires with no faults at all, the
  // schedule was never the trigger.
  if (!failing.empty() && probe(net::FaultPlan{})) {
    return out;
  }

  // Phase 1 — ddmin on the action list: repeatedly try dropping one of n
  // chunks; on success restart at coarse granularity, otherwise refine.
  //
  // Serial rounds scan candidates in start order and commit the first
  // failure; parallel rounds (with a pool) evaluate every candidate of the
  // round as an independent trial and commit the lowest-indexed failure —
  // the same commit, reached by racing the whole round at once.
  std::vector<net::FaultAction> actions = out.minimal.actions();
  std::size_t n = 2;
  while (actions.size() >= 2) {
    bool reduced = false;
    const std::size_t chunk = std::max<std::size_t>(1, actions.size() / n);

    std::vector<std::vector<net::FaultAction>> complements;
    for (std::size_t start = 0; start < actions.size(); start += chunk) {
      std::vector<net::FaultAction> complement;
      for (std::size_t i = 0; i < actions.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(actions[i]);
      }
      if (complement.size() < actions.size()) complements.push_back(std::move(complement));
    }

    if (pool != nullptr && complements.size() > 1) {
      std::vector<net::FaultPlan> plans(complements.size());
      std::vector<TrialResult> results(complements.size());
      sim::parallel::TaskGroup round;
      for (std::size_t k = 0; k < complements.size(); ++k) {
        plans[k] = plan_from(complements[k]);
        pool->submit(round, [&config, &plans, &results, k] {
          results[k] = run_trial(config, plans[k]);
        });
      }
      round.wait(*pool);
      out.probes += static_cast<int>(complements.size());
      for (std::size_t k = 0; k < complements.size(); ++k) {
        if (fails_pred(results[k])) {
          out.minimal = std::move(plans[k]);
          out.reproduction = std::move(results[k]);
          actions = std::move(complements[k]);
          n = std::max<std::size_t>(2, n - 1);
          reduced = true;
          break;
        }
      }
    } else {
      for (auto& complement : complements) {
        if (probe(plan_from(complement))) {
          actions = std::move(complement);
          n = std::max<std::size_t>(2, n - 1);
          reduced = true;
          break;
        }
      }
    }

    if (!reduced) {
      if (n >= actions.size()) break;
      n = std::min(actions.size(), n * 2);
    }
  }

  // Phase 2 — retiming: normalize each surviving action's times onto a
  // coarse grid (and pull windows tight), keeping any change that still
  // fails. Makes reproducers read like hand-written schedules.
  const SimTime grid = msec(50);
  for (std::size_t i = 0; i < actions.size(); ++i) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      net::FaultAction candidate = actions[i];
      if (attempt == 0) {
        // Snap to the grid.
        candidate.at = std::max(snap_down(candidate.at, grid), msec(50));
        if (candidate.windowed()) {
          candidate.until = std::max(snap_down(candidate.until, grid),
                                     candidate.at + grid);
        } else if (candidate.until != kTimeZero) {
          candidate.until = candidate.at;
        }
      } else {
        // Pull the strike earlier by half.
        candidate.at = std::max(snap_down(SimTime{candidate.at.count() / 2}, grid),
                                msec(50));
        if (candidate.windowed()) {
          candidate.until = std::max(snap_down(candidate.until, grid),
                                     candidate.at + grid);
        }
      }
      if (candidate == actions[i]) continue;
      std::vector<net::FaultAction> retimed = actions;
      retimed[i] = candidate;
      if (probe(plan_from(retimed))) actions = std::move(retimed);
    }
  }

  out.minimal = plan_from(actions);
  return out;
}

}  // namespace vdep::chaos
