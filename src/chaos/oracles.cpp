#include "chaos/oracles.hpp"

#include <algorithm>
#include <map>

namespace vdep::chaos {

namespace {

// "[c3#17]" -> 17 (SIZE_MAX on malformed tokens, which the issued-set check
// reports separately).
std::uint64_t token_seq(const std::string& token) {
  const std::size_t hash = token.find('#');
  if (hash == std::string::npos) return UINT64_MAX;
  try {
    return std::stoull(token.substr(hash + 1));
  } catch (...) {
    return UINT64_MAX;
  }
}

std::string replica_tag(const TrialObservation::ReplicaState& r) {
  return "replica" + std::to_string(r.index);
}

}  // namespace

std::string Verdict::to_string() const {
  if (failures.empty()) return "PASS";
  std::string out;
  for (const auto& f : failures) {
    out += f;
    out += '\n';
  }
  return out;
}

void Verdict::merge(const Verdict& other) {
  failures.insert(failures.end(), other.failures.begin(), other.failures.end());
}

Verdict check_exactly_once(const TrialObservation& obs) {
  Verdict v;

  // What each client actually issued and what it saw acknowledged.
  std::map<std::string, std::set<std::string>> issued;  // log key -> tokens
  std::map<std::string, std::vector<std::string>> acked;  // log key -> tokens, issue order
  for (const auto& op : obs.history) {
    if (op.op != "append") continue;
    issued[op.key].insert(op.token);
    if (op.completed_at && op.ok) acked[op.key].push_back(op.token);
  }

  // Safety, audited on every replica including crashed/stale ones: no
  // phantom tokens, no duplicates, per-client order preserved.
  for (const auto& rep : obs.replicas) {
    for (const auto& [key, value] : rep.logs) {
      const auto tokens = parse_tokens(value);
      std::set<std::string> seen;
      std::uint64_t prev_seq = 0;
      bool first = true;
      for (const auto& token : tokens) {
        auto it = issued.find(key);
        if (it == issued.end() || !it->second.contains(token)) {
          v.failures.push_back("exactly-once: " + replica_tag(rep) + " " + key +
                               " holds token " + token + " that was never issued");
          continue;
        }
        if (!seen.insert(token).second) {
          v.failures.push_back("exactly-once: " + replica_tag(rep) + " " + key +
                               " executed " + token + " twice");
        }
        const std::uint64_t seq = token_seq(token);
        if (!first && seq <= prev_seq) {
          v.failures.push_back("exactly-once: " + replica_tag(rep) + " " + key +
                               " order violation at " + token);
        }
        prev_seq = seq;
        first = false;
      }
    }
  }

  // Completeness, on the replicas that answer clients: every acknowledged
  // append must be in the state the group would serve from.
  for (const auto& rep : obs.replicas) {
    if (!rep.live || !rep.initialized || !rep.responder ||
        obs.expected_lost.contains(rep.index)) {
      continue;
    }
    for (const auto& [key, tokens] : acked) {
      const auto log_it = rep.logs.find(key);
      const std::string empty;
      const std::string& value = log_it == rep.logs.end() ? empty : log_it->second;
      for (const auto& token : tokens) {
        if (value.find(token) == std::string::npos) {
          v.failures.push_back("exactly-once: acked " + token + " missing from " +
                               replica_tag(rep) + " " + key);
        }
      }
    }
  }
  return v;
}

Verdict check_view_agreement(const TrialObservation& obs) {
  Verdict v;
  const TrialObservation::ReplicaState* reference = nullptr;
  for (const auto& rep : obs.replicas) {
    if (!rep.live || !rep.initialized || obs.expected_lost.contains(rep.index)) continue;
    if (!rep.view_id.has_value()) {
      v.failures.push_back("view-agreement: " + replica_tag(rep) + " has no view");
      continue;
    }
    if (reference == nullptr) {
      reference = &rep;
      continue;
    }
    if (rep.view_id != reference->view_id ||
        rep.view_members != reference->view_members) {
      v.failures.push_back(
          "view-agreement: " + replica_tag(rep) + " view " +
          std::to_string(*rep.view_id) + " (" +
          std::to_string(rep.view_members.size()) + " members) != " +
          replica_tag(*reference) + " view " + std::to_string(*reference->view_id) +
          " (" + std::to_string(reference->view_members.size()) + " members)");
    }
  }
  return v;
}

Verdict check_checkpoint_monotonic(const TrialObservation& obs) {
  Verdict v;
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> last;
  for (const auto& event : obs.checkpoints) {
    const auto key = std::pair{event.replica, event.incarnation};
    auto it = last.find(key);
    if (it != last.end() && event.checkpoint_id <= it->second) {
      v.failures.push_back("checkpoint-monotonicity: replica" +
                           std::to_string(event.replica) + " id " +
                           std::to_string(event.checkpoint_id) + " after " +
                           std::to_string(it->second));
    }
    last[key] = event.checkpoint_id;
  }
  return v;
}

Verdict check_bounded_recovery(const TrialObservation& obs) {
  Verdict v;
  bool any_serving = false;
  for (const auto& rep : obs.replicas) {
    if (rep.live && rep.initialized && !obs.expected_lost.contains(rep.index)) {
      any_serving = true;
    }
  }
  if (!any_serving) {
    v.failures.push_back("liveness: no serving replica survived the schedule");
  }
  if (!obs.all_clients_done) {
    v.failures.push_back("liveness: workload did not complete before the deadline");
    return v;
  }
  if (obs.finished_at > obs.last_fault_end + obs.recovery_bound) {
    v.failures.push_back(
        "liveness: recovery exceeded bound (finished " +
        std::to_string(to_usec(obs.finished_at - obs.last_fault_end) / 1000) +
        " ms after the last fault)");
  }
  return v;
}

Verdict check_all(const TrialObservation& obs) {
  Verdict v = check_exactly_once(obs);
  v.merge(check_view_agreement(obs));
  v.merge(check_checkpoint_monotonic(obs));
  v.merge(check_bounded_recovery(obs));
  return v;
}

}  // namespace vdep::chaos
