#include "chaos/oracles.hpp"

#include <algorithm>
#include <map>

namespace vdep::chaos {

namespace {

// "[c3#17]" -> 17 (SIZE_MAX on malformed tokens, which the issued-set check
// reports separately).
std::uint64_t token_seq(const std::string& token) {
  const std::size_t hash = token.find('#');
  if (hash == std::string::npos) return UINT64_MAX;
  try {
    return std::stoull(token.substr(hash + 1));
  } catch (...) {
    return UINT64_MAX;
  }
}

std::string replica_tag(const TrialObservation::ReplicaState& r) {
  return "replica" + std::to_string(r.index);
}

}  // namespace

std::string Verdict::to_string() const {
  if (failures.empty()) return "PASS";
  std::string out;
  for (const auto& f : failures) {
    out += f;
    out += '\n';
  }
  return out;
}

void Verdict::merge(const Verdict& other) {
  failures.insert(failures.end(), other.failures.begin(), other.failures.end());
}

Verdict check_exactly_once(const TrialObservation& obs) {
  Verdict v;

  // What each client actually issued and what it saw acknowledged.
  std::map<std::string, std::set<std::string>> issued;  // log key -> tokens
  std::map<std::string, std::vector<std::string>> acked;  // log key -> tokens, issue order
  for (const auto& op : obs.history) {
    if (op.op != "append") continue;
    issued[op.key].insert(op.token);
    if (op.completed_at && op.ok) acked[op.key].push_back(op.token);
  }

  // Safety, audited on every replica including crashed/stale ones: no
  // phantom tokens, no duplicates, per-client order preserved.
  for (const auto& rep : obs.replicas) {
    for (const auto& [key, value] : rep.logs) {
      const auto tokens = parse_tokens(value);
      std::set<std::string> seen;
      std::uint64_t prev_seq = 0;
      bool first = true;
      for (const auto& token : tokens) {
        auto it = issued.find(key);
        if (it == issued.end() || !it->second.contains(token)) {
          v.failures.push_back("exactly-once: " + replica_tag(rep) + " " + key +
                               " holds token " + token + " that was never issued");
          continue;
        }
        if (!seen.insert(token).second) {
          v.failures.push_back("exactly-once: " + replica_tag(rep) + " " + key +
                               " executed " + token + " twice");
        }
        const std::uint64_t seq = token_seq(token);
        if (!first && seq <= prev_seq) {
          v.failures.push_back("exactly-once: " + replica_tag(rep) + " " + key +
                               " order violation at " + token);
        }
        prev_seq = seq;
        first = false;
      }
    }
  }

  // Completeness, on the replicas that answer clients: every acknowledged
  // append must be in the state the group would serve from.
  for (const auto& rep : obs.replicas) {
    if (!rep.live || !rep.initialized || !rep.responder ||
        obs.expected_lost.contains(rep.index)) {
      continue;
    }
    for (const auto& [key, tokens] : acked) {
      const auto log_it = rep.logs.find(key);
      const std::string empty;
      const std::string& value = log_it == rep.logs.end() ? empty : log_it->second;
      for (const auto& token : tokens) {
        if (value.find(token) == std::string::npos) {
          v.failures.push_back("exactly-once: acked " + token + " missing from " +
                               replica_tag(rep) + " " + key);
        }
      }
    }
  }
  return v;
}

Verdict check_view_agreement(const TrialObservation& obs) {
  Verdict v;
  const TrialObservation::ReplicaState* reference = nullptr;
  for (const auto& rep : obs.replicas) {
    if (!rep.live || !rep.initialized || obs.expected_lost.contains(rep.index)) continue;
    if (!rep.view_id.has_value()) {
      v.failures.push_back("view-agreement: " + replica_tag(rep) + " has no view");
      continue;
    }
    if (reference == nullptr) {
      reference = &rep;
      continue;
    }
    if (rep.view_id != reference->view_id ||
        rep.view_members != reference->view_members) {
      v.failures.push_back(
          "view-agreement: " + replica_tag(rep) + " view " +
          std::to_string(*rep.view_id) + " (" +
          std::to_string(rep.view_members.size()) + " members) != " +
          replica_tag(*reference) + " view " + std::to_string(*reference->view_id) +
          " (" + std::to_string(reference->view_members.size()) + " members)");
    }
  }
  return v;
}

Verdict check_checkpoint_monotonic(const TrialObservation& obs) {
  Verdict v;
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> last;
  for (const auto& event : obs.checkpoints) {
    const auto key = std::pair{event.replica, event.incarnation};
    auto it = last.find(key);
    if (it != last.end() && event.checkpoint_id <= it->second) {
      v.failures.push_back("checkpoint-monotonicity: replica" +
                           std::to_string(event.replica) + " id " +
                           std::to_string(event.checkpoint_id) + " after " +
                           std::to_string(it->second));
    }
    last[key] = event.checkpoint_id;
  }
  return v;
}

Verdict check_bounded_recovery(const TrialObservation& obs) {
  Verdict v;
  bool any_serving = false;
  for (const auto& rep : obs.replicas) {
    if (rep.live && rep.initialized && !obs.expected_lost.contains(rep.index)) {
      any_serving = true;
    }
  }
  if (!any_serving) {
    v.failures.push_back("liveness: no serving replica survived the schedule");
  }
  if (!obs.all_clients_done) {
    v.failures.push_back("liveness: workload did not complete before the deadline");
    return v;
  }
  if (obs.finished_at > obs.last_fault_end + obs.recovery_bound) {
    v.failures.push_back(
        "liveness: recovery exceeded bound (finished " +
        std::to_string(to_usec(obs.finished_at - obs.last_fault_end) / 1000) +
        " ms after the last fault)");
  }
  return v;
}

Verdict check_all(const TrialObservation& obs) {
  Verdict v = check_exactly_once(obs);
  v.merge(check_view_agreement(obs));
  v.merge(check_checkpoint_monotonic(obs));
  v.merge(check_bounded_recovery(obs));
  return v;
}

namespace {

std::string group_tag(GroupId group) {
  return "group" + std::to_string(group.value());
}

// True iff `target` is fully covered by the (sorted, disjoint) `owned` set.
bool ranges_cover(const std::vector<shard::KeyRange>& owned,
                  const shard::KeyRange& target) {
  std::uint64_t need = target.lo;
  for (const auto& r : owned) {
    if (r.hi < need || r.lo > target.hi) continue;
    if (r.lo > need) return false;  // gap before `need`
    need = static_cast<std::uint64_t>(r.hi) + 1;
    if (need > target.hi) return true;
  }
  return need > target.hi;
}

bool ranges_overlap(const shard::KeyRange& a, const shard::KeyRange& b) {
  return a.lo <= b.hi && b.lo <= a.hi;
}

}  // namespace

Verdict check_shard_ownership(const ShardObservation& obs) {
  Verdict v;
  std::string why;

  // Directory history: every committed map is a valid full partition of the
  // key space, and the epochs advance by exactly one per commit.
  std::uint64_t expected_epoch = obs.initial_epoch;
  for (const auto& map : obs.committed_maps) {
    ++expected_epoch;
    if (map.epoch() != expected_epoch) {
      v.failures.push_back("shard-ownership: committed epoch " +
                           std::to_string(map.epoch()) + " where " +
                           std::to_string(expected_epoch) + " was expected");
    }
    if (!map.validate(&why)) {
      v.failures.push_back("shard-ownership: committed map epoch " +
                           std::to_string(map.epoch()) + " invalid: " + why);
    }
  }
  if (!obs.final_map.validate(&why)) {
    v.failures.push_back("shard-ownership: final map invalid: " + why);
  }
  if (obs.final_map.epoch() != expected_epoch) {
    v.failures.push_back("shard-ownership: directory epoch " +
                         std::to_string(obs.final_map.epoch()) +
                         " != last committed epoch " +
                         std::to_string(expected_epoch));
  }
  if (obs.migrations_attempted != obs.migrations_committed) {
    v.failures.push_back(
        "shard-ownership: " +
        std::to_string(obs.migrations_attempted - obs.migrations_committed) +
        " migration(s) did not commit");
  }

  // Serving state vs the final map. Within one epoch a key has exactly one
  // serving group: live groups' owned ranges must be pairwise disjoint and
  // coincide with the final map's assignment.
  for (const auto& g : obs.groups) {
    if (!g.any_live) continue;
    if (g.frozen) {
      v.failures.push_back("shard-ownership: " + group_tag(g.group) +
                           " still frozen after the trial drained");
    }
    const auto assigned = obs.final_map.ranges_of(g.group);
    for (const auto& r : g.owned) {
      if (!ranges_cover(assigned, r)) {
        v.failures.push_back("shard-ownership: " + group_tag(g.group) +
                             " serves " + r.str() +
                             " which the final map does not assign to it");
      }
    }
    for (const auto& r : assigned) {
      if (!ranges_cover(g.owned, r)) {
        v.failures.push_back("shard-ownership: " + group_tag(g.group) +
                             " does not serve assigned range " + r.str());
      }
    }
  }
  for (std::size_t a = 0; a < obs.groups.size(); ++a) {
    if (!obs.groups[a].any_live) continue;
    for (std::size_t b = a + 1; b < obs.groups.size(); ++b) {
      if (!obs.groups[b].any_live) continue;
      for (const auto& ra : obs.groups[a].owned) {
        for (const auto& rb : obs.groups[b].owned) {
          if (ranges_overlap(ra, rb)) {
            v.failures.push_back(
                "shard-ownership: " + ra.str() + " served by both " +
                group_tag(obs.groups[a].group) + " and " +
                group_tag(obs.groups[b].group) + " in epoch " +
                std::to_string(obs.final_map.epoch()));
          }
        }
      }
    }
  }
  return v;
}

Verdict check_shard_migration_integrity(const TrialObservation& obs,
                                        const ShardObservation& shard_obs) {
  Verdict v;

  // What each client issued / saw acknowledged, per log key.
  std::map<std::string, std::set<std::string>> issued;
  std::map<std::string, std::vector<std::string>> acked;
  for (const auto& op : obs.history) {
    if (op.op != "append") continue;
    issued[op.key].insert(op.token);
    if (op.completed_at && op.ok) acked[op.key].push_back(op.token);
  }

  // Token census across every group: a split must move each token exactly
  // once, never duplicate it, and leave it on the group the final map owns
  // the key on.
  for (const auto& [key, tokens] : issued) {
    const shard::ShardEntry* owner_entry = shard_obs.final_map.lookup_key(key);
    const GroupId owner =
        owner_entry != nullptr ? owner_entry->group : GroupId{0};
    bool owner_live = false;
    std::map<std::string, int> found;  // token -> occurrences across groups
    for (const auto& g : shard_obs.groups) {
      if (!g.any_live) continue;
      if (g.group == owner) owner_live = true;
      const auto it = g.logs.find(key);
      if (it == g.logs.end()) continue;
      std::set<std::string> in_this_group;
      for (const auto& token : parse_tokens(it->second)) {
        if (!tokens.contains(token)) {
          v.failures.push_back("shard-integrity: " + group_tag(g.group) + " " +
                               key + " holds token " + token +
                               " that was never issued");
          continue;
        }
        if (!in_this_group.insert(token).second) {
          v.failures.push_back("shard-integrity: " + group_tag(g.group) + " " +
                               key + " executed " + token + " twice");
        }
        ++found[token];
      }
      if (g.group != owner && !in_this_group.empty()) {
        v.failures.push_back("shard-integrity: " + group_tag(g.group) +
                             " still holds " + key +
                             " which the final map assigns to " +
                             group_tag(owner));
      }
    }
    for (const auto& [token, count] : found) {
      if (count > 1) {
        v.failures.push_back("shard-integrity: token " + token +
                             " duplicated across " + std::to_string(count) +
                             " groups");
      }
    }
    if (owner_live) {
      for (const auto& token : acked[key]) {
        if (found.find(token) == found.end()) {
          v.failures.push_back("shard-integrity: acked " + token +
                               " lost (missing from every group)");
        }
      }
    }
  }

  // Acked puts: the key must exist at the owner and nowhere else.
  std::set<std::string> acked_puts;
  for (const auto& op : obs.history) {
    if (op.op == "put" && op.completed_at && op.ok) acked_puts.insert(op.key);
  }
  for (const auto& key : acked_puts) {
    const shard::ShardEntry* owner_entry = shard_obs.final_map.lookup_key(key);
    if (owner_entry == nullptr) continue;
    for (const auto& g : shard_obs.groups) {
      if (!g.any_live) continue;
      const bool present = g.keys.contains(key);
      if (g.group == owner_entry->group && !present) {
        v.failures.push_back("shard-integrity: acked put key " + key +
                             " lost from owner " + group_tag(g.group));
      }
      if (g.group != owner_entry->group && present) {
        v.failures.push_back("shard-integrity: key " + key +
                             " present on non-owner " + group_tag(g.group));
      }
    }
  }
  return v;
}

// --- health plane --------------------------------------------------------------

namespace {

using monitor::health::HealthEvent;
using monitor::health::HealthEventKind;

bool is_alarm(HealthEventKind kind) {
  return kind == HealthEventKind::kReplicaSuspect ||
         kind == HealthEventKind::kLinkSuspect ||
         kind == HealthEventKind::kSloLatencyBreach ||
         kind == HealthEventKind::kSloAvailabilityBreach;
}

bool requires_detection(const net::FaultAction& action) {
  return action.kind == net::FaultAction::Kind::kCrashProcess ||
         action.kind == net::FaultAction::Kind::kCrashNode ||
         action.kind == net::FaultAction::Kind::kPartition;
}

bool event_matches_fault(const HealthEvent& event, const net::FaultAction& action) {
  switch (action.kind) {
    case net::FaultAction::Kind::kCrashProcess:
      // The daemon co-located with the process observes the crash directly.
      return event.kind == HealthEventKind::kReplicaSuspect &&
             event.id_a == action.pid.value();
    case net::FaultAction::Kind::kCrashNode:
      // The host's daemon dies with it; its heartbeats silence and peers'
      // phi-accrual detectors suspect every link from the dead host.
      return event.kind == HealthEventKind::kLinkSuspect &&
             event.id_a == action.node.value();
    case net::FaultAction::Kind::kPartition: {
      if (event.kind != HealthEventKind::kLinkSuspect) return false;
      const NodeId from{event.id_a};
      const NodeId observer{event.id_b};
      return (action.side_a.contains(from) && action.side_b.contains(observer)) ||
             (action.side_b.contains(from) && action.side_a.contains(observer));
    }
    default:
      // Loss bursts, slow hosts and the restart/restore halves carry no
      // detection obligation (they may or may not silence a link).
      return false;
  }
}

}  // namespace

std::vector<DetectionRecord> match_detections(const HealthObservation& obs) {
  std::vector<DetectionRecord> records;
  if (!obs.enabled) return records;
  for (const auto& action : obs.faults) {
    if (!requires_detection(action)) continue;
    DetectionRecord rec;
    rec.fault = action.to_string();
    rec.injected_at = action.at;
    for (const auto& event : obs.events) {
      if (event.at < action.at || event.at > action.at + obs.detection_bound) continue;
      if (!event_matches_fault(event, action)) continue;
      rec.detected = true;
      rec.latency_ms = to_msec(event.at - action.at);
      break;  // events are in emission (time) order: first match is earliest
    }
    records.push_back(std::move(rec));
  }
  return records;
}

Verdict check_detection(const HealthObservation& obs) {
  Verdict v;
  if (!obs.enabled) return v;
  if (obs.fault_free) {
    for (const auto& event : obs.events) {
      if (is_alarm(event.kind)) {
        v.failures.push_back(
            "health: false alarm in fault-free trial: " +
            std::string(to_string(event.kind)) + " " + event.subject + " at " +
            std::to_string(to_msec(event.at)) + " ms");
      }
    }
    return v;
  }
  for (const auto& rec : match_detections(obs)) {
    if (!rec.detected) {
      v.failures.push_back("health: fault not detected within " +
                           std::to_string(to_msec(obs.detection_bound)) +
                           " ms: " + rec.fault);
    }
  }
  return v;
}

}  // namespace vdep::chaos
