#include "chaos/shard_trial.hpp"

#include <algorithm>
#include <memory>

#include "obs/export.hpp"
#include "shard/cluster.hpp"
#include "util/assert.hpp"

namespace vdep::chaos {

namespace {

// A recorded workload client driving the shard router — the multi-group
// counterpart of WorkloadClient. Appends carry unique tokens to the client's
// log key (so lost/duplicated executions are visible in state); the rest of
// the mix is puts/gets on a small shared key space that straddles shards.
class RouterClient {
 public:
  struct Config {
    int index = 0;
    int ops = 100;
    SimTime gap = msec(12);
    SimTime start_at = msec(300);
    double append_ratio = 0.7;
  };

  RouterClient(shard::ShardedCluster& cluster, Config config, Rng rng)
      : cluster_(cluster), config_(config), rng_(rng) {}

  void start() {
    cluster_.kernel().post_at(
        config_.start_at + usec(137) * config_.index, [this] { issue_next(); });
  }

  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] SimTime last_completed_at() const { return last_completed_; }
  [[nodiscard]] const std::vector<OpRecord>& history() const { return history_; }

  std::function<void()> on_done;

 private:
  void issue_next() {
    if (completed_ == config_.ops) {
      if (on_done) on_done();
      return;
    }
    const std::uint64_t seq = next_seq_++;
    OpRecord rec;
    rec.client = config_.index;
    rec.seq = seq;
    rec.issued_at = cluster_.kernel().now();

    const double pick = rng_.uniform01();
    if (pick < config_.append_ratio) {
      rec.op = "append";
      rec.key = client_log_key(config_.index);
      rec.token = append_token(config_.index, seq);
    } else if (pick < config_.append_ratio + (1.0 - config_.append_ratio) / 2) {
      rec.op = "put";
      rec.key = "k" + std::to_string(rng_.below(64));
    } else {
      rec.op = "get";
      rec.key = "k" + std::to_string(rng_.below(64));
    }
    const std::size_t slot = history_.size();
    history_.push_back(rec);

    auto done = [this, slot](shard::ShardStatus status, const Bytes&) {
      OpRecord& r = history_[slot];
      r.completed_at = cluster_.kernel().now();
      r.ok = status == shard::ShardStatus::kOk;
      ++completed_;
      last_completed_ = cluster_.kernel().now();
      cluster_.kernel().post(config_.gap, [this] { issue_next(); });
    };
    auto& router = cluster_.router(config_.index);
    if (rec.op == "append") {
      router.append(rec.key, rec.token, done);
    } else if (rec.op == "put") {
      router.put(rec.key, "v" + std::to_string(seq), done);
    } else {
      router.get(rec.key, done);
    }
  }

  shard::ShardedCluster& cluster_;
  Config config_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
  int completed_ = 0;
  SimTime last_completed_ = kTimeZero;
  std::vector<OpRecord> history_;
};

// Draws the fault budget into the split windows: crashes strike while a
// range is frozen/donated/installed, partitions and loss bursts silence
// server hosts mid-migration (always < the 500 ms detector threshold), slow
// hosts stretch the window. Clients, their hosts (which carry the GCS
// leader) and the migration controller are never faulted.
net::FaultPlan make_shard_plan(Rng& rng, const TrialConfig& config,
                               shard::ShardedCluster& cluster,
                               const std::vector<SimTime>& split_times) {
  net::FaultPlan plan;
  const SchedulePolicy& p = config.faults;

  std::vector<SimTime> windows = split_times;
  if (windows.empty()) windows.push_back(p.window_start);
  auto window_at = [&windows](int i) {
    return windows[static_cast<std::size_t>(i) % windows.size()];
  };

  const auto groups = cluster.data_groups();
  std::set<std::uint64_t> server_host_set;
  for (GroupId g : groups) {
    for (int n = 0; n < cluster.replicas_in(g); ++n) {
      server_host_set.insert(cluster.replica_process(g, n).host().value());
    }
  }
  std::vector<NodeId> server_hosts;
  for (std::uint64_t h : server_host_set) server_hosts.push_back(NodeId{h});

  int slot = 0;
  for (int i = 0; i < p.crash_recoveries; ++i) {
    const GroupId group = groups[static_cast<std::size_t>(i) % groups.size()];
    const int node =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(config.replicas)));
    const SimTime at =
        window_at(slot++) + msec(100) + msec(static_cast<std::int64_t>(rng.below(200)));
    const SimTime down =
        p.min_down + usec_f(rng.uniform(0.0, to_usec(p.max_down - p.min_down)));
    plan.crash_process(at, cluster.replica_pid(group, node));
    plan.restart_process(at + down, cluster.replica_pid(group, node));
  }
  for (int i = 0; i < p.partitions && server_hosts.size() > 1; ++i) {
    const NodeId victim =
        server_hosts[rng.below(static_cast<std::uint64_t>(server_hosts.size()))];
    std::set<NodeId> side_a{victim};
    std::set<NodeId> side_b;
    for (NodeId h : server_hosts) {
      if (h != victim) side_b.insert(h);
    }
    const SimTime at =
        window_at(slot++) + msec(static_cast<std::int64_t>(rng.below(200)));
    const SimTime dur =
        p.min_window + usec_f(rng.uniform(0.0, to_usec(p.max_window - p.min_window)));
    plan.partition_window(at, at + dur, std::move(side_a), std::move(side_b));
  }
  for (int i = 0; i < p.loss_bursts && server_hosts.size() > 1; ++i) {
    const std::size_t a = rng.below(static_cast<std::uint64_t>(server_hosts.size()));
    std::size_t b = rng.below(static_cast<std::uint64_t>(server_hosts.size() - 1));
    if (b >= a) ++b;
    const SimTime at =
        window_at(slot++) + msec(static_cast<std::int64_t>(rng.below(250)));
    const SimTime dur =
        p.min_window + usec_f(rng.uniform(0.0, to_usec(p.max_window - p.min_window)));
    plan.loss_burst(at, at + dur, server_hosts[a], server_hosts[b],
                    rng.uniform(p.min_loss, p.max_loss));
  }
  for (int i = 0; i < p.slow_hosts && !server_hosts.empty(); ++i) {
    const NodeId host =
        server_hosts[rng.below(static_cast<std::uint64_t>(server_hosts.size()))];
    const SimTime at =
        window_at(slot++) + msec(static_cast<std::int64_t>(rng.below(300)));
    const SimTime dur =
        p.min_window + usec_f(rng.uniform(0.0, to_usec(p.max_window - p.min_window)));
    plan.slow_host(at, at + dur, host, rng.uniform(p.min_slow, p.max_slow));
  }
  return plan;
}

// Split-picking context kept alive for the posted split events.
struct SplitContext {
  Rng rng{1};
  int scheduled = 0;
};

void schedule_splits(shard::ShardedCluster& cluster, const TrialConfig& config,
                     std::shared_ptr<SplitContext> ctx,
                     const std::vector<SimTime>& split_times) {
  for (std::size_t j = 0; j < split_times.size(); ++j) {
    cluster.kernel().post_at(split_times[j], [&cluster, ctx, j] {
      const shard::ShardMap& map = cluster.directory_map();
      const auto& entries = map.entries();
      const shard::ShardEntry* pickd = nullptr;
      std::uint32_t point = 0;
      if (j == 0) {
        // The split point is the hash of client 0's log key: that key's
        // sub-range moves while client 0 is mid-traffic on it — the
        // split-during-in-flight-retry edge the router must survive.
        const std::uint32_t h = shard::shard_hash(client_log_key(0));
        const shard::ShardEntry* entry = map.lookup(h);
        if (entry != nullptr && entry->range.lo < entry->range.hi) {
          pickd = entry;
          point = std::max(h, entry->range.lo + 1);
        }
      }
      if (pickd == nullptr) {
        // Deterministic fallback: a random splittable shard, cut mid-range.
        for (std::size_t tries = 0; tries < entries.size(); ++tries) {
          const auto& e = entries[ctx->rng.below(entries.size())];
          if (e.range.lo < e.range.hi) {
            pickd = &e;
            point = e.range.lo +
                    static_cast<std::uint32_t>(e.range.width() / 2);
            if (point == e.range.lo) ++point;
            break;
          }
        }
      }
      if (pickd == nullptr) return;  // nothing splittable (degenerate map)
      shard::ShardPolicy policy = cluster.config().default_policy;
      cluster.split_shard(pickd->shard, point, policy);
      ++ctx->scheduled;
    });
  }
}

}  // namespace

TrialResult run_shard_trial(const TrialConfig& config) {
  VDEP_ASSERT(config.shards > 1);

  shard::ShardedClusterConfig cc;
  cc.seed = config.seed;
  cc.shards = config.shards;
  cc.default_policy.style = static_cast<std::uint8_t>(config.style);
  cc.default_policy.replicas = static_cast<std::uint8_t>(config.replicas);
  cc.default_policy.checkpoint_every_requests = config.checkpoint_every_requests;
  cc.default_policy.checkpoint_anchor_interval = config.checkpoint_anchor_interval;
  cc.checkpoint_interval = config.checkpoint_interval;
  cc.clients = config.clients;
  cc.client_hosts = std::min(2, config.clients);
  cc.server_hosts = std::clamp(config.shards / 4 + 4, 4, 10);
  cc.tracing = config.record_spans;
  shard::ShardedCluster cluster(cc);

  std::vector<SimTime> split_times;
  for (int j = 0; j < config.splits; ++j) {
    split_times.push_back(msec(600) + msec(900) * j);
  }
  auto split_ctx = std::make_shared<SplitContext>();
  split_ctx->rng = Rng(config.seed).fork(0x59117);
  schedule_splits(cluster, config, split_ctx, split_times);

  if (config.faults.total_actions() > 0) {
    Rng fault_rng = Rng(config.seed).fork(0xfa017);
    cluster.fault_plan() = make_shard_plan(fault_rng, config, cluster, split_times);
  }
  const net::FaultPlan plan = cluster.fault_plan();
  cluster.arm_faults();

  // Workload.
  std::vector<std::unique_ptr<RouterClient>> clients;
  int remaining = config.clients;
  for (int c = 0; c < config.clients; ++c) {
    RouterClient::Config wc;
    wc.index = c;
    wc.ops = config.ops_per_client;
    wc.gap = config.op_gap;
    wc.append_ratio = config.append_ratio;
    auto client = std::make_unique<RouterClient>(
        cluster, wc, Rng(config.seed).fork(0xc1a0 + static_cast<std::uint64_t>(c)));
    client->on_done = [&cluster, &remaining] {
      if (--remaining == 0) cluster.kernel().stop();
    };
    client->start();
    clients.push_back(std::move(client));
  }

  const SimTime last_split = split_times.empty() ? kTimeZero : split_times.back();
  const SimTime deadline = std::max(
      {config.hard_deadline, last_split + sec(6),
       cluster.fault_plan().last_effect_end() + config.recovery_bound + sec(2)});
  cluster.kernel().run_until(deadline);
  const bool all_done = remaining == 0;
  // Let in-flight migrations finish (they are bounded by step retries), then
  // settle replies and joins.
  for (int i = 0; i < 20 && !cluster.migration().idle(); ++i) cluster.drain(msec(500));
  cluster.drain(msec(500));

  // Observation.
  TrialResult result;
  result.plan = plan;
  result.last_fault_end = plan.last_effect_end();

  TrialObservation obs;
  obs.recovery_bound = config.recovery_bound;
  obs.all_clients_done = all_done;
  SimTime finished = all_done ? kTimeZero : deadline;
  for (const auto& client : clients) {
    const auto& h = client->history();
    obs.history.insert(obs.history.end(), h.begin(), h.end());
    result.completed_ops += static_cast<std::uint64_t>(client->completed());
    finished = std::max(finished, client->last_completed_at());
  }
  obs.finished_at = finished;
  obs.last_fault_end = result.last_fault_end;

  ShardObservation sobs;
  sobs.initial_epoch = cluster.initial_map().epoch();
  sobs.final_map = cluster.directory_map();
  for (const auto& rec : cluster.migration().history()) {
    ++sobs.migrations_attempted;
    if (rec.success) {
      ++sobs.migrations_committed;
      sobs.committed_maps.push_back(rec.committed_map);
    }
  }
  if (!cluster.migration().idle()) ++sobs.migrations_attempted;  // stuck job

  int pseudo_index = 0;
  for (GroupId g : cluster.data_groups()) {
    ShardObservation::GroupState gs;
    gs.group = g;
    // Read the state off the group's responder (first live initialized
    // replica as fallback) — the replica that would answer clients.
    int chosen = -1;
    for (int n = 0; n < cluster.replicas_in(g); ++n) {
      if (!cluster.replica_live(g, n)) continue;
      if (!cluster.replicator(g, n).initialized()) continue;
      if (chosen < 0) chosen = n;
      if (cluster.replicator(g, n).is_responder()) {
        chosen = n;
        break;
      }
    }
    if (chosen >= 0) {
      gs.any_live = true;
      const auto& servant = cluster.shard_servant(g, chosen);
      gs.frozen = servant.frozen();
      gs.owned = servant.owned_ranges();
      for (int c = 0; c < config.clients; ++c) {
        const std::string key = client_log_key(c);
        if (auto value = servant.store().lookup(key)) gs.logs[key] = *value;
      }
      for (const auto& [key, value] : servant.store().items()) gs.keys.insert(key);
    }
    sobs.groups.push_back(std::move(gs));

    TrialObservation::ReplicaState rs;
    rs.index = pseudo_index++;
    rs.live = sobs.groups.back().any_live;
    rs.initialized = true;
    rs.responder = rs.live;
    obs.replicas.push_back(std::move(rs));
  }

  result.verdict = check_shard_ownership(sobs);
  result.verdict.merge(check_shard_migration_integrity(obs, sobs));
  result.verdict.merge(check_bounded_recovery(obs));

  result.finished_at = finished;
  result.recovery_ms =
      finished > result.last_fault_end
          ? to_usec(finished - result.last_fault_end) / 1000.0
          : 0.0;
  if (config.record_spans) {
    const obs::Tracer& tracer = cluster.kernel().tracer();
    result.spans_recorded = tracer.spans_recorded();
    result.spans_dropped = tracer.spans_dropped();
    result.flight_recording = obs::to_chrome_trace(tracer);
  }
  result.observation = std::move(obs);
  result.shard_observation = std::move(sobs);
  return result;
}

}  // namespace vdep::chaos
