#include "chaos/schedule.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "harness/scenario.hpp"

namespace vdep::chaos {

namespace {

enum class Slot { kCrashRecovery, kNodeKill, kLossBurst, kPartition, kSlowHost };

SimTime uniform_time(Rng& rng, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  return SimTime{rng.range(lo.count(), hi.count())};
}

}  // namespace

net::FaultPlan generate_schedule(Rng& rng, const SchedulePolicy& policy,
                                 const harness::Scenario& scenario) {
  const int replicas = scenario.config().replicas;
  const int clients = scenario.config().clients;

  // Every fault family gets a slot; the shuffled slot order is the schedule's
  // coarse shape, then each slot is placed sequentially with quiet gaps in
  // between so silencing faults never accumulate into a false suspicion.
  std::vector<Slot> slots;
  // A kill removes a replica for good: keep at least one alive, and one more
  // in reserve when crash/recovery windows can take another down transiently.
  const int kill_cap = std::max(0, replicas - 1 - (policy.crash_recoveries > 0 ? 1 : 0));
  const int kills = std::min(policy.node_kills, kill_cap);
  for (int i = 0; i < policy.crash_recoveries; ++i) slots.push_back(Slot::kCrashRecovery);
  for (int i = 0; i < kills; ++i) slots.push_back(Slot::kNodeKill);
  for (int i = 0; i < policy.loss_bursts; ++i) slots.push_back(Slot::kLossBurst);
  for (int i = 0; i < policy.partitions; ++i) slots.push_back(Slot::kPartition);
  for (int i = 0; i < policy.slow_hosts; ++i) slots.push_back(Slot::kSlowHost);
  for (std::size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1], slots[rng.below(i)]);
  }

  // Hosts the faults may touch: replica machines, plus client machines for
  // communication faults (the leader daemon lives there, so loss/partition
  // on those links exercises the request path).
  std::vector<NodeId> replica_hosts;
  for (int r = 0; r < replicas; ++r) replica_hosts.push_back(scenario.replica_host(r));
  std::vector<NodeId> all_hosts;
  for (int c = 0; c < clients; ++c) all_hosts.push_back(NodeId{static_cast<std::uint64_t>(c)});
  all_hosts.insert(all_hosts.end(), replica_hosts.begin(), replica_hosts.end());

  net::FaultPlan plan;
  std::set<int> killed;  // replica indexes permanently lost
  SimTime cursor = policy.window_start;

  auto pick_survivor = [&](Rng& r) {
    // A replica index that is not permanently gone.
    std::vector<int> alive;
    for (int i = 0; i < replicas; ++i) {
      if (!killed.contains(i)) alive.push_back(i);
    }
    return alive[r.below(alive.size())];
  };

  for (Slot slot : slots) {
    const SimTime at = cursor + uniform_time(rng, kTimeZero, policy.min_gap);
    switch (slot) {
      case Slot::kCrashRecovery: {
        const int victim = pick_survivor(rng);
        const SimTime down = uniform_time(rng, policy.min_down, policy.max_down);
        plan.crash_process(at, scenario.replica_pid(victim));
        plan.restart_process(at + down, scenario.replica_pid(victim));
        cursor = at + down + policy.min_gap;
        break;
      }
      case Slot::kNodeKill: {
        const int victim = pick_survivor(rng);
        killed.insert(victim);
        plan.crash_node(at, scenario.replica_host(victim));
        cursor = at + policy.min_gap;
        break;
      }
      case Slot::kLossBurst: {
        const SimTime dur = uniform_time(rng, policy.min_window, policy.max_window);
        const std::size_t a = rng.below(all_hosts.size());
        std::size_t b = rng.below(all_hosts.size() - 1);
        if (b >= a) ++b;
        plan.loss_burst(at, at + dur, all_hosts[a], all_hosts[b],
                        rng.uniform(policy.min_loss, policy.max_loss));
        cursor = at + dur + policy.min_gap;
        break;
      }
      case Slot::kPartition: {
        const SimTime dur = uniform_time(rng, policy.min_window, policy.max_window);
        // Far side: a nonempty subset of replica hosts; near side: everything
        // else. Isolating every replica is allowed — the window is shorter
        // than both the suspicion threshold and the clients' retry budget.
        std::set<NodeId> far;
        for (NodeId h : replica_hosts) {
          if (rng.chance(0.5)) far.insert(h);
        }
        if (far.empty()) far.insert(replica_hosts[rng.below(replica_hosts.size())]);
        std::set<NodeId> near;
        for (NodeId h : all_hosts) {
          if (!far.contains(h)) near.insert(h);
        }
        if (near.empty()) break;  // degenerate single-host topologies
        plan.partition_window(at, at + dur, far, near);
        cursor = at + dur + policy.min_gap;
        break;
      }
      case Slot::kSlowHost: {
        const SimTime dur = uniform_time(rng, policy.min_window, policy.max_window);
        plan.slow_host(at, at + dur, all_hosts[rng.below(all_hosts.size())],
                       rng.uniform(policy.min_slow, policy.max_slow));
        // Performance faults silence nobody; no quiet gap needed, but the
        // cursor still advances so schedules stay spread out.
        cursor = at + dur;
        break;
      }
    }
  }
  return plan;
}

}  // namespace vdep::chaos
