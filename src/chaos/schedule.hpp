// Seeded fault-schedule generation for chaos campaigns.
//
// Draws a random net::FaultPlan from a fault budget (how many actions of
// each family) against a scenario's topology. The generator is constrained
// so that, absent a real bug, every schedule is *survivable by design*:
//
//  - Crash/restart pairs target replica processes only, one at a time, so
//    at least one replica is always up; the harness's auto-recovery rejoins
//    the restarted replica with a state transfer.
//  - Node kills are permanent losses, capped below the replica count so the
//    group always retains a serving member.
//  - Loss bursts and partitions are kept shorter than the failure
//    detector's expulsion threshold (500 ms of silence) and separated by
//    quiet gaps, so heartbeats deterministically prevent false suspicion —
//    transient faults stay transient.
//  - Slow-host windows are performance faults; they may overlap anything.
//
// Clients (and their hosts, which carry the group-communication leader) are
// never faulted: the paper's fault model targets the replicated server side.
#pragma once

#include "net/fault_plan.hpp"
#include "util/rng.hpp"

namespace vdep::harness {
class Scenario;
}

namespace vdep::chaos {

// Fault budget and timing envelope for one generated schedule.
struct SchedulePolicy {
  int crash_recoveries = 1;  // crash+restart pairs on replica processes
  int node_kills = 0;        // permanent replica-host losses
  int loss_bursts = 2;
  int partitions = 1;
  int slow_hosts = 1;

  SimTime window_start = msec(300);  // first fault strikes at/after this
  SimTime min_window = msec(100);    // windowed fault duration bounds
  SimTime max_window = msec(400);    // < detector threshold (500 ms)
  SimTime min_gap = msec(200);       // quiet gap between silencing faults
  SimTime min_down = msec(150);      // crash -> restart delay bounds
  SimTime max_down = msec(400);

  double min_loss = 0.4;  // loss-burst probability bounds
  double max_loss = 1.0;
  double min_slow = 2.0;  // slow-host factor bounds
  double max_slow = 8.0;

  [[nodiscard]] int total_actions() const {
    return crash_recoveries + node_kills + loss_bursts + partitions + slow_hosts;
  }
};

// Generates a schedule for `scenario`'s topology. Deterministic in (rng
// state, policy, topology). The same rng must not be shared with the
// simulation kernel, or the schedule would perturb the run it scripts.
[[nodiscard]] net::FaultPlan generate_schedule(Rng& rng, const SchedulePolicy& policy,
                                               const harness::Scenario& scenario);

}  // namespace vdep::chaos
