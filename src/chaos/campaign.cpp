#include "chaos/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "app/kv_store.hpp"
#include "chaos/history.hpp"
#include "chaos/shard_trial.hpp"
#include "harness/scenario.hpp"
#include "obs/export.hpp"
#include "sim/parallel/steal_pool.hpp"
#include "util/assert.hpp"

namespace vdep::chaos {

namespace {

// splitmix64: decorrelates per-trial seeds derived from one campaign seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Replica indexes the schedule removes for good: node kills, and crashed
// processes whose restart was dropped (by the shrinker).
std::set<int> permanently_lost(const net::FaultPlan& plan,
                               const harness::Scenario& scenario) {
  std::set<int> lost;
  const int replicas = scenario.config().replicas;
  for (int r = 0; r < replicas; ++r) {
    bool down = false;
    for (const auto& a : plan.actions()) {  // actions are in schedule order
      if (a.kind == net::FaultAction::Kind::kCrashNode &&
          a.node == scenario.replica_host(r)) {
        down = true;
      }
      if (a.kind == net::FaultAction::Kind::kRestoreNode &&
          a.node == scenario.replica_host(r)) {
        down = false;  // host back up, but its processes stay dead
      }
      if (a.kind == net::FaultAction::Kind::kCrashProcess &&
          a.pid == scenario.replica_pid(r)) {
        down = true;
      }
      if (a.kind == net::FaultAction::Kind::kRestartProcess &&
          a.pid == scenario.replica_pid(r)) {
        down = false;
      }
    }
    if (down) lost.insert(r);
  }
  return lost;
}

// Mutable state shared between the scenario hooks and the trial driver.
struct TrialContext {
  sim::Kernel* kernel = nullptr;
  sim::TraceRecorder trace;
  std::vector<TrialObservation::CheckpointEvent> checkpoints;
  std::vector<std::uint64_t> incarnations;  // per replica, bumped per rebuild
};

}  // namespace

TrialResult run_trial(const TrialConfig& config) {
  // The schedule derives from the trial seed through its own stream, fully
  // decoupled from the simulation's randomness.
  return run_trial(config, net::FaultPlan{});
}

TrialResult run_trial(const TrialConfig& config, const net::FaultPlan& plan) {
  // Sharded trials run on their own multi-group cluster; their fault plan
  // regenerates deterministically from the seed (the explicit-plan path is
  // the single-group shrinker's entry point).
  if (config.shards > 1) return run_shard_trial(config);

  const bool generate = plan.empty() && config.faults.total_actions() > 0;

  auto context = std::make_unique<TrialContext>();
  context->incarnations.resize(static_cast<std::size_t>(config.replicas), 0);
  if (config.record_trace) context->trace.enable();
  TrialContext& ctx = *context;

  harness::ScenarioConfig sc;
  sc.seed = config.seed;
  sc.clients = config.clients;
  sc.replicas = config.replicas;
  sc.max_replicas = config.replicas;
  sc.style = config.style;
  sc.checkpoint_interval = config.checkpoint_interval;
  sc.checkpoint_every_requests = config.checkpoint_every_requests;
  sc.checkpoint_anchor_interval = config.checkpoint_anchor_interval;
  sc.auto_recover = true;
  sc.skip_reply_dedup = config.inject_dedup_bug;
  sc.tracing = config.record_spans;
  sc.health = config.health;
  sc.make_servant = [&ctx](int index) {
    auto servant = std::make_unique<app::KvStoreServant>();
    servant->set_on_apply([&ctx, index](const std::string& op, const std::string& key) {
      if (ctx.trace.enabled() && ctx.kernel != nullptr) {
        ctx.trace.add(ctx.kernel->now(), "replica" + std::to_string(index),
                      "apply " + op + " " + key);
      }
    });
    return servant;
  };
  sc.on_replicator_created = [&ctx](int index, replication::Replicator& rep) {
    const std::uint64_t incarnation = ctx.incarnations[static_cast<std::size_t>(index)]++;
    rep.set_on_checkpoint([&ctx, index, incarnation](std::uint64_t id) {
      ctx.checkpoints.push_back({index, incarnation, id});
      if (ctx.trace.enabled() && ctx.kernel != nullptr) {
        ctx.trace.add(ctx.kernel->now(), "replica" + std::to_string(index),
                      "checkpoint " + std::to_string(id));
      }
    });
  };

  harness::Scenario scenario(sc);
  ctx.kernel = &scenario.kernel();

  if (generate) {
    Rng plan_rng = Rng(config.seed).fork(0xfa017);
    scenario.fault_plan() = generate_schedule(plan_rng, config.faults, scenario);
  } else {
    scenario.fault_plan() = plan;
  }
  const net::FaultPlan& active_plan = scenario.fault_plan();
  if (ctx.trace.enabled()) {
    for (const auto& a : active_plan.actions()) {
      ctx.trace.add(a.at, "faultplan", a.to_string());
    }
  }
  scenario.arm_faults();

  // Workload.
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  int remaining = config.clients;
  for (int c = 0; c < config.clients; ++c) {
    WorkloadClient::Config wc;
    wc.index = c;
    wc.ops = config.ops_per_client;
    wc.gap = config.op_gap;
    wc.append_ratio = config.append_ratio;
    auto client = std::make_unique<WorkloadClient>(
        scenario, wc, Rng(config.seed).fork(0xc1a0 + static_cast<std::uint64_t>(c)),
        ctx.trace.enabled() ? &ctx.trace : nullptr);
    client->on_done = [&scenario, &remaining] {
      if (--remaining == 0) scenario.kernel().stop();
    };
    client->start();
    clients.push_back(std::move(client));
  }

  const SimTime deadline =
      std::max(config.hard_deadline,
               active_plan.last_effect_end() + config.recovery_bound + sec(2));
  scenario.kernel().run_until(deadline);
  const bool all_done = remaining == 0;
  if (config.health) {
    // The detection oracle judges every scheduled fault, so each one must
    // actually strike while the health plane is watching: when the workload
    // finishes early, keep the simulation alive through the last fault
    // effect plus the detection bound instead of stopping with late faults
    // still pending.
    scenario.kernel().run_until(active_plan.last_effect_end() +
                                config.detection_bound + msec(200));
  }
  scenario.drain(msec(500));  // let replies, checkpoints and joins settle

  // Observation.
  TrialResult result;
  result.plan = active_plan;
  result.last_fault_end = active_plan.last_effect_end();

  TrialObservation obs;
  obs.recovery_bound = config.recovery_bound;
  obs.expected_lost = permanently_lost(active_plan, scenario);
  obs.all_clients_done = all_done;
  SimTime finished = all_done ? kTimeZero : deadline;
  for (const auto& client : clients) {
    const auto& h = client->history();
    obs.history.insert(obs.history.end(), h.begin(), h.end());
    result.completed_ops += static_cast<std::uint64_t>(client->completed());
    finished = std::max(finished, client->last_completed_at());
  }
  obs.finished_at = finished;
  obs.last_fault_end = result.last_fault_end;
  obs.checkpoints = ctx.checkpoints;

  for (int r = 0; r < config.replicas; ++r) {
    TrialObservation::ReplicaState rs;
    rs.index = r;
    auto& rep = scenario.replicator(r);
    rs.live = scenario.replica_process(r).alive() && !rep.stopped();
    rs.initialized = rep.initialized();
    rs.responder = rs.live && rep.is_responder();
    if (const auto& view = rep.current_view()) {
      rs.view_id = view->view_id;
      for (const auto& member : view->members) rs.view_members.push_back(member.process);
    }
    auto* kv = dynamic_cast<app::KvStoreServant*>(&scenario.app(r));
    VDEP_ASSERT_MSG(kv != nullptr, "chaos trials replicate the KV store");
    for (int c = 0; c < config.clients; ++c) {
      const std::string key = client_log_key(c);
      if (auto value = kv->lookup(key)) rs.logs[key] = *value;
    }
    obs.replicas.push_back(std::move(rs));
  }

  result.verdict = check_all(obs);
  if (config.health) {
    HealthObservation hobs;
    hobs.enabled = true;
    hobs.fault_free = active_plan.empty();
    hobs.detection_bound = config.detection_bound;
    hobs.events = scenario.health().events();
    hobs.faults = active_plan.actions();
    result.verdict.merge(check_detection(hobs));
    result.health_observation = std::move(hobs);
  }
  result.finished_at = finished;
  result.recovery_ms =
      finished > result.last_fault_end ? to_usec(finished - result.last_fault_end) / 1000.0
                                       : 0.0;
  if (ctx.trace.enabled()) {
    const std::string rendered = ctx.trace.render();
    result.trace_digest = fnv1a(
        {reinterpret_cast<const std::uint8_t*>(rendered.data()), rendered.size()});
  }
  if (config.record_spans) {
    const obs::Tracer& tracer = scenario.kernel().tracer();
    result.spans_recorded = tracer.spans_recorded();
    result.spans_dropped = tracer.spans_dropped();
    result.flight_recording = obs::to_chrome_trace(tracer);
  }
  result.observation = std::move(obs);
  return result;
}

TrialConfig campaign_trial_config(const CampaignConfig& config, int index) {
  TrialConfig trial = config.base;
  trial.seed = mix_seed(config.seed, static_cast<std::uint64_t>(index));
  const auto i = static_cast<std::size_t>(index);
  trial.style = config.styles[i % config.styles.size()];
  trial.replicas = config.replica_counts[(i / config.styles.size()) %
                                         config.replica_counts.size()];
  trial.checkpoint_every_requests =
      config.checkpoint_frequencies[(i / (config.styles.size() *
                                          config.replica_counts.size())) %
                                    config.checkpoint_frequencies.size()];
  trial.checkpoint_anchor_interval =
      config.anchor_intervals[(i / (config.styles.size() *
                                    config.replica_counts.size() *
                                    config.checkpoint_frequencies.size())) %
                              config.anchor_intervals.size()];
  trial.shards =
      config.shard_counts[(i / (config.styles.size() *
                                config.replica_counts.size() *
                                config.checkpoint_frequencies.size() *
                                config.anchor_intervals.size())) %
                          config.shard_counts.size()];
  return trial;
}

namespace {

// Everything one trial produces, computed without touching campaign state —
// the unit of work a fleet worker executes. The failing-trial span replay
// happens here too (it is deterministic per trial), so the expensive part of
// a campaign is embarrassingly parallel and the merge below is cheap.
struct ExecutedTrial {
  TrialConfig config;
  TrialResult result;
  std::string failure_recording;  // span replay, failing trials only
};

ExecutedTrial execute_campaign_trial(const CampaignConfig& config, int index) {
  ExecutedTrial out;
  out.config = campaign_trial_config(config, index);
  out.result = run_trial(out.config);
  if (!out.result.pass()) {
    // Post-mortem: replay the exact failing trial with span recording on.
    // Determinism guarantees the replay reproduces the failure, so the
    // flight recording shows the actual causal history behind the verdict.
    TrialConfig replay_config = out.config;
    replay_config.record_spans = true;
    out.failure_recording = run_trial(replay_config, out.result.plan).flight_recording;
  }
  return out;
}

// Folds one finished trial into the campaign aggregate. Must be called in
// trial-index order: the metrics registry, failure list and recovery series
// are order-sensitive, and index order is what makes the parallel fleet's
// output byte-identical to the serial run's.
void merge_trial(
    CampaignResult& result, int index, const ExecutedTrial& executed,
    const std::function<void(int, const TrialConfig&, const TrialResult&)>& on_trial) {
  const TrialConfig& trial_config = executed.config;
  const TrialResult& trial = executed.result;

  ++result.trials;
  result.metrics.add("chaos.trials");
  const std::string style = replication::style_code(trial_config.style);
  if (trial.pass()) {
    ++result.passed;
    result.metrics.add("chaos.pass");
    result.metrics.add("chaos.pass." + style);
  } else {
    result.metrics.add("chaos.fail");
    result.metrics.add("chaos.fail." + style);
    result.failures.push_back({index, trial_config, trial.plan,
                               trial.verdict.failures, executed.failure_recording});
  }
  if (trial_config.shards > 1) {
    result.metrics.add("chaos.shard.trials");
    result.metrics.observe(
        "chaos.shard.migrations",
        static_cast<double>(trial.shard_observation.migrations_committed));
    result.metrics.observe(
        "chaos.shard.final_epoch",
        static_cast<double>(trial.shard_observation.final_map.epoch()));
  }
  if (trial_config.health) {
    // Per-fault detection latency distribution: the campaign's p50/p99
    // detection figures read straight off this metric.
    for (const auto& rec : match_detections(trial.health_observation)) {
      if (rec.detected) {
        result.metrics.observe("chaos.detection_ms", rec.latency_ms);
      } else {
        result.metrics.add("chaos.detection_missed");
      }
    }
    result.metrics.add(
        "chaos.health_events",
        static_cast<std::uint64_t>(trial.health_observation.events.size()));
  }
  result.metrics.observe("chaos.recovery_ms", trial.recovery_ms);
  result.metrics.observe("chaos.completed_ops",
                         static_cast<double>(trial.completed_ops));
  if (trial_config.record_spans) {
    result.metrics.observe("chaos.spans_per_trial",
                           static_cast<double>(trial.spans_recorded));
    result.metrics.add("chaos.spans_dropped", trial.spans_dropped);
  }
  result.recovery_series.record(SimTime{index}, trial.recovery_ms);

  if (on_trial) on_trial(index, trial_config, trial);
}

}  // namespace

CampaignResult run_campaign(
    const CampaignConfig& config,
    const std::function<void(int, const TrialConfig&, const TrialResult&)>& on_trial) {
  CampaignResult result;
  const int workers = std::min(std::max(config.workers, 1), std::max(config.trials, 1));

  if (workers == 1) {
    for (int i = 0; i < config.trials; ++i) {
      merge_trial(result, i, execute_campaign_trial(config, i), on_trial);
    }
  } else {
    // Trial fleet: every trial is reproducible from (campaign seed, index)
    // with its own isolated Kernel, so trials run as independent pool tasks
    // writing pre-assigned slots. The driver commits finished slots in index
    // order — streaming, so memory is bounded by the fleet's out-of-order
    // window, and on_trial still observes the serial sequence.
    sim::parallel::StealPool pool(workers);
    const auto n = static_cast<std::size_t>(config.trials);
    std::vector<std::unique_ptr<ExecutedTrial>> slots(n);
    std::vector<std::unique_ptr<std::atomic<bool>>> ready;
    ready.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ready.push_back(std::make_unique<std::atomic<bool>>(false));
    }
    for (int i = 0; i < config.trials; ++i) {
      const auto slot = static_cast<std::size_t>(i);
      pool.submit([&config, &slots, &ready, i, slot] {
        slots[slot] = std::make_unique<ExecutedTrial>(execute_campaign_trial(config, i));
        ready[slot]->store(true, std::memory_order_release);
      });
    }
    for (int i = 0; i < config.trials; ++i) {
      const auto slot = static_cast<std::size_t>(i);
      while (!ready[slot]->load(std::memory_order_acquire)) {
        // Help run trials while waiting; once nothing is claimable the
        // remaining trials are mid-execution on workers — back off briefly.
        if (!pool.try_run_one()) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
      }
      merge_trial(result, i, *slots[slot], on_trial);
      slots[slot].reset();
    }
  }

  result.metrics.set_gauge("chaos.pass_rate",
                           result.trials == 0
                               ? 1.0
                               : static_cast<double>(result.passed) / result.trials);
  return result;
}

std::string to_json(const CampaignConfig& config, const CampaignResult& result) {
  char buf[256];
  std::string out = "{\n";
  std::snprintf(buf, sizeof(buf), "  \"seed\": %llu,\n",
                static_cast<unsigned long long>(config.seed));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"trials\": %d,\n", result.trials);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"passed\": %d,\n", result.passed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"failed\": %d,\n", result.trials - result.passed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"pass_rate\": %.4f,\n",
                result.metrics.gauge("chaos.pass_rate").value_or(0.0));
  out += buf;
  if (const auto* rec = result.metrics.distribution("chaos.recovery_ms")) {
    std::snprintf(buf, sizeof(buf),
                  "  \"recovery_ms\": {\"mean\": %.3f, \"stddev\": %.3f, "
                  "\"min\": %.3f, \"max\": %.3f},\n",
                  rec->mean(), rec->stddev(), rec->min(), rec->max());
    out += buf;
  }
  if (const auto* ops = result.metrics.distribution("chaos.completed_ops")) {
    std::snprintf(buf, sizeof(buf),
                  "  \"completed_ops\": {\"mean\": %.1f, \"total\": %.0f},\n",
                  ops->mean(), ops->sum());
    out += buf;
  }
  out += "  \"per_style\": {";
  bool first = true;
  for (auto style : config.styles) {
    const std::string code = replication::style_code(style);
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": {\"pass\": %llu, \"fail\": %llu}",
                  first ? "" : ",", code.c_str(),
                  static_cast<unsigned long long>(
                      result.metrics.counter("chaos.pass." + code)),
                  static_cast<unsigned long long>(
                      result.metrics.counter("chaos.fail." + code)));
    out += buf;
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace vdep::chaos
