// Chaos workload clients: closed-loop KV traffic with a recorded history.
//
// Each WorkloadClient is a real client process on a client host — its own
// ORB and client-side replicator (ClientCoordinator), exactly like the
// application clients in examples/kv_cluster.cpp — so retransmissions,
// failovers and reply dedup all happen on the genuine code paths.
//
// The exactly-once oracle needs duplicated executions to be *visible in
// state*, so the workload's backbone is "append" operations carrying unique
// tokens to a per-client log key: a retransmission that is wrongly
// re-executed leaves its token in the log twice.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sim/trace.hpp"

namespace vdep::chaos {

struct OpRecord {
  int client = 0;
  std::uint64_t seq = 0;     // per-client issue index
  std::string op;            // "append" | "put" | "get"
  std::string key;
  std::string token;         // append payload token, "" otherwise
  SimTime issued_at = kTimeZero;
  std::optional<SimTime> completed_at;
  bool ok = false;  // reply status was kNoException
};

// The log key replica state is audited under, and the token grammar.
[[nodiscard]] std::string client_log_key(int client_index);
[[nodiscard]] std::string append_token(int client_index, std::uint64_t seq);
// Splits a log value back into tokens ("[...]" concatenation).
[[nodiscard]] std::vector<std::string> parse_tokens(const std::string& log_value);

class WorkloadClient {
 public:
  struct Config {
    int index = 0;
    int ops = 100;
    SimTime gap = msec(12);        // think time between completions
    SimTime start_at = msec(250);  // after the group settles
    double append_ratio = 0.7;     // rest split between put and get
  };

  WorkloadClient(harness::Scenario& scenario, Config config, Rng rng,
                 sim::TraceRecorder* trace);

  // Schedules the first request on the scenario kernel.
  void start();

  [[nodiscard]] bool done() const { return completed_ == config_.ops; }
  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] SimTime last_completed_at() const { return last_completed_; }
  [[nodiscard]] const std::vector<OpRecord>& history() const { return history_; }

  // Fires once when the final op completes.
  std::function<void()> on_done;

 private:
  void issue_next();

  harness::Scenario& scenario_;
  Config config_;
  Rng rng_;
  sim::TraceRecorder* trace_;
  sim::Process process_;
  orb::ClientOrb orb_;
  std::uint64_t next_seq_ = 0;
  int completed_ = 0;
  SimTime last_completed_ = kTimeZero;
  std::vector<OpRecord> history_;
};

}  // namespace vdep::chaos
