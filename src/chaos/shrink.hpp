// Delta-debugging shrinker for failing fault schedules.
//
// Given a trial configuration and a schedule whose run fails an oracle, the
// shrinker searches for a smaller schedule that still fails: first classic
// ddmin over the action list (dropping complements of ever-finer chunks),
// then per-action retiming (snapping strike/lift times to a coarse grid and
// pulling them earlier). Every probe is a full deterministic trial, so the
// result is an honest minimal reproducer, printable via FaultPlan::to_string
// and replayable with run_trial(config, minimal).
//
// With a StealPool, each ddmin round evaluates all of its candidate plans as
// parallel trials (each probe is an independent kernel) and commits the
// lowest-indexed failing candidate — the same candidate the serial scan
// would have taken, so the minimal schedule is identical; only the probe
// count differs (the parallel round finishes candidates the serial scan
// would have skipped past). The sequential retiming phase stays serial.
#pragma once

#include <functional>

#include "chaos/campaign.hpp"
#include "sim/parallel/steal_pool.hpp"

namespace vdep::chaos {

// Decides whether a probe still exhibits the failure being minimized. The
// default predicate accepts any oracle failure.
using FailPredicate = std::function<bool(const TrialResult&)>;

struct ShrinkResult {
  net::FaultPlan minimal;
  TrialResult reproduction;  // the (failing) run of `minimal`
  int probes = 0;            // trials executed while shrinking
};

[[nodiscard]] ShrinkResult shrink_schedule(const TrialConfig& config,
                                           const net::FaultPlan& failing,
                                           const FailPredicate& still_fails = {},
                                           sim::parallel::StealPool* pool = nullptr);

}  // namespace vdep::chaos
