// Sharded chaos trials: the multi-group analogue of run_trial.
//
// One shard trial = build a shard::ShardedCluster (replicated directory +
// one replica group per shard + routed clients), run a recorded workload
// through the routers, perform `splits` online shard splits while the
// clients are in flight, and inject the fault budget *inside* the split
// windows — crashes and partitions land exactly when a range is frozen,
// donated or being installed. Judged with the shard oracles (ownership and
// migration integrity) plus the bounded-recovery oracle.
//
// Deterministic in (seed, config): the split schedule, the fault plan and
// every workload coin-flip derive from forked streams of the trial seed.
#pragma once

#include "chaos/campaign.hpp"

namespace vdep::chaos {

[[nodiscard]] TrialResult run_shard_trial(const TrialConfig& config);

}  // namespace vdep::chaos
