// Open-loop workload generation: request arrivals driven by a time-varying
// rate plan rather than by reply completions. This is what drives the
// adaptive-replication experiment (Fig. 6): the request rate sweeps between
// low and high regimes and the infrastructure must follow with style
// switches.
#pragma once

#include <functional>
#include <vector>

#include "orb/orb_core.hpp"
#include "util/calibration.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace vdep::app {

// Piecewise-constant request rate (requests/second) over time.
class RatePlan {
 public:
  struct Segment {
    SimTime start;
    double rate_rps;
  };

  RatePlan() = default;
  explicit RatePlan(std::vector<Segment> segments);

  static RatePlan constant(double rate_rps);
  // The Fig. 6 shape: alternating low/high plateaus over ~30 s.
  static RatePlan fig6_burst(double low_rps = 250, double high_rps = 1100,
                             SimTime plateau = sec(5), int plateaus = 6);

  [[nodiscard]] double rate_at(SimTime t) const;
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }
  [[nodiscard]] SimTime end_of_last_segment() const;

 private:
  std::vector<Segment> segments_;  // sorted by start
};

// Issues requests through a client ORB following a rate plan (Poisson
// arrivals at the instantaneous rate). Replies are tracked for latency but
// never gate the next send.
class OpenLoopClient {
 public:
  struct Config {
    std::size_t request_bytes = calib::kDefaultRequestBytes;
    SimTime duration = sec(30);
    // Cap on in-flight requests so an overloaded passive server degrades by
    // queueing at the client, as a real ORB connection pool would.
    std::size_t max_outstanding = 64;
  };

  OpenLoopClient(orb::ClientOrb& orb, orb::ObjectRef ref, RatePlan plan, Config config,
                 Rng rng);

  void start();

  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }
  [[nodiscard]] const Sampler& latencies() const { return latencies_; }

  void set_on_done(std::function<void()> fn) { on_done_ = std::move(fn); }

 private:
  void schedule_next_arrival();
  void issue();

  orb::ClientOrb& orb_;
  orb::ObjectRef ref_;
  RatePlan plan_;
  Config config_;
  Rng rng_;
  SimTime started_ = kTimeZero;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t outstanding_ = 0;
  Sampler latencies_;
  std::function<void()> on_done_;
  bool finished_ = false;
};

}  // namespace vdep::app
