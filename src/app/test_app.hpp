// The CORBA-style client-server micro-benchmark application of Sec. 4 ("a
// CORBA client-server test application that processes a cycle of 10,000
// requests"), made checkpointable so every replication style can host it.
#pragma once

#include <functional>

#include "orb/orb_core.hpp"
#include "replication/app_state.hpp"
#include "util/calibration.hpp"
#include "util/stats.hpp"

namespace vdep::app {

// Deterministic servant with tunable state size, reply size and execution
// time — the "application parameters" column of the paper's Table 1.
class TestServant final : public replication::Checkpointable {
 public:
  struct Config {
    std::size_t state_bytes = calib::kDefaultStateBytes;
    std::size_t reply_bytes = calib::kDefaultReplyBytes;
    SimTime exec_time = calib::kAppProcessing;
  };

  TestServant() : TestServant(Config{}) {}
  explicit TestServant(Config config);

  // Operations:
  //   "process"    — folds the request payload into the state, returns a
  //                  reply of the configured size carrying (counter, digest);
  //   "get_digest" — read-only state digest;
  //   anything else -> user exception.
  Result invoke(const std::string& operation, const Bytes& args) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(std::span<const std::uint8_t> snapshot) override;
  [[nodiscard]] std::size_t state_size() const override;
  [[nodiscard]] std::uint64_t state_digest() const override { return digest_; }

  // Trivial incremental-checkpoint support: the synthetic state has no
  // tractable dirty set ("process" perturbs pseudo-random bytes), so a delta
  // is simply the full snapshot and apply_delta == restore. This exercises
  // the replicator's chain machinery without claiming a byte saving.
  [[nodiscard]] bool supports_delta() const override { return true; }
  std::uint64_t cut_epoch() override { return epoch_++; }
  [[nodiscard]] std::optional<Bytes> snapshot_delta(
      std::uint64_t since_epoch) const override {
    if (since_epoch >= epoch_) return std::nullopt;
    return snapshot();
  }
  void apply_delta(std::span<const std::uint8_t> delta) override { restore(delta); }

  [[nodiscard]] std::uint64_t counter() const { return counter_; }

 private:
  Config config_;
  Bytes state_;
  std::uint64_t counter_ = 0;
  std::uint64_t digest_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t epoch_ = 1;
};

// Parses the reply body produced by TestServant::invoke("process").
struct ProcessReply {
  std::uint64_t counter = 0;
  std::uint64_t digest = 0;

  static ProcessReply decode(const Bytes& body);
};

// Closed-loop client driver: issues the next request as soon as the previous
// reply arrives (the paper's request cycle). Latencies recorded only after
// the warm-up count.
class ClosedLoopClient {
 public:
  struct Config {
    std::size_t request_bytes = calib::kDefaultRequestBytes;
    int total_requests = calib::kDefaultCycleRequests;
    int warmup_requests = 200;
  };

  ClosedLoopClient(orb::ClientOrb& orb, orb::ObjectRef ref, Config config);

  void start();

  [[nodiscard]] bool done() const { return completed_ >= config_.total_requests; }
  [[nodiscard]] int completed() const { return completed_; }
  [[nodiscard]] bool past_warmup() const { return completed_ >= config_.warmup_requests; }
  [[nodiscard]] const Sampler& latencies() const { return latencies_; }
  [[nodiscard]] SimTime first_measured_at() const { return first_measured_; }
  [[nodiscard]] SimTime last_completed_at() const { return last_completed_; }

  // Fired once when warm-up finishes and once when the cycle completes.
  void set_on_warmup_done(std::function<void()> fn) { on_warmup_ = std::move(fn); }
  void set_on_done(std::function<void()> fn) { on_done_ = std::move(fn); }
  // Fired on every completed request (warm-up included) with its round-trip
  // latency; feeds per-request telemetry (the health plane's SLO input).
  void set_on_complete(std::function<void(double latency_us)> fn) {
    on_complete_ = std::move(fn);
  }

 private:
  void issue_next();

  orb::ClientOrb& orb_;
  orb::ObjectRef ref_;
  Config config_;
  int completed_ = 0;
  Sampler latencies_;
  SimTime first_measured_ = kTimeZero;
  SimTime last_completed_ = kTimeZero;
  std::function<void()> on_warmup_;
  std::function<void()> on_done_;
  std::function<void(double)> on_complete_;
};

}  // namespace vdep::app
