#include "app/test_app.hpp"

#include "orb/cdr.hpp"
#include "util/assert.hpp"

namespace vdep::app {

TestServant::TestServant(Config config)
    : config_(config), state_(filler_bytes(config.state_bytes)) {}

orb::Servant::Result TestServant::invoke(const std::string& operation,
                                         const Bytes& args) {
  Result result;
  result.cpu_time = config_.exec_time;

  if (operation == "process") {
    ++counter_;
    // Deterministic state mutation: fold the payload digest into the state
    // digest and perturb a few bytes so snapshots genuinely differ.
    const std::uint64_t payload_digest = fnv1a(args);
    digest_ ^= payload_digest + 0x9e3779b97f4a7c15ULL + (digest_ << 6) + (digest_ >> 2);
    if (!state_.empty()) {
      state_[digest_ % state_.size()] ^= static_cast<std::uint8_t>(payload_digest);
      state_[counter_ % state_.size()] =
          static_cast<std::uint8_t>(digest_ >> ((counter_ % 8) * 8));
    }

    orb::CdrWriter w(config_.reply_bytes + 16);
    w.ulonglong(counter_);
    w.ulonglong(digest_);
    // Pad the reply to the configured size (response size is one of the
    // application parameters of Table 1).
    const std::size_t written = w.size();
    w.octets(filler_bytes(config_.reply_bytes > written + 4
                              ? config_.reply_bytes - written - 4
                              : 0));
    result.output = std::move(w).take();
    return result;
  }

  if (operation == "get_digest") {
    orb::CdrWriter w;
    w.ulonglong(counter_);
    w.ulonglong(digest_);
    result.output = std::move(w).take();
    return result;
  }

  result.ok = false;
  return result;
}

Bytes TestServant::snapshot() const {
  ByteWriter w(state_.size() + 24);
  w.u64(counter_);
  w.u64(digest_);
  w.bytes(state_);
  return std::move(w).take();
}

void TestServant::restore(std::span<const std::uint8_t> snapshot) {
  ByteReader r(snapshot);
  counter_ = r.u64();
  digest_ = r.u64();
  state_ = r.bytes();
}

std::size_t TestServant::state_size() const { return state_.size() + 16; }

ProcessReply ProcessReply::decode(const Bytes& body) {
  orb::CdrReader r(body);
  ProcessReply reply;
  reply.counter = r.ulonglong();
  reply.digest = r.ulonglong();
  return reply;
}

ClosedLoopClient::ClosedLoopClient(orb::ClientOrb& orb, orb::ObjectRef ref,
                                   Config config)
    : orb_(orb), ref_(std::move(ref)), config_(config) {
  VDEP_ASSERT(config_.warmup_requests <= config_.total_requests);
}

void ClosedLoopClient::start() { issue_next(); }

void ClosedLoopClient::issue_next() {
  if (done()) return;
  const SimTime sent = orb_.process().now();
  orb_.invoke(ref_, "process", filler_bytes(config_.request_bytes),
              [this, sent](orb::ReplyStatus status, Bytes /*body*/) {
                VDEP_ASSERT_MSG(status == orb::ReplyStatus::kNoException,
                                "micro-benchmark request failed");
                const SimTime now = orb_.process().now();
                ++completed_;
                last_completed_ = now;
                if (completed_ > config_.warmup_requests) {
                  if (latencies_.count() == 0) first_measured_ = sent;
                  latencies_.add(to_usec(now - sent));
                }
                if (on_complete_) on_complete_(to_usec(now - sent));
                if (completed_ == config_.warmup_requests && on_warmup_) on_warmup_();
                if (done()) {
                  if (on_done_) on_done_();
                  return;
                }
                issue_next();
              });
}

}  // namespace vdep::app
