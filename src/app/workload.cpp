#include "app/workload.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::app {

RatePlan::RatePlan(std::vector<Segment> segments) : segments_(std::move(segments)) {
  VDEP_ASSERT(std::is_sorted(segments_.begin(), segments_.end(),
                             [](const Segment& a, const Segment& b) {
                               return a.start < b.start;
                             }));
}

RatePlan RatePlan::constant(double rate_rps) {
  return RatePlan({Segment{kTimeZero, rate_rps}});
}

RatePlan RatePlan::fig6_burst(double low_rps, double high_rps, SimTime plateau,
                              int plateaus) {
  std::vector<Segment> segments;
  for (int i = 0; i < plateaus; ++i) {
    segments.push_back(Segment{plateau * i, i % 2 == 0 ? low_rps : high_rps});
  }
  return RatePlan(std::move(segments));
}

double RatePlan::rate_at(SimTime t) const {
  double rate = 0.0;
  for (const auto& seg : segments_) {
    if (seg.start <= t) rate = seg.rate_rps;
  }
  return rate;
}

SimTime RatePlan::end_of_last_segment() const {
  return segments_.empty() ? kTimeZero : segments_.back().start;
}

OpenLoopClient::OpenLoopClient(orb::ClientOrb& orb, orb::ObjectRef ref, RatePlan plan,
                               Config config, Rng rng)
    : orb_(orb),
      ref_(std::move(ref)),
      plan_(std::move(plan)),
      config_(config),
      rng_(rng) {}

void OpenLoopClient::start() {
  started_ = orb_.process().now();
  schedule_next_arrival();
}

void OpenLoopClient::schedule_next_arrival() {
  const SimTime now = orb_.process().now();
  const SimTime elapsed = now - started_;
  if (elapsed >= config_.duration) {
    finished_ = true;
    if (outstanding_ == 0 && on_done_) on_done_();
    return;
  }
  const double rate = plan_.rate_at(elapsed);
  if (rate <= 0.0) {
    // Idle segment: poll for the next one.
    orb_.process().post(msec(10), [this] { schedule_next_arrival(); });
    return;
  }
  const SimTime gap = sec_f(rng_.exponential(1.0 / rate));
  orb_.process().post(std::max(gap, nsec(1)), [this] {
    issue();
    schedule_next_arrival();
  });
}

void OpenLoopClient::issue() {
  if (outstanding_ >= config_.max_outstanding) {
    ++suppressed_;
    return;
  }
  ++issued_;
  ++outstanding_;
  const SimTime sent = orb_.process().now();
  orb_.invoke(ref_, "process", filler_bytes(config_.request_bytes),
              [this, sent](orb::ReplyStatus /*status*/, Bytes /*body*/) {
                ++completed_;
                --outstanding_;
                latencies_.add(to_usec(orb_.process().now() - sent));
                if (finished_ && outstanding_ == 0 && on_done_) on_done_();
              });
}

}  // namespace vdep::app
