// A replicated key-value store — a second, realistic application on top of
// the replication API (the micro-benchmark TestServant is deliberately
// synthetic). Demonstrates that Checkpointable is application-agnostic:
// deterministic CDR-typed operations, full-state snapshots, and a digest for
// consistency checking.
//
// Operations (CDR-encoded arguments/results):
//   "put"    in: string key, string value      out: boolean existed
//   "get"    in: string key                    out: boolean found, string value
//   "erase"  in: string key                    out: boolean existed
//   "size"   in: -                             out: ulong entries
//   "append" in: string key, string value      out: ulong new length
//
// "append" exists for the chaos engine's exactly-once oracle: appending a
// unique token makes a duplicated execution visible in the final state,
// where an idempotent "put" would hide it.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "replication/app_state.hpp"
#include "util/calibration.hpp"

namespace vdep::app {

class KvStoreServant final : public replication::Checkpointable {
 public:
  struct Config {
    // Simulated CPU time per operation (writes cost more than reads).
    SimTime read_time = calib::kAppProcessing;
    SimTime write_time = calib::kAppProcessing * 3;
  };

  KvStoreServant() : KvStoreServant(Config{}) {}
  explicit KvStoreServant(Config config);

  Result invoke(const std::string& operation, const Bytes& args) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(std::span<const std::uint8_t> snapshot) override;
  [[nodiscard]] std::size_t state_size() const override;
  [[nodiscard]] std::uint64_t state_digest() const override;

  // Incremental checkpointing: every mutation stamps its key with the open
  // epoch; erasures leave tombstones. A delta since epoch `e` carries the
  // keys written after the cut labelled `e` plus the tombstones newer than
  // it — O(dirty set), not O(state). restore() resets the tracking, after
  // which only cuts taken from the restored state are answerable.
  [[nodiscard]] bool supports_delta() const override { return true; }
  std::uint64_t cut_epoch() override;
  [[nodiscard]] std::optional<Bytes> snapshot_delta(
      std::uint64_t since_epoch) const override;
  void apply_delta(std::span<const std::uint8_t> delta) override;

  [[nodiscard]] std::size_t entries() const { return data_.size(); }
  // Direct read of the stored value (oracles inspect replica state without
  // going through the request path).
  [[nodiscard]] std::optional<std::string> lookup(const std::string& key) const;
  // Whole-store view, for range extraction (shard donation) and audits.
  [[nodiscard]] const std::map<std::string, std::string>& items() const {
    return data_;
  }

  // Observer called after every state-mutating execution with (operation,
  // key) — the chaos engine's history recorder.
  void set_on_apply(std::function<void(const std::string&, const std::string&)> fn) {
    on_apply_ = std::move(fn);
  }

  // --- typed client-side helpers (encode args / decode results) -------------
  static Bytes encode_put(const std::string& key, const std::string& value);
  static Bytes encode_key(const std::string& key);  // for get/erase
  static Bytes encode_append(const std::string& key, const std::string& value);
  static std::uint32_t decode_ulong(const Bytes& body);  // append/size result
  struct GetResult {
    bool found = false;
    std::string value;
  };
  static GetResult decode_get(const Bytes& body);
  static bool decode_flag(const Bytes& body);  // put/erase result

 private:
  void mark_written(const std::string& key);
  void mark_erased(const std::string& key);

  Config config_;
  std::map<std::string, std::string> data_;
  std::function<void(const std::string&, const std::string&)> on_apply_;

  // Dirty-key tracking. `epoch_` is the open (still-mutating) epoch;
  // cut_epoch() closes it. `delta_floor_` is the oldest cut a delta can
  // still be computed against (bumped to the open epoch on restore, which
  // discards the per-key stamps).
  std::uint64_t epoch_ = 1;
  std::uint64_t delta_floor_ = 0;
  std::map<std::string, std::uint64_t> write_epoch_;  // key -> last write epoch
  std::map<std::string, std::uint64_t> tombstone_;    // erased key -> erase epoch
};

}  // namespace vdep::app
