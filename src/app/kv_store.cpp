#include "app/kv_store.hpp"

#include "orb/cdr.hpp"
#include "util/assert.hpp"

namespace vdep::app {

KvStoreServant::KvStoreServant(Config config) : config_(config) {}

orb::Servant::Result KvStoreServant::invoke(const std::string& operation,
                                            const Bytes& args) {
  Result result;
  try {
    orb::CdrReader r(args);
    if (operation == "put") {
      const std::string key = r.string();
      const std::string value = r.string();
      result.cpu_time = config_.write_time;
      const bool existed = data_.contains(key);
      data_[key] = value;
      mark_written(key);
      orb::CdrWriter w;
      w.boolean(existed);
      result.output = std::move(w).take();
      if (on_apply_) on_apply_(operation, key);
      return result;
    }
    if (operation == "append") {
      const std::string key = r.string();
      const std::string value = r.string();
      result.cpu_time = config_.write_time;
      std::string& cell = data_[key];
      cell += value;
      mark_written(key);
      orb::CdrWriter w;
      w.ulong(static_cast<std::uint32_t>(cell.size()));
      result.output = std::move(w).take();
      if (on_apply_) on_apply_(operation, key);
      return result;
    }
    if (operation == "get") {
      const std::string key = r.string();
      result.cpu_time = config_.read_time;
      orb::CdrWriter w;
      auto it = data_.find(key);
      w.boolean(it != data_.end());
      w.string(it != data_.end() ? it->second : "");
      result.output = std::move(w).take();
      return result;
    }
    if (operation == "erase") {
      const std::string key = r.string();
      result.cpu_time = config_.write_time;
      orb::CdrWriter w;
      const bool existed = data_.erase(key) > 0;
      if (existed) mark_erased(key);
      w.boolean(existed);
      result.output = std::move(w).take();
      if (on_apply_) on_apply_(operation, key);
      return result;
    }
    if (operation == "size") {
      result.cpu_time = config_.read_time;
      orb::CdrWriter w;
      w.ulong(static_cast<std::uint32_t>(data_.size()));
      result.output = std::move(w).take();
      return result;
    }
  } catch (const DecodeError&) {
    // Malformed arguments: fall through to the failure reply.
  }
  result.ok = false;
  return result;
}

Bytes KvStoreServant::snapshot() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [key, value] : data_) {
    w.str(key);
    w.str(value);
  }
  return std::move(w).take();
}

void KvStoreServant::restore(std::span<const std::uint8_t> snapshot) {
  data_.clear();
  ByteReader r(snapshot);
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    data_[std::move(key)] = r.str();
  }
  // The per-key stamps described the overwritten state; deltas can only be
  // answered for cuts taken from here on. Epochs stay monotone across
  // restores so stale `since` values are rejected, never misanswered.
  write_epoch_.clear();
  tombstone_.clear();
  delta_floor_ = epoch_;
}

void KvStoreServant::mark_written(const std::string& key) {
  write_epoch_[key] = epoch_;
  tombstone_.erase(key);
}

void KvStoreServant::mark_erased(const std::string& key) {
  write_epoch_.erase(key);
  tombstone_[key] = epoch_;
}

std::uint64_t KvStoreServant::cut_epoch() { return epoch_++; }

std::optional<Bytes> KvStoreServant::snapshot_delta(std::uint64_t since_epoch) const {
  // Mutations in the cut labelled `e` carry stamp <= e; the delta since `e`
  // is everything stamped after it. Unanswerable once tracking was reset.
  if (since_epoch < delta_floor_ || since_epoch >= epoch_) return std::nullopt;
  ByteWriter w;
  std::uint32_t upserts = 0;
  for (const auto& [key, stamp] : write_epoch_) {
    if (stamp > since_epoch) ++upserts;
  }
  w.u32(upserts);
  for (const auto& [key, stamp] : write_epoch_) {
    if (stamp <= since_epoch) continue;
    const auto it = data_.find(key);
    VDEP_ASSERT_MSG(it != data_.end(), "dirty key missing from store");
    w.str(key);
    w.str(it->second);
  }
  std::uint32_t erased = 0;
  for (const auto& [key, stamp] : tombstone_) {
    if (stamp > since_epoch) ++erased;
  }
  w.u32(erased);
  for (const auto& [key, stamp] : tombstone_) {
    if (stamp > since_epoch) w.str(key);
  }
  return std::move(w).take();
}

void KvStoreServant::apply_delta(std::span<const std::uint8_t> delta) {
  ByteReader r(delta);
  const auto upserts = r.u32();
  for (std::uint32_t i = 0; i < upserts; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    data_[key] = std::move(value);
    mark_written(key);
  }
  const auto erased = r.u32();
  for (std::uint32_t i = 0; i < erased; ++i) {
    const std::string key = r.str();
    data_.erase(key);
    mark_erased(key);
  }
}

std::size_t KvStoreServant::state_size() const {
  std::size_t total = 4;
  for (const auto& [key, value] : data_) total += key.size() + value.size() + 8;
  return total;
}

std::uint64_t KvStoreServant::state_digest() const {
  // std::map iterates in key order, so the digest is replica-deterministic.
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // field separator
    h *= 1099511628211ULL;
  };
  for (const auto& [key, value] : data_) {
    mix(key);
    mix(value);
  }
  return h;
}

Bytes KvStoreServant::encode_put(const std::string& key, const std::string& value) {
  orb::CdrWriter w;
  w.string(key);
  w.string(value);
  return std::move(w).take();
}

Bytes KvStoreServant::encode_key(const std::string& key) {
  orb::CdrWriter w;
  w.string(key);
  return std::move(w).take();
}

KvStoreServant::GetResult KvStoreServant::decode_get(const Bytes& body) {
  orb::CdrReader r(body);
  GetResult out;
  out.found = r.boolean();
  out.value = r.string();
  return out;
}

bool KvStoreServant::decode_flag(const Bytes& body) {
  orb::CdrReader r(body);
  return r.boolean();
}

Bytes KvStoreServant::encode_append(const std::string& key, const std::string& value) {
  return encode_put(key, value);
}

std::uint32_t KvStoreServant::decode_ulong(const Bytes& body) {
  orb::CdrReader r(body);
  return r.ulong();
}

std::optional<std::string> KvStoreServant::lookup(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace vdep::app
