// Library interposition (paper Sec. 3.1).
//
// In MEAD the replicator is a shared library that intercepts the standard
// socket calls underneath the ORB; the application keeps "using" TCP while
// its messages actually flow over group communication. In this repository
// the redirection itself is the replicated transport pair
// (replication::ClientCoordinator on the client, Replicator on the server);
// this module provides the *interception-without-redirection* layers used by
// Fig. 4's middle bars — system calls intercepted, messages unmodified —
// which add only the trampoline cost to the plain TCP path.
#pragma once

#include <memory>
#include <string>

#include "orb/orb_core.hpp"
#include "util/calibration.hpp"

namespace vdep::interpose {

enum class InterceptMode : std::uint8_t {
  kNone = 0,        // plain TCP (baseline)
  kClientOnly = 1,  // client's syscalls intercepted
  kServerOnly = 2,  // server's syscalls intercepted
  kBoth = 3,        // both sides intercepted
};

[[nodiscard]] std::string to_string(InterceptMode mode);

// Wraps another client transport, charging the interception trampoline cost
// on every outgoing request and incoming reply.
class InterceptOnlyClientTransport final : public orb::ClientTransport {
 public:
  InterceptOnlyClientTransport(net::Network& network, sim::Process& process,
                               std::unique_ptr<orb::ClientTransport> inner,
                               SimTime cost = calib::kInterceptOnlyTraversal);

  void send_request(const orb::ObjectRef& ref, Payload giop) override;
  void cancel(std::uint32_t request_id) override;

 private:
  net::Network& network_;
  sim::Process& process_;
  std::unique_ptr<orb::ClientTransport> inner_;
  SimTime cost_;
};

// Accepts TCP connections like orb::DirectServerAcceptor but charges the
// interception cost around every request and reply.
class InterceptOnlyServerAcceptor {
 public:
  InterceptOnlyServerAcceptor(net::ChannelManager& channels, NodeId host,
                              std::uint16_t port, orb::ServerOrb& orb,
                              SimTime cost = calib::kInterceptOnlyTraversal);
  ~InterceptOnlyServerAcceptor();

  InterceptOnlyServerAcceptor(const InterceptOnlyServerAcceptor&) = delete;
  InterceptOnlyServerAcceptor& operator=(const InterceptOnlyServerAcceptor&) = delete;

 private:
  net::ChannelManager& channels_;
  NodeId host_;
  std::uint16_t port_;
  std::vector<net::ChannelPtr> accepted_;
};

}  // namespace vdep::interpose
