#include "interpose/interposer.hpp"

namespace vdep::interpose {

std::string to_string(InterceptMode mode) {
  switch (mode) {
    case InterceptMode::kNone: return "no_interceptor";
    case InterceptMode::kClientOnly: return "client_intercepted";
    case InterceptMode::kServerOnly: return "server_intercepted";
    case InterceptMode::kBoth: return "server_and_client_intercepted";
  }
  return "?";
}

InterceptOnlyClientTransport::InterceptOnlyClientTransport(
    net::Network& network, sim::Process& process,
    std::unique_ptr<orb::ClientTransport> inner, SimTime cost)
    : network_(network), process_(process), inner_(std::move(inner)), cost_(cost) {
  inner_->set_reply_handler([this](Payload&& reply) {
    network_.cpu(process_.host())
        .execute(cost_, process_.guarded([this, r = std::move(reply)]() mutable {
          deliver_reply(std::move(r));
        }));
  });
}

void InterceptOnlyClientTransport::send_request(const orb::ObjectRef& ref, Payload giop) {
  network_.cpu(process_.host())
      .execute(cost_, process_.guarded([this, ref, g = std::move(giop)]() mutable {
        inner_->send_request(ref, std::move(g));
      }));
}

void InterceptOnlyClientTransport::cancel(std::uint32_t request_id) {
  inner_->cancel(request_id);
}

InterceptOnlyServerAcceptor::InterceptOnlyServerAcceptor(net::ChannelManager& channels,
                                                         NodeId host, std::uint16_t port,
                                                         orb::ServerOrb& orb, SimTime cost)
    : channels_(channels), host_(host), port_(port) {
  channels_.listen(host, port, [this, &orb, cost](net::ChannelPtr channel) {
    accepted_.push_back(channel);
    std::weak_ptr<net::Channel> weak = channel;
    auto& network = channels_.network();
    auto& process = orb.process();
    channel->set_receive_handler([&orb, &network, &process, weak, cost,
                                  host = host_](Payload&& request) {
      // Trampoline on the inbound syscall...
      network.cpu(host).execute(
          cost, process.guarded([&orb, &network, weak, cost, host,
                                 req = std::move(request)]() mutable {
            orb.handle_request(
                std::move(req), [&network, weak, cost, host](Payload reply) {
                  // ...and on the outbound one.
                  network.cpu(host).execute(cost, [weak, r = std::move(reply)]() mutable {
                    if (auto ch = weak.lock(); ch && ch->open()) ch->send(std::move(r));
                  });
                });
          }));
    });
  });
}

InterceptOnlyServerAcceptor::~InterceptOnlyServerAcceptor() {
  channels_.stop_listening(host_, port_);
}

}  // namespace vdep::interpose
