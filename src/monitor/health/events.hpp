// The deterministic health-event stream: the alert surface of the health
// plane.
//
// Every state transition the HealthMonitor decides — a replica or link
// crossing its suspicion threshold (and clearing), an SLO entering or
// leaving breach, a queue-depth probe tripping — is appended here with a
// stable, monotone sequence id. Because every input is simulation-
// deterministic, the stream replays byte-identically from a seed: the
// canonical render_text() form is diffed byte-for-byte in ci.sh, and the
// chaos detection oracle matches injected faults against it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace vdep::monitor::health {

enum class HealthEventKind : std::uint8_t {
  kReplicaSuspect,
  kReplicaClear,
  kLinkSuspect,
  kLinkClear,
  kSloLatencyBreach,
  kSloLatencyRecover,
  kSloAvailabilityBreach,
  kSloAvailabilityRecover,
  kQueueDepthAnomaly,
  kQueueDepthClear,
};

[[nodiscard]] const char* to_string(HealthEventKind kind);

struct HealthEvent {
  std::uint64_t seq = 0;  // stable: assigned in emission order
  SimTime at = kTimeZero;
  HealthEventKind kind{};
  std::string subject;  // "replica:replica1@srv1", "link:4->0", "slo:service"
  // Structured subject ids for programmatic matching (the chaos oracle):
  // replica events carry the pid in `id_a`; link events carry the sending
  // host in `id_a` and the observing host in `id_b`; SLO/probe events leave
  // them 0.
  std::uint64_t id_a = 0;
  std::uint64_t id_b = 0;
  double value = 0.0;      // phi / p99_us / burn rate / backlog_us
  double threshold = 0.0;  // the configured bound it crossed
};

class HealthEventStream {
 public:
  const HealthEvent& emit(SimTime at, HealthEventKind kind, std::string subject,
                          std::uint64_t id_a, std::uint64_t id_b, double value,
                          double threshold);

  [[nodiscard]] const std::vector<HealthEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  // Fired synchronously on each emission (the dashboard's live feed).
  void set_on_event(std::function<void(const HealthEvent&)> fn) {
    on_event_ = std::move(fn);
  }

 private:
  std::vector<HealthEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::function<void(const HealthEvent&)> on_event_;
};

// Canonical renderings, byte-deterministic for a given event sequence:
// one line per event (render_text) / a JSON array (to_json). Timestamps are
// printed as integer nanoseconds and levels with fixed precision, so no
// floating-point formatting variance can leak into the bytes.
[[nodiscard]] std::string render_text(const std::vector<HealthEvent>& events);
[[nodiscard]] std::string to_json(const std::vector<HealthEvent>& events);

}  // namespace vdep::monitor::health
