// Phi-accrual failure detection (Hayashibara et al., "The phi accrual
// failure detector", SRDS 2004) over one heartbeat stream.
//
// Instead of a binary alive/dead verdict at a fixed miss limit (the classic
// gcs::FailureDetector, which expels members), phi outputs a continuous
// suspicion level: phi(t) = -log10 P(a heartbeat arrives after t), with the
// arrival distribution estimated from a sliding window of observed
// inter-arrival times (normal tail via erfc — no sampling, deterministic).
// phi = 8 means "if we suspect now, the chance this is a false alarm is
// 1e-8 under the fitted model". The health plane runs one detector per
// daemon-to-daemon heartbeat link and publishes phi as a gauge, so
// suspicion rises and clears hundreds of milliseconds before the classic
// detector's expulsion threshold — the early-warning substrate for
// gray-failure handling.
#pragma once

#include <cstddef>
#include <deque>

#include "util/time.hpp"

namespace vdep::monitor::health {

class PhiAccrualDetector {
 public:
  struct Params {
    // Inter-arrival samples kept for the mean/stddev estimate.
    std::size_t window = 64;
    // Below this many samples the bootstrap interval stands in for the mean.
    std::size_t min_samples = 3;
    SimTime bootstrap_interval = msec(20);
    // Stddev floor (us): absorbs the near-zero variance of simulated
    // heartbeats so one slightly-late arrival cannot spike phi.
    double min_stddev_us = 5000.0;
    // A sample longer than factor x mean is clamped before entering the
    // window: a survived outage is a failure observation, not a latency
    // sample, and must not desensitize the detector for the next fault.
    double max_interval_factor = 5.0;
    // Suspicion threshold and the hysteresis level that clears it.
    double phi_suspect = 8.0;
    double phi_clear = 1.0;
  };

  PhiAccrualDetector() : PhiAccrualDetector(Params{}) {}
  explicit PhiAccrualDetector(Params params);

  // A heartbeat arrived at `now` (must be non-decreasing).
  void heartbeat(SimTime now);

  // Current suspicion level. 0 before the first heartbeat; capped at 100.
  [[nodiscard]] double phi(SimTime now) const;

  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] SimTime last_heartbeat() const { return last_at_; }
  [[nodiscard]] std::size_t samples() const { return intervals_us_.size(); }
  [[nodiscard]] double mean_interval_us() const;
  [[nodiscard]] double stddev_interval_us() const;
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  Params params_;
  bool started_ = false;
  SimTime last_at_ = kTimeZero;
  std::deque<double> intervals_us_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace vdep::monitor::health
