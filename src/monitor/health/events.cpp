#include "monitor/health/events.hpp"

#include <cstdio>

namespace vdep::monitor::health {

const char* to_string(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kReplicaSuspect: return "replica_suspect";
    case HealthEventKind::kReplicaClear: return "replica_clear";
    case HealthEventKind::kLinkSuspect: return "link_suspect";
    case HealthEventKind::kLinkClear: return "link_clear";
    case HealthEventKind::kSloLatencyBreach: return "slo_latency_breach";
    case HealthEventKind::kSloLatencyRecover: return "slo_latency_recover";
    case HealthEventKind::kSloAvailabilityBreach: return "slo_availability_breach";
    case HealthEventKind::kSloAvailabilityRecover: return "slo_availability_recover";
    case HealthEventKind::kQueueDepthAnomaly: return "queue_depth_anomaly";
    case HealthEventKind::kQueueDepthClear: return "queue_depth_clear";
  }
  return "unknown";
}

const HealthEvent& HealthEventStream::emit(SimTime at, HealthEventKind kind,
                                           std::string subject, std::uint64_t id_a,
                                           std::uint64_t id_b, double value,
                                           double threshold) {
  HealthEvent ev;
  ev.seq = next_seq_++;
  ev.at = at;
  ev.kind = kind;
  ev.subject = std::move(subject);
  ev.id_a = id_a;
  ev.id_b = id_b;
  ev.value = value;
  ev.threshold = threshold;
  events_.push_back(std::move(ev));
  if (on_event_) on_event_(events_.back());
  return events_.back();
}

std::string render_text(const std::vector<HealthEvent>& events) {
  std::string out;
  char buf[192];
  for (const HealthEvent& ev : events) {
    std::snprintf(buf, sizeof(buf),
                  "#%06llu t=%lldns %s %s value=%.3f threshold=%.3f\n",
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<long long>(ev.at.count()), to_string(ev.kind),
                  ev.subject.c_str(), ev.value, ev.threshold);
    out += buf;
  }
  return out;
}

std::string to_json(const std::vector<HealthEvent>& events) {
  std::string out = "[\n";
  char buf[256];
  bool first = true;
  for (const HealthEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "  {\"seq\":%llu,\"t_ns\":%lld,\"kind\":\"%s\",\"subject\":\"%s\","
                  "\"value\":%.3f,\"threshold\":%.3f}",
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<long long>(ev.at.count()), to_string(ev.kind),
                  ev.subject.c_str(), ev.value, ev.threshold);
    out += buf;
  }
  out += "\n]\n";
  return out;
}

}  // namespace vdep::monitor::health
