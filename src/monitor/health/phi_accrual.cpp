#include "monitor/health/phi_accrual.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace vdep::monitor::health {

namespace {
constexpr double kPhiCap = 100.0;
}

PhiAccrualDetector::PhiAccrualDetector(Params params) : params_(params) {
  VDEP_ASSERT(params_.window > 0);
  VDEP_ASSERT(params_.bootstrap_interval > kTimeZero);
  VDEP_ASSERT(params_.min_stddev_us > 0.0);
  VDEP_ASSERT(params_.phi_clear < params_.phi_suspect);
}

double PhiAccrualDetector::mean_interval_us() const {
  if (intervals_us_.size() < params_.min_samples) {
    return to_usec(params_.bootstrap_interval);
  }
  return sum_ / static_cast<double>(intervals_us_.size());
}

double PhiAccrualDetector::stddev_interval_us() const {
  if (intervals_us_.size() < params_.min_samples) return params_.min_stddev_us;
  const auto n = static_cast<double>(intervals_us_.size());
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  return std::max(std::sqrt(var), params_.min_stddev_us);
}

void PhiAccrualDetector::heartbeat(SimTime now) {
  if (started_) {
    VDEP_ASSERT_MSG(now >= last_at_, "heartbeats must be observed in time order");
    double interval = to_usec(now - last_at_);
    const double cap = params_.max_interval_factor * mean_interval_us();
    interval = std::min(interval, cap);
    intervals_us_.push_back(interval);
    sum_ += interval;
    sum_sq_ += interval * interval;
    if (intervals_us_.size() > params_.window) {
      const double evicted = intervals_us_.front();
      intervals_us_.pop_front();
      sum_ -= evicted;
      sum_sq_ -= evicted * evicted;
    }
  }
  started_ = true;
  last_at_ = now;
}

double PhiAccrualDetector::phi(SimTime now) const {
  if (!started_) return 0.0;
  const double since_us = to_usec(now - last_at_);
  const double mean = mean_interval_us();
  const double stddev = stddev_interval_us();
  const double y = (since_us - mean) / stddev;
  // P(next heartbeat later than `now`) under a normal inter-arrival model:
  // the upper tail, computed with erfc for precision far into the tail.
  const double p_later = 0.5 * std::erfc(y / std::numbers::sqrt2);
  if (p_later <= 0.0) return kPhiCap;
  const double value = -std::log10(p_later);
  return std::clamp(value, 0.0, kPhiCap);
}

}  // namespace vdep::monitor::health
