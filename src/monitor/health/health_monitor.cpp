#include "monitor/health/health_monitor.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::monitor::health {

namespace {
// Suspicion level reported for a directly observed process death: the phi
// scale's cap, i.e. certainty (the co-located daemon saw the crash; there is
// no model uncertainty to accrue).
constexpr double kDirectObservation = 100.0;
}  // namespace

HealthMonitor::HealthMonitor(sim::Kernel& kernel, MetricsRegistry& registry,
                             HealthParams params)
    : kernel_(kernel),
      registry_(registry),
      params_(params),
      series_(params.windows) {
  VDEP_ASSERT(params_.window_interval > kTimeZero);
  VDEP_ASSERT(params_.phi_interval > kTimeZero);
}

void HealthMonitor::start() {
  if (running_) return;
  running_ = true;
  kernel_.post(params_.phi_interval, [this] { phi_tick(); });
  kernel_.post(params_.window_interval, [this] { window_tick(); });
}

void HealthMonitor::add_slo(SloSpec spec) {
  const std::string name = spec.name;
  slos_.emplace(name, SloState{SloTracker(std::move(spec)), false, false});
  slo_status_.emplace(name, SloStatus{});
}

void HealthMonitor::add_probe(std::string name, double threshold,
                              std::function<double()> fn) {
  VDEP_ASSERT(threshold > 0.0);
  probes_.push_back(Probe{std::move(name), threshold, std::move(fn), false});
}

std::string HealthMonitor::link_label(NodeId from, NodeId at) {
  return from.str() + "->" + at.str();
}

// --- ingestion (called from daemon context) -----------------------------------

void HealthMonitor::on_heartbeat(NodeId from, NodeId at, SimTime now) {
  auto [it, created] = links_.try_emplace(std::make_pair(from, at),
                                          LinkState{PhiAccrualDetector(params_.phi)});
  it->second.detector.heartbeat(now);
}

void HealthMonitor::on_endpoint_registered(ProcessId pid, NodeId host,
                                           std::string_view name, SimTime now) {
  auto [it, created] =
      replicas_.try_emplace(pid, ReplicaState{std::string(name), host, false});
  it->second.label = std::string(name);
  it->second.host = host;
  if (!created && it->second.suspected) {
    it->second.suspected = false;
    stream_.emit(now, HealthEventKind::kReplicaClear, "replica:" + it->second.label,
                 pid.value(), host.value(), 0.0, params_.phi.phi_suspect);
    registry_.add("health.events.replica_clear");
  }
}

void HealthMonitor::on_endpoint_crashed(ProcessId pid, NodeId host,
                                        std::string_view name, SimTime now) {
  auto [it, created] =
      replicas_.try_emplace(pid, ReplicaState{std::string(name), host, false});
  if (it->second.suspected) return;
  it->second.suspected = true;
  stream_.emit(now, HealthEventKind::kReplicaSuspect, "replica:" + it->second.label,
               pid.value(), host.value(), kDirectObservation,
               params_.phi.phi_suspect);
  registry_.add("health.events.replica_suspect");
}

// --- cadences ------------------------------------------------------------------

void HealthMonitor::phi_tick() {
  if (!running_) return;
  const SimTime now = kernel_.now();
  for (auto& [key, link] : links_) {
    const double phi = link.detector.phi(now);
    link.last_phi = phi;
    registry_.set_gauge("health.phi." + link_label(key.first, key.second), phi);
    if (!link.suspected && phi >= params_.phi.phi_suspect) {
      link.suspected = true;
      stream_.emit(now, HealthEventKind::kLinkSuspect,
                   "link:" + link_label(key.first, key.second), key.first.value(),
                   key.second.value(), phi, params_.phi.phi_suspect);
      registry_.add("health.events.link_suspect");
    } else if (link.suspected && phi < params_.phi.phi_clear) {
      link.suspected = false;
      stream_.emit(now, HealthEventKind::kLinkClear,
                   "link:" + link_label(key.first, key.second), key.first.value(),
                   key.second.value(), phi, params_.phi.phi_clear);
      registry_.add("health.events.link_clear");
    }
  }
  // Per-replica suspicion: certainty for a directly observed death, else the
  // worst outbound link suspicion of the replica's host (how the rest of the
  // mesh currently sees that machine).
  for (const auto& [pid, replica] : replicas_) {
    double level = replica.suspected ? kDirectObservation : 0.0;
    if (!replica.suspected) {
      for (const auto& [key, link] : links_) {
        if (key.first == replica.host) level = std::max(level, link.last_phi);
      }
    }
    registry_.set_gauge("health.suspicion." + replica.label, level);
  }
  registry_.set_gauge("health.suspected_replicas",
                      static_cast<double>(suspected_replicas()));
  registry_.set_gauge("health.suspected_links",
                      static_cast<double>(suspected_links()));
  registry_.set_gauge("health.max_phi", max_phi());
  kernel_.post(params_.phi_interval, [this] { phi_tick(); });
}

void HealthMonitor::window_tick() {
  if (!running_) return;
  const SimTime now = kernel_.now();
  series_.cut(registry_, now);

  for (auto& [name, slo] : slos_) {
    const SloStatus status = slo.tracker.evaluate(series_);
    slo_status_[name] = status;
    const auto& spec = slo.tracker.spec();
    registry_.set_gauge("health.slo." + name + ".p99_us", status.p99_us);
    registry_.set_gauge("health.slo." + name + ".availability", status.availability);
    registry_.set_gauge("health.slo." + name + ".burn_rate", status.burn_rate);
    registry_.set_gauge("health.slo." + name + ".attainment",
                        status.met() ? 1.0 : 0.0);
    if (status.burn_rate >= 1.0) {
      registry_.add("health.slo." + name + ".burn_windows");
    }

    if (!slo.latency_breached && !status.latency_met) {
      slo.latency_breached = true;
      stream_.emit(now, HealthEventKind::kSloLatencyBreach, "slo:" + name, 0, 0,
                   status.p99_us, spec.latency_p99_target_us);
      registry_.add("health.events.slo_latency_breach");
    } else if (slo.latency_breached && status.latency_met) {
      slo.latency_breached = false;
      stream_.emit(now, HealthEventKind::kSloLatencyRecover, "slo:" + name, 0, 0,
                   status.p99_us, spec.latency_p99_target_us);
      registry_.add("health.events.slo_latency_recover");
    }
    if (!slo.availability_breached && !status.availability_met) {
      slo.availability_breached = true;
      stream_.emit(now, HealthEventKind::kSloAvailabilityBreach, "slo:" + name, 0,
                   0, status.availability, spec.availability_target);
      registry_.add("health.events.slo_availability_breach");
    } else if (slo.availability_breached && status.availability_met) {
      slo.availability_breached = false;
      stream_.emit(now, HealthEventKind::kSloAvailabilityRecover, "slo:" + name, 0,
                   0, status.availability, spec.availability_target);
      registry_.add("health.events.slo_availability_recover");
    }
  }

  for (Probe& probe : probes_) {
    const double value = probe.fn();
    registry_.set_gauge("health.probe." + probe.name, value);
    if (!probe.anomalous && value >= probe.threshold) {
      probe.anomalous = true;
      stream_.emit(now, HealthEventKind::kQueueDepthAnomaly, "probe:" + probe.name,
                   0, 0, value, probe.threshold);
      registry_.add("health.events.queue_depth_anomaly");
    } else if (probe.anomalous && value < probe.threshold * 0.5) {
      probe.anomalous = false;
      stream_.emit(now, HealthEventKind::kQueueDepthClear, "probe:" + probe.name, 0,
                   0, value, probe.threshold);
      registry_.add("health.events.queue_depth_clear");
    }
  }

  kernel_.post(params_.window_interval, [this] { window_tick(); });
}

// --- queries --------------------------------------------------------------------

std::size_t HealthMonitor::suspected_replicas() const {
  std::size_t n = 0;
  for (const auto& [pid, replica] : replicas_) {
    if (replica.suspected) ++n;
  }
  return n;
}

std::size_t HealthMonitor::suspected_links() const {
  std::size_t n = 0;
  for (const auto& [key, link] : links_) {
    if (link.suspected) ++n;
  }
  return n;
}

double HealthMonitor::max_phi() const {
  double level = 0.0;
  for (const auto& [key, link] : links_) level = std::max(level, link.last_phi);
  return level;
}

double HealthMonitor::max_burn_rate() const {
  double burn = 0.0;
  for (const auto& [name, status] : slo_status_) {
    burn = std::max(burn, status.burn_rate);
  }
  return burn;
}

bool HealthMonitor::slo_breached() const {
  for (const auto& [name, slo] : slos_) {
    if (slo.latency_breached || slo.availability_breached) return true;
  }
  return false;
}

}  // namespace vdep::monitor::health
