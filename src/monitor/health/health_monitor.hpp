// The live health plane: one harness-side monitor per testbed tying the
// pieces together (paper Sec. 2 item 1 — "monitoring various system
// metrics" — made continuous and in-band).
//
//  - Ingestion: implements gcs::HealthObserver, so attached daemons feed it
//    heartbeat arrivals (one phi-accrual detector per directed daemon link)
//    and local endpoint lifecycle (replica crash/recovery, observed by the
//    co-located daemon the way Spread notices a dead IPC connection).
//  - Cadences: every `phi_interval` it evaluates the link detectors and the
//    per-replica suspicion gauges; every `window_interval` it cuts a
//    telemetry window from the registry and evaluates SLO trackers and
//    queue-depth probes against the windowed series.
//  - Output: suspicion/attainment/burn gauges published back into the same
//    registry, and a deterministic HealthEvent stream for every state
//    transition — the signal source AdaptationManager consumes and the
//    chaos detection oracle audits.
//
// Hot-path discipline: nothing here runs on the request path. The daemon's
// per-heartbeat tap is a map lookup every heartbeat interval (20ms of sim
// time) per link; an unattached daemon pays one nullptr compare.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "gcs/daemon.hpp"
#include "gcs/health_observer.hpp"
#include "monitor/health/events.hpp"
#include "monitor/health/phi_accrual.hpp"
#include "monitor/health/slo.hpp"
#include "monitor/health/window.hpp"
#include "monitor/metrics.hpp"
#include "sim/kernel.hpp"

namespace vdep::monitor::health {

struct HealthParams {
  SimTime window_interval = msec(100);  // telemetry cut + SLO/probe cadence
  SimTime phi_interval = msec(20);      // failure-detector evaluation cadence
  std::size_t windows = 64;             // TimeSeries ring capacity
  PhiAccrualDetector::Params phi{};     // per-link detector parameters
};

class HealthMonitor final : public gcs::HealthObserver {
 public:
  HealthMonitor(sim::Kernel& kernel, MetricsRegistry& registry,
                HealthParams params = {});

  // Subscribes this monitor to a daemon's health taps.
  void attach(gcs::Daemon& daemon) { daemon.set_health_observer(this); }

  // Begins the evaluation cadences; idempotent.
  void start();
  void stop() { running_ = false; }

  // --- declarative configuration ---------------------------------------------
  void add_slo(SloSpec spec);
  // A gauge probe evaluated once per window (e.g. CPU queue depth via
  // sim::Cpu::backlog); crossing `threshold` emits kQueueDepthAnomaly,
  // falling below half of it clears.
  void add_probe(std::string name, double threshold, std::function<double()> fn);

  // --- gcs::HealthObserver ----------------------------------------------------
  void on_heartbeat(NodeId from, NodeId at, SimTime now) override;
  void on_endpoint_registered(ProcessId pid, NodeId host, std::string_view name,
                              SimTime now) override;
  void on_endpoint_crashed(ProcessId pid, NodeId host, std::string_view name,
                           SimTime now) override;

  // --- queries ----------------------------------------------------------------
  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] const HealthEventStream& stream() const { return stream_; }
  [[nodiscard]] HealthEventStream& stream() { return stream_; }
  [[nodiscard]] const std::vector<HealthEvent>& events() const {
    return stream_.events();
  }
  [[nodiscard]] std::size_t suspected_replicas() const;
  [[nodiscard]] std::size_t suspected_links() const;
  // Highest link suspicion as of the last detector evaluation.
  [[nodiscard]] double max_phi() const;
  [[nodiscard]] double max_burn_rate() const;
  [[nodiscard]] bool slo_breached() const;
  [[nodiscard]] const std::map<std::string, SloStatus>& slo_status() const {
    return slo_status_;
  }
  [[nodiscard]] const HealthParams& params() const { return params_; }

 private:
  struct ReplicaState {
    std::string label;
    NodeId host;
    bool suspected = false;
  };
  struct LinkState {
    PhiAccrualDetector detector;
    double last_phi = 0.0;
    bool suspected = false;
  };
  struct SloState {
    SloTracker tracker;
    bool latency_breached = false;
    bool availability_breached = false;
  };
  struct Probe {
    std::string name;
    double threshold;
    std::function<double()> fn;
    bool anomalous = false;
  };

  void phi_tick();
  void window_tick();
  [[nodiscard]] static std::string link_label(NodeId from, NodeId at);

  sim::Kernel& kernel_;
  MetricsRegistry& registry_;
  HealthParams params_;
  TimeSeries series_;
  HealthEventStream stream_;
  bool running_ = false;

  std::map<ProcessId, ReplicaState> replicas_;
  std::map<std::pair<NodeId, NodeId>, LinkState> links_;
  std::map<std::string, SloState> slos_;
  std::map<std::string, SloStatus> slo_status_;
  std::vector<Probe> probes_;
};

}  // namespace vdep::monitor::health
