// Windowed telemetry: a ring of per-window metric deltas cut from a
// MetricsRegistry on a sim-time cadence.
//
// Each cut() diffs the registry against the previous cut — counters and
// observation counts become per-window deltas, gauges are sampled at the
// cut instant, and every distribution contributes a per-window LogHistogram
// delta — so rates ("requests/s over the last 5 windows") and rolling
// percentiles ("p99 latency over the last N windows") are queryable online
// while the simulation runs, with no sample storage and full determinism:
// the same seed produces byte-identical window contents.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "monitor/metrics.hpp"
#include "util/time.hpp"

namespace vdep::monitor::health {

// One telemetry window: everything that happened between two cuts.
struct WindowSnapshot {
  std::uint64_t index = 0;  // 0-based, monotone even after the ring wraps
  SimTime start = kTimeZero;
  SimTime end = kTimeZero;
  // Counters / observation counts are per-window deltas; gauges carry the
  // value sampled at `end` (MetricsSnapshot::diff semantics).
  MetricsSnapshot deltas;
  // Per-distribution histogram deltas: only the samples of this window.
  std::map<std::string, LogHistogram> histograms;

  [[nodiscard]] SimTime duration() const { return end - start; }
};

// Bounded ring of the most recent windows. Queries aggregate over the last
// `n` windows (clamped to what the ring still holds).
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 64);

  // Closes the current window at `now` and opens the next one. Returns the
  // freshly cut window.
  const WindowSnapshot& cut(const MetricsRegistry& registry, SimTime now);

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t windows_cut() const { return next_index_; }
  // back = 0 is the newest window.
  [[nodiscard]] const WindowSnapshot& window(std::size_t back) const;

  // Sum of a counter's per-window deltas over the last n windows.
  [[nodiscard]] std::uint64_t total(const std::string& counter, std::size_t n) const;
  // Events/second for a counter over the span of the last n windows.
  [[nodiscard]] double rate(const std::string& counter, std::size_t n) const;
  // Observation count of a distribution over the last n windows.
  [[nodiscard]] std::uint64_t observations(const std::string& dist, std::size_t n) const;
  // Rolling percentile: merges the last n windows' histogram deltas.
  // nullopt when the distribution has no samples in those windows.
  [[nodiscard]] std::optional<double> percentile(const std::string& dist, double p,
                                                 std::size_t n) const;

 private:
  std::size_t capacity_;
  std::deque<WindowSnapshot> ring_;  // oldest first
  // Full-registry state at the last cut, diffed against on the next one.
  MetricsSnapshot last_;
  std::map<std::string, LogHistogram> last_histograms_;
  std::uint64_t next_index_ = 0;
  SimTime last_cut_ = kTimeZero;
};

}  // namespace vdep::monitor::health
