// Declarative service-level objectives evaluated against windowed telemetry.
//
// An SloSpec names the metrics that define a service's health — a latency
// distribution, a request counter and (optionally) a failure counter — plus
// the targets: a p99 latency bound and an availability floor, both judged
// over the last `window` telemetry windows. The tracker is pure: it reads
// the TimeSeries and returns an SloStatus; the HealthMonitor turns status
// transitions into breach/recover events and publishes attainment gauges
// and burn-rate counters.
#pragma once

#include <string>

#include "monitor/health/window.hpp"

namespace vdep::monitor::health {

struct SloSpec {
  std::string name;             // "service", "shard.3", ...
  std::string latency_metric;   // distribution of per-request latencies (us)
  std::string request_counter;  // completed requests
  std::string failure_counter;  // failed requests ("" = none recorded)
  double latency_p99_target_us = 50'000.0;
  double availability_target = 0.99;  // must be < 1.0
  std::size_t window = 10;            // telemetry windows per evaluation
  // Below this many requests in the window the objective is vacuously met
  // (an idle service is not in breach).
  std::uint64_t min_requests = 1;
};

struct SloStatus {
  double p99_us = 0.0;
  double availability = 1.0;
  // Error-budget burn rate: (1 - availability) / (1 - target). 1.0 means
  // failures arrive exactly at the rate the objective tolerates; above that
  // the budget is burning down.
  double burn_rate = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  bool latency_met = true;
  bool availability_met = true;

  [[nodiscard]] bool met() const { return latency_met && availability_met; }
};

class SloTracker {
 public:
  explicit SloTracker(SloSpec spec);

  [[nodiscard]] const SloSpec& spec() const { return spec_; }
  [[nodiscard]] SloStatus evaluate(const TimeSeries& series) const;

 private:
  SloSpec spec_;
};

}  // namespace vdep::monitor::health
