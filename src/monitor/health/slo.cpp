#include "monitor/health/slo.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::monitor::health {

SloTracker::SloTracker(SloSpec spec) : spec_(std::move(spec)) {
  VDEP_ASSERT(!spec_.name.empty());
  VDEP_ASSERT(!spec_.latency_metric.empty());
  VDEP_ASSERT(!spec_.request_counter.empty());
  VDEP_ASSERT(spec_.availability_target < 1.0);
  VDEP_ASSERT(spec_.window > 0);
}

SloStatus SloTracker::evaluate(const TimeSeries& series) const {
  SloStatus status;
  status.requests = series.total(spec_.request_counter, spec_.window);
  if (!spec_.failure_counter.empty()) {
    status.failures = series.total(spec_.failure_counter, spec_.window);
  }
  if (status.requests < spec_.min_requests) return status;  // vacuously met

  if (auto p99 = series.percentile(spec_.latency_metric, 99.0, spec_.window)) {
    status.p99_us = *p99;
    status.latency_met = status.p99_us <= spec_.latency_p99_target_us;
  }
  // Requests that failed outright count against availability; latency does
  // not (it has its own objective).
  const auto total = static_cast<double>(status.requests + status.failures);
  status.availability =
      1.0 - static_cast<double>(status.failures) / std::max(1.0, total);
  status.availability_met = status.availability >= spec_.availability_target;
  status.burn_rate =
      std::max(0.0, 1.0 - status.availability) / (1.0 - spec_.availability_target);
  return status;
}

}  // namespace vdep::monitor::health
