#include "monitor/health/window.hpp"

#include "util/assert.hpp"

namespace vdep::monitor::health {

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(capacity) {
  VDEP_ASSERT(capacity_ > 0);
}

const WindowSnapshot& TimeSeries::cut(const MetricsRegistry& registry, SimTime now) {
  WindowSnapshot w;
  w.index = next_index_++;
  w.start = last_cut_;
  w.end = now;

  const MetricsSnapshot current = registry.snapshot();
  w.deltas = current.diff(last_);
  for (const auto& [name, dist] : registry.distributions()) {
    auto prev = last_histograms_.find(name);
    w.histograms.emplace(name, prev == last_histograms_.end()
                                   ? dist.histogram
                                   : dist.histogram.delta_since(prev->second));
    // Keep a full copy for the next diff (distributions are never removed
    // from a registry, so the map only grows with new names).
    last_histograms_[name] = dist.histogram;
  }
  last_ = current;
  last_cut_ = now;

  ring_.push_back(std::move(w));
  if (ring_.size() > capacity_) ring_.pop_front();
  return ring_.back();
}

const WindowSnapshot& TimeSeries::window(std::size_t back) const {
  VDEP_ASSERT(back < ring_.size());
  return ring_[ring_.size() - 1 - back];
}

std::uint64_t TimeSeries::total(const std::string& counter, std::size_t n) const {
  std::uint64_t sum = 0;
  const std::size_t take = std::min(n, ring_.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto& counters = window(i).deltas.counters;
    auto it = counters.find(counter);
    if (it != counters.end()) sum += it->second;
  }
  return sum;
}

double TimeSeries::rate(const std::string& counter, std::size_t n) const {
  const std::size_t take = std::min(n, ring_.size());
  if (take == 0) return 0.0;
  const SimTime span = window(0).end - window(take - 1).start;
  if (span <= kTimeZero) return 0.0;
  return static_cast<double>(total(counter, take)) / to_sec(span);
}

std::uint64_t TimeSeries::observations(const std::string& dist, std::size_t n) const {
  std::uint64_t sum = 0;
  const std::size_t take = std::min(n, ring_.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto& obs = window(i).deltas.observations;
    auto it = obs.find(dist);
    if (it != obs.end()) sum += it->second;
  }
  return sum;
}

std::optional<double> TimeSeries::percentile(const std::string& dist, double p,
                                             std::size_t n) const {
  LogHistogram merged;
  const std::size_t take = std::min(n, ring_.size());
  for (std::size_t i = 0; i < take; ++i) {
    auto it = window(i).histograms.find(dist);
    if (it != window(i).histograms.end()) merged.merge(it->second);
  }
  if (merged.count() == 0) return std::nullopt;
  return merged.percentile(p);
}

}  // namespace vdep::monitor::health
