#include "monitor/bandwidth_meter.hpp"

namespace vdep::monitor {

BandwidthMeter::BandwidthMeter(sim::Kernel& kernel, const net::Network& network,
                               SimTime interval)
    : kernel_(kernel), network_(network), interval_(interval) {}

void BandwidthMeter::start() {
  if (running_) return;
  running_ = true;
  start_bytes_ = last_bytes_ = network_.totals().bytes;
  start_time_ = kernel_.now();
  tick();
}

void BandwidthMeter::stop() {
  running_ = false;
  timer_.cancel();
}

void BandwidthMeter::tick() {
  if (!running_) return;
  timer_ = kernel_.post(interval_, [this] {
    const std::uint64_t bytes = network_.totals().bytes;
    current_rate_ =
        static_cast<double>(bytes - last_bytes_) / 1e6 / to_sec(interval_);
    last_bytes_ = bytes;
    series_.record(kernel_.now(), current_rate_);
    tick();
  });
}

double BandwidthMeter::average_rate() const {
  const SimTime elapsed = kernel_.now() - start_time_;
  if (elapsed <= kTimeZero) return 0.0;
  return static_cast<double>(network_.totals().bytes - start_bytes_) / 1e6 /
         to_sec(elapsed);
}

}  // namespace vdep::monitor
