#include "monitor/rate_estimator.hpp"

#include "util/assert.hpp"

namespace vdep::monitor {

RateEstimator::RateEstimator(SimTime window, double ewma_alpha)
    : window_(window), smoothed_(ewma_alpha) {}

void RateEstimator::record(SimTime now) { window_.record(now); }

double RateEstimator::rate(SimTime now) {
  smoothed_.add(window_.rate(now));
  return smoothed_.value();
}

ThresholdWatcher::ThresholdWatcher(double low, double high, SimTime min_dwell)
    : low_(low), high_(high), min_dwell_(min_dwell) {
  VDEP_ASSERT_MSG(low < high, "hysteresis needs low < high");
}

std::optional<ThresholdWatcher::State> ThresholdWatcher::update(SimTime now,
                                                                double value) {
  if (transitioned_once_ && now - last_transition_ < min_dwell_) return std::nullopt;

  if (state_ == State::kLow && value > high_) {
    state_ = State::kHigh;
  } else if (state_ == State::kHigh && value < low_) {
    state_ = State::kLow;
  } else {
    return std::nullopt;
  }
  last_transition_ = now;
  transitioned_once_ = true;
  return state_;
}

}  // namespace vdep::monitor
