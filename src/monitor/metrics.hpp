// Named metric registry — the "monitoring various system metrics (e.g.,
// latency, jitter, CPU load)" element of the versatile-dependability
// framework (paper Sec. 2, item 1).
//
// Components publish counters and distributions under stable names; the
// adaptation layer and the experiment harness read them without knowing the
// producers. Everything is simulation-deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/stats.hpp"

namespace vdep::monitor {

class MetricsRegistry {
 public:
  // Monotone counters.
  void add(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  // Last-value gauges.
  void set_gauge(const std::string& name, double value);
  [[nodiscard]] std::optional<double> gauge(const std::string& name) const;

  // Sample distributions (latency etc.).
  void observe(const std::string& name, double value);
  [[nodiscard]] const RunningStats* distribution(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const { return gauges_; }

  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, RunningStats> distributions_;
};

}  // namespace vdep::monitor
