// Named metric registry — the "monitoring various system metrics (e.g.,
// latency, jitter, CPU load)" element of the versatile-dependability
// framework (paper Sec. 2, item 1).
//
// Components publish counters, gauges and distributions under stable names;
// the adaptation layer and the experiment harness read them without knowing
// the producers. Each distribution keeps running moments (mean/stddev) plus
// a fixed-bucket log-scale histogram, so percentile queries (p50/p95/p99)
// cost O(buckets) and no sample storage. Everything is
// simulation-deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/stats.hpp"

namespace vdep::monitor {

// A point-in-time copy of the registry's scalar state. Diffing two snapshots
// gives per-phase deltas (e.g. "requests executed during the failover").
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::uint64_t> observations;  // per-distribution count

  // Deltas since `earlier`: counters and observation counts subtract
  // (missing-in-earlier reads as 0); gauges keep this snapshot's value.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;
};

class MetricsRegistry {
 public:
  struct Distribution {
    RunningStats stats;
    LogHistogram histogram;
  };

  // Monotone counters.
  void add(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  // Last-value gauges.
  void set_gauge(const std::string& name, double value);
  [[nodiscard]] std::optional<double> gauge(const std::string& name) const;

  // Sample distributions (latency etc.).
  void observe(const std::string& name, double value);
  [[nodiscard]] const RunningStats* distribution(const std::string& name) const;
  [[nodiscard]] const LogHistogram* histogram(const std::string& name) const;
  // Percentile query against the named distribution's histogram; nullopt if
  // the name is unknown.
  [[nodiscard]] std::optional<double> percentile(const std::string& name,
                                                 double p) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const { return gauges_; }
  [[nodiscard]] const std::map<std::string, Distribution>& distributions() const {
    return distributions_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Distribution> distributions_;
};

}  // namespace vdep::monitor
