#include "monitor/metrics.hpp"

namespace vdep::monitor {

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

std::optional<double> MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  distributions_[name].add(value);
}

const RunningStats* MetricsRegistry::distribution(const std::string& name) const {
  auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second;
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

}  // namespace vdep::monitor
