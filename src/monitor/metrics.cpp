#include "monitor/metrics.hpp"

namespace vdep::monitor {

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    const std::uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    out.counters[name] = value >= base ? value - base : 0;
  }
  out.gauges = gauges;
  for (const auto& [name, value] : observations) {
    auto it = earlier.observations.find(name);
    const std::uint64_t base = it == earlier.observations.end() ? 0 : it->second;
    out.observations[name] = value >= base ? value - base : 0;
  }
  return out;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

std::optional<double> MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  Distribution& d = distributions_[name];
  d.stats.add(value);
  d.histogram.add(value);
}

const RunningStats* MetricsRegistry::distribution(const std::string& name) const {
  auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second.stats;
}

const LogHistogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = distributions_.find(name);
  return it == distributions_.end() ? nullptr : &it->second.histogram;
}

std::optional<double> MetricsRegistry::percentile(const std::string& name,
                                                  double p) const {
  const LogHistogram* h = histogram(name);
  if (h == nullptr) return std::nullopt;
  return h->percentile(p);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, dist] : distributions_) {
    snap.observations[name] = dist.stats.count();
  }
  return snap;
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  distributions_.clear();
}

}  // namespace vdep::monitor
