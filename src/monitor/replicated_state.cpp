#include "monitor/replicated_state.hpp"

#include <algorithm>

namespace vdep::monitor {

Bytes StateEntry::encode() const {
  ByteWriter w;
  w.u64(reporter.value());
  w.i64(reported_at.count());
  w.f64(cpu_load);
  w.f64(request_rate);
  w.u32(static_cast<std::uint32_t>(extra.size()));
  for (const auto& [key, value] : extra) {
    w.str(key);
    w.f64(value);
  }
  return std::move(w).take();
}

StateEntry StateEntry::decode(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  StateEntry e;
  e.reporter = ProcessId{r.u64()};
  e.reported_at = SimTime{r.i64()};
  e.cpu_load = r.f64();
  e.request_rate = r.f64();
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    e.extra[key] = r.f64();
  }
  return e;
}

ReplicatedStateObject::ReplicatedStateObject(gcs::Daemon& daemon, sim::Process& process,
                                             GroupId monitor_group, CollectFn collect,
                                             SimTime publish_interval)
    : daemon_(daemon),
      process_(process),
      group_(monitor_group),
      collect_(std::move(collect)),
      interval_(publish_interval) {}

void ReplicatedStateObject::start() {
  endpoint_ = std::make_unique<gcs::Endpoint>(daemon_, process_);
  endpoint_->set_message_handler([this](const gcs::GroupMessage& msg) {
    // A member's last update can be ordered after its crash view (open
    // groups deliver non-member sends); ignore ghosts.
    if (view_ && !view_->contains(msg.sender)) return;
    StateEntry entry = StateEntry::decode(msg.payload);
    entries_[entry.reporter] = std::move(entry);
    version_.tick(msg.sender);
    ++updates_;
    if (on_update_) on_update_();
  });
  endpoint_->set_view_handler([this](const gcs::View& view) {
    view_ = view;
    // Drop state of departed members so decisions don't chase ghosts.
    std::erase_if(entries_, [&view](const auto& kv) { return !view.contains(kv.first); });
  });
  endpoint_->join(group_);
  publish();
}

void ReplicatedStateObject::publish() {
  process_.post(interval_, [this] {
    StateEntry entry = collect_();
    entry.reporter = process_.id();
    entry.reported_at = process_.now();
    endpoint_->multicast(group_, gcs::ServiceType::kSafe, entry.encode());
    publish();
  });
}

double ReplicatedStateObject::aggregate_request_rate() const {
  double total = 0.0;
  for (const auto& [pid, e] : entries_) total += e.request_rate;
  return entries_.empty() ? 0.0 : total / static_cast<double>(entries_.size());
}

double ReplicatedStateObject::max_cpu_load() const {
  double m = 0.0;
  for (const auto& [pid, e] : entries_) m = std::max(m, e.cpu_load);
  return m;
}

}  // namespace vdep::monitor
