// Request-rate estimation and hysteresis thresholding.
//
// The Fig. 6 adaptation policy switches replication style "whenever the
// request rate increases above a certain threshold". RateEstimator smooths a
// sliding-window rate; ThresholdWatcher turns it into stable high/low state
// transitions with hysteresis and a minimum dwell time, so measurement
// jitter near the threshold cannot make the system thrash between styles.
#pragma once

#include <functional>
#include <optional>

#include "util/stats.hpp"

namespace vdep::monitor {

class RateEstimator {
 public:
  explicit RateEstimator(SimTime window = msec(500), double ewma_alpha = 0.3);

  void record(SimTime now);
  // Smoothed events/second.
  [[nodiscard]] double rate(SimTime now);

 private:
  SlidingRate window_;
  Ewma smoothed_;
};

class ThresholdWatcher {
 public:
  enum class State { kLow, kHigh };

  // Rising edge at `high`, falling at `low` (low < high), transitions at
  // least `min_dwell` apart.
  ThresholdWatcher(double low, double high, SimTime min_dwell);

  // Feeds a sample; returns the new state if a transition fired.
  std::optional<State> update(SimTime now, double value);

  [[nodiscard]] State state() const { return state_; }

 private:
  double low_;
  double high_;
  SimTime min_dwell_;
  State state_ = State::kLow;
  SimTime last_transition_ = kTimeZero;
  bool transitioned_once_ = false;
};

}  // namespace vdep::monitor
