#include "obs/metrics_export.hpp"

#include <cstdio>

namespace vdep::obs {

namespace {

void append_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

void append_key(std::string& out, const std::string& name) {
  out += "    \"";
  out += name;  // metric names are identifier-like; no escaping needed
  out += "\": ";
}

}  // namespace

std::string to_metrics_json(const monitor::MetricsRegistry& registry) {
  std::string out = "{\n";

  out += "  \"counters\": {\n";
  bool first = true;
  for (const auto& [name, value] : registry.counters()) {
    if (!first) out += ",\n";
    first = false;
    append_key(out, name);
    out += std::to_string(value);
  }
  out += "\n  },\n";

  out += "  \"gauges\": {\n";
  first = true;
  for (const auto& [name, value] : registry.gauges()) {
    if (!first) out += ",\n";
    first = false;
    append_key(out, name);
    append_number(out, value);
  }
  out += "\n  },\n";

  out += "  \"distributions\": {\n";
  first = true;
  for (const auto& [name, dist] : registry.distributions()) {
    if (!first) out += ",\n";
    first = false;
    append_key(out, name);
    out += "{\"count\": " + std::to_string(dist.stats.count());
    out += ", \"mean\": ";
    append_number(out, dist.stats.mean());
    out += ", \"p50\": ";
    append_number(out, dist.histogram.percentile(50.0));
    out += ", \"p95\": ";
    append_number(out, dist.histogram.percentile(95.0));
    out += ", \"p99\": ";
    append_number(out, dist.histogram.percentile(99.0));
    out += ", \"max\": ";
    append_number(out, dist.stats.max());
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace vdep::obs
