// Periodic sampling of the network byte counters into a rate time-series —
// the resource axis of the dependability design space (Fig. 7(b), Fig. 8).
#pragma once

#include "net/network.hpp"
#include "sim/trace.hpp"

namespace vdep::monitor {

class BandwidthMeter {
 public:
  // Samples network totals every `interval` once start() is called.
  BandwidthMeter(sim::Kernel& kernel, const net::Network& network,
                 SimTime interval = msec(100));

  void start();
  void stop();

  // MB/s over the last completed interval.
  [[nodiscard]] double current_rate() const { return current_rate_; }
  // Average MB/s since start().
  [[nodiscard]] double average_rate() const;
  [[nodiscard]] const sim::TimeSeries& series() const { return series_; }

 private:
  void tick();

  sim::Kernel& kernel_;
  const net::Network& network_;
  SimTime interval_;
  sim::EventHandle timer_;
  std::uint64_t last_bytes_ = 0;
  std::uint64_t start_bytes_ = 0;
  SimTime start_time_ = kTimeZero;
  double current_rate_ = 0.0;
  bool running_ = false;
  sim::TimeSeries series_{"bandwidth_mbps"};
};

}  // namespace vdep::monitor
