// The identically-replicated system-state object (paper Sec. 3.1,
// "Replicated State").
//
// Every participating replicator instance periodically publishes its local
// observations (CPU load, request rate, arbitrary named metrics) into a
// dedicated monitor group using SAFE delivery. Because all members receive
// the same updates in the same total order, each holds an identical map of
// the whole system's condition — so adaptation decisions computed from it by
// a deterministic algorithm agree everywhere without extra rounds. This is
// MEAD's decentralized resource-monitoring infrastructure in miniature.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "gcs/endpoint.hpp"
#include "gcs/vector_clock.hpp"

namespace vdep::monitor {

struct StateEntry {
  ProcessId reporter;
  SimTime reported_at = kTimeZero;
  double cpu_load = 0.0;
  double request_rate = 0.0;
  std::map<std::string, double> extra;

  [[nodiscard]] Bytes encode() const;
  static StateEntry decode(std::span<const std::uint8_t> raw);
};

class ReplicatedStateObject {
 public:
  // Collect callback gathers this process's local observations at publish
  // time. The monitor group is distinct from the application group.
  using CollectFn = std::function<StateEntry()>;

  ReplicatedStateObject(gcs::Daemon& daemon, sim::Process& process, GroupId monitor_group,
                        CollectFn collect, SimTime publish_interval = msec(100));

  void start();

  // The agreed view of the whole system (identical at every member between
  // the same two deliveries).
  [[nodiscard]] const std::map<ProcessId, StateEntry>& entries() const {
    return entries_;
  }
  // Deterministic aggregates over the agreed state.
  [[nodiscard]] double aggregate_request_rate() const;
  [[nodiscard]] double max_cpu_load() const;
  // Version clock: ticks per accepted update; equal clocks imply equal state.
  [[nodiscard]] const gcs::VectorClock& version() const { return version_; }

  // Fires after each applied update (adaptation managers hook here).
  void set_on_update(std::function<void()> fn) { on_update_ = std::move(fn); }

  [[nodiscard]] std::uint64_t updates_applied() const { return updates_; }

 private:
  void publish();

  gcs::Daemon& daemon_;
  sim::Process& process_;
  GroupId group_;
  CollectFn collect_;
  SimTime interval_;
  std::unique_ptr<gcs::Endpoint> endpoint_;
  std::optional<gcs::View> view_;
  std::map<ProcessId, StateEntry> entries_;
  gcs::VectorClock version_;
  std::uint64_t updates_ = 0;
  std::function<void()> on_update_;
};

}  // namespace vdep::monitor
