// Servants and the (portable-)object-adapter.
//
// A Servant implements operations for one CORBA-style object; the Poa maps
// object keys to servants within a server process. Invocation results carry
// the CPU time the operation consumes, which the server ORB schedules on the
// host CPU — this is how "application processing time" (15 us in the paper's
// micro-benchmark, much larger for real applications) enters the model.
#pragma once

#include <map>
#include <string>

#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace vdep::orb {

class Servant {
 public:
  virtual ~Servant() = default;

  struct Result {
    bool ok = true;      // false -> SYSTEM_EXCEPTION reply
    Bytes output;        // CDR-encoded out-args
    SimTime cpu_time = kTimeZero;  // simulated execution cost
  };

  // Must be deterministic: replicas execute the same operations in the same
  // order and their outputs are compared by voting clients.
  virtual Result invoke(const std::string& operation, const Bytes& args) = 0;
};

class Poa {
 public:
  // Servants are owned by the application; the POA only routes.
  void activate(ObjectId key, Servant& servant);
  void deactivate(ObjectId key);

  [[nodiscard]] Servant* find(ObjectId key) const;
  [[nodiscard]] std::size_t active_count() const { return servants_.size(); }

 private:
  std::map<ObjectId, Servant*> servants_;
};

}  // namespace vdep::orb
