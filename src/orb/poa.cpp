#include "orb/poa.hpp"

#include "util/assert.hpp"

namespace vdep::orb {

void Poa::activate(ObjectId key, Servant& servant) {
  VDEP_ASSERT_MSG(!servants_.contains(key), "object key already active");
  servants_[key] = &servant;
}

void Poa::deactivate(ObjectId key) { servants_.erase(key); }

Servant* Poa::find(ObjectId key) const {
  auto it = servants_.find(key);
  return it == servants_.end() ? nullptr : it->second;
}

}  // namespace vdep::orb
