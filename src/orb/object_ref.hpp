// Object references (IOR-style), with both a plain IIOP-like profile and a
// replicated-group profile (the FT-CORBA IOGR idea): a reference can name a
// concrete endpoint (host + port), a replica group, or both. The client-side
// infrastructure picks the profile that matches its configuration — direct
// TCP for the baseline, group multicast when the replicator is interposed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/ids.hpp"

namespace vdep::orb {

struct DirectProfile {
  NodeId host;
  std::uint16_t port = 0;

  friend bool operator==(const DirectProfile&, const DirectProfile&) = default;
};

struct GroupProfile {
  GroupId group;

  friend bool operator==(const GroupProfile&, const GroupProfile&) = default;
};

struct ObjectRef {
  ObjectId object_key;
  std::optional<DirectProfile> direct;
  std::optional<GroupProfile> group;

  [[nodiscard]] bool replicated() const { return group.has_value(); }
  [[nodiscard]] std::string str() const {
    std::string s = "objref(key=" + object_key.str();
    if (direct) s += ", host=" + direct->host.str() + ":" + std::to_string(direct->port);
    if (group) s += ", group=" + group->group.str();
    return s + ")";
  }

  friend bool operator==(const ObjectRef&, const ObjectRef&) = default;
};

}  // namespace vdep::orb
