#include "orb/cdr.hpp"

#include <cstring>

namespace vdep::orb {

// --- writer ------------------------------------------------------------------

void CdrWriter::align(std::size_t n) {
  while (buf_.size() % n != 0) buf_.push_back(0);
}

template <typename T>
void CdrWriter::raw(T v, std::size_t alignment) {
  align(alignment);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void CdrWriter::octet(std::uint8_t v) { buf_.push_back(v); }
void CdrWriter::boolean(bool v) { buf_.push_back(v ? 1 : 0); }
void CdrWriter::ushort(std::uint16_t v) { raw(v, 2); }
void CdrWriter::ulong(std::uint32_t v) { raw(v, 4); }
void CdrWriter::ulonglong(std::uint64_t v) { raw(v, 8); }
void CdrWriter::longlong(std::int64_t v) { raw(static_cast<std::uint64_t>(v), 8); }

void CdrWriter::cdr_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  raw(bits, 8);
}

void CdrWriter::string(const std::string& v) {
  ulong(static_cast<std::uint32_t>(v.size() + 1));
  buf_.insert(buf_.end(), v.begin(), v.end());
  buf_.push_back(0);
}

void CdrWriter::octets(const Bytes& v) {
  ulong(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

// --- reader ------------------------------------------------------------------

void CdrReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) throw DecodeError("CDR underrun");
}

void CdrReader::align(std::size_t n) {
  while (pos_ % n != 0) {
    need(1);
    ++pos_;
  }
}

template <typename T>
T CdrReader::raw(std::size_t alignment) {
  align(alignment);
  need(sizeof(T));
  T v = 0;
  if (little_) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
  } else {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>((v << 8) | data_[pos_ + i]);
    }
  }
  pos_ += sizeof(T);
  return v;
}

std::uint8_t CdrReader::octet() {
  need(1);
  return data_[pos_++];
}

bool CdrReader::boolean() {
  const auto v = octet();
  if (v > 1) throw DecodeError("CDR boolean out of range");
  return v == 1;
}

std::uint16_t CdrReader::ushort() { return raw<std::uint16_t>(2); }
std::uint32_t CdrReader::ulong() { return raw<std::uint32_t>(4); }
std::uint64_t CdrReader::ulonglong() { return raw<std::uint64_t>(8); }
std::int64_t CdrReader::longlong() { return static_cast<std::int64_t>(raw<std::uint64_t>(8)); }

double CdrReader::cdr_double() {
  const std::uint64_t bits = raw<std::uint64_t>(8);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string CdrReader::string() {
  const std::uint32_t len = ulong();
  if (len == 0) throw DecodeError("CDR string must include its NUL");
  need(len);
  if (data_[pos_ + len - 1] != 0) throw DecodeError("CDR string missing NUL");
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len - 1);
  pos_ += len;
  return out;
}

Bytes CdrReader::octets() {
  const std::uint32_t len = ulong();
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace vdep::orb
