// GIOP-style inter-ORB messages.
//
// A faithful-in-shape subset of GIOP 1.2: magic "GIOP", version, byte-order
// flag, message type, and Request/Reply bodies with request ids, object
// keys, operation names and service contexts. The replicator understands and
// rewrites these messages — in particular it injects the FT_REQUEST service
// context (client identity + retention id) that makes requests idempotent
// across failover, exactly as FT-CORBA prescribes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_context.hpp"
#include "orb/cdr.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace vdep::orb {

enum class GiopMsgType : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kCancelRequest = 2,
  kCloseConnection = 5,
  kMessageError = 6,
};

enum class ReplyStatus : std::uint32_t {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
  kLocationForward = 3,
};

struct ServiceContext {
  std::uint32_t context_id = 0;
  Bytes data;

  friend bool operator==(const ServiceContext&, const ServiceContext&) = default;
};

// Service-context ids (FT-CORBA uses 0x464f_0000 "FT\0\0" ranges; we keep
// recognizable tags).
inline constexpr std::uint32_t kFtRequestContextId = 0x46540001;   // "FT"+1
inline constexpr std::uint32_t kFtGroupVersionContextId = 0x46540002;
inline constexpr std::uint32_t kTraceContextId = 0x46540003;

// Trace-context propagation: the caller's {trace, span} ride the request as a
// service context so server-side spans parent under the client span. Always
// injected on the replicated path (zeros when tracing is off) so message
// sizes — and therefore simulated timing — do not depend on whether the
// tracer is enabled.
[[nodiscard]] ServiceContext trace_to_context(const obs::TraceContext& trace);
[[nodiscard]] obs::TraceContext trace_from_contexts(
    const std::vector<ServiceContext>& contexts);

// FT_REQUEST service context payload: identifies the logical request across
// retransmissions so server replicas can suppress duplicates.
struct FtRequestContext {
  ProcessId client;
  std::uint64_t retention_id = 0;  // == client ORB request id
  NodeId client_daemon;            // where replies should be unicast
  SimTime expiration = kTimeZero;  // paper/FT-CORBA: request expiration time

  [[nodiscard]] ServiceContext to_context() const;
  static std::optional<FtRequestContext> from_contexts(
      const std::vector<ServiceContext>& contexts);
};

struct RequestMessage {
  std::uint32_t request_id = 0;
  bool response_expected = true;
  ObjectId object_key;
  std::string operation;
  std::vector<ServiceContext> service_contexts;
  Bytes body;  // CDR-encoded in-args

  [[nodiscard]] Bytes encode() const;
};

struct ReplyMessage {
  std::uint32_t request_id = 0;
  ReplyStatus status = ReplyStatus::kNoException;
  std::vector<ServiceContext> service_contexts;
  Bytes body;  // CDR-encoded result / exception

  [[nodiscard]] Bytes encode() const;
};

struct CancelRequestMessage {
  std::uint32_t request_id = 0;

  [[nodiscard]] Bytes encode() const;
};

// Decoded GIOP message (tagged).
struct GiopMessage {
  GiopMsgType type = GiopMsgType::kMessageError;
  std::optional<RequestMessage> request;       // kRequest
  std::optional<ReplyMessage> reply;           // kReply
  std::optional<CancelRequestMessage> cancel;  // kCancelRequest
};

[[nodiscard]] GiopMessage decode_giop(std::span<const std::uint8_t> raw);

// Convenience peeks that avoid a full decode on hot paths.
[[nodiscard]] GiopMsgType peek_giop_type(std::span<const std::uint8_t> raw);

}  // namespace vdep::orb
