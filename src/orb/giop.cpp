#include "orb/giop.hpp"

#include "util/assert.hpp"

namespace vdep::orb {

namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'I', 'O', 'P'};
constexpr std::uint8_t kVersionMajor = 1;
constexpr std::uint8_t kVersionMinor = 2;
constexpr std::uint8_t kFlagsLittleEndian = 0x01;

void write_header(CdrWriter& w, GiopMsgType type) {
  for (std::uint8_t m : kMagic) w.octet(m);
  w.octet(kVersionMajor);
  w.octet(kVersionMinor);
  w.octet(kFlagsLittleEndian);
  w.octet(static_cast<std::uint8_t>(type));
  w.ulong(0);  // message size back-patched by finish_header
}

void finish_header(Bytes& buf) {
  // Message size excludes the 12-byte GIOP header.
  const auto size = static_cast<std::uint32_t>(buf.size() - 12);
  for (std::size_t i = 0; i < 4; ++i) {
    buf[8 + i] = static_cast<std::uint8_t>(size >> (8 * i));
  }
}

void write_contexts(CdrWriter& w, const std::vector<ServiceContext>& contexts) {
  w.ulong(static_cast<std::uint32_t>(contexts.size()));
  for (const auto& sc : contexts) {
    w.ulong(sc.context_id);
    w.octets(sc.data);
  }
}

std::vector<ServiceContext> read_contexts(CdrReader& r) {
  const std::uint32_t n = r.ulong();
  if (n > 64) throw DecodeError("unreasonable service context count");
  std::vector<ServiceContext> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ServiceContext sc;
    sc.context_id = r.ulong();
    sc.data = r.octets();
    out.push_back(std::move(sc));
  }
  return out;
}

struct Header {
  GiopMsgType type;
  bool little_endian;
};

Header read_header(CdrReader& r) {
  for (std::uint8_t m : kMagic) {
    if (r.octet() != m) throw DecodeError("bad GIOP magic");
  }
  const auto major = r.octet();
  const auto minor = r.octet();
  if (major != kVersionMajor || minor > kVersionMinor) {
    throw DecodeError("unsupported GIOP version");
  }
  const auto flags = r.octet();
  const auto type = r.octet();
  if (type > static_cast<std::uint8_t>(GiopMsgType::kMessageError)) {
    throw DecodeError("bad GIOP message type");
  }
  (void)r.ulong();  // size; our transport preserves message boundaries
  return {static_cast<GiopMsgType>(type), (flags & kFlagsLittleEndian) != 0};
}

}  // namespace

ServiceContext FtRequestContext::to_context() const {
  CdrWriter w;
  w.ulonglong(client.value());
  w.ulonglong(retention_id);
  w.ulonglong(client_daemon.value());
  w.longlong(expiration.count());
  return ServiceContext{kFtRequestContextId, std::move(w).take()};
}

std::optional<FtRequestContext> FtRequestContext::from_contexts(
    const std::vector<ServiceContext>& contexts) {
  for (const auto& sc : contexts) {
    if (sc.context_id != kFtRequestContextId) continue;
    CdrReader r(sc.data);
    FtRequestContext ctx;
    ctx.client = ProcessId{r.ulonglong()};
    ctx.retention_id = r.ulonglong();
    ctx.client_daemon = NodeId{r.ulonglong()};
    ctx.expiration = SimTime{r.longlong()};
    return ctx;
  }
  return std::nullopt;
}

ServiceContext trace_to_context(const obs::TraceContext& trace) {
  CdrWriter w;
  w.ulonglong(trace.trace);
  w.ulonglong(trace.span);
  return ServiceContext{kTraceContextId, std::move(w).take()};
}

obs::TraceContext trace_from_contexts(
    const std::vector<ServiceContext>& contexts) {
  for (const auto& sc : contexts) {
    if (sc.context_id != kTraceContextId) continue;
    CdrReader r(sc.data);
    obs::TraceContext ctx;
    ctx.trace = r.ulonglong();
    ctx.span = r.ulonglong();
    return ctx;
  }
  return {};
}

Bytes RequestMessage::encode() const {
  CdrWriter w(body.size() + 96);
  write_header(w, GiopMsgType::kRequest);
  w.ulong(request_id);
  w.octet(response_expected ? 0x03 : 0x00);  // GIOP 1.2 response_flags
  w.ulonglong(object_key.value());
  w.string(operation);
  write_contexts(w, service_contexts);
  w.align(8);  // GIOP 1.2 aligns the body
  Bytes out = std::move(w).take();
  out.insert(out.end(), body.begin(), body.end());
  finish_header(out);
  return out;
}

Bytes ReplyMessage::encode() const {
  CdrWriter w(body.size() + 64);
  write_header(w, GiopMsgType::kReply);
  w.ulong(request_id);
  w.ulong(static_cast<std::uint32_t>(status));
  write_contexts(w, service_contexts);
  w.align(8);
  Bytes out = std::move(w).take();
  out.insert(out.end(), body.begin(), body.end());
  finish_header(out);
  return out;
}

Bytes CancelRequestMessage::encode() const {
  CdrWriter w;
  write_header(w, GiopMsgType::kCancelRequest);
  w.ulong(request_id);
  Bytes out = std::move(w).take();
  finish_header(out);
  return out;
}

GiopMsgType peek_giop_type(std::span<const std::uint8_t> raw) {
  if (raw.size() < 12) throw DecodeError("truncated GIOP header");
  const auto type = raw[7];
  if (type > static_cast<std::uint8_t>(GiopMsgType::kMessageError)) {
    throw DecodeError("bad GIOP message type");
  }
  return static_cast<GiopMsgType>(type);
}

GiopMessage decode_giop(std::span<const std::uint8_t> raw) {
  CdrReader r(raw);
  const Header h = read_header(r);
  CdrReader body_reader(raw, h.little_endian);
  // Re-read with the right endianness (header itself is endian-agnostic in
  // the fields we consumed).
  for (int i = 0; i < 12; ++i) (void)body_reader.octet();

  GiopMessage msg;
  msg.type = h.type;
  switch (h.type) {
    case GiopMsgType::kRequest: {
      RequestMessage req;
      req.request_id = body_reader.ulong();
      req.response_expected = (body_reader.octet() & 0x03) != 0;
      req.object_key = ObjectId{body_reader.ulonglong()};
      req.operation = body_reader.string();
      req.service_contexts = read_contexts(body_reader);
      body_reader.align(8);
      req.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(body_reader.position()),
                      raw.end());
      msg.request = std::move(req);
      return msg;
    }
    case GiopMsgType::kReply: {
      ReplyMessage rep;
      rep.request_id = body_reader.ulong();
      const std::uint32_t status = body_reader.ulong();
      if (status > static_cast<std::uint32_t>(ReplyStatus::kLocationForward)) {
        throw DecodeError("bad reply status");
      }
      rep.status = static_cast<ReplyStatus>(status);
      rep.service_contexts = read_contexts(body_reader);
      body_reader.align(8);
      rep.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(body_reader.position()),
                      raw.end());
      msg.reply = std::move(rep);
      return msg;
    }
    case GiopMsgType::kCancelRequest: {
      CancelRequestMessage c;
      c.request_id = body_reader.ulong();
      msg.cancel = c;
      return msg;
    }
    case GiopMsgType::kCloseConnection:
    case GiopMsgType::kMessageError:
      return msg;
  }
  throw DecodeError("unreachable GIOP type");
}

}  // namespace vdep::orb
