// Client- and server-side ORB cores.
//
// The client ORB marshals requests, correlates replies by request id and
// hands bytes to a pluggable ClientTransport — plain TCP channels here, or
// the replicator's interposed transport (src/interpose). The server ORB
// unmarshals requests, dispatches through the POA and marshals replies back
// through whatever sender the transport supplied. Each traversal charges the
// calibrated ORB cost (Fig. 3: 398 us per round trip across 4 traversals).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "net/channel.hpp"
#include "obs/tracer.hpp"
#include "orb/giop.hpp"
#include "orb/object_ref.hpp"
#include "orb/poa.hpp"
#include "sim/actor.hpp"
#include "util/calibration.hpp"

namespace vdep::orb {

// Transport used by a ClientOrb to move GIOP bytes toward a server object.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  using ReplyHandler = std::function<void(Payload&&)>;

  virtual void send_request(const ObjectRef& ref, Payload giop) = 0;
  // Best-effort: stop work for an abandoned request.
  virtual void cancel(std::uint32_t /*request_id*/) {}

  void set_reply_handler(ReplyHandler handler) { on_reply_ = std::move(handler); }

 protected:
  void deliver_reply(Payload&& giop) {
    if (on_reply_) on_reply_(std::move(giop));
  }

 private:
  ReplyHandler on_reply_;
};

class ClientOrb {
 public:
  ClientOrb(net::Network& network, sim::Process& process,
            SimTime traversal_cost = calib::kOrbTraversal);

  // The ORB owns its transport.
  void use_transport(std::unique_ptr<ClientTransport> transport);
  [[nodiscard]] ClientTransport* transport() { return transport_.get(); }

  using ResponseCb = std::function<void(ReplyStatus, Bytes body)>;

  // Marshals and sends; `cb` fires when the correlated reply arrives.
  // Returns the GIOP request id (also the FT retention id).
  std::uint32_t invoke(const ObjectRef& ref, const std::string& operation, Bytes args,
                       ResponseCb cb);

  // Drops the pending callback and tells the transport to stop.
  void cancel(std::uint32_t request_id);

  [[nodiscard]] std::size_t outstanding() const { return pending_.size(); }
  [[nodiscard]] sim::Process& process() { return process_; }

 private:
  void on_reply_bytes(Payload&& giop);

  // The root span of each in-flight request lives here: opened at invoke(),
  // closed when the correlated reply (or a cancel) retires the entry.
  struct Pending {
    ResponseCb cb;
    obs::Span span;
  };

  net::Network& network_;
  sim::Process& process_;
  SimTime traversal_cost_;
  std::unique_ptr<ClientTransport> transport_;
  std::uint32_t next_request_id_ = 1;
  std::map<std::uint32_t, Pending> pending_;
};

class ServerOrb {
 public:
  ServerOrb(net::Network& network, sim::Process& process, Poa& poa,
            SimTime traversal_cost = calib::kOrbTraversal);

  using ReplySender = std::function<void(Payload giop_reply)>;

  // Feeds one GIOP request; unmarshals, dispatches, and (if a response is
  // expected) marshals the reply into `send_reply`.
  void handle_request(Payload giop_request, ReplySender send_reply);

  [[nodiscard]] Poa& poa() { return poa_; }
  [[nodiscard]] sim::Process& process() { return process_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  net::Network& network_;
  sim::Process& process_;
  Poa& poa_;
  SimTime traversal_cost_;
  std::uint64_t served_ = 0;
};

// --- plain TCP transports (the non-replicated baseline path) -------------------

class DirectClientTransport final : public ClientTransport {
 public:
  DirectClientTransport(net::ChannelManager& channels, NodeId local_host);

  void send_request(const ObjectRef& ref, Payload giop) override;

 private:
  net::ChannelManager& channels_;
  NodeId local_;
  std::map<std::pair<NodeId, std::uint16_t>, net::ChannelPtr> connections_;
};

// Accepts connections and pumps requests into a ServerOrb; replies return on
// the originating channel.
class DirectServerAcceptor {
 public:
  DirectServerAcceptor(net::ChannelManager& channels, NodeId host, std::uint16_t port,
                       ServerOrb& orb);
  ~DirectServerAcceptor();

  DirectServerAcceptor(const DirectServerAcceptor&) = delete;
  DirectServerAcceptor& operator=(const DirectServerAcceptor&) = delete;

 private:
  net::ChannelManager& channels_;
  NodeId host_;
  std::uint16_t port_;
  std::vector<net::ChannelPtr> accepted_;
};

}  // namespace vdep::orb
