// CDR (Common Data Representation) marshaling, CORBA-style.
//
// Application payloads and GIOP headers travel in CDR: primitive types are
// aligned to their natural boundary relative to the start of the stream, and
// a byte-order flag lets a reader decode either endianness (we emit
// little-endian, as an x86 TAO would). This is the encoding the replicator
// intercepts and re-writes when it injects FT service contexts.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "util/bytes.hpp"

namespace vdep::orb {

class CdrWriter {
 public:
  CdrWriter() = default;
  explicit CdrWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void octet(std::uint8_t v);
  void boolean(bool v);
  void ushort(std::uint16_t v);   // aligned 2
  void ulong(std::uint32_t v);    // aligned 4
  void ulonglong(std::uint64_t v);  // aligned 8
  void longlong(std::int64_t v);
  void cdr_double(double v);      // aligned 8
  // CORBA string: ulong length including NUL, bytes, NUL.
  void string(const std::string& v);
  // sequence<octet>: ulong length + bytes.
  void octets(const Bytes& v);

  void align(std::size_t n);

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void raw(T v, std::size_t alignment);

  Bytes buf_;
};

class CdrReader {
 public:
  // `little_endian` is the stream's byte-order flag (from the GIOP header).
  // The reader aliases `data`; it must not outlive the underlying buffer.
  explicit CdrReader(std::span<const std::uint8_t> data, bool little_endian = true)
      : data_(data), little_(little_endian) {}

  [[nodiscard]] std::uint8_t octet();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::uint16_t ushort();
  [[nodiscard]] std::uint32_t ulong();
  [[nodiscard]] std::uint64_t ulonglong();
  [[nodiscard]] std::int64_t longlong();
  [[nodiscard]] double cdr_double();
  [[nodiscard]] std::string string();
  [[nodiscard]] Bytes octets();

  void align(std::size_t n);
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  [[nodiscard]] T raw(std::size_t alignment);
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  bool little_;
  std::size_t pos_ = 0;
};

}  // namespace vdep::orb
