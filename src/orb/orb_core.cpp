#include "orb/orb_core.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vdep::orb {

// --- ClientOrb -----------------------------------------------------------------

ClientOrb::ClientOrb(net::Network& network, sim::Process& process,
                     SimTime traversal_cost)
    : network_(network), process_(process), traversal_cost_(traversal_cost) {}

void ClientOrb::use_transport(std::unique_ptr<ClientTransport> transport) {
  transport_ = std::move(transport);
  const std::uint64_t incarnation = process_.incarnation();
  transport_->set_reply_handler([this, incarnation](Payload&& giop) {
    if (!process_.alive() || process_.incarnation() != incarnation) return;
    on_reply_bytes(std::move(giop));
  });
}

std::uint32_t ClientOrb::invoke(const ObjectRef& ref, const std::string& operation,
                                Bytes args, ResponseCb cb) {
  VDEP_ASSERT_MSG(transport_ != nullptr, "no transport configured");
  RequestMessage req;
  req.request_id = next_request_id_++;
  req.object_key = ref.object_key;
  req.operation = operation;
  req.body = std::move(args);

  // Root span of the whole request tree; ends when the reply retires the
  // pending entry. Everything downstream — transport, daemon, replicas —
  // parents under this context.
  obs::Span span = process_.kernel().tracer().start_span(
      "client.request", "orb", process_.name());
  span.note("op", operation);
  const obs::TraceContext ctx = span.context();
  pending_[req.request_id] = Pending{std::move(cb), std::move(span)};

  network_.cpu(process_.host())
      .execute(traversal_cost_,
               process_.guarded([this, ref, ctx, giop = req.encode()]() mutable {
                 obs::Tracer::Scope scope(process_.kernel().tracer(), ctx);
                 transport_->send_request(ref, std::move(giop));
               }));
  return req.request_id;
}

void ClientOrb::cancel(std::uint32_t request_id) {
  pending_.erase(request_id);
  if (transport_) transport_->cancel(request_id);
}

void ClientOrb::on_reply_bytes(Payload&& giop) {
  network_.cpu(process_.host())
      .execute(traversal_cost_, process_.guarded([this, raw = std::move(giop)] {
        GiopMessage msg = decode_giop(raw);
        if (msg.type != GiopMsgType::kReply || !msg.reply) {
          log_warn(process_.now(), "orb", "client got non-reply GIOP message");
          return;
        }
        auto it = pending_.find(msg.reply->request_id);
        if (it == pending_.end()) return;  // late/duplicate reply
        Pending entry = std::move(it->second);
        pending_.erase(it);
        entry.span.note("status",
                        std::to_string(static_cast<std::uint32_t>(msg.reply->status)));
        entry.span.end();
        entry.cb(msg.reply->status, std::move(msg.reply->body));
      }));
}

// --- ServerOrb -----------------------------------------------------------------

ServerOrb::ServerOrb(net::Network& network, sim::Process& process, Poa& poa,
                     SimTime traversal_cost)
    : network_(network), process_(process), poa_(poa), traversal_cost_(traversal_cost) {}

void ServerOrb::handle_request(Payload giop_request, ReplySender send_reply) {
  // The caller's context (e.g. the replicator's rep.execute span) is only
  // current *now*; capture it before deferring through the CPU queue.
  const obs::TraceContext caller = process_.kernel().tracer().current();
  network_.cpu(process_.host())
      .execute(
          traversal_cost_,
          process_.guarded([this, caller, raw = std::move(giop_request),
                            send_reply = std::move(send_reply)]() mutable {
            GiopMessage msg = decode_giop(raw);
            if (msg.type != GiopMsgType::kRequest || !msg.request) {
              log_warn(process_.now(), "orb", "server got non-request GIOP message");
              return;
            }
            RequestMessage& req = *msg.request;

            // Prefer the in-process caller (the replicator's execute span);
            // fall back to the propagated GIOP trace context (direct path).
            obs::TraceContext parent = caller;
            if (!parent.valid()) parent = trace_from_contexts(req.service_contexts);
            obs::Span span = process_.kernel().tracer().start_span(
                "orb.dispatch", "orb", process_.name(), parent);
            span.note("op", req.operation);

            ReplyMessage rep;
            rep.request_id = req.request_id;
            SimTime exec_time = kTimeZero;

            Servant* servant = poa_.find(req.object_key);
            if (servant == nullptr) {
              rep.status = ReplyStatus::kSystemException;
            } else {
              Servant::Result result = servant->invoke(req.operation, req.body);
              exec_time = result.cpu_time;
              rep.status =
                  result.ok ? ReplyStatus::kNoException : ReplyStatus::kUserException;
              rep.body = std::move(result.output);
            }
            ++served_;

            if (!req.response_expected) return;
            // std::function captures must be copyable; park the move-only
            // span in a shared_ptr (allocated only when tracing is on).
            std::shared_ptr<obs::Span> open;
            if (span.active()) open = std::make_shared<obs::Span>(std::move(span));
            network_.cpu(process_.host())
                .execute(exec_time + traversal_cost_,
                         process_.guarded([this, rep = std::move(rep), open,
                                           send_reply = std::move(send_reply)]() mutable {
                           obs::Tracer::Scope scope(
                               process_.kernel().tracer(),
                               open ? open->context() : obs::TraceContext{});
                           if (open) open->end();
                           send_reply(rep.encode());
                         }));
          }));
}

// --- direct TCP transports --------------------------------------------------------

DirectClientTransport::DirectClientTransport(net::ChannelManager& channels,
                                             NodeId local_host)
    : channels_(channels), local_(local_host) {}

void DirectClientTransport::send_request(const ObjectRef& ref, Payload giop) {
  VDEP_ASSERT_MSG(ref.direct.has_value(), "direct transport needs a direct profile");
  const auto key = std::make_pair(ref.direct->host, ref.direct->port);
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    auto channel = channels_.connect(local_, ref.direct->host, ref.direct->port);
    channel->set_receive_handler([this](Payload&& reply) { deliver_reply(std::move(reply)); });
    it = connections_.emplace(key, std::move(channel)).first;
  }
  it->second->send(std::move(giop));
}

DirectServerAcceptor::DirectServerAcceptor(net::ChannelManager& channels, NodeId host,
                                           std::uint16_t port, ServerOrb& orb)
    : channels_(channels), host_(host), port_(port) {
  channels_.listen(host, port, [this, &orb](net::ChannelPtr channel) {
    accepted_.push_back(channel);
    std::weak_ptr<net::Channel> weak = channel;
    channel->set_receive_handler([&orb, weak](Payload&& request) {
      orb.handle_request(std::move(request), [weak](Payload reply) {
        if (auto ch = weak.lock(); ch && ch->open()) ch->send(std::move(reply));
      });
    });
  });
}

DirectServerAcceptor::~DirectServerAcceptor() { channels_.stop_listening(host_, port_); }

}  // namespace vdep::orb
