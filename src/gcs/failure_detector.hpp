// Heartbeat-based failure detection between daemons.
//
// Implements the FT-CORBA "fault monitoring interval" low-level knob: every
// daemon sends heartbeats each `interval` and suspects a peer after
// `miss_limit` silent intervals. Detection latency therefore tunes between
// fast-but-jumpy and slow-but-safe — one of the trade-offs versatile
// dependability exposes.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/actor.hpp"
#include "util/calibration.hpp"
#include "util/ids.hpp"

namespace vdep::gcs {

class FailureDetector {
 public:
  using SendHeartbeatFn = std::function<void(NodeId peer)>;
  using SuspectFn = std::function<void(NodeId peer)>;

  FailureDetector(sim::Process& owner, std::vector<NodeId> peers,
                  SendHeartbeatFn send_heartbeat,
                  SimTime interval = calib::kDefaultHeartbeatInterval,
                  int miss_limit = calib::kDefaultHeartbeatMisses);

  // Begins the heartbeat/check timer loop.
  void start();

  void set_on_suspect(SuspectFn fn) { on_suspect_ = std::move(fn); }

  // Called by the daemon when a heartbeat arrives.
  void heartbeat_received(NodeId from);

  // External knowledge that a peer is down (e.g. a takeover announcement
  // naming dead daemons); marks it suspected without waiting for timeouts.
  void mark_dead(NodeId peer);

  [[nodiscard]] bool alive(NodeId peer) const;
  [[nodiscard]] std::vector<NodeId> live_peers() const;
  [[nodiscard]] SimTime interval() const { return interval_; }

 private:
  void tick();

  sim::Process& owner_;
  SendHeartbeatFn send_heartbeat_;
  SuspectFn on_suspect_;
  SimTime interval_;
  int miss_limit_;

  struct PeerState {
    SimTime last_heard = kTimeZero;
    bool suspected = false;
  };
  std::map<NodeId, PeerState> peers_;
};

}  // namespace vdep::gcs
