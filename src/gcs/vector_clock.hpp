// Vector clocks over process ids.
//
// Used to version the replicated system-state object (src/monitor) and to
// verify causal-delivery properties in the group-communication tests. The
// sequencer-based total order already subsumes causal delivery within a
// group; the clock lets tests check that claim rather than assume it.
#pragma once

#include <cstdint>
#include <map>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace vdep::gcs {

class VectorClock {
 public:
  // Increments this process's component and returns the new value.
  std::uint64_t tick(ProcessId p);

  [[nodiscard]] std::uint64_t get(ProcessId p) const;
  void set(ProcessId p, std::uint64_t v);

  // Component-wise maximum (applied on message receipt).
  void merge(const VectorClock& other);

  // Partial order.
  [[nodiscard]] bool happens_before(const VectorClock& other) const;  // this < other
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const;

  [[nodiscard]] Bytes encode() const;
  static VectorClock decode(const Bytes& raw);
  static VectorClock decode(ByteReader& r);
  void encode_to(ByteWriter& w) const;

  [[nodiscard]] const std::map<ProcessId, std::uint64_t>& components() const {
    return clock_;
  }

  friend bool operator==(const VectorClock&, const VectorClock&) = default;

 private:
  // <= comparison used by both relations.
  [[nodiscard]] bool leq(const VectorClock& other) const;

  std::map<ProcessId, std::uint64_t> clock_;
};

}  // namespace vdep::gcs
