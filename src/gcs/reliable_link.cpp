#include "gcs/reliable_link.hpp"

#include "net/link.hpp"
#include "util/assert.hpp"
#include "util/calibration.hpp"

namespace vdep::gcs {

namespace {

constexpr SimTime kRetransmitTimeout = msec(15);

enum class FrameType : std::uint8_t { kData = 1, kAck = 2, kRaw = 3 };

// Same wire layout ByteWriter would produce (u8 type, u64 seq, u32-length-
// prefixed inner), written into a pooled buffer instead of a fresh one.
Payload encode_frame(BufferPool& pool, FrameType type, std::uint64_t seq,
                     std::span<const std::uint8_t> inner) {
  constexpr std::size_t kHeader = 1 + 8 + 4;
  auto buf = pool.acquire(kHeader + inner.size());
  std::uint8_t* p = buf->data();
  *p++ = static_cast<std::uint8_t>(type);
  for (std::size_t i = 0; i < 8; ++i) {
    *p++ = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  const auto len = static_cast<std::uint32_t>(inner.size());
  for (std::size_t i = 0; i < 4; ++i) {
    *p++ = static_cast<std::uint8_t>(len >> (8 * i));
  }
  if (!inner.empty()) std::memcpy(p, inner.data(), inner.size());
  return Payload(buf, std::span<const std::uint8_t>(buf->data(), buf->size()));
}

}  // namespace

ReliableLink::ReliableLink(sim::Process& owner, net::Network& network, DeliverFn deliver,
                           RawFn raw_deliver)
    : owner_(owner),
      network_(network),
      deliver_(std::move(deliver)),
      raw_deliver_(std::move(raw_deliver)) {}

void ReliableLink::transmit(NodeId to, Payload frame, std::size_t wire,
                            bool counted) {
  net::Packet p;
  p.src = owner_.host();
  p.dst = to;
  p.port = net::Port::kGcsDaemon;
  p.payload = std::move(frame);
  p.wire_bytes = wire;
  p.counted = counted;
  network_.send(std::move(p));
}

void ReliableLink::send(NodeId to, Payload inner, std::size_t payload_bytes) {
  auto& peer = tx_[to];
  const std::uint64_t seq = peer.next_seq++;
  // The per-peer sequence number forces one splice here, but the resulting
  // frame is shared (not copied) between the retransmit queue and the packet.
  Payload frame = encode_frame(frame_pool_, FrameType::kData, seq, inner);
  const std::size_t wire = net::wire_bytes(payload_bytes, calib::kGcsHeaderBytes) +
                           (inner.size() - payload_bytes);
  peer.unacked[seq] = Unacked{frame, wire};
  transmit(to, std::move(frame), wire, /*counted=*/true);
  arm_retransmit(to);
}

void ReliableLink::send_raw(NodeId to, Bytes inner) {
  Payload frame = encode_frame(frame_pool_, FrameType::kRaw, 0, inner);
  const std::size_t wire = frame.size();
  transmit(to, std::move(frame), wire, /*counted=*/false);
}

void ReliableLink::send_ack(NodeId to, std::uint64_t cumulative) {
  Payload frame = encode_frame(frame_pool_, FrameType::kAck, cumulative, {});
  const std::size_t wire = frame.size();
  transmit(to, std::move(frame), wire, /*counted=*/false);
}

void ReliableLink::arm_retransmit(NodeId to) {
  auto& peer = tx_[to];
  if (peer.retransmit_timer.active() || peer.unacked.empty()) return;
  peer.retransmit_timer = owner_.post(kRetransmitTimeout, [this, to] {
    auto it = tx_.find(to);
    if (it == tx_.end() || it->second.unacked.empty()) return;
    for (const auto& [seq, u] : it->second.unacked) {
      ++retransmissions_;
      transmit(to, u.frame, u.wire_bytes, /*counted=*/true);
    }
    arm_retransmit(to);
  });
}

void ReliableLink::forget_peer(NodeId peer) {
  auto it = tx_.find(peer);
  if (it == tx_.end()) return;
  it->second.retransmit_timer.cancel();
  tx_.erase(it);
}

void ReliableLink::handle_packet(net::Packet&& packet) {
  // The reader carries the packet's buffer as its owner, so the inner frame
  // below is a zero-copy alias of the received bytes.
  ByteReader r(packet.payload.owner(), packet.payload);
  const auto type = static_cast<FrameType>(r.u8());
  const std::uint64_t seq = r.u64();
  Payload inner = read_payload(r);

  switch (type) {
    case FrameType::kRaw:
      raw_deliver_(packet.src, std::move(inner));
      return;

    case FrameType::kAck: {
      auto it = tx_.find(packet.src);
      if (it == tx_.end()) return;
      auto& unacked = it->second.unacked;
      unacked.erase(unacked.begin(), unacked.upper_bound(seq));
      if (unacked.empty()) it->second.retransmit_timer.cancel();
      return;
    }

    case FrameType::kData: {
      auto& peer = rx_[packet.src];
      if (seq >= peer.next_expected && !peer.reorder.contains(seq)) {
        peer.reorder[seq] = std::move(inner);
      }
      // Deliver the contiguous prefix.
      while (true) {
        auto dit = peer.reorder.find(peer.next_expected);
        if (dit == peer.reorder.end()) break;
        Payload msg = std::move(dit->second);
        peer.reorder.erase(dit);
        ++peer.next_expected;
        deliver_(packet.src, std::move(msg));
      }
      send_ack(packet.src, peer.next_expected - 1);
      return;
    }
  }
  throw r.error("bad link frame type", 0);
}

}  // namespace vdep::gcs
