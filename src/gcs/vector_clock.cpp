#include "gcs/vector_clock.hpp"

#include <algorithm>

namespace vdep::gcs {

std::uint64_t VectorClock::tick(ProcessId p) { return ++clock_[p]; }

std::uint64_t VectorClock::get(ProcessId p) const {
  auto it = clock_.find(p);
  return it == clock_.end() ? 0 : it->second;
}

void VectorClock::set(ProcessId p, std::uint64_t v) {
  if (v == 0) {
    clock_.erase(p);
  } else {
    clock_[p] = v;
  }
}

void VectorClock::merge(const VectorClock& other) {
  for (const auto& [p, v] : other.clock_) {
    auto& mine = clock_[p];
    mine = std::max(mine, v);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  return std::all_of(clock_.begin(), clock_.end(), [&other](const auto& kv) {
    return kv.second <= other.get(kv.first);
  });
}

bool VectorClock::happens_before(const VectorClock& other) const {
  return leq(other) && *this != other;
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !leq(other) && !other.leq(*this);
}

void VectorClock::encode_to(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(clock_.size()));
  for (const auto& [p, v] : clock_) {
    w.u64(p.value());
    w.u64(v);
  }
}

Bytes VectorClock::encode() const {
  ByteWriter w;
  encode_to(w);
  return std::move(w).take();
}

VectorClock VectorClock::decode(ByteReader& r) {
  VectorClock vc;
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const ProcessId p{r.u64()};
    const std::uint64_t v = r.u64();
    vc.clock_[p] = v;
  }
  return vc;
}

VectorClock VectorClock::decode(const Bytes& raw) {
  ByteReader r(raw);
  return decode(r);
}

}  // namespace vdep::gcs
