#include "gcs/failure_detector.hpp"

#include "util/logging.hpp"

namespace vdep::gcs {

FailureDetector::FailureDetector(sim::Process& owner, std::vector<NodeId> peers,
                                 SendHeartbeatFn send_heartbeat, SimTime interval,
                                 int miss_limit)
    : owner_(owner),
      send_heartbeat_(std::move(send_heartbeat)),
      interval_(interval),
      miss_limit_(miss_limit) {
  for (NodeId p : peers) peers_[p] = PeerState{};
}

void FailureDetector::start() {
  // Treat start time as a fresh heartbeat from everyone so nobody is
  // suspected before a full timeout elapses.
  for (auto& [peer, st] : peers_) st.last_heard = owner_.now();
  tick();
}

void FailureDetector::tick() {
  for (auto& [peer, st] : peers_) {
    if (st.suspected) continue;
    send_heartbeat_(peer);
    const SimTime deadline = st.last_heard + interval_ * miss_limit_;
    if (owner_.now() > deadline) {
      st.suspected = true;
      log_info(owner_.now(), "fd",
               owner_.name() + " suspects daemon@" + peer.str());
      if (on_suspect_) on_suspect_(peer);
    }
  }
  owner_.post(interval_, [this] { tick(); });
}

void FailureDetector::heartbeat_received(NodeId from) {
  auto it = peers_.find(from);
  if (it == peers_.end()) return;
  // Suspicion is sticky: a suspected daemon stays out (crash-stop model).
  if (!it->second.suspected) it->second.last_heard = owner_.now();
}

void FailureDetector::mark_dead(NodeId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.suspected) return;
  it->second.suspected = true;
  if (on_suspect_) on_suspect_(peer);
}

bool FailureDetector::alive(NodeId peer) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return false;
  return !it->second.suspected;
}

std::vector<NodeId> FailureDetector::live_peers() const {
  std::vector<NodeId> out;
  for (const auto& [peer, st] : peers_) {
    if (!st.suspected) out.push_back(peer);
  }
  return out;
}

}  // namespace vdep::gcs
