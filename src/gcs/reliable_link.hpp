// Reliable FIFO point-to-point links between group-communication daemons.
//
// The simulated network can drop packets (transient communication faults in
// the paper's fault model); this layer adds per-peer sequencing, cumulative
// acks and timer-driven retransmission so every daemon-to-daemon message is
// delivered exactly once and in order — the substrate the sequencer protocol
// is built on. Link acks are control traffic (uncounted, cheap), standing in
// for the acknowledgement piggybacking on Spread's token.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.hpp"
#include "sim/actor.hpp"
#include "util/arena.hpp"
#include "util/payload.hpp"

namespace vdep::gcs {

class ReliableLink {
 public:
  // `deliver` receives in-order inner message frames from a peer daemon; the
  // Payload aliases the received packet's buffer (no copy).
  using DeliverFn = std::function<void(NodeId from, Payload&& inner)>;
  // Raw (unreliable, uncounted) frames: heartbeats.
  using RawFn = std::function<void(NodeId from, Payload&& inner)>;

  ReliableLink(sim::Process& owner, net::Network& network, DeliverFn deliver,
               RawFn raw_deliver);

  // Reliable FIFO send. `payload_bytes` is the application-payload portion
  // used for fragmentation-aware wire accounting. `inner` may be a frame
  // shared with other peers (encode-once fan-out); the per-peer link header
  // is spliced on here, and that framed buffer is then shared between the
  // retransmit queue and the in-flight packet.
  void send(NodeId to, Payload inner, std::size_t payload_bytes);

  // Fire-and-forget, uncounted (heartbeats).
  void send_raw(NodeId to, Bytes inner);

  // Entry point for packets arriving on Port::kGcsDaemon.
  void handle_packet(net::Packet&& packet);

  // Peer declared dead: drop outstanding retransmission state. Receive state
  // is kept so late duplicates from a wrongly-suspected peer stay deduped.
  void forget_peer(NodeId peer);

  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Unacked {
    Payload frame;  // shares the buffer with the original transmission
    std::size_t wire_bytes;
  };

  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Unacked> unacked;
    sim::EventHandle retransmit_timer;
  };

  struct PeerRx {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Payload> reorder;  // aliases received packet frames
  };

  void transmit(NodeId to, Payload frame, std::size_t wire, bool counted);
  void arm_retransmit(NodeId to);
  void send_ack(NodeId to, std::uint64_t cumulative);

  sim::Process& owner_;
  net::Network& network_;
  DeliverFn deliver_;
  RawFn raw_deliver_;
  std::map<NodeId, PeerTx> tx_;
  std::map<NodeId, PeerRx> rx_;
  // Recycles frame buffers: a frame is reusable once the network (and, for
  // data frames, the retransmit queue) has dropped its Payload references.
  BufferPool frame_pool_;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace vdep::gcs
