// Reliable FIFO point-to-point links between group-communication daemons.
//
// The simulated network can drop packets (transient communication faults in
// the paper's fault model); this layer adds per-peer sequencing, cumulative
// acks and timer-driven retransmission so every daemon-to-daemon message is
// delivered exactly once and in order — the substrate the sequencer protocol
// is built on. Link acks are control traffic (uncounted, cheap), standing in
// for the acknowledgement piggybacking on Spread's token.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.hpp"
#include "sim/actor.hpp"

namespace vdep::gcs {

class ReliableLink {
 public:
  // `deliver` receives in-order inner message bytes from a peer daemon.
  using DeliverFn = std::function<void(NodeId from, Bytes&& inner)>;
  // Raw (unreliable, uncounted) frames: heartbeats.
  using RawFn = std::function<void(NodeId from, Bytes&& inner)>;

  ReliableLink(sim::Process& owner, net::Network& network, DeliverFn deliver,
               RawFn raw_deliver);

  // Reliable FIFO send. `payload_bytes` is the application-payload portion
  // used for fragmentation-aware wire accounting.
  void send(NodeId to, Bytes inner, std::size_t payload_bytes);

  // Fire-and-forget, uncounted (heartbeats).
  void send_raw(NodeId to, Bytes inner);

  // Entry point for packets arriving on Port::kGcsDaemon.
  void handle_packet(net::Packet&& packet);

  // Peer declared dead: drop outstanding retransmission state. Receive state
  // is kept so late duplicates from a wrongly-suspected peer stay deduped.
  void forget_peer(NodeId peer);

  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Unacked {
    Bytes frame;
    std::size_t wire_bytes;
  };

  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, Unacked> unacked;
    sim::EventHandle retransmit_timer;
  };

  struct PeerRx {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Bytes> reorder;
  };

  void transmit(NodeId to, const Bytes& frame, std::size_t wire, bool counted);
  void arm_retransmit(NodeId to);
  void send_ack(NodeId to, std::uint64_t cumulative);

  sim::Process& owner_;
  net::Network& network_;
  DeliverFn deliver_;
  RawFn raw_deliver_;
  std::map<NodeId, PeerTx> tx_;
  std::map<NodeId, PeerRx> rx_;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace vdep::gcs
