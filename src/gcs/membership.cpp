#include "gcs/membership.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace vdep::gcs {

std::vector<NodeId> LeaderState::member_daemons(const View& view) {
  std::set<NodeId> uniq;
  for (const auto& m : view.members) uniq.insert(m.daemon);
  return {uniq.begin(), uniq.end()};
}

std::optional<View> LeaderState::current_view(GroupId group) const {
  auto it = groups_.find(group);
  if (it == groups_.end() || it->second.view.view_id == 0) return std::nullopt;
  return it->second.view;
}

Ordered LeaderState::make_data(const GroupRec& rec, const Forward& fwd) const {
  Ordered o;
  o.group = fwd.group;
  o.epoch = rec.view.view_id;
  o.seq = 0;  // caller assigns
  o.kind = Ordered::Kind::kData;
  o.svc = fwd.svc;
  o.origin = fwd.origin;
  o.origin_daemon = fwd.origin_daemon;
  o.payload = fwd.payload;
  o.trace = fwd.trace;
  return o;
}

void LeaderState::order_data(GroupRec& rec, const Forward& fwd, Emissions& out) {
  Ordered o = make_data(rec, fwd);
  o.seq = rec.next_seq++;
  const auto eit = rec.epochs.find(rec.view.view_id);
  // Piggyback only the *published* watermark: stability is token-paced.
  o.stable_upto = eit != rec.epochs.end() ? eit->second.published_count : 0;
  out.push_back({member_daemons(rec.view), std::move(o)});
}

void LeaderState::install_view(GroupRec& rec, std::vector<Member> members,
                               Emissions& out) {
  // Member order is seniority (join order): survivors keep their relative
  // positions, joiners go to the back. Rank 0 — the replication layer's
  // primary — is therefore always the longest-lived member, so a restarted
  // replica rejoining under its old process id enters as the most junior
  // member instead of instantly reclaiming primaryship while it still waits
  // for its state transfer.
  std::set<NodeId> recipients;
  for (NodeId d : member_daemons(rec.view)) recipients.insert(d);

  std::uint64_t prev_epoch_end = 0;
  if (rec.view.view_id > 0) {
    // Close the outgoing epoch: it contained next_seq messages (the view at
    // seq 0 plus data 1..next_seq-1).
    auto eit = rec.epochs.find(rec.view.view_id);
    if (eit != rec.epochs.end()) {
      eit->second.end_count = rec.next_seq;
      if (eit->second.published_count >= eit->second.end_count) {
        rec.epochs.erase(eit);
      }
    }
    prev_epoch_end = rec.next_seq - 1;
  }

  View next;
  next.group = rec.view.group;
  next.view_id = rec.view.view_id + 1;
  next.members = std::move(members);

  rec.view = next;
  rec.next_seq = 1;

  EpochTrack track;
  track.daemons = member_daemons(next);
  rec.epochs[next.view_id] = std::move(track);

  for (NodeId d : member_daemons(next)) recipients.insert(d);

  Ordered o;
  o.group = next.group;
  o.epoch = next.view_id;
  o.seq = 0;
  o.kind = Ordered::Kind::kView;
  o.svc = ServiceType::kAgreed;
  o.origin = OriginId{};
  o.origin_daemon = self_;
  o.payload = next.encode();
  o.prev_epoch_end = prev_epoch_end;
  out.push_back({{recipients.begin(), recipients.end()}, std::move(o)});
}

LeaderState::Emissions LeaderState::handle_forward(const Forward& fwd) {
  Emissions out;
  // Every forward is acknowledged to its origin daemon so pending-forward
  // state can be cleared there, even when the forward itself is a duplicate
  // (the previous ack may have been lost with a dying leader).
  out.push_back({{fwd.origin_daemon}, FwdAck{fwd.group, fwd.origin}});

  auto& rec = groups_[fwd.group];
  if (rec.view.group != fwd.group) rec.view.group = fwd.group;

  switch (fwd.kind) {
    case Forward::Kind::kData: {
      auto& last = rec.last_origin[fwd.origin.sender];
      if (fwd.origin.seq <= last) return out;  // duplicate
      last = fwd.origin.seq;
      if (rec.view.members.empty()) return out;  // no members: drop
      order_data(rec, fwd, out);
      return out;
    }
    case Forward::Kind::kJoin: {
      if (rec.view.contains(fwd.origin.sender)) return out;  // idempotent
      auto members = rec.view.members;
      members.push_back(Member{fwd.origin.sender, fwd.origin_daemon});
      install_view(rec, std::move(members), out);
      return out;
    }
    case Forward::Kind::kLeave:
    case Forward::Kind::kCrash: {
      if (!rec.view.contains(fwd.origin.sender)) return out;  // idempotent
      auto members = rec.view.members;
      std::erase_if(members,
                    [&](const Member& m) { return m.process == fwd.origin.sender; });
      install_view(rec, std::move(members), out);
      // The departure ends this process's dedup scope: a later incarnation
      // rejoining under the same pid restarts its origin counter from zero,
      // and its forwards must not be mistaken for replays of the dead one.
      // Safe because the member daemon's link to the leader is FIFO — every
      // forward of the old incarnation precedes the leave/crash it reported.
      rec.last_origin.erase(fwd.origin.sender);
      return out;
    }
  }
  VDEP_ASSERT_MSG(false, "unreachable forward kind");
  return out;
}

void LeaderState::update_stability(GroupRec& rec, std::uint64_t epoch) {
  auto eit = rec.epochs.find(epoch);
  if (eit == rec.epochs.end()) return;
  EpochTrack& track = eit->second;

  std::uint64_t stable;
  if (track.daemons.empty()) {
    stable = track.end_count > 0 ? track.end_count : rec.next_seq;
  } else {
    stable = ~std::uint64_t{0};
    for (NodeId d : track.daemons) {
      auto ait = track.acked.find(d);
      stable = std::min(stable, ait == track.acked.end() ? 0 : ait->second);
    }
  }
  track.stable_count = std::max(track.stable_count, stable);
}

void LeaderState::handle_ack(const OrdAck& ack) {
  auto git = groups_.find(ack.group);
  if (git == groups_.end()) return;
  auto& rec = git->second;
  auto eit = rec.epochs.find(ack.epoch);
  if (eit == rec.epochs.end()) return;
  EpochTrack& track = eit->second;
  if (std::find(track.daemons.begin(), track.daemons.end(), ack.from) ==
      track.daemons.end()) {
    return;
  }
  auto& count = track.acked[ack.from];
  count = std::max(count, ack.seq + 1);
  update_stability(rec, ack.epoch);
}

LeaderState::Emissions LeaderState::publish_stability() {
  Emissions out;
  for (auto git = groups_.begin(); git != groups_.end(); ++git) {
    GroupRec& rec = git->second;
    for (auto eit = rec.epochs.begin(); eit != rec.epochs.end();) {
      EpochTrack& track = eit->second;
      // Open epochs with no must-ack set (empty groups) advance passively.
      update_stability(rec, eit->first);
      if (track.stable_count > track.published_count) {
        track.published_count = track.stable_count;
        if (!track.daemons.empty()) {
          out.push_back(
              {track.daemons, StableMsg{git->first, eit->first, track.published_count}});
        }
      }
      // Fully-published closed epochs need no further tracking.
      if (track.end_count > 0 && track.published_count >= track.end_count) {
        eit = rec.epochs.erase(eit);
      } else {
        ++eit;
      }
    }
  }
  return out;
}

LeaderState::Emissions LeaderState::handle_daemon_death(NodeId daemon) {
  Emissions out;
  for (auto& [group, rec] : groups_) {
    // Stop expecting acks from the dead daemon in every open epoch.
    std::vector<std::uint64_t> epochs;
    for (auto& [epoch, track] : rec.epochs) {
      if (std::erase(track.daemons, daemon) > 0) {
        track.acked.erase(daemon);
        epochs.push_back(epoch);
      }
    }
    for (std::uint64_t epoch : epochs) update_stability(rec, epoch);

    // Remove its processes from the membership.
    const bool had = std::any_of(rec.view.members.begin(), rec.view.members.end(),
                                 [daemon](const Member& m) { return m.daemon == daemon; });
    if (had) {
      auto members = rec.view.members;
      std::erase_if(members, [daemon](const Member& m) { return m.daemon == daemon; });
      install_view(rec, std::move(members), out);
    }
  }
  // Never emit to the dead daemon itself.
  for (auto& e : out) std::erase(e.dests, daemon);
  std::erase_if(out, [](const Emission& e) { return e.dests.empty(); });
  return out;
}

LeaderState::Emissions LeaderState::bootstrap(const std::vector<SyncState>& states,
                                              const std::vector<NodeId>& live_daemons) {
  VDEP_ASSERT_MSG(groups_.empty(), "bootstrap on a used LeaderState");
  Emissions out;
  const std::set<NodeId> live(live_daemons.begin(), live_daemons.end());

  // ---- collect ---------------------------------------------------------------
  struct GroupCollect {
    std::optional<View> latest_view;
    std::map<std::pair<std::uint64_t, std::uint64_t>, Ordered> buffered;
    std::map<std::uint64_t, std::map<NodeId, std::uint64_t>> acks;  // epoch->daemon->count
  };
  std::map<GroupId, GroupCollect> collect;
  std::vector<Forward> pendings;

  for (const auto& st : states) {
    for (const auto& v : st.views) {
      auto& c = collect[v.group];
      if (!c.latest_view || v.view_id > c.latest_view->view_id) c.latest_view = v;
    }
    for (const auto& o : st.buffered) {
      auto& c = collect[o.group];
      c.buffered.emplace(std::make_pair(o.epoch, o.seq), o);
      if (o.kind == Ordered::Kind::kView) {
        View v = View::decode(o.payload);
        if (!c.latest_view || v.view_id > c.latest_view->view_id) c.latest_view = v;
      }
    }
    for (const auto& a : st.acks) {
      if (!live.contains(a.from)) continue;
      auto& cur = collect[a.group].acks[a.epoch][a.from];
      cur = std::max(cur, a.seq + 1);
    }
    for (const auto& f : st.pending) pendings.push_back(f);
  }

  // ---- rebuild each group -----------------------------------------------------
  for (auto& [group, c] : collect) {
    if (!c.latest_view) continue;
    auto& rec = groups_[group];
    rec.view = *c.latest_view;

    // Reconstruct how far the latest epoch progressed.
    std::uint64_t max_count = 1;  // the view itself (seq 0)
    for (const auto& [key, o] : c.buffered) {
      if (key.first == rec.view.view_id) max_count = std::max(max_count, key.second + 1);
    }
    for (const auto& [daemon, count] : c.acks[rec.view.view_id]) {
      max_count = std::max(max_count, count);
    }
    rec.next_seq = max_count;

    // Forward dedup baseline from the surviving history.
    for (const auto& [key, o] : c.buffered) {
      if (o.kind != Ordered::Kind::kData) continue;
      auto& last = rec.last_origin[o.origin.sender];
      last = std::max(last, o.origin.seq);
    }

    // Epoch tracks: one per epoch mentioned, must-ack set = live daemons that
    // mentioned the epoch (they are the ones still delivering it).
    std::set<std::uint64_t> epochs_mentioned;
    for (const auto& [key, o] : c.buffered) epochs_mentioned.insert(key.first);
    for (const auto& [epoch, acks] : c.acks) {
      if (!acks.empty()) epochs_mentioned.insert(epoch);
    }
    for (std::uint64_t epoch : epochs_mentioned) {
      EpochTrack track;
      std::set<NodeId> mentioned;
      for (const auto& [daemon, count] : c.acks[epoch]) {
        mentioned.insert(daemon);
        track.acked[daemon] = count;
      }
      track.daemons.assign(mentioned.begin(), mentioned.end());
      rec.epochs[epoch] = std::move(track);
    }

    // Replay every surviving unstable message to the union of live daemons
    // involved with the group; receivers deduplicate.
    std::set<NodeId> recipients;
    for (NodeId d : member_daemons(rec.view)) {
      if (live.contains(d)) recipients.insert(d);
    }
    for (const auto& [epoch, track] : rec.epochs) {
      for (NodeId d : track.daemons) recipients.insert(d);
    }
    if (!recipients.empty()) {
      for (const auto& [key, o] : c.buffered) {
        out.push_back({{recipients.begin(), recipients.end()}, o});
      }
    }

    // Fresh view without processes hosted on dead daemons.
    auto members = rec.view.members;
    std::erase_if(members, [&live](const Member& m) { return !live.contains(m.daemon); });
    install_view(rec, std::move(members), out);
    for (std::uint64_t epoch : epochs_mentioned) {
      update_stability(rec, epoch);
    }
  }

  // ---- replay pending forwards -------------------------------------------------
  std::sort(pendings.begin(), pendings.end(), [](const Forward& a, const Forward& b) {
    return std::tie(a.group, a.origin.sender, a.origin.seq) <
           std::tie(b.group, b.origin.sender, b.origin.seq);
  });
  for (const auto& f : pendings) {
    Emissions e = handle_forward(f);
    out.insert(out.end(), e.begin(), e.end());
  }

  // Do not emit to dead daemons.
  for (auto& e : out) {
    std::erase_if(e.dests, [&live](NodeId d) { return !live.contains(d); });
  }
  std::erase_if(out, [](const Emission& e) { return e.dests.empty(); });
  return out;
}

}  // namespace vdep::gcs
