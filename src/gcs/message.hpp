// Wire messages of the daemon-to-daemon protocol.
//
// Outer framing on net::Port::kGcsDaemon (see reliable_link.hpp):
//   HEARTBEAT       — failure detection, unreliable
//   LINK_DATA/ACK   — reliable FIFO link layer carrying one inner message
//
// Inner messages (this file):
//   Forward    — member daemon -> leader: please order this multicast /
//                membership operation
//   Ordered    — leader -> member daemons: sequenced message or view change
//   OrdAck     — member daemon -> leader: I hold (group, epoch, seq)
//   StableMsg  — leader -> member daemons: stability watermark
//   Takeover   — new leader -> all daemons: leadership change, send state
//   SyncState  — daemon -> new leader: buffered messages, pending forwards,
//                latest views
//   PrivateMsg — point-to-point datagram between processes (Spread private
//                groups), off the ordered stream
#pragma once

#include <variant>
#include <vector>

#include "gcs/types.hpp"
#include "gcs/view.hpp"

namespace vdep::gcs {

struct Forward {
  enum class Kind : std::uint8_t { kData = 0, kJoin = 1, kLeave = 2, kCrash = 3 };

  GroupId group;
  Kind kind = Kind::kData;
  ServiceType svc = ServiceType::kAgreed;
  OriginId origin;         // sending process + its per-group counter
  NodeId origin_daemon;    // daemon serving the sending process
  Payload payload;
  obs::TraceContext trace;  // sender's causal context (zeros when untraced)

  void encode_to(ByteWriter& w) const;
  static Forward decode(ByteReader& r);
};

struct Ordered {
  enum class Kind : std::uint8_t { kData = 0, kView = 1 };

  GroupId group;
  std::uint64_t epoch = 0;  // == view id of the governing view
  std::uint64_t seq = 0;    // 0 for the view message itself, then 1, 2, ...
  Kind kind = Kind::kData;
  ServiceType svc = ServiceType::kAgreed;
  OriginId origin;
  NodeId origin_daemon;
  Payload payload;          // app payload, or View::encode() for kView
  // kView only: the last sequence number of the previous epoch, so receivers
  // know when the old epoch's stream is complete.
  std::uint64_t prev_epoch_end = 0;
  // Piggybacked stability watermark for (group, epoch), as a count: every
  // member daemon holds all messages with seq < stable_upto.
  std::uint64_t stable_upto = 0;
  obs::TraceContext trace;  // carried through from the Forward

  void encode_to(ByteWriter& w) const;
  static Ordered decode(ByteReader& r);
};

struct OrdAck {
  NodeId from;
  GroupId group;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;  // cumulative: holds everything <= seq in epoch

  void encode_to(ByteWriter& w) const;
  static OrdAck decode(ByteReader& r);
};

struct StableMsg {
  GroupId group;
  std::uint64_t epoch = 0;
  std::uint64_t upto = 0;  // count: seqs < upto are stable

  void encode_to(ByteWriter& w) const;
  static StableMsg decode(ByteReader& r);
};

// Leader -> origin daemon: the forward identified by (group, origin) has been
// ordered. Lets daemons whose processes are *not* members of the group (e.g.
// a client multicasting requests into a server group) clear their pending
// forwards; member daemons clear them on seeing the ordered message itself.
struct FwdAck {
  GroupId group;
  OriginId origin;

  void encode_to(ByteWriter& w) const;
  static FwdAck decode(ByteReader& r);
};

struct Takeover {
  std::uint64_t term = 0;  // monotone leadership term
  NodeId leader;

  void encode_to(ByteWriter& w) const;
  static Takeover decode(ByteReader& r);
};

struct SyncState {
  std::uint64_t term = 0;
  NodeId from;
  std::vector<Ordered> buffered;   // unstable ordered messages this daemon holds
  std::vector<Forward> pending;    // forwards not yet seen ordered
  std::vector<View> views;         // latest view per group this daemon knows
  std::vector<OrdAck> acks;        // current contiguous-receipt watermarks

  void encode_to(ByteWriter& w) const;
  static SyncState decode(ByteReader& r);
};

struct PrivateMsg {
  ProcessId sender;
  NodeId sender_daemon;
  ProcessId destination;
  Payload payload;
  obs::TraceContext trace;  // sender's causal context (zeros when untraced)

  void encode_to(ByteWriter& w) const;
  static PrivateMsg decode(ByteReader& r);
};

using InnerMsg = std::variant<Forward, Ordered, OrdAck, StableMsg, Takeover, SyncState,
                              PrivateMsg, FwdAck>;

// Encodes to a frozen, shareable frame: fan-out paths encode once and hand
// the same Payload to every destination.
[[nodiscard]] Payload encode_inner(const InnerMsg& msg);
// Decoded payload fields alias `frame` (they hold a refcount on it), so no
// byte copies happen on the receive path.
[[nodiscard]] InnerMsg decode_inner(const Payload& frame);
// Copying overload for callers holding a plain buffer (tests, fuzz inputs).
[[nodiscard]] InnerMsg decode_inner(std::span<const std::uint8_t> raw);

// Number of encode_inner() calls by the *calling thread* since it started;
// lets tests assert the encode-once fan-out invariant (N destinations, one
// encode). Thread-local so parallel campaign trials do not race it.
[[nodiscard]] std::uint64_t encode_inner_count();

// Application payload bytes carried by an inner message (for wire-size
// accounting: headers are charged separately).
[[nodiscard]] std::size_t inner_payload_size(const InnerMsg& msg);

}  // namespace vdep::gcs
