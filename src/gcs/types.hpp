// Common types for the group-communication subsystem.
//
// Modelled on the Spread toolkit's service levels (the paper, Sec. 3.1:
// "best effort (no guarantees), FIFO (by sender), causal and atomic").
// Internally every reliable service is carried on one totally-ordered stream
// per group (a sequencer design): total order implies FIFO and group-local
// causal order, and SAFE additionally waits for stability (all member
// daemons hold the message) before delivery.
#pragma once

#include <cstdint>
#include <string>

#include "obs/trace_context.hpp"
#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/payload.hpp"

namespace vdep::gcs {

enum class ServiceType : std::uint8_t {
  kBestEffort = 0,  // may be dropped or reordered
  kReliable = 1,    // delivered to all live members, total order
  kFifo = 2,        // per-sender order (subsumed by total order)
  kCausal = 3,      // causal order within the group (subsumed by total order)
  kAgreed = 4,      // total order ("atomic")
  kSafe = 5,        // total order + stability (all member daemons hold it)
};

[[nodiscard]] std::string to_string(ServiceType svc);

// Identifies a multicast uniquely within a group across retransmissions and
// leader takeovers: the sending process and its per-group send counter.
struct OriginId {
  ProcessId sender;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const OriginId&, const OriginId&) = default;
};

// What an Endpoint receives for a regular multicast.
struct GroupMessage {
  GroupId group;
  ServiceType svc = ServiceType::kAgreed;
  ProcessId sender;
  NodeId sender_daemon;  // lets receivers reply point-to-point
  Payload payload;  // shares the ordered message's buffer across local members
  obs::TraceContext trace;  // causal context from the sender (zeros if none)
};

// Point-to-point datagram (Spread "private group" unicast): reliable and
// FIFO per sender/destination pair, not part of any group's total order.
struct PrivateMessage {
  ProcessId sender;
  ProcessId destination;
  Payload payload;
  obs::TraceContext trace;  // causal context from the sender (zeros if none)
};

}  // namespace vdep::gcs
