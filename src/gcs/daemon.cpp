#include "gcs/daemon.hpp"

#include <algorithm>

#include "gcs/endpoint.hpp"
#include "net/link.hpp"
#include "obs/tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vdep::gcs {

namespace {
constexpr SimTime kLoopbackDelay = usec(4);
}

Daemon::Daemon(sim::Kernel& kernel, net::Network& network, ProcessId pid, NodeId host,
               std::vector<NodeId> all_daemon_hosts, DaemonParams params)
    : sim::Process(kernel, pid, host, "gcsd@" + network.host_name(host)),
      network_(network),
      params_(params),
      all_daemons_(std::move(all_daemon_hosts)) {
  std::sort(all_daemons_.begin(), all_daemons_.end());
  VDEP_ASSERT(!all_daemons_.empty());

  link_ = std::make_unique<ReliableLink>(
      *this, network_,
      [this](NodeId from, Payload&& inner) { on_link_deliver(from, std::move(inner)); },
      [this](NodeId from, Payload&&) {
        fd_->heartbeat_received(from);
        if (health_ != nullptr) health_->on_heartbeat(from, this->host(), now());
      });

  std::vector<NodeId> peers;
  for (NodeId d : all_daemons_) {
    if (d != host) peers.push_back(d);
  }
  fd_ = std::make_unique<FailureDetector>(
      *this, peers,
      [this](NodeId peer) {
        ByteWriter w;
        w.u64(this->host().value());
        link_->send_raw(peer, std::move(w).take());
      },
      params_.heartbeat_interval, params_.heartbeat_misses);
  fd_->set_on_suspect([this](NodeId d) { on_suspect(d); });

  leader_ = all_daemons_.front();
  if (leader_ == host) leader_state_ = std::make_unique<LeaderState>(host);
}

Daemon::~Daemon() = default;

void Daemon::boot() {
  network_.bind(host(), net::Port::kGcsDaemon, [this](net::Packet&& p) {
    if (!alive()) return;
    on_packet(std::move(p));
  });
  fd_->start();
  stability_token_tick();
}

void Daemon::stability_token_tick() {
  // Models the Spread token rotation: the leader publishes stability
  // watermarks (which gate SAFE delivery) once per rotation, not per ack.
  if (leader_state_ != nullptr && !awaiting_sync_) {
    emit(leader_state_->publish_stability());
  }
  post(params_.stability_token_interval, [this] { stability_token_tick(); });
}

void Daemon::on_crash() {
  // Scheduled callbacks die with the epoch bump; nothing else to tear down.
}

// --- packet pipeline ----------------------------------------------------------

void Daemon::on_packet(net::Packet&& packet) {
  // The link layer runs at "interrupt level": sequencing, deduplication and
  // acknowledgements happen immediately on receipt, exactly like kernel TCP.
  // If acks waited behind the protocol work queued on the CPU, an overloaded
  // daemon would look dead to its peers and their retransmissions would feed
  // the very backlog that delayed the acks — congestion collapse.
  if (packet.payload.empty()) return;
  link_->handle_packet(std::move(packet));
}

void Daemon::on_link_deliver(NodeId from, Payload&& inner) {
  // Price the protocol processing before doing it: the calibrated per-packet
  // daemon cost (per MTU fragment for bulk payloads such as checkpoints),
  // plus the sequencing decision when we are the leader ordering a Forward
  // (inner[0] == 1 is the Forward tag).
  SimTime cost = params_.packet_cost *
                 static_cast<std::int64_t>(net::fragment_count(inner.size()));
  if (is_leader() && !inner.empty() && inner[0] == 1) {
    cost += params_.sequencer_cost;
  }
  network_.cpu(host()).execute(cost, guarded([this, from, raw = std::move(inner)] {
    handle_inner(from, decode_inner(raw));
  }));
}

void Daemon::handle_inner(NodeId from, InnerMsg&& msg) {
  if (awaiting_sync_ &&
      (std::holds_alternative<Forward>(msg) || std::holds_alternative<OrdAck>(msg))) {
    queued_during_sync_.emplace_back(from, std::move(msg));
    return;
  }
  std::visit(
      [this, from]<typename T>(T& m) {
        if constexpr (std::is_same_v<T, Forward>) handle_forward(from, std::move(m));
        else if constexpr (std::is_same_v<T, Ordered>) handle_ordered(std::move(m));
        else if constexpr (std::is_same_v<T, OrdAck>) handle_ord_ack(m);
        else if constexpr (std::is_same_v<T, StableMsg>) handle_stable(m);
        else if constexpr (std::is_same_v<T, FwdAck>) handle_fwd_ack(m);
        else if constexpr (std::is_same_v<T, Takeover>) handle_takeover(from, m);
        else if constexpr (std::is_same_v<T, SyncState>) handle_sync_state(std::move(m));
        else if constexpr (std::is_same_v<T, PrivateMsg>) handle_private(std::move(m));
        else static_assert(!sizeof(T), "unhandled inner message");
      },
      msg);
}

// --- sending --------------------------------------------------------------------

void Daemon::send_inner(NodeId to, const InnerMsg& msg) {
  if (to == host()) {
    // Loopback: skip the link layer; modest handoff delay, no re-encode.
    post(kLoopbackDelay, [this, m = msg]() mutable { handle_inner(host(), std::move(m)); });
    return;
  }
  link_->send(to, encode_inner(msg), inner_payload_size(msg));
}

void Daemon::emit(const LeaderState::Emissions& emissions) {
  for (const auto& e : emissions) {
    // Encode-once fan-out: the frame is built lazily on the first remote
    // destination and the same frozen buffer is shared across all of them.
    // `encoded` (not frame.empty()) gates the lazy build: a legitimate
    // zero-length frame cannot occur, but an emission with only loopback or
    // dead destinations must not encode at all.
    Payload frame;
    std::size_t payload_bytes = 0;
    bool encoded = false;
    for (NodeId to : e.dests) {
      if (to == host()) {
        // Loopback: skip the link layer; modest handoff delay, no encode.
        post(kLoopbackDelay,
             [this, m = e.msg]() mutable { handle_inner(host(), std::move(m)); });
        continue;
      }
      if (!fd_->alive(to)) continue;
      if (!encoded) {
        frame = encode_inner(e.msg);
        payload_bytes = inner_payload_size(e.msg);
        encoded = true;
      }
      link_->send(to, frame, payload_bytes);
    }
  }
}

void Daemon::send_forward_to_leader(const Forward& fwd) {
  if (leader_ == host()) {
    if (awaiting_sync_) {
      queued_during_sync_.emplace_back(host(), fwd);
      return;
    }
    VDEP_ASSERT(leader_state_ != nullptr);
    order_forward(fwd);
    return;
  }
  send_inner(leader_, fwd);
}

void Daemon::order_forward(const Forward& fwd) {
  // The sequencing decision, as a span parented under the sender's context so
  // the ordered hop shows up inside the request's trace.
  obs::Span span;
  if (fwd.trace.valid()) {
    span = kernel().tracer().start_span("gcs.order", "gcs", name(), fwd.trace);
    span.note("group", std::to_string(fwd.group.value()));
  }
  emit(leader_state_->handle_forward(fwd));
}

// --- message handlers -------------------------------------------------------------

void Daemon::handle_forward(NodeId /*from*/, Forward&& fwd) {
  if (leader_ == host() && leader_state_ != nullptr && !awaiting_sync_) {
    order_forward(fwd);
  } else {
    // Not the leader (stale sender routing): relay toward the current one.
    send_forward_to_leader(fwd);
  }
}

void Daemon::handle_ordered(Ordered&& msg) {
  auto [it, created] = buffers_.try_emplace(msg.group, GroupReceiveBuffer(msg.group));
  auto& buffer = it->second;

  // A forward of ours coming back ordered confirms it; belt-and-braces with
  // the explicit FwdAck.
  pending_.erase(PendingKey{msg.group, msg.origin});

  const GroupId group = msg.group;
  auto result = buffer.offer(msg, host());
  if (result.ack) send_inner(leader_, *result.ack);
  deliver_from_buffer(group);
}

void Daemon::handle_ord_ack(const OrdAck& ack) {
  if (leader_state_ != nullptr && !awaiting_sync_) {
    leader_state_->handle_ack(ack);
  }
}

void Daemon::handle_stable(const StableMsg& stable) {
  auto it = buffers_.find(stable.group);
  if (it == buffers_.end()) return;
  it->second.set_stable(stable.epoch, stable.upto);
  deliver_from_buffer(stable.group);
}

void Daemon::handle_fwd_ack(const FwdAck& ack) {
  pending_.erase(PendingKey{ack.group, ack.origin});
}

void Daemon::handle_takeover(NodeId from, const Takeover& t) {
  if (t.term <= term_) return;  // stale
  term_ = t.term;
  leader_ = t.leader;
  // Abort any takeover attempt of our own at a lower term.
  awaiting_sync_ = false;
  sync_collected_.clear();
  // The new leader only rose because everyone below it died.
  for (NodeId d : all_daemons_) {
    if (d < t.leader && d != host()) fd_->mark_dead(d);
  }
  if (leader_ != host()) leader_state_.reset();
  log_info(now(), "gcs", name() + " accepts leader daemon@" + t.leader.str() +
                             " term " + std::to_string(t.term));
  send_inner(from, local_sync_state(t.term));
}

void Daemon::handle_sync_state(SyncState&& st) {
  if (!awaiting_sync_ || st.term != sync_term_) return;
  sync_collected_.emplace(st.from, std::move(st));
  maybe_finish_takeover();
}

void Daemon::handle_private(PrivateMsg&& msg) {
  if (!endpoints_.contains(msg.destination)) return;
  const ProcessId dst = msg.destination;
  post(kLoopbackDelay, [this, dst, m = std::move(msg)] {
    auto eit = endpoints_.find(dst);
    if (eit == endpoints_.end()) return;
    // Copy: a handler may destroy/create endpoints.
    auto eps = eit->second;
    for (Endpoint* ep : eps) {
      if (!ep->process().alive()) continue;
      obs::Span span;
      if (m.trace.valid()) {
        span = kernel().tracer().start_span("gcs.deliver", "gcs", name(), m.trace);
      }
      obs::Tracer::Scope scope(kernel().tracer(),
                               span.active() ? span.context() : m.trace);
      ep->deliver_private(PrivateMessage{m.sender, m.destination, m.payload, m.trace});
    }
  });
}

// --- delivery to local endpoints ----------------------------------------------------

void Daemon::deliver_from_buffer(GroupId group) {
  auto it = buffers_.find(group);
  if (it == buffers_.end()) return;
  std::vector<LocalDelivery> batch;
  for (const Ordered& msg : it->second.take_deliverable()) {
    deliver_one(msg, batch);
  }
  if (!batch.empty()) {
    // One kernel event for the whole deliverable run. The per-item posts this
    // replaces were scheduled back-to-back at the same time, so they fired as
    // consecutive same-tick events anyway — running the items in order inside
    // one dispatch preserves that order exactly.
    post(kLoopbackDelay, [this, items = std::move(batch)] {
      for (const LocalDelivery& d : items) fire_local_delivery(d);
    });
  }
  // Stop tracking groups we no longer serve.
  auto vit = delivery_views_.find(group);
  if (vit != delivery_views_.end()) {
    const bool any_local = std::any_of(
        vit->second.members.begin(), vit->second.members.end(),
        [this](const Member& m) { return m.daemon == host(); });
    if (!any_local) {
      buffers_.erase(group);
      delivery_views_.erase(vit);
    }
  }
}

void Daemon::deliver_one(const Ordered& msg, std::vector<LocalDelivery>& batch) {
  if (msg.kind == Ordered::Kind::kView) {
    View view = View::decode(msg.payload);
    if (kernel().tracer().enabled()) {
      // View changes start their own trace: nothing upstream caused them from
      // the application's point of view.
      auto span = kernel().tracer().start_span("gcs.view", "gcs", name());
      span.note("group", std::to_string(view.group.value()));
      span.note("view_id", std::to_string(view.view_id));
      span.note("members", std::to_string(view.members.size()));
    }
    // Notify local processes that are in the new view or were in the old one
    // (so leavers learn of their own removal).
    std::set<ProcessId> notify;
    auto old = delivery_views_.find(msg.group);
    if (old != delivery_views_.end()) {
      for (const auto& m : old->second.members) {
        if (m.daemon == host()) notify.insert(m.process);
      }
    }
    for (const auto& m : view.members) {
      if (m.daemon == host()) notify.insert(m.process);
    }
    delivery_views_[msg.group] = view;
    for (ProcessId pid : notify) {
      batch.push_back(LocalDelivery{pid, view, GroupMessage{}});
    }
    return;
  }

  auto vit = delivery_views_.find(msg.group);
  if (vit == delivery_views_.end()) return;
  for (const auto& m : vit->second.members) {
    if (m.daemon != host()) continue;
    GroupMessage gm;
    gm.group = msg.group;
    gm.svc = msg.svc;
    gm.sender = msg.origin.sender;
    gm.sender_daemon = msg.origin_daemon;
    gm.payload = msg.payload;
    gm.trace = msg.trace;
    batch.push_back(LocalDelivery{m.process, std::nullopt, std::move(gm)});
  }
}

void Daemon::fire_local_delivery(const LocalDelivery& d) {
  auto eit = endpoints_.find(d.pid);
  if (eit == endpoints_.end()) return;
  // Copy: delivery may register/unregister endpoints.
  auto eps = eit->second;
  if (d.view) {
    for (Endpoint* ep : eps) {
      if (!ep->process().alive()) continue;
      // Only the endpoint joined to this group cares; a voluntary leaver
      // already knows it left and gets no farewell view.
      if (!ep->joined_groups().contains(d.view->group)) continue;
      ep->deliver_view(*d.view);
    }
    return;
  }
  for (Endpoint* ep : eps) {
    if (!ep->process().alive()) continue;
    if (!ep->joined_groups().contains(d.gm.group)) continue;
    obs::Span span;
    if (d.gm.trace.valid()) {
      span = kernel().tracer().start_span("gcs.deliver", "gcs", name(), d.gm.trace);
    }
    obs::Tracer::Scope scope(kernel().tracer(),
                             span.active() ? span.context() : d.gm.trace);
    ep->deliver_message(d.gm);
  }
}

// --- leadership -----------------------------------------------------------------------

NodeId Daemon::lowest_live_daemon() const {
  for (NodeId d : all_daemons_) {
    if (d == host() || fd_->alive(d)) return d;
  }
  return host();
}

void Daemon::on_suspect(NodeId daemon) {
  link_->forget_peer(daemon);

  if (leader_state_ != nullptr && !awaiting_sync_ && leader_ == host()) {
    emit(leader_state_->handle_daemon_death(daemon));
  }
  if (awaiting_sync_) {
    sync_collected_.erase(daemon);
    maybe_finish_takeover();
    return;
  }
  if (daemon == leader_) {
    const NodeId next = lowest_live_daemon();
    if (next == host()) {
      start_takeover();
    } else {
      leader_ = next;  // tentative; the Takeover announcement confirms it
    }
  }
}

void Daemon::start_takeover() {
  awaiting_sync_ = true;
  sync_term_ = term_ + 1;
  sync_collected_.clear();
  sync_collected_.emplace(host(), local_sync_state(sync_term_));
  log_info(now(), "gcs", name() + " starts takeover, term " + std::to_string(sync_term_));
  for (NodeId d : fd_->live_peers()) {
    send_inner(d, Takeover{sync_term_, host()});
  }
  maybe_finish_takeover();
}

void Daemon::maybe_finish_takeover() {
  if (!awaiting_sync_) return;
  for (NodeId d : fd_->live_peers()) {
    if (!sync_collected_.contains(d)) return;  // still waiting
  }
  awaiting_sync_ = false;
  term_ = sync_term_;
  leader_ = host();

  std::vector<SyncState> states;
  for (auto& [daemon, st] : sync_collected_) states.push_back(std::move(st));
  sync_collected_.clear();

  std::vector<NodeId> live = fd_->live_peers();
  live.push_back(host());
  std::sort(live.begin(), live.end());

  leader_state_ = std::make_unique<LeaderState>(host());
  if (kernel().tracer().enabled()) {
    auto span = kernel().tracer().start_span("gcs.takeover", "gcs", name());
    span.note("term", std::to_string(term_));
    span.note("synced_daemons", std::to_string(states.size()));
  }
  log_info(now(), "gcs", name() + " is leader, term " + std::to_string(term_));
  emit(leader_state_->bootstrap(states, live));

  auto queued = std::move(queued_during_sync_);
  queued_during_sync_.clear();
  for (auto& [from, msg] : queued) handle_inner(from, std::move(msg));
}

SyncState Daemon::local_sync_state(std::uint64_t term) const {
  SyncState st;
  st.term = term;
  st.from = host();
  for (const auto& [group, buffer] : buffers_) {
    auto buffered = buffer.snapshot_buffered();
    st.buffered.insert(st.buffered.end(), buffered.begin(), buffered.end());
    auto acks = buffer.current_acks(host());
    st.acks.insert(st.acks.end(), acks.begin(), acks.end());
    if (buffer.last_delivered_view()) st.views.push_back(*buffer.last_delivered_view());
  }
  for (const auto& [key, fwd] : pending_) st.pending.push_back(fwd);
  return st;
}

// --- endpoint interface ------------------------------------------------------------------

void Daemon::register_endpoint(Endpoint& ep) {
  const ProcessId pid = ep.id();
  endpoints_[pid].push_back(&ep);
  if (health_ != nullptr) {
    health_->on_endpoint_registered(pid, host(), ep.process().name(), now());
  }
  if (crash_subscribed_.insert(pid).second) {
    ep.process().subscribe_crash([this, pid](ProcessId) {
      if (!alive()) return;
      auto it = endpoints_.find(pid);
      if (it == endpoints_.end()) return;
      auto eps = it->second;
      if (health_ != nullptr && !eps.empty()) {
        health_->on_endpoint_crashed(pid, host(), eps.front()->process().name(), now());
      }
      for (Endpoint* dead : eps) {
        for (GroupId group : dead->joined_groups()) {
          Forward fwd;
          fwd.group = group;
          fwd.kind = Forward::Kind::kCrash;
          fwd.origin = OriginId{pid, dead->next_origin_seq()};
          fwd.origin_daemon = host();
          pending_[PendingKey{group, fwd.origin}] = fwd;
          send_forward_to_leader(fwd);
        }
        dead->joined_.clear();
      }
    });
  }
}

void Daemon::unregister_endpoint(Endpoint& ep) {
  auto it = endpoints_.find(ep.id());
  if (it == endpoints_.end()) return;
  std::erase(it->second, &ep);
  if (it->second.empty()) endpoints_.erase(it);
}

void Daemon::submit_join(ProcessId pid, GroupId group, std::uint64_t origin_seq) {
  Forward fwd;
  fwd.group = group;
  fwd.kind = Forward::Kind::kJoin;
  fwd.origin = OriginId{pid, origin_seq};
  fwd.origin_daemon = host();
  network_.cpu(host()).execute(params_.control_cost, guarded([this, fwd] {
    pending_[PendingKey{fwd.group, fwd.origin}] = fwd;
    send_forward_to_leader(fwd);
  }));
}

void Daemon::submit_leave(ProcessId pid, GroupId group, std::uint64_t origin_seq) {
  Forward fwd;
  fwd.group = group;
  fwd.kind = Forward::Kind::kLeave;
  fwd.origin = OriginId{pid, origin_seq};
  fwd.origin_daemon = host();
  network_.cpu(host()).execute(params_.control_cost, guarded([this, fwd] {
    pending_[PendingKey{fwd.group, fwd.origin}] = fwd;
    send_forward_to_leader(fwd);
  }));
}

void Daemon::submit_multicast(ProcessId pid, GroupId group, ServiceType svc,
                              Payload payload, std::uint64_t origin_seq) {
  Forward fwd;
  fwd.group = group;
  fwd.kind = Forward::Kind::kData;
  fwd.svc = svc;
  fwd.origin = OriginId{pid, origin_seq};
  fwd.origin_daemon = host();
  fwd.payload = std::move(payload);
  // Capture the caller's context synchronously — by the time the CPU queue
  // runs the send, `current()` belongs to someone else.
  fwd.trace = kernel().tracer().current();
  const SimTime cost =
      params_.packet_cost * static_cast<std::int64_t>(net::fragment_count(fwd.payload.size()));
  network_.cpu(host()).execute(cost, guarded([this, fwd = std::move(fwd)] {
    if (fwd.svc != ServiceType::kBestEffort) {
      pending_[PendingKey{fwd.group, fwd.origin}] = fwd;
    }
    send_forward_to_leader(fwd);
  }));
}

void Daemon::submit_unicast(ProcessId pid, ProcessId dst, NodeId dst_daemon,
                            Payload payload) {
  PrivateMsg msg;
  msg.sender = pid;
  msg.sender_daemon = host();
  msg.destination = dst;
  msg.payload = std::move(payload);
  msg.trace = kernel().tracer().current();
  const SimTime cost = params_.packet_cost *
                       static_cast<std::int64_t>(net::fragment_count(msg.payload.size()));
  network_.cpu(host()).execute(cost, guarded([this, dst_daemon, m = std::move(msg)] {
    send_inner(dst_daemon, m);
  }));
}

}  // namespace vdep::gcs
