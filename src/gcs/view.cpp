#include "gcs/view.hpp"

#include <algorithm>
#include <sstream>

namespace vdep::gcs {

bool View::contains(ProcessId p) const {
  return std::any_of(members.begin(), members.end(),
                     [p](const Member& m) { return m.process == p; });
}

std::optional<NodeId> View::daemon_of(ProcessId p) const {
  for (const auto& m : members) {
    if (m.process == p) return m.daemon;
  }
  return std::nullopt;
}

std::optional<std::size_t> View::rank_of(ProcessId p) const {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].process == p) return i;
  }
  return std::nullopt;
}

Bytes View::encode() const {
  ByteWriter w;
  w.u64(group.value());
  w.u64(view_id);
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const auto& m : members) {
    w.u64(m.process.value());
    w.u64(m.daemon.value());
  }
  return std::move(w).take();
}

View View::decode(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  View v;
  v.group = GroupId{r.u64()};
  v.view_id = r.u64();
  const auto n = r.u32();
  v.members.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Member m;
    m.process = ProcessId{r.u64()};
    m.daemon = NodeId{r.u64()};
    v.members.push_back(m);
  }
  return v;
}

std::string View::str() const {
  std::ostringstream os;
  os << "view(g=" << group.str() << ", id=" << view_id << ", members=[";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i) os << ",";
    os << members[i].process.str();
  }
  os << "])";
  return os.str();
}

}  // namespace vdep::gcs
