#include "gcs/message.hpp"

#include "util/assert.hpp"

namespace vdep::gcs {

std::string to_string(ServiceType svc) {
  switch (svc) {
    case ServiceType::kBestEffort: return "best_effort";
    case ServiceType::kReliable: return "reliable";
    case ServiceType::kFifo: return "fifo";
    case ServiceType::kCausal: return "causal";
    case ServiceType::kAgreed: return "agreed";
    case ServiceType::kSafe: return "safe";
  }
  return "?";
}

namespace {

enum class Tag : std::uint8_t {
  kForward = 1,
  kOrdered = 2,
  kOrdAck = 3,
  kStable = 4,
  kTakeover = 5,
  kSyncState = 6,
  kPrivate = 7,
  kFwdAck = 8,
};

ServiceType decode_svc(ByteReader& r) {
  const auto v = r.u8();
  if (v > static_cast<std::uint8_t>(ServiceType::kSafe)) {
    throw r.error("bad service type", r.pos() - 1);
  }
  return static_cast<ServiceType>(v);
}

// Per-thread: trials on the parallel campaign fleet each count their own
// encodes without racing (the encode-count test reads it on its own thread).
thread_local std::uint64_t g_encode_inner_count = 0;

}  // namespace

std::uint64_t encode_inner_count() { return g_encode_inner_count; }

void Forward::encode_to(ByteWriter& w) const {
  w.u64(group.value());
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(svc));
  w.u64(origin.sender.value());
  w.u64(origin.seq);
  w.u64(origin_daemon.value());
  w.bytes(payload);
  trace.encode_to(w);
}

Forward Forward::decode(ByteReader& r) {
  Forward f;
  f.group = GroupId{r.u64()};
  const auto kind = r.u8();
  if (kind > 3) throw r.error("bad forward kind", r.pos() - 1);
  f.kind = static_cast<Kind>(kind);
  f.svc = decode_svc(r);
  f.origin.sender = ProcessId{r.u64()};
  f.origin.seq = r.u64();
  f.origin_daemon = NodeId{r.u64()};
  f.payload = read_payload(r);
  f.trace = obs::TraceContext::decode(r);
  return f;
}

void Ordered::encode_to(ByteWriter& w) const {
  w.u64(group.value());
  w.u64(epoch);
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(svc));
  w.u64(origin.sender.value());
  w.u64(origin.seq);
  w.u64(origin_daemon.value());
  w.bytes(payload);
  w.u64(prev_epoch_end);
  w.u64(stable_upto);
  trace.encode_to(w);
}

Ordered Ordered::decode(ByteReader& r) {
  Ordered o;
  o.group = GroupId{r.u64()};
  o.epoch = r.u64();
  o.seq = r.u64();
  const auto kind = r.u8();
  if (kind > 1) throw r.error("bad ordered kind", r.pos() - 1);
  o.kind = static_cast<Kind>(kind);
  o.svc = decode_svc(r);
  o.origin.sender = ProcessId{r.u64()};
  o.origin.seq = r.u64();
  o.origin_daemon = NodeId{r.u64()};
  o.payload = read_payload(r);
  o.prev_epoch_end = r.u64();
  o.stable_upto = r.u64();
  o.trace = obs::TraceContext::decode(r);
  return o;
}

void OrdAck::encode_to(ByteWriter& w) const {
  w.u64(from.value());
  w.u64(group.value());
  w.u64(epoch);
  w.u64(seq);
}

OrdAck OrdAck::decode(ByteReader& r) {
  OrdAck a;
  a.from = NodeId{r.u64()};
  a.group = GroupId{r.u64()};
  a.epoch = r.u64();
  a.seq = r.u64();
  return a;
}

void StableMsg::encode_to(ByteWriter& w) const {
  w.u64(group.value());
  w.u64(epoch);
  w.u64(upto);
}

StableMsg StableMsg::decode(ByteReader& r) {
  StableMsg s;
  s.group = GroupId{r.u64()};
  s.epoch = r.u64();
  s.upto = r.u64();
  return s;
}

void Takeover::encode_to(ByteWriter& w) const {
  w.u64(term);
  w.u64(leader.value());
}

Takeover Takeover::decode(ByteReader& r) {
  Takeover t;
  t.term = r.u64();
  t.leader = NodeId{r.u64()};
  return t;
}

void FwdAck::encode_to(ByteWriter& w) const {
  w.u64(group.value());
  w.u64(origin.sender.value());
  w.u64(origin.seq);
}

FwdAck FwdAck::decode(ByteReader& r) {
  FwdAck a;
  a.group = GroupId{r.u64()};
  a.origin.sender = ProcessId{r.u64()};
  a.origin.seq = r.u64();
  return a;
}

void SyncState::encode_to(ByteWriter& w) const {
  w.u64(term);
  w.u64(from.value());
  w.u32(static_cast<std::uint32_t>(buffered.size()));
  for (const auto& o : buffered) o.encode_to(w);
  w.u32(static_cast<std::uint32_t>(pending.size()));
  for (const auto& f : pending) f.encode_to(w);
  w.u32(static_cast<std::uint32_t>(views.size()));
  for (const auto& v : views) w.bytes(v.encode());
  w.u32(static_cast<std::uint32_t>(acks.size()));
  for (const auto& a : acks) a.encode_to(w);
}

SyncState SyncState::decode(ByteReader& r) {
  SyncState s;
  s.term = r.u64();
  s.from = NodeId{r.u64()};
  const auto nb = r.u32();
  s.buffered.reserve(nb);
  for (std::uint32_t i = 0; i < nb; ++i) s.buffered.push_back(Ordered::decode(r));
  const auto np = r.u32();
  s.pending.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) s.pending.push_back(Forward::decode(r));
  const auto nv = r.u32();
  s.views.reserve(nv);
  for (std::uint32_t i = 0; i < nv; ++i) s.views.push_back(View::decode(r.bytes_view()));
  const auto na = r.u32();
  s.acks.reserve(na);
  for (std::uint32_t i = 0; i < na; ++i) s.acks.push_back(OrdAck::decode(r));
  return s;
}

void PrivateMsg::encode_to(ByteWriter& w) const {
  w.u64(sender.value());
  w.u64(sender_daemon.value());
  w.u64(destination.value());
  w.bytes(payload);
  trace.encode_to(w);
}

PrivateMsg PrivateMsg::decode(ByteReader& r) {
  PrivateMsg p;
  p.sender = ProcessId{r.u64()};
  p.sender_daemon = NodeId{r.u64()};
  p.destination = ProcessId{r.u64()};
  p.payload = read_payload(r);
  p.trace = obs::TraceContext::decode(r);
  return p;
}

Payload encode_inner(const InnerMsg& msg) {
  ++g_encode_inner_count;
  ByteWriter w;
  std::visit(
      [&w]<typename T>(const T& m) {
        if constexpr (std::is_same_v<T, Forward>) w.u8(static_cast<std::uint8_t>(Tag::kForward));
        else if constexpr (std::is_same_v<T, Ordered>) w.u8(static_cast<std::uint8_t>(Tag::kOrdered));
        else if constexpr (std::is_same_v<T, OrdAck>) w.u8(static_cast<std::uint8_t>(Tag::kOrdAck));
        else if constexpr (std::is_same_v<T, StableMsg>) w.u8(static_cast<std::uint8_t>(Tag::kStable));
        else if constexpr (std::is_same_v<T, Takeover>) w.u8(static_cast<std::uint8_t>(Tag::kTakeover));
        else if constexpr (std::is_same_v<T, SyncState>) w.u8(static_cast<std::uint8_t>(Tag::kSyncState));
        else if constexpr (std::is_same_v<T, PrivateMsg>) w.u8(static_cast<std::uint8_t>(Tag::kPrivate));
        else if constexpr (std::is_same_v<T, FwdAck>) w.u8(static_cast<std::uint8_t>(Tag::kFwdAck));
        else static_assert(!sizeof(T), "unhandled message type");
        m.encode_to(w);
      },
      msg);
  return std::move(w).take();
}

namespace {

InnerMsg decode_inner_impl(ByteReader& r) {
  const auto tag = r.u8();
  switch (static_cast<Tag>(tag)) {
    case Tag::kForward: return Forward::decode(r);
    case Tag::kOrdered: return Ordered::decode(r);
    case Tag::kOrdAck: return OrdAck::decode(r);
    case Tag::kStable: return StableMsg::decode(r);
    case Tag::kTakeover: return Takeover::decode(r);
    case Tag::kSyncState: return SyncState::decode(r);
    case Tag::kPrivate: return PrivateMsg::decode(r);
    case Tag::kFwdAck: return FwdAck::decode(r);
  }
  throw r.error("bad inner message tag", r.pos() - 1);
}

}  // namespace

InnerMsg decode_inner(const Payload& frame) {
  ByteReader r(frame.owner(), frame);
  return decode_inner_impl(r);
}

InnerMsg decode_inner(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  return decode_inner_impl(r);
}

std::size_t inner_payload_size(const InnerMsg& msg) {
  return std::visit(
      []<typename T>(const T& m) -> std::size_t {
        if constexpr (std::is_same_v<T, Forward> || std::is_same_v<T, Ordered> ||
                      std::is_same_v<T, PrivateMsg>) {
          return m.payload.size();
        } else if constexpr (std::is_same_v<T, SyncState>) {
          std::size_t total = 0;
          for (const auto& o : m.buffered) total += o.payload.size();
          for (const auto& f : m.pending) total += f.payload.size();
          return total;
        } else {
          return 0;
        }
      },
      msg);
}

}  // namespace vdep::gcs
