// Application-process handle onto the group-communication system.
//
// An Endpoint attaches a simulated process to its host's daemon; through it
// the process joins groups, multicasts with a chosen service level, sends
// point-to-point datagrams (Spread private groups), and receives ordered
// messages and membership views. When the owning process crashes, the daemon
// reports a crash-leave for every group it had joined — this is the fault
// notification the replication layer's failover logic runs on.
#pragma once

#include <functional>
#include <set>

#include "gcs/daemon.hpp"

namespace vdep::gcs {

class Endpoint {
 public:
  using MessageHandler = std::function<void(const GroupMessage&)>;
  using ViewHandler = std::function<void(const View&)>;
  using PrivateHandler = std::function<void(const PrivateMessage&)>;

  // Attaches `process` to `daemon` (they must share a host).
  Endpoint(Daemon& daemon, sim::Process& process);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  void set_message_handler(MessageHandler fn) { on_message_ = std::move(fn); }
  void set_view_handler(ViewHandler fn) { on_view_ = std::move(fn); }
  void set_private_handler(PrivateHandler fn) { on_private_ = std::move(fn); }

  void join(GroupId group);
  void leave(GroupId group);

  // Multicast to a group. The sender need not be a member (open groups, as
  // in Spread): clients send requests into server groups this way. The
  // payload buffer is frozen and shared down the whole send path.
  void multicast(GroupId group, ServiceType svc, Payload payload);

  // Point-to-point reliable FIFO datagram.
  void unicast(ProcessId dst, NodeId dst_daemon, Payload payload);

  [[nodiscard]] ProcessId id() const { return process_.id(); }
  [[nodiscard]] NodeId daemon_host() const { return daemon_.host(); }
  [[nodiscard]] sim::Process& process() { return process_; }
  [[nodiscard]] const std::set<GroupId>& joined_groups() const { return joined_; }

 private:
  friend class Daemon;

  // Called by the daemon (already loopback-delayed and liveness-guarded).
  void deliver_message(const GroupMessage& msg);
  void deliver_view(const View& view);
  void deliver_private(const PrivateMessage& msg);

  std::uint64_t next_origin_seq() { return ++origin_seq_; }

  Daemon& daemon_;
  sim::Process& process_;
  std::set<GroupId> joined_;
  // One counter across groups keeps OriginIds unique per sender everywhere.
  std::uint64_t origin_seq_ = 0;
  MessageHandler on_message_;
  ViewHandler on_view_;
  PrivateHandler on_private_;
};

}  // namespace vdep::gcs
