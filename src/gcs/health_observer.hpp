// Liveness-signal taps published by the GCS daemon.
//
// The health plane (monitor/health) wants the daemon's raw observations:
// heartbeat arrivals on the daemon mesh and local endpoint lifecycle. The
// monitor layer links against gcs — not the other way around — so the
// daemon publishes through this interface and monitor::health::HealthMonitor
// implements it. Every call site is a single nullptr-guarded branch, so an
// unobserved daemon pays one predicted-not-taken compare (the same
// discipline as the tracer's inert fast path).
#pragma once

#include <string_view>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace vdep::gcs {

class HealthObserver {
 public:
  virtual ~HealthObserver() = default;

  // A daemon heartbeat from `from` arrived at daemon `at` (link level, before
  // any CPU queueing — the inter-arrival times feed phi-accrual detectors).
  virtual void on_heartbeat(NodeId from, NodeId at, SimTime now) = 0;

  // A local process registered an endpoint with its daemon (replica boot or
  // recovery; fires once per endpoint, so several times per process).
  virtual void on_endpoint_registered(ProcessId pid, NodeId host,
                                      std::string_view name, SimTime now) = 0;

  // A local process with registered endpoints crashed (fires once per
  // process per crash, at the crash instant).
  virtual void on_endpoint_crashed(ProcessId pid, NodeId host,
                                   std::string_view name, SimTime now) = 0;
};

}  // namespace vdep::gcs
