// Group membership views.
//
// A view is the agreed membership of one group at one moment; views are
// delivered inside the group's totally-ordered message stream, so every
// member sees the same sequence of views interleaved identically with
// regular messages. The paper's switch protocol relies on exactly this
// property ("fault notifications are ordered consistently with respect to
// the 'switch' and the other messages").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace vdep::gcs {

struct Member {
  ProcessId process;
  NodeId daemon;  // host whose daemon serves this process

  friend constexpr auto operator<=>(const Member&, const Member&) = default;
};

struct View {
  GroupId group;
  // Monotonically increasing per group; also the epoch of the ordered stream.
  std::uint64_t view_id = 0;
  std::vector<Member> members;  // in seniority (join) order, oldest first

  [[nodiscard]] bool contains(ProcessId p) const;
  [[nodiscard]] std::optional<NodeId> daemon_of(ProcessId p) const;
  // Deterministic rank of a member (index in the seniority-ordered member
  // list); the replication layer uses rank 0 — the longest-lived member —
  // as the primary / preferred responder.
  [[nodiscard]] std::optional<std::size_t> rank_of(ProcessId p) const;
  [[nodiscard]] std::size_t size() const { return members.size(); }

  [[nodiscard]] Bytes encode() const;
  static View decode(std::span<const std::uint8_t> raw);

  [[nodiscard]] std::string str() const;

  friend bool operator==(const View&, const View&) = default;
};

}  // namespace vdep::gcs
