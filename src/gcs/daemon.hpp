// The group-communication daemon: one per host, Spread-style.
//
// Responsibilities:
//  - serve local application processes (Endpoints): join/leave/multicast,
//    ordered delivery, membership views, point-to-point datagrams;
//  - run the reliable link layer and heartbeat failure detection among
//    daemons;
//  - route order requests to the current leader daemon (the lowest-id live
//    daemon), which runs LeaderState to sequence messages and membership
//    changes;
//  - take over leadership when the leader dies: broadcast Takeover, collect
//    SyncStates from all live daemons, bootstrap a new LeaderState from the
//    union of their buffers, replay unstable history and pending forwards.
//
// Costs: every data packet charges the host CPU the calibrated per-packet
// daemon cost (times its MTU fragment count); the leader charges an extra
// sequencing cost per ordered message. This is what makes large warm-passive
// checkpoints expensive, as on the paper's testbed.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "gcs/failure_detector.hpp"
#include "gcs/health_observer.hpp"
#include "gcs/membership.hpp"
#include "gcs/ordering.hpp"
#include "gcs/reliable_link.hpp"
#include "net/network.hpp"
#include "sim/actor.hpp"

namespace vdep::gcs {

class Endpoint;

struct DaemonParams {
  SimTime heartbeat_interval = calib::kDefaultHeartbeatInterval;
  int heartbeat_misses = calib::kDefaultHeartbeatMisses;
  SimTime packet_cost = calib::kGcsDaemonPacketCost;
  SimTime sequencer_cost = calib::kGcsSequencerCost;
  SimTime control_cost = usec(5);
  // Token rotation period: how often the leader publishes stability
  // watermarks (gates SAFE delivery).
  SimTime stability_token_interval = calib::kStabilityTokenInterval;
};

class Daemon : public sim::Process {
 public:
  Daemon(sim::Kernel& kernel, net::Network& network, ProcessId pid, NodeId host,
         std::vector<NodeId> all_daemon_hosts, DaemonParams params = {});
  ~Daemon() override;

  // Binds the network port and starts heartbeats. Call once, after every
  // daemon in the scenario is constructed.
  void boot();

  // --- Endpoint interface (used by gcs::Endpoint) -----------------------------
  // A process may hold several endpoints (e.g. its replicator and its
  // replicated-state object), each joined to different groups.
  void register_endpoint(Endpoint& ep);
  void unregister_endpoint(Endpoint& ep);

  void submit_join(ProcessId pid, GroupId group, std::uint64_t origin_seq);
  void submit_leave(ProcessId pid, GroupId group, std::uint64_t origin_seq);
  void submit_multicast(ProcessId pid, GroupId group, ServiceType svc, Payload payload,
                        std::uint64_t origin_seq);
  void submit_unicast(ProcessId pid, ProcessId dst, NodeId dst_daemon, Payload payload);

  // --- introspection ------------------------------------------------------------
  [[nodiscard]] NodeId current_leader() const { return leader_; }
  [[nodiscard]] bool is_leader() const { return leader_ == host() && !awaiting_sync_; }
  [[nodiscard]] const FailureDetector& failure_detector() const { return *fd_; }
  [[nodiscard]] std::uint64_t term() const { return term_; }

  // Health-plane tap (see gcs/health_observer.hpp). The observer must
  // outlive the daemon; nullptr detaches.
  void set_health_observer(HealthObserver* observer) { health_ = observer; }

  void on_crash() override;

 private:
  friend class Endpoint;

  // Packet pipeline.
  void on_packet(net::Packet&& packet);
  void on_link_deliver(NodeId from, Payload&& inner);
  void handle_inner(NodeId from, InnerMsg&& msg);

  void handle_forward(NodeId from, Forward&& fwd);
  void handle_ordered(Ordered&& msg);
  void handle_ord_ack(const OrdAck& ack);
  void handle_stable(const StableMsg& stable);
  void handle_fwd_ack(const FwdAck& ack);
  void handle_takeover(NodeId from, const Takeover& t);
  void handle_sync_state(SyncState&& st);
  void handle_private(PrivateMsg&& msg);

  // Sending.
  void send_inner(NodeId to, const InnerMsg& msg);
  void emit(const LeaderState::Emissions& emissions);
  void send_forward_to_leader(const Forward& fwd);
  void order_forward(const Forward& fwd);  // leader-side sequencing (+span)

  // Delivery to local endpoints. An ordered message ready for delivery
  // becomes one LocalDelivery per local member; the whole batch popped by a
  // single take_deliverable() call rides one kernel event (the items fire
  // back-to-back at the same instant a per-item post would have run them,
  // so a multicast round costs one dispatch instead of N).
  struct LocalDelivery {
    ProcessId pid;
    std::optional<View> view;  // set for view notifications
    GroupMessage gm;           // payload delivery otherwise
  };
  void deliver_from_buffer(GroupId group);
  void deliver_one(const Ordered& msg, std::vector<LocalDelivery>& batch);
  void fire_local_delivery(const LocalDelivery& d);

  // Leadership.
  void stability_token_tick();
  void on_suspect(NodeId daemon);
  void start_takeover();
  void maybe_finish_takeover();
  [[nodiscard]] SyncState local_sync_state(std::uint64_t term) const;
  [[nodiscard]] NodeId lowest_live_daemon() const;

  // Pending forwards (sent but not yet acknowledged as ordered).
  struct PendingKey {
    GroupId group;
    OriginId origin;
    auto operator<=>(const PendingKey&) const = default;
  };

  net::Network& network_;
  DaemonParams params_;
  std::vector<NodeId> all_daemons_;
  HealthObserver* health_ = nullptr;
  std::unique_ptr<ReliableLink> link_;
  std::unique_ptr<FailureDetector> fd_;

  NodeId leader_;
  std::uint64_t term_ = 0;

  // Leader role.
  std::unique_ptr<LeaderState> leader_state_;

  // Takeover-in-progress state.
  bool awaiting_sync_ = false;
  std::uint64_t sync_term_ = 0;
  std::map<NodeId, SyncState> sync_collected_;
  std::vector<std::pair<NodeId, InnerMsg>> queued_during_sync_;

  // Member-daemon role.
  std::map<GroupId, GroupReceiveBuffer> buffers_;
  // Last view delivered to local endpoints, per group (governs which local
  // processes receive data messages).
  std::map<GroupId, View> delivery_views_;

  std::map<PendingKey, Forward> pending_;
  std::map<ProcessId, std::vector<Endpoint*>> endpoints_;
  std::set<ProcessId> crash_subscribed_;
};

}  // namespace vdep::gcs
