#include "gcs/ordering.hpp"

#include "util/assert.hpp"

namespace vdep::gcs {

std::uint64_t GroupReceiveBuffer::contiguous_seq(std::uint64_t epoch) const {
  auto it = contiguous_count_.find(epoch);
  // count == n means seqs [0, n-1] received; returns one past the last, i.e.
  // the next seq expected for contiguity.
  return it == contiguous_count_.end() ? 0 : it->second;
}

bool GroupReceiveBuffer::is_duplicate(const Ordered& msg) const {
  if (anchored_ && msg.epoch < anchor_floor()) return true;
  if (msg.seq < contiguous_seq(msg.epoch)) return true;
  auto pit = pending_seqs_.find(msg.epoch);
  if (pit != pending_seqs_.end() && pit->second.contains(msg.seq)) return true;
  return false;
}

GroupReceiveBuffer::OfferResult GroupReceiveBuffer::offer(const Ordered& msg,
                                                          NodeId self) {
  VDEP_ASSERT(msg.group == group_);
  OfferResult result;

  // Piggybacked stability is useful even on duplicates.
  set_stable(msg.epoch, msg.stable_upto);

  if (is_duplicate(msg)) return result;

  // Anchor on the first view message we ever accept.
  if (!anchored_) {
    if (msg.kind != Ordered::Kind::kView) {
      // Data for an epoch whose view we have not seen yet: buffer it; the
      // view will arrive (FIFO from the leader or takeover replay).
      if (msg.seq == 0) return result;  // seq 0 must be a view
    } else if (anchor_epoch_candidate_ == 0 || msg.epoch < anchor_epoch_candidate_) {
      anchor_epoch_candidate_ = msg.epoch;
    }
  }

  result.accepted = true;
  buffer_.emplace(std::make_pair(msg.epoch, msg.seq), msg);
  pending_seqs_[msg.epoch].insert(msg.seq);
  extend_contiguity(msg.epoch);

  const std::uint64_t contig = contiguous_seq(msg.epoch);
  if (contig > 0) {
    result.ack = OrdAck{self, group_, msg.epoch, contig - 1};
  }
  return result;
}

void GroupReceiveBuffer::extend_contiguity(std::uint64_t epoch) {
  auto& count = contiguous_count_[epoch];
  auto& pending = pending_seqs_[epoch];
  while (pending.contains(count)) {
    pending.erase(count);
    ++count;
  }
}

void GroupReceiveBuffer::set_stable(std::uint64_t epoch, std::uint64_t stable_count) {
  auto& cur = stable_upto_[epoch];
  if (stable_count > cur) {
    cur = stable_count;
    garbage_collect(epoch);
  }
}

void GroupReceiveBuffer::garbage_collect(std::uint64_t epoch) {
  const std::uint64_t stable_count = stable_upto_[epoch];
  auto it = buffer_.lower_bound({epoch, 0});
  while (it != buffer_.end() && it->first.first == epoch) {
    const std::uint64_t seq = it->first.second;
    const bool delivered =
        anchored_ && (epoch < current_epoch_ ||
                      (epoch == current_epoch_ && seq < next_seq_));
    if (seq < stable_count && delivered) {
      it = buffer_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<Ordered> GroupReceiveBuffer::take_deliverable() {
  std::vector<Ordered> out;
  for (;;) {
    if (!anchored_) {
      if (anchor_epoch_candidate_ == 0) break;
      auto it = buffer_.find({anchor_epoch_candidate_, 0});
      if (it == buffer_.end() || it->second.kind != Ordered::Kind::kView) break;
      anchored_ = true;
      anchor_epoch_ = anchor_epoch_candidate_;
      current_epoch_ = anchor_epoch_candidate_;
      next_seq_ = 0;
      // Anything buffered from epochs before the anchor (takeover replays of
      // history that predates our membership) will never be delivered here.
      buffer_.erase(buffer_.begin(), buffer_.lower_bound({anchor_epoch_, 0}));
    }

    auto it = buffer_.find({current_epoch_, next_seq_});
    if (it != buffer_.end()) {
      const Ordered& msg = it->second;
      // SAFE delivery waits for stability; later messages wait behind it to
      // preserve total order. stable_upto_ holds counts: seqs < count are
      // stable at every member daemon.
      if (msg.svc == ServiceType::kSafe &&
          stable_upto_[current_epoch_] < msg.seq + 1) {
        break;
      }
      if (msg.kind == Ordered::Kind::kView) {
        installed_view_ = View::decode(msg.payload);
      }
      out.push_back(msg);
      ++next_seq_;
      garbage_collect(current_epoch_);
      continue;
    }

    // Nothing at the cursor: can we cross into the next epoch?
    auto vit = buffer_.find({current_epoch_ + 1, 0});
    if (vit != buffer_.end() && vit->second.kind == Ordered::Kind::kView &&
        next_seq_ > 0 && vit->second.prev_epoch_end <= next_seq_ - 1) {
      VDEP_ASSERT_MSG(vit->second.prev_epoch_end == next_seq_ - 1,
                      "delivered past declared epoch end");
      ++current_epoch_;
      next_seq_ = 0;
      continue;
    }
    break;
  }
  return out;
}

std::vector<OrdAck> GroupReceiveBuffer::current_acks(NodeId self) const {
  std::vector<OrdAck> out;
  for (const auto& [epoch, count] : contiguous_count_) {
    if (count > 0) out.push_back(OrdAck{self, group_, epoch, count - 1});
  }
  return out;
}

std::vector<Ordered> GroupReceiveBuffer::snapshot_buffered() const {
  std::vector<Ordered> out;
  out.reserve(buffer_.size());
  for (const auto& [key, msg] : buffer_) out.push_back(msg);
  return out;
}

}  // namespace vdep::gcs
