#include "gcs/ordering.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::gcs {

GroupReceiveBuffer::OfferResult GroupReceiveBuffer::offer(const Ordered& msg,
                                                          NodeId self) {
  VDEP_ASSERT(msg.group == group_);
  OfferResult result;

  // Piggybacked stability is useful even on duplicates.
  set_stable(msg.epoch, msg.stable_upto);

  // Duplicate? All three checks are O(1): the anchor floor, the contiguity
  // watermark (covers everything GC'd off the ring, since base <= contiguous),
  // and slot presence in the ring.
  if (anchored_ && msg.epoch < anchor_floor()) return result;
  EpochBuf& eb = epochs_[msg.epoch];
  if (msg.seq < eb.contiguous) return result;
  VDEP_ASSERT(msg.seq >= eb.base);
  const std::size_t idx = msg.seq - eb.base;
  if (idx < eb.ring.size() && eb.ring[idx]) return result;

  // Anchor on the first view message we ever accept.
  if (!anchored_) {
    if (msg.kind != Ordered::Kind::kView) {
      // Data for an epoch whose view we have not seen yet: buffer it; the
      // view will arrive (FIFO from the leader or takeover replay).
      if (msg.seq == 0) return result;  // seq 0 must be a view
    } else if (anchor_epoch_candidate_ == 0 || msg.epoch < anchor_epoch_candidate_) {
      anchor_epoch_candidate_ = msg.epoch;
    }
  }

  result.accepted = true;
  if (idx >= eb.ring.size()) eb.ring.resize(idx + 1);
  eb.ring[idx] = msg;
  while (eb.contiguous - eb.base < eb.ring.size() &&
         eb.ring[eb.contiguous - eb.base]) {
    ++eb.contiguous;
  }

  if (eb.contiguous > 0) {
    result.ack = OrdAck{self, group_, msg.epoch, eb.contiguous - 1};
  }
  return result;
}

void GroupReceiveBuffer::set_stable(std::uint64_t epoch, std::uint64_t stable_count) {
  EpochBuf& eb = epochs_[epoch];
  if (stable_count > eb.stable) {
    eb.stable = stable_count;
    garbage_collect(epoch);
  }
}

void GroupReceiveBuffer::garbage_collect(std::uint64_t epoch) {
  // Retention rule: a message leaves the buffer once it is stable AND
  // delivered. Delivery is a seq-order prefix, so collection is a pop from
  // the ring front — amortized O(1) per message over the epoch's life,
  // where rescanning the epoch per call was the old quadratic hot spot.
  EpochBuf& eb = epochs_[epoch];
  const std::uint64_t delivered =
      !anchored_ ? 0
      : epoch < current_epoch_
          ? ~std::uint64_t{0}  // finished epochs are delivered in full
          : (epoch == current_epoch_ ? next_seq_ : 0);
  const std::uint64_t limit = std::min(eb.stable, delivered);
  while (eb.base < limit && !eb.ring.empty()) {
    // No holes below the stable+delivered floor: stability implies our own
    // ack, which implies contiguous receipt.
    VDEP_ASSERT(eb.ring.front().has_value());
    eb.ring.pop_front();
    ++eb.base;
  }
}

std::vector<Ordered> GroupReceiveBuffer::take_deliverable() {
  std::vector<Ordered> out;
  for (;;) {
    if (!anchored_) {
      if (anchor_epoch_candidate_ == 0) break;
      auto it = epochs_.find(anchor_epoch_candidate_);
      if (it == epochs_.end()) break;
      const Ordered* head = it->second.get(0);
      if (head == nullptr || head->kind != Ordered::Kind::kView) break;
      anchored_ = true;
      anchor_epoch_ = anchor_epoch_candidate_;
      current_epoch_ = anchor_epoch_candidate_;
      next_seq_ = 0;
      // Anything buffered from epochs before the anchor (takeover replays of
      // history that predates our membership) will never be delivered here.
      // The epoch records stay — their watermarks are still real.
      for (auto& [ep, eb] : epochs_) {
        if (ep >= anchor_epoch_) break;
        eb.ring.clear();
      }
    }

    EpochBuf& eb = epochs_[current_epoch_];
    if (const Ordered* msg = eb.get(next_seq_)) {
      // SAFE delivery waits for stability; later messages wait behind it to
      // preserve total order. `stable` holds counts: seqs < count are stable
      // at every member daemon.
      if (msg->svc == ServiceType::kSafe && eb.stable < msg->seq + 1) {
        break;
      }
      if (msg->kind == Ordered::Kind::kView) {
        installed_view_ = View::decode(msg->payload);
      }
      out.push_back(*msg);
      ++next_seq_;
      garbage_collect(current_epoch_);
      continue;
    }

    // Nothing at the cursor: can we cross into the next epoch?
    auto vit = epochs_.find(current_epoch_ + 1);
    if (vit != epochs_.end()) {
      const Ordered* view = vit->second.get(0);
      if (view != nullptr && view->kind == Ordered::Kind::kView &&
          next_seq_ > 0 && view->prev_epoch_end <= next_seq_ - 1) {
        VDEP_ASSERT_MSG(view->prev_epoch_end == next_seq_ - 1,
                        "delivered past declared epoch end");
        ++current_epoch_;
        next_seq_ = 0;
        continue;
      }
    }
    break;
  }
  return out;
}

std::vector<OrdAck> GroupReceiveBuffer::current_acks(NodeId self) const {
  std::vector<OrdAck> out;
  for (const auto& [epoch, eb] : epochs_) {
    if (eb.contiguous > 0) out.push_back(OrdAck{self, group_, epoch, eb.contiguous - 1});
  }
  return out;
}

std::vector<Ordered> GroupReceiveBuffer::snapshot_buffered() const {
  std::vector<Ordered> out;
  for (const auto& [epoch, eb] : epochs_) {
    for (const auto& slot : eb.ring) {
      if (slot) out.push_back(*slot);
    }
  }
  return out;
}

}  // namespace vdep::gcs
