// Leader-side group state: membership views, the per-group total order,
// duplicate suppression of forwards, and stability tracking.
//
// Pure protocol logic with no I/O: every handler returns the set of messages
// to emit, which the daemon then pushes through its reliable links. This
// keeps the trickiest state machine in the system unit-testable without a
// network.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "gcs/message.hpp"

namespace vdep::gcs {

class LeaderState {
 public:
  explicit LeaderState(NodeId self) : self_(self) {}

  // One protocol message addressed to a set of daemons. Fanning out as
  // {dests, msg} instead of one (to, msg) pair per destination is what lets
  // the daemon encode the frame once and share it across every destination.
  // `dests` preserves emission order (sorted, deduplicated by construction).
  struct Emission {
    std::vector<NodeId> dests;
    InnerMsg msg;
  };
  using Emissions = std::vector<Emission>;

  // A multicast or membership operation forwarded by a member daemon.
  // Assigns sequence numbers / creates views; returns everything to send.
  Emissions handle_forward(const Forward& fwd);

  // A cumulative receipt ack from a member daemon. Stability advances are
  // *recorded* here but only published by publish_stability() — modelling
  // Spread's token-rotation stability (see calib::kStabilityTokenInterval).
  void handle_ack(const OrdAck& ack);

  // Publishes every stability watermark that advanced since the last call;
  // the daemon invokes this on its token timer.
  Emissions publish_stability();

  // A daemon died: drop its processes from every group (new views), stop
  // expecting its acks (recompute stability).
  Emissions handle_daemon_death(NodeId daemon);

  // New-leader bootstrap from the SyncStates of all live daemons (this
  // daemon's own local state included by the caller as one SyncState).
  // Replays unstable history, installs fresh views without processes hosted
  // on dead daemons, and re-processes pending forwards.
  Emissions bootstrap(const std::vector<SyncState>& states,
                      const std::vector<NodeId>& live_daemons);

  [[nodiscard]] std::optional<View> current_view(GroupId group) const;
  [[nodiscard]] NodeId self() const { return self_; }

 private:
  struct EpochTrack {
    std::vector<NodeId> daemons;              // must-ack set (dead ones removed)
    std::map<NodeId, std::uint64_t> acked;    // contiguous receipt count
    std::uint64_t stable_count = 0;           // live (computed) watermark
    std::uint64_t published_count = 0;        // last token-published watermark
    std::uint64_t end_count = 0;              // messages in epoch incl. view; 0 = open
  };

  struct GroupRec {
    View view;            // current authoritative view (may have 0 members)
    std::uint64_t next_seq = 1;
    std::map<ProcessId, std::uint64_t> last_origin;  // forward dedup
    std::map<std::uint64_t, EpochTrack> epochs;      // open (not fully stable)
  };

  // Creates the ordered message for a data forward and appends emissions.
  void order_data(GroupRec& rec, const Forward& fwd, Emissions& out);
  // Installs a new view with the given members and appends view emissions to
  // both the old and the new member-daemon sets.
  void install_view(GroupRec& rec, std::vector<Member> members, Emissions& out);
  // Recomputes the live stability watermark for (group, epoch).
  void update_stability(GroupRec& rec, std::uint64_t epoch);
  [[nodiscard]] static std::vector<NodeId> member_daemons(const View& view);
  [[nodiscard]] Ordered make_data(const GroupRec& rec, const Forward& fwd) const;

  NodeId self_;
  std::map<GroupId, GroupRec> groups_;
};

}  // namespace vdep::gcs
