// Receiver-side ordered delivery for one group at one daemon.
//
// The leader daemon emits a single stream per group: epochs (== view ids)
// each starting with a view message at seq 0, then data messages seq 1, 2, …
// This buffer restores that order from whatever arrives (reliable links keep
// per-peer FIFO, but leader takeovers can replay messages out of order and
// duplicated), gates SAFE messages on stability, decides when an epoch ends
// and the next view can be installed, and retains messages until they are
// stable so a new leader can rebuild the stream from the union of member
// buffers after a takeover.
//
// Storage is a seq-indexed ring per epoch: slot (seq - base) holds the
// message, so duplicate detection, the contiguity walk and the delivery
// cursor are all O(1) per message, and garbage collection is an amortized
// O(1) pop from the ring front — the leader's stream is dense in seq, which
// a comparison-ordered map paid node allocations and log-n lookups to
// rediscover on every offer.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "gcs/message.hpp"

namespace vdep::gcs {

class GroupReceiveBuffer {
 public:
  explicit GroupReceiveBuffer(GroupId group) : group_(group) {}

  struct OfferResult {
    bool accepted = false;  // false for duplicates / pre-anchor epochs
    // When receipt contiguity advanced, the cumulative ack to send to the
    // leader for the offered message's epoch.
    std::optional<OrdAck> ack;
  };

  OfferResult offer(const Ordered& msg, NodeId self);

  // Stability watermark from the leader (piggybacked or explicit). The
  // watermark is a *count*: every seq < stable_count is held by all member
  // daemons of that epoch.
  void set_stable(std::uint64_t epoch, std::uint64_t stable_count);

  // Pops every message now deliverable, in delivery order. View messages are
  // included (kind == kView); the caller installs them.
  [[nodiscard]] std::vector<Ordered> take_deliverable();

  // Everything still buffered (not yet stable), for SyncState on takeover.
  [[nodiscard]] std::vector<Ordered> snapshot_buffered() const;

  // Current contiguous-receipt watermarks per epoch, for SyncState.
  [[nodiscard]] std::vector<OrdAck> current_acks(NodeId self) const;

  [[nodiscard]] const std::optional<View>& last_delivered_view() const {
    return installed_view_;
  }
  [[nodiscard]] bool anchored() const { return anchored_; }
  [[nodiscard]] std::uint64_t current_epoch() const { return current_epoch_; }
  // Seq of the next message to deliver in the current epoch.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

 private:
  // One epoch's receive state. The ring holds seqs [base, base + ring.size())
  // with holes for gaps; base only advances over messages that are both
  // delivered and stable, so everything below base has left the buffer for
  // good and a seq below `contiguous` has been seen before (contiguous never
  // decreases and base <= contiguous always).
  struct EpochBuf {
    std::uint64_t base = 0;        // seq of ring.front(); GC floor
    std::uint64_t contiguous = 0;  // seqs [0, contiguous) all received
    std::uint64_t stable = 0;      // stability watermark (count)
    std::deque<std::optional<Ordered>> ring;

    [[nodiscard]] const Ordered* get(std::uint64_t seq) const {
      if (seq < base) return nullptr;  // delivered and collected
      const std::size_t idx = seq - base;
      if (idx >= ring.size() || !ring[idx]) return nullptr;
      return &*ring[idx];
    }
  };

  // Epochs below this were never tracked here (we joined later); offers for
  // them are duplicates by construction.
  [[nodiscard]] std::uint64_t anchor_floor() const {
    return anchored_ ? anchor_epoch_ : 0;
  }
  void garbage_collect(std::uint64_t epoch);

  GroupId group_;
  bool anchored_ = false;
  std::uint64_t anchor_epoch_ = 0;
  // Smallest view epoch seen while not yet anchored.
  std::uint64_t anchor_epoch_candidate_ = 0;
  std::uint64_t current_epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::optional<View> installed_view_;

  // Per-epoch receive state. Entries persist after their ring drains (the
  // watermarks still describe what this daemon has acked, and SyncState
  // reports them on takeover).
  std::map<std::uint64_t, EpochBuf> epochs_;
};

}  // namespace vdep::gcs
