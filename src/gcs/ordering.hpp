// Receiver-side ordered delivery for one group at one daemon.
//
// The leader daemon emits a single stream per group: epochs (== view ids)
// each starting with a view message at seq 0, then data messages seq 1, 2, …
// This buffer restores that order from whatever arrives (reliable links keep
// per-peer FIFO, but leader takeovers can replay messages out of order and
// duplicated), gates SAFE messages on stability, decides when an epoch ends
// and the next view can be installed, and retains messages until they are
// stable so a new leader can rebuild the stream from the union of member
// buffers after a takeover.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "gcs/message.hpp"

namespace vdep::gcs {

class GroupReceiveBuffer {
 public:
  explicit GroupReceiveBuffer(GroupId group) : group_(group) {}

  struct OfferResult {
    bool accepted = false;  // false for duplicates / pre-anchor epochs
    // When receipt contiguity advanced, the cumulative ack to send to the
    // leader for the offered message's epoch.
    std::optional<OrdAck> ack;
  };

  OfferResult offer(const Ordered& msg, NodeId self);

  // Stability watermark from the leader (piggybacked or explicit). The
  // watermark is a *count*: every seq < stable_count is held by all member
  // daemons of that epoch.
  void set_stable(std::uint64_t epoch, std::uint64_t stable_count);

  // Pops every message now deliverable, in delivery order. View messages are
  // included (kind == kView); the caller installs them.
  [[nodiscard]] std::vector<Ordered> take_deliverable();

  // Everything still buffered (not yet stable), for SyncState on takeover.
  [[nodiscard]] std::vector<Ordered> snapshot_buffered() const;

  // Current contiguous-receipt watermarks per epoch, for SyncState.
  [[nodiscard]] std::vector<OrdAck> current_acks(NodeId self) const;

  [[nodiscard]] const std::optional<View>& last_delivered_view() const {
    return installed_view_;
  }
  [[nodiscard]] bool anchored() const { return anchored_; }
  [[nodiscard]] std::uint64_t current_epoch() const { return current_epoch_; }
  // Seq of the next message to deliver in the current epoch.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

 private:
  [[nodiscard]] bool is_duplicate(const Ordered& msg) const;
  [[nodiscard]] std::uint64_t contiguous_seq(std::uint64_t epoch) const;
  // Epochs below this were never tracked here (we joined later); offers for
  // them are duplicates by construction.
  [[nodiscard]] std::uint64_t anchor_floor() const {
    return anchored_ ? anchor_epoch_ : 0;
  }
  void extend_contiguity(std::uint64_t epoch);
  void garbage_collect(std::uint64_t epoch);

  GroupId group_;
  bool anchored_ = false;
  std::uint64_t anchor_epoch_ = 0;
  // Smallest view epoch seen while not yet anchored.
  std::uint64_t anchor_epoch_candidate_ = 0;
  std::uint64_t current_epoch_ = 0;
  std::uint64_t next_seq_ = 0;
  std::optional<View> installed_view_;

  // Message store, retained until stable AND delivered.
  std::map<std::pair<std::uint64_t, std::uint64_t>, Ordered> buffer_;
  // Per epoch: count of contiguously received messages starting at seq 0.
  std::map<std::uint64_t, std::uint64_t> contiguous_count_;
  // Per epoch: received seqs beyond the contiguous prefix.
  std::map<std::uint64_t, std::set<std::uint64_t>> pending_seqs_;
  // Per epoch: stability watermark.
  std::map<std::uint64_t, std::uint64_t> stable_upto_;
};

}  // namespace vdep::gcs
