#include "gcs/endpoint.hpp"

#include "util/assert.hpp"

namespace vdep::gcs {

Endpoint::Endpoint(Daemon& daemon, sim::Process& process)
    : daemon_(daemon), process_(process) {
  VDEP_ASSERT_MSG(daemon.host() == process.host(),
                  "endpoint must attach to the local daemon");
  daemon_.register_endpoint(*this);
}

Endpoint::~Endpoint() { daemon_.unregister_endpoint(*this); }

void Endpoint::join(GroupId group) {
  if (joined_.contains(group)) return;
  joined_.insert(group);
  daemon_.submit_join(process_.id(), group, next_origin_seq());
}

void Endpoint::leave(GroupId group) {
  if (!joined_.contains(group)) return;
  joined_.erase(group);
  daemon_.submit_leave(process_.id(), group, next_origin_seq());
}

void Endpoint::multicast(GroupId group, ServiceType svc, Payload payload) {
  daemon_.submit_multicast(process_.id(), group, svc, std::move(payload),
                           next_origin_seq());
}

void Endpoint::unicast(ProcessId dst, NodeId dst_daemon, Payload payload) {
  daemon_.submit_unicast(process_.id(), dst, dst_daemon, std::move(payload));
}

void Endpoint::deliver_message(const GroupMessage& msg) {
  if (on_message_) on_message_(msg);
}

void Endpoint::deliver_view(const View& view) {
  if (on_view_) on_view_(view);
}

void Endpoint::deliver_private(const PrivateMessage& msg) {
  if (on_private_) on_private_(msg);
}

}  // namespace vdep::gcs
