#include "net/channel.hpp"

#include "net/link.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vdep::net {

namespace {

enum class FrameType : std::uint8_t { kSyn = 1, kData = 2, kFin = 3 };

struct Frame {
  FrameType type;
  std::uint64_t channel;
  std::uint16_t tcp_port = 0;  // SYN only
  std::uint64_t seq = 0;       // DATA only
  Payload message;             // DATA only

  [[nodiscard]] Bytes encode() const {
    ByteWriter w(message.size() + 32);
    w.u8(static_cast<std::uint8_t>(type));
    w.u64(channel);
    w.u16(tcp_port);
    w.u64(seq);
    w.bytes(message);
    return std::move(w).take();
  }

  // The decoded message aliases `raw`'s buffer (no copy).
  static Frame decode(const Payload& raw) {
    ByteReader r(raw.owner(), raw);
    Frame f;
    const auto t = r.u8();
    if (t < 1 || t > 3) throw r.error("bad channel frame type", 0);
    f.type = static_cast<FrameType>(t);
    f.channel = r.u64();
    f.tcp_port = r.u16();
    f.seq = r.u64();
    f.message = read_payload(r);
    return f;
  }
};

}  // namespace

// --- Channel -----------------------------------------------------------------

Channel::Channel(ChannelManager& mgr, ChannelId id, NodeId local, NodeId remote)
    : mgr_(mgr), id_(id), local_(local), remote_(remote) {}

void Channel::set_receive_handler(ReceiveHandler handler) {
  on_receive_ = std::move(handler);
  flush_in_order();
}

void Channel::set_close_handler(CloseHandler handler) { on_close_ = std::move(handler); }

void Channel::send(Payload message) {
  if (!open_) return;
  Frame f{FrameType::kData, id_.value(), 0, next_send_seq_++, std::move(message)};
  const std::size_t payload = f.message.size();
  mgr_.transmit(local_, remote_, f.encode(), payload);
}

void Channel::close() {
  if (!open_) return;
  open_ = false;
  Frame f{FrameType::kFin, id_.value(), 0, 0, {}};
  mgr_.transmit(local_, remote_, f.encode(), 0);
}

void Channel::on_data(std::uint64_t seq, Payload&& message) {
  if (!open_) return;
  reorder_[seq] = std::move(message);
  flush_in_order();
}

void Channel::flush_in_order() {
  if (!on_receive_) return;
  // Deliver contiguous messages; keep `this` alive in case a handler drops
  // the last owning reference from inside the callback.
  auto self = shared_from_this();
  for (auto it = reorder_.find(next_recv_seq_); it != reorder_.end();
       it = reorder_.find(next_recv_seq_)) {
    Payload msg = std::move(it->second);
    reorder_.erase(it);
    ++next_recv_seq_;
    on_receive_(std::move(msg));
    if (!open_) return;
  }
}

void Channel::on_fin() {
  if (!open_) return;
  open_ = false;
  if (on_close_) on_close_();
}

// --- ChannelManager ------------------------------------------------------------

ChannelManager::ChannelManager(Network& network) : network_(network) {}

void ChannelManager::ensure_bound(NodeId host) {
  if (bound_hosts_.contains(host)) return;
  bound_hosts_.insert(host);
  network_.bind(host, Port::kTcp, [this, host](Packet&& packet) {
    handle_packet(host, std::move(packet));
  });
}

void ChannelManager::listen(NodeId host, std::uint16_t tcp_port,
                            AcceptHandler on_accept) {
  ensure_bound(host);
  VDEP_ASSERT_MSG(!listeners_.contains({host, tcp_port}), "port already listening");
  listeners_[{host, tcp_port}] = std::move(on_accept);
}

void ChannelManager::stop_listening(NodeId host, std::uint16_t tcp_port) {
  listeners_.erase({host, tcp_port});
}

ChannelPtr ChannelManager::connect(NodeId from, NodeId to, std::uint16_t tcp_port) {
  ensure_bound(from);
  ensure_bound(to);
  const ChannelId id{next_channel_++};
  auto channel = std::shared_ptr<Channel>(new Channel(*this, id, from, to));
  endpoints_[{from, id.value()}] = channel;

  Frame syn{FrameType::kSyn, id.value(), tcp_port, 0, {}};
  transmit(from, to, syn.encode(), 0);
  return channel;
}

void ChannelManager::transmit(NodeId from, NodeId to, Bytes frame,
                              std::size_t payload_bytes) {
  Packet p;
  p.src = from;
  p.dst = to;
  p.port = Port::kTcp;
  p.wire_bytes = wire_bytes(payload_bytes, calib::kTcpIpHeaderBytes);
  p.payload = std::move(frame);
  p.reliable = true;
  network_.send(std::move(p));
}

void ChannelManager::handle_packet(NodeId host, Packet&& packet) {
  Frame f = Frame::decode(packet.payload);
  const auto key = std::make_pair(host, f.channel);

  if (f.type == FrameType::kSyn) {
    auto lit = listeners_.find({host, f.tcp_port});
    if (lit == listeners_.end()) {
      log_debug(network_.kernel().now(), "tcp", "SYN to closed port; dropped");
      return;
    }
    auto channel =
        std::shared_ptr<Channel>(new Channel(*this, ChannelId{f.channel}, host, packet.src));
    endpoints_[key] = channel;
    lit->second(channel);
    // Replay any data that raced ahead of the SYN.
    if (auto pit = pending_frames_.find(key); pit != pending_frames_.end()) {
      auto frames = std::move(pit->second);
      pending_frames_.erase(pit);
      for (auto& raw : frames) {
        Packet replay;
        replay.src = packet.src;
        replay.dst = host;
        replay.payload = std::move(raw);
        handle_packet(host, std::move(replay));
      }
    }
    return;
  }

  auto it = endpoints_.find(key);
  std::shared_ptr<Channel> channel;
  if (it != endpoints_.end()) channel = it->second.lock();
  if (!channel) {
    // Data outracing the SYN: park the received frame as-is — sharing the
    // buffer, not re-encoding it. (Frames for genuinely dead channels
    // accumulate here only until the manager is destroyed with the network.)
    pending_frames_[key].push_back(std::move(packet.payload));
    return;
  }

  if (f.type == FrameType::kData) {
    channel->on_data(f.seq, std::move(f.message));
  } else {
    channel->on_fin();
    endpoints_.erase(key);
  }
}

}  // namespace vdep::net
