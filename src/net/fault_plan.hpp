// Declarative fault schedules for experiments and tests.
//
// The paper's fault model (Sec. 3.1): hardware and software crash faults,
// transient communication faults, performance and timing faults. A FaultPlan
// scripts those against a scenario: crash/restart a process, crash a node
// (host down + all its processes), message-loss bursts, partition windows,
// and performance faults (a host's CPU suddenly slowed by inflating work).
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "sim/actor.hpp"

namespace vdep::net {

class FaultPlan {
 public:
  void crash_process(SimTime at, ProcessId pid);
  void restart_process(SimTime at, ProcessId pid);
  void crash_node(SimTime at, NodeId node);
  void restore_node(SimTime at, NodeId node);
  // Transient communication fault: both directions of (a, b) drop packets
  // with `probability` during [from, to).
  void loss_burst(SimTime from, SimTime to, NodeId a, NodeId b, double probability);
  // Network partition separating the two sides during [from, to).
  void partition_window(SimTime from, SimTime to, std::set<NodeId> side_a,
                        std::set<NodeId> side_b);
  // Performance/timing fault: the host's CPU runs `factor`x slower during
  // [from, to).
  void slow_host(SimTime from, SimTime to, NodeId node, double factor);

  // Installs all scheduled faults on the kernel. `processes` is the registry
  // of every crashable process in the scenario (used to resolve pids and to
  // find a node's resident processes).
  void arm(sim::Kernel& kernel, Network& network,
           std::vector<sim::Process*> processes) const;

  [[nodiscard]] bool empty() const { return actions_.empty(); }

 private:
  using Action = std::function<void(sim::Kernel&, Network&,
                                    const std::vector<sim::Process*>&)>;
  struct Timed {
    SimTime at;
    Action action;
  };

  std::vector<Timed> actions_;
};

}  // namespace vdep::net
