// Declarative fault schedules for experiments, tests and the chaos engine.
//
// The paper's fault model (Sec. 3.1): hardware and software crash faults,
// transient communication faults, performance and timing faults. A FaultPlan
// scripts those against a scenario: crash/restart a process, crash a node
// (host down + all its processes), message-loss bursts, partition windows,
// and performance faults (a host's CPU suddenly slowed by inflating work).
//
// Actions are plain data (not closures) so that schedules can be generated
// from a seed, printed, serialized, compared and shrunk — the chaos engine
// (src/chaos) depends on exactly this. arm() interprets the actions against
// a live kernel/network.
#pragma once

#include <set>
#include <span>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/actor.hpp"

namespace vdep::net {

// One scheduled fault. Windowed kinds (loss burst, partition, slow host)
// strike at `at` and lift at `until`; point kinds ignore `until`.
struct FaultAction {
  enum class Kind : std::uint8_t {
    kCrashProcess = 1,
    kRestartProcess = 2,
    kCrashNode = 3,
    kRestoreNode = 4,
    kLossBurst = 5,
    kPartition = 6,
    kSlowHost = 7,
  };

  Kind kind = Kind::kCrashProcess;
  SimTime at = kTimeZero;
  SimTime until = kTimeZero;
  ProcessId pid;                    // process kinds
  NodeId node;                      // node kinds, loss endpoint a, slow host
  NodeId peer;                      // loss endpoint b
  std::set<NodeId> side_a, side_b;  // partition sides
  double value = 0.0;               // loss probability / slowdown factor

  [[nodiscard]] bool windowed() const {
    return kind == Kind::kLossBurst || kind == Kind::kPartition ||
           kind == Kind::kSlowHost;
  }
  // The instant the fault's direct effect is over (lift time for windowed
  // kinds, strike time otherwise).
  [[nodiscard]] SimTime effect_end() const { return windowed() ? until : at; }

  [[nodiscard]] std::string to_string() const;
  void encode(ByteWriter& w) const;
  static FaultAction decode(ByteReader& r);

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

class FaultPlan {
 public:
  void crash_process(SimTime at, ProcessId pid);
  void restart_process(SimTime at, ProcessId pid);
  void crash_node(SimTime at, NodeId node);
  void restore_node(SimTime at, NodeId node);
  // Transient communication fault: both directions of (a, b) drop packets
  // with `probability` (clamped to [0, 1]) during [from, to).
  void loss_burst(SimTime from, SimTime to, NodeId a, NodeId b, double probability);
  // Network partition separating the two sides during [from, to). Windows
  // may overlap: a partition stays cut until the last window covering it
  // lifts.
  void partition_window(SimTime from, SimTime to, std::set<NodeId> side_a,
                        std::set<NodeId> side_b);
  // Performance/timing fault: the host's CPU runs `factor`x slower during
  // [from, to). Overlapping windows compound to the largest active factor.
  void slow_host(SimTime from, SimTime to, NodeId node, double factor);

  void add(FaultAction action) { actions_.push_back(std::move(action)); }

  // Installs all scheduled faults on the kernel. `processes` is the registry
  // of every crashable process in the scenario (used to resolve pids and to
  // find a node's resident processes).
  void arm(sim::Kernel& kernel, Network& network,
           std::vector<sim::Process*> processes) const;

  [[nodiscard]] const std::vector<FaultAction>& actions() const { return actions_; }
  [[nodiscard]] bool empty() const { return actions_.empty(); }
  [[nodiscard]] std::size_t size() const { return actions_.size(); }
  void clear() { actions_.clear(); }

  // The instant the last scheduled fault effect ends (kTimeZero when empty).
  [[nodiscard]] SimTime last_effect_end() const;

  // One action per line, deterministic — the chaos engine prints minimal
  // reproducers with this.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] Bytes encode() const;
  static FaultPlan decode(std::span<const std::uint8_t> raw);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultAction> actions_;
};

}  // namespace vdep::net
