// Wire-level helpers: fragmentation arithmetic shared by the group
// communication daemons (which pay a per-packet CPU cost) and the bandwidth
// accounting.
#pragma once

#include <cstddef>

#include "util/calibration.hpp"

namespace vdep::net {

// Number of MTU-sized fragments needed for a payload. Zero-byte payloads
// still occupy one packet (headers travel).
[[nodiscard]] std::size_t fragment_count(std::size_t payload_bytes,
                                         std::size_t mtu = calib::kMtuBytes);

// Total bytes on the wire for a payload carried in `fragments` packets each
// adding `header_bytes` of framing.
[[nodiscard]] std::size_t wire_bytes(std::size_t payload_bytes, std::size_t header_bytes,
                                     std::size_t mtu = calib::kMtuBytes);

}  // namespace vdep::net
