#include "net/fault_plan.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace vdep::net {

namespace {

sim::Process* find_process(const std::vector<sim::Process*>& processes, ProcessId pid) {
  for (auto* p : processes) {
    if (p->id() == pid) return p;
  }
  return nullptr;
}

std::string time_str(SimTime t) { return std::to_string(to_usec(t) / 1000.0) + "ms"; }

std::string set_str(const std::set<NodeId>& s) {
  std::string out = "{";
  for (NodeId n : s) {
    if (out.size() > 1) out += ",";
    out += n.str();
  }
  return out + "}";
}

void encode_node_set(ByteWriter& w, const std::set<NodeId>& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (NodeId n : s) w.u64(n.value());
}

std::set<NodeId> decode_node_set(ByteReader& r) {
  std::set<NodeId> out;
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) out.insert(NodeId{r.u64()});
  return out;
}

// Shared interpreter state for windowed faults, so overlapping windows
// compose: partitions stay cut until the last covering window lifts, loss
// probabilities and slowdown factors take the max over active windows.
// `touched_*` hold every pair/host the plan can affect; on each transition
// the full fault overlay is recomputed from the still-active windows, which
// restores lifted faults to the clean defaults (loss 0, slowdown 1).
struct ArmRuntime {
  std::vector<FaultAction> active;            // windowed actions currently in force
  std::set<std::pair<NodeId, NodeId>> touched_loss;
  std::set<NodeId> touched_slow;

  void apply(Network& net) const {
    net.heal_partitions();
    std::map<std::pair<NodeId, NodeId>, double> loss;
    std::map<NodeId, double> slow;
    for (const auto& a : active) {
      switch (a.kind) {
        case FaultAction::Kind::kPartition:
          net.partition(a.side_a, a.side_b);
          break;
        case FaultAction::Kind::kLossBurst:
          for (auto [x, y] : {std::pair{a.node, a.peer}, std::pair{a.peer, a.node}}) {
            auto& p = loss[{x, y}];
            p = std::max(p, a.value);
          }
          break;
        case FaultAction::Kind::kSlowHost: {
          auto& f = slow[a.node];
          f = std::max(f, a.value);
          break;
        }
        default:
          break;
      }
    }
    for (const auto& pair : touched_loss) {
      LinkParams params = net.link_params(pair.first, pair.second);
      auto it = loss.find(pair);
      params.loss_probability = it != loss.end() ? it->second : 0.0;
      net.set_link_params(pair.first, pair.second, params);
    }
    for (NodeId node : touched_slow) {
      auto it = slow.find(node);
      net.cpu(node).set_slowdown(it != slow.end() ? it->second : 1.0);
    }
  }
};

void apply_point(const FaultAction& action, Network& net,
                 const std::vector<sim::Process*>& procs) {
  switch (action.kind) {
    case FaultAction::Kind::kCrashProcess:
      if (auto* p = find_process(procs, action.pid)) p->crash();
      break;
    case FaultAction::Kind::kRestartProcess:
      // Restarting a never-crashed (still alive) process is a no-op by
      // Process::restart's idempotence; schedules stay valid after shrinking
      // drops the matching crash.
      if (auto* p = find_process(procs, action.pid)) p->restart();
      break;
    case FaultAction::Kind::kCrashNode:
      net.set_host_up(action.node, false);
      for (auto* p : procs) {
        if (p->host() == action.node) p->crash();
      }
      break;
    case FaultAction::Kind::kRestoreNode:
      net.set_host_up(action.node, true);
      break;
    default:
      VDEP_ASSERT_MSG(false, "windowed action in apply_point");
  }
}

}  // namespace

std::string FaultAction::to_string() const {
  switch (kind) {
    case Kind::kCrashProcess:
      return "crash_process at=" + time_str(at) + " pid=" + pid.str();
    case Kind::kRestartProcess:
      return "restart_process at=" + time_str(at) + " pid=" + pid.str();
    case Kind::kCrashNode:
      return "crash_node at=" + time_str(at) + " node=" + node.str();
    case Kind::kRestoreNode:
      return "restore_node at=" + time_str(at) + " node=" + node.str();
    case Kind::kLossBurst:
      return "loss_burst [" + time_str(at) + "," + time_str(until) + ") hosts=(" +
             node.str() + "," + peer.str() + ") p=" + std::to_string(value);
    case Kind::kPartition:
      return "partition [" + time_str(at) + "," + time_str(until) + ") " +
             set_str(side_a) + " | " + set_str(side_b);
    case Kind::kSlowHost:
      return "slow_host [" + time_str(at) + "," + time_str(until) + ") node=" +
             node.str() + " factor=" + std::to_string(value);
  }
  return "<invalid>";
}

void FaultAction::encode(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.i64(at.count());
  w.i64(until.count());
  w.u64(pid.value());
  w.u64(node.value());
  w.u64(peer.value());
  encode_node_set(w, side_a);
  encode_node_set(w, side_b);
  w.f64(value);
}

FaultAction FaultAction::decode(ByteReader& r) {
  FaultAction a;
  const std::uint8_t k = r.u8();
  if (k < 1 || k > 7) throw r.error("fault action kind out of range");
  a.kind = static_cast<Kind>(k);
  a.at = SimTime{r.i64()};
  a.until = SimTime{r.i64()};
  a.pid = ProcessId{r.u64()};
  a.node = NodeId{r.u64()};
  a.peer = NodeId{r.u64()};
  a.side_a = decode_node_set(r);
  a.side_b = decode_node_set(r);
  a.value = r.f64();
  return a;
}

void FaultPlan::crash_process(SimTime at, ProcessId pid) {
  FaultAction a;
  a.kind = FaultAction::Kind::kCrashProcess;
  a.at = at;
  a.pid = pid;
  actions_.push_back(std::move(a));
}

void FaultPlan::restart_process(SimTime at, ProcessId pid) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRestartProcess;
  a.at = at;
  a.pid = pid;
  actions_.push_back(std::move(a));
}

void FaultPlan::crash_node(SimTime at, NodeId node) {
  FaultAction a;
  a.kind = FaultAction::Kind::kCrashNode;
  a.at = at;
  a.node = node;
  actions_.push_back(std::move(a));
}

void FaultPlan::restore_node(SimTime at, NodeId node) {
  FaultAction a;
  a.kind = FaultAction::Kind::kRestoreNode;
  a.at = at;
  a.node = node;
  actions_.push_back(std::move(a));
}

void FaultPlan::loss_burst(SimTime from, SimTime to, NodeId a, NodeId b,
                           double probability) {
  VDEP_ASSERT(from <= to);
  FaultAction act;
  act.kind = FaultAction::Kind::kLossBurst;
  act.at = from;
  act.until = to;
  act.node = a;
  act.peer = b;
  act.value = std::clamp(probability, 0.0, 1.0);
  actions_.push_back(std::move(act));
}

void FaultPlan::partition_window(SimTime from, SimTime to, std::set<NodeId> side_a,
                                 std::set<NodeId> side_b) {
  VDEP_ASSERT(from <= to);
  FaultAction a;
  a.kind = FaultAction::Kind::kPartition;
  a.at = from;
  a.until = to;
  a.side_a = std::move(side_a);
  a.side_b = std::move(side_b);
  actions_.push_back(std::move(a));
}

void FaultPlan::slow_host(SimTime from, SimTime to, NodeId node, double factor) {
  VDEP_ASSERT(from <= to && factor > 0.0);
  FaultAction a;
  a.kind = FaultAction::Kind::kSlowHost;
  a.at = from;
  a.until = to;
  a.node = node;
  a.value = factor;
  actions_.push_back(std::move(a));
}

SimTime FaultPlan::last_effect_end() const {
  SimTime end = kTimeZero;
  for (const auto& a : actions_) end = std::max(end, a.effect_end());
  return end;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& a : actions_) {
    out += a.to_string();
    out += '\n';
  }
  return out;
}

Bytes FaultPlan::encode() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(actions_.size()));
  for (const auto& a : actions_) a.encode(w);
  return std::move(w).take();
}

FaultPlan FaultPlan::decode(std::span<const std::uint8_t> raw) {
  ByteReader r(raw);
  FaultPlan plan;
  const auto n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) plan.actions_.push_back(FaultAction::decode(r));
  return plan;
}

void FaultPlan::arm(sim::Kernel& kernel, Network& network,
                    std::vector<sim::Process*> processes) const {
  auto runtime = std::make_shared<ArmRuntime>();
  for (const auto& action : actions_) {
    if (action.kind == FaultAction::Kind::kLossBurst) {
      runtime->touched_loss.insert({action.node, action.peer});
      runtime->touched_loss.insert({action.peer, action.node});
    }
    if (action.kind == FaultAction::Kind::kSlowHost) {
      runtime->touched_slow.insert(action.node);
    }
    if (action.windowed()) {
      kernel.post_at(action.at, [runtime, &network, action] {
        runtime->active.push_back(action);
        runtime->apply(network);
      });
      kernel.post_at(action.until, [runtime, &network, action] {
        auto& act = runtime->active;
        auto it = std::find(act.begin(), act.end(), action);
        if (it != act.end()) act.erase(it);
        runtime->apply(network);
      });
    } else {
      kernel.post_at(action.at, [&network, processes, action] {
        apply_point(action, network, processes);
      });
    }
  }
}

}  // namespace vdep::net
