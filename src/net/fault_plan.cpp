#include "net/fault_plan.hpp"

#include "util/assert.hpp"

namespace vdep::net {

namespace {

sim::Process* find_process(const std::vector<sim::Process*>& processes, ProcessId pid) {
  for (auto* p : processes) {
    if (p->id() == pid) return p;
  }
  return nullptr;
}

}  // namespace

void FaultPlan::crash_process(SimTime at, ProcessId pid) {
  actions_.push_back({at, [pid](sim::Kernel&, Network&,
                                const std::vector<sim::Process*>& procs) {
                        if (auto* p = find_process(procs, pid)) p->crash();
                      }});
}

void FaultPlan::restart_process(SimTime at, ProcessId pid) {
  actions_.push_back({at, [pid](sim::Kernel&, Network&,
                                const std::vector<sim::Process*>& procs) {
                        if (auto* p = find_process(procs, pid)) p->restart();
                      }});
}

void FaultPlan::crash_node(SimTime at, NodeId node) {
  actions_.push_back({at, [node](sim::Kernel&, Network& net,
                                 const std::vector<sim::Process*>& procs) {
                        net.set_host_up(node, false);
                        for (auto* p : procs) {
                          if (p->host() == node) p->crash();
                        }
                      }});
}

void FaultPlan::restore_node(SimTime at, NodeId node) {
  actions_.push_back({at, [node](sim::Kernel&, Network& net,
                                 const std::vector<sim::Process*>&) {
                        net.set_host_up(node, true);
                      }});
}

void FaultPlan::loss_burst(SimTime from, SimTime to, NodeId a, NodeId b,
                           double probability) {
  VDEP_ASSERT(from <= to);
  actions_.push_back({from, [a, b, probability](sim::Kernel&, Network& net,
                                                const std::vector<sim::Process*>&) {
                        for (auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
                          LinkParams p = net.link_params(x, y);
                          p.loss_probability = probability;
                          net.set_link_params(x, y, p);
                        }
                      }});
  actions_.push_back({to, [a, b](sim::Kernel&, Network& net,
                                 const std::vector<sim::Process*>&) {
                        for (auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
                          LinkParams p = net.link_params(x, y);
                          p.loss_probability = 0.0;
                          net.set_link_params(x, y, p);
                        }
                      }});
}

void FaultPlan::partition_window(SimTime from, SimTime to, std::set<NodeId> side_a,
                                 std::set<NodeId> side_b) {
  VDEP_ASSERT(from <= to);
  actions_.push_back(
      {from, [side_a, side_b](sim::Kernel&, Network& net,
                              const std::vector<sim::Process*>&) {
         net.partition(side_a, side_b);
       }});
  // Healing clears all partitions; overlapping partition windows are not
  // supported (asserted by keeping semantics simple and documented).
  actions_.push_back({to, [](sim::Kernel&, Network& net,
                             const std::vector<sim::Process*>&) {
                        net.heal_partitions();
                      }});
}

void FaultPlan::slow_host(SimTime from, SimTime to, NodeId node, double factor) {
  VDEP_ASSERT(from <= to && factor > 0.0);
  actions_.push_back({from, [node, factor](sim::Kernel&, Network& net,
                                            const std::vector<sim::Process*>&) {
                        net.cpu(node).set_slowdown(factor);
                      }});
  actions_.push_back({to, [node](sim::Kernel&, Network& net,
                                 const std::vector<sim::Process*>&) {
                        net.cpu(node).set_slowdown(1.0);
                      }});
}

void FaultPlan::arm(sim::Kernel& kernel, Network& network,
                    std::vector<sim::Process*> processes) const {
  for (const auto& timed : actions_) {
    kernel.post_at(timed.at, [&kernel, &network, processes, action = timed.action] {
      action(kernel, network, processes);
    });
  }
}

}  // namespace vdep::net
