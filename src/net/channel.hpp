// TCP-like message channels: reliable, ordered, connection-oriented pipes
// between two hosts.
//
// This is the transport the unmodified CORBA path uses (the "no interceptor"
// baseline of Fig. 4): a client ORB connects to a server ORB and exchanges
// GIOP messages over a channel. Message boundaries are preserved (one send ==
// one receive), matching how the ORB reads whole GIOP messages off a socket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/network.hpp"

namespace vdep::net {

class ChannelManager;

class Channel : public std::enable_shared_from_this<Channel> {
 public:
  using ReceiveHandler = std::function<void(Payload&&)>;
  using CloseHandler = std::function<void()>;

  // Delivered messages arrive through this handler, in send order.
  void set_receive_handler(ReceiveHandler handler);
  void set_close_handler(CloseHandler handler);

  // Sends one message to the peer. No-op on a closed channel. The message
  // buffer is frozen and shared with the in-flight frame.
  void send(Payload message);

  // Closes both directions; the peer's close handler fires.
  void close();

  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] NodeId local_host() const { return local_; }
  [[nodiscard]] NodeId remote_host() const { return remote_; }
  [[nodiscard]] ChannelId id() const { return id_; }

 private:
  friend class ChannelManager;

  Channel(ChannelManager& mgr, ChannelId id, NodeId local, NodeId remote);

  void on_data(std::uint64_t seq, Payload&& message);
  void on_fin();
  void flush_in_order();

  ChannelManager& mgr_;
  ChannelId id_;
  NodeId local_;
  NodeId remote_;
  bool open_ = true;
  std::uint64_t next_send_seq_ = 0;
  std::uint64_t next_recv_seq_ = 0;
  std::map<std::uint64_t, Payload> reorder_;  // aliases received packet frames
  ReceiveHandler on_receive_;
  CloseHandler on_close_;
};

using ChannelPtr = std::shared_ptr<Channel>;

class ChannelManager {
 public:
  using AcceptHandler = std::function<void(ChannelPtr)>;

  explicit ChannelManager(Network& network);

  // Accepts connections to (host, tcp_port).
  void listen(NodeId host, std::uint16_t tcp_port, AcceptHandler on_accept);
  void stop_listening(NodeId host, std::uint16_t tcp_port);

  // Opens a channel from `from` to the listener at (to, tcp_port). The
  // returned channel is usable immediately; data sent before the SYN lands
  // is buffered at the receiver.
  [[nodiscard]] ChannelPtr connect(NodeId from, NodeId to, std::uint16_t tcp_port);

  [[nodiscard]] Network& network() { return network_; }

 private:
  friend class Channel;

  void ensure_bound(NodeId host);
  void handle_packet(NodeId host, Packet&& packet);
  void transmit(NodeId from, NodeId to, Bytes frame, std::size_t payload_bytes);

  struct Endpoint {
    NodeId host;
    std::weak_ptr<Channel> channel;
  };

  Network& network_;
  std::uint64_t next_channel_ = 1;
  std::map<std::pair<NodeId, std::uint16_t>, AcceptHandler> listeners_;
  // Channel endpoints by (host, channel id): both sides of a channel share
  // the id but live on different hosts.
  std::map<std::pair<NodeId, std::uint64_t>, std::weak_ptr<Channel>> endpoints_;
  // Early data/fin frames for channels whose SYN has not landed yet; parks
  // the received frame itself (shared, not re-encoded).
  std::map<std::pair<NodeId, std::uint64_t>, std::vector<Payload>> pending_frames_;
  std::set<NodeId> bound_hosts_;
};

}  // namespace vdep::net
