// Simulated switched LAN connecting the testbed hosts.
//
// Models, per ordered host pair: serialization at link bandwidth (a queue),
// propagation delay, Gaussian jitter, probabilistic loss, and partitions.
// Also owns the per-host CPU models and the bandwidth accounting that
// produces the resource axis of the paper's design space (Fig. 7(b)).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/kernel.hpp"
#include "util/bytes.hpp"
#include "util/calibration.hpp"
#include "util/ids.hpp"
#include "util/payload.hpp"
#include "util/rng.hpp"

namespace vdep::net {

// Component demultiplexer on a host.
enum class Port : std::uint16_t {
  kTcp = 1,         // TCP-like channels (baseline, non-replicated path)
  kGcsDaemon = 2,   // group-communication daemon
};

struct Packet {
  NodeId src;
  NodeId dst;
  Port port = Port::kTcp;
  // Frozen frame, shared (not copied) with the sender's retransmit state and
  // with any other in-flight copies of a fan-out.
  Payload payload;
  // Total bytes on the wire including framing; used for bandwidth accounting
  // and serialization delay. Filled by Network::send if left 0.
  std::size_t wire_bytes = 0;
  // Reliable packets model TCP: never silently dropped, but delayed by a
  // retransmission timeout when the link would have lost them.
  bool reliable = false;
  // Control traffic (heartbeats, link acks, stability notices) is excluded
  // from the bandwidth accounting, mirroring how Spread piggybacks these on
  // its token rather than sending separate application-visible traffic.
  bool counted = true;
};

using PacketHandler = std::function<void(Packet&&)>;

struct LinkParams {
  SimTime propagation = calib::kLinkPropagation;
  SimTime jitter_stddev = calib::kLinkJitterStddev;
  double bandwidth_bytes_per_sec = calib::kLinkBandwidthBytesPerSec;
  double loss_probability = 0.0;
};

// Byte counters for the resource axis. Only inter-host traffic counts;
// loopback (process to its local daemon) is free, as on the real testbed.
struct TrafficTotals {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped_packets = 0;

  [[nodiscard]] double megabytes() const { return static_cast<double>(bytes) / 1e6; }
};

class Network {
 public:
  Network(sim::Kernel& kernel, LinkParams defaults = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology -------------------------------------------------------------
  NodeId add_host(const std::string& name);
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] const std::string& host_name(NodeId id) const;
  [[nodiscard]] sim::Cpu& cpu(NodeId id);

  // --- component binding ------------------------------------------------------
  void bind(NodeId host, Port port, PacketHandler handler);
  void unbind(NodeId host, Port port);

  // --- transmission -----------------------------------------------------------
  // Sends a packet; applies the link model. Loopback (src == dst) delivers
  // after a fixed small in-memory cost and is not counted as traffic.
  void send(Packet packet);

  // --- fault control ----------------------------------------------------------
  void set_host_up(NodeId id, bool up);
  [[nodiscard]] bool host_up(NodeId id) const;
  void set_link_params(NodeId from, NodeId to, LinkParams params);
  [[nodiscard]] const LinkParams& link_params(NodeId from, NodeId to) const;
  // Cuts connectivity between the two sides (both directions).
  void partition(const std::set<NodeId>& side_a, const std::set<NodeId>& side_b);
  void heal_partitions();
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const;

  // --- accounting ---------------------------------------------------------------
  [[nodiscard]] const TrafficTotals& totals() const { return totals_; }
  [[nodiscard]] const TrafficTotals& host_sent(NodeId id) const;
  // Resets counters (harness calls this after warm-up).
  void reset_totals();

  [[nodiscard]] sim::Kernel& kernel() { return kernel_; }

 private:
  struct HostRec {
    std::string name;
    sim::Cpu cpu;
    bool up = true;
    std::map<Port, PacketHandler> handlers;
    TrafficTotals sent;
  };

  struct LinkState {
    SimTime next_free = kTimeZero;  // serialization queue head
  };

  HostRec& host_rec(NodeId id);
  [[nodiscard]] const HostRec& host_rec(NodeId id) const;
  void deliver(Packet&& packet);

  sim::Kernel& kernel_;
  LinkParams defaults_;
  Rng rng_;
  std::vector<HostRec> hosts_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> link_overrides_;
  std::map<std::pair<NodeId, NodeId>, LinkState> link_states_;
  std::set<std::pair<NodeId, NodeId>> cut_pairs_;
  TrafficTotals totals_;
};

}  // namespace vdep::net
