#include "net/network.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vdep::net {

namespace {
// In-memory handoff cost for loopback delivery (process <-> local daemon).
constexpr SimTime kLoopbackDelay = usec(4);
// Modelled TCP retransmission penalty when a reliable packet hits loss.
constexpr SimTime kTcpRetransmitPenalty = msec(2);
}  // namespace

Network::Network(sim::Kernel& kernel, LinkParams defaults)
    : kernel_(kernel), defaults_(defaults), rng_(kernel.fork_rng(0x6e657477)) {}

NodeId Network::add_host(const std::string& name) {
  const NodeId id{hosts_.size()};
  hosts_.push_back(HostRec{name, sim::Cpu(kernel_, id), true, {}, {}});
  return id;
}

Network::HostRec& Network::host_rec(NodeId id) {
  VDEP_ASSERT(id.value() < hosts_.size());
  return hosts_[id.value()];
}

const Network::HostRec& Network::host_rec(NodeId id) const {
  VDEP_ASSERT(id.value() < hosts_.size());
  return hosts_[id.value()];
}

const std::string& Network::host_name(NodeId id) const { return host_rec(id).name; }

sim::Cpu& Network::cpu(NodeId id) { return host_rec(id).cpu; }

void Network::bind(NodeId host, Port port, PacketHandler handler) {
  auto& rec = host_rec(host);
  VDEP_ASSERT_MSG(!rec.handlers.contains(port), "port already bound");
  rec.handlers[port] = std::move(handler);
}

void Network::unbind(NodeId host, Port port) { host_rec(host).handlers.erase(port); }

void Network::set_host_up(NodeId id, bool up) { host_rec(id).up = up; }

bool Network::host_up(NodeId id) const { return host_rec(id).up; }

void Network::set_link_params(NodeId from, NodeId to, LinkParams params) {
  link_overrides_[{from, to}] = params;
}

const LinkParams& Network::link_params(NodeId from, NodeId to) const {
  auto it = link_overrides_.find({from, to});
  return it != link_overrides_.end() ? it->second : defaults_;
}

void Network::partition(const std::set<NodeId>& side_a, const std::set<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) {
      cut_pairs_.insert({a, b});
      cut_pairs_.insert({b, a});
    }
  }
}

void Network::heal_partitions() { cut_pairs_.clear(); }

bool Network::partitioned(NodeId a, NodeId b) const {
  return cut_pairs_.contains({a, b});
}

const TrafficTotals& Network::host_sent(NodeId id) const { return host_rec(id).sent; }

void Network::reset_totals() {
  totals_ = {};
  for (auto& h : hosts_) h.sent = {};
}

void Network::send(Packet packet) {
  if (packet.wire_bytes == 0) {
    packet.wire_bytes = packet.payload.size() + calib::kTcpIpHeaderBytes;
  }

  auto& src = host_rec(packet.src);
  if (!src.up) return;  // a dead host sends nothing

  if (packet.src == packet.dst) {
    // Loopback: free of charge, near-instant, never lost.
    kernel_.post(kLoopbackDelay,
                 [this, p = std::move(packet)]() mutable { deliver(std::move(p)); });
    return;
  }

  const LinkParams& link = link_params(packet.src, packet.dst);

  // Loss / partition handling.
  SimTime penalty = kTimeZero;
  const bool cut = partitioned(packet.src, packet.dst) || !host_up(packet.dst);
  if (cut || rng_.chance(link.loss_probability)) {
    if (!packet.reliable || cut) {
      ++totals_.dropped_packets;
      return;
    }
    // Reliable transport retransmits; model the recovery as added delay.
    penalty = kTcpRetransmitPenalty;
  }

  // Serialization queue at the sender's link.
  auto& state = link_states_[{packet.src, packet.dst}];
  const SimTime serialize = sec_f(static_cast<double>(packet.wire_bytes) /
                                  link.bandwidth_bytes_per_sec);
  const SimTime start = std::max(kernel_.now(), state.next_free);
  state.next_free = start + serialize;

  const double jitter_ns =
      std::max(0.0, rng_.normal(0.0, static_cast<double>(link.jitter_stddev.count())));
  const SimTime arrival =
      state.next_free + link.propagation + SimTime{static_cast<std::int64_t>(jitter_ns)} +
      penalty;

  if (packet.counted) {
    ++totals_.packets;
    totals_.bytes += packet.wire_bytes;
    ++src.sent.packets;
    src.sent.bytes += packet.wire_bytes;
  }

  kernel_.post_at(arrival,
                  [this, p = std::move(packet)]() mutable { deliver(std::move(p)); });
}

void Network::deliver(Packet&& packet) {
  auto& dst = host_rec(packet.dst);
  if (!dst.up) return;
  auto it = dst.handlers.find(packet.port);
  if (it == dst.handlers.end()) {
    log_debug(kernel_.now(), "net",
              "dropping packet to unbound port on " + dst.name);
    return;
  }
  it->second(std::move(packet));
}

}  // namespace vdep::net
