#include "net/link.hpp"

namespace vdep::net {

std::size_t fragment_count(std::size_t payload_bytes, std::size_t mtu) {
  if (payload_bytes == 0) return 1;
  return (payload_bytes + mtu - 1) / mtu;
}

std::size_t wire_bytes(std::size_t payload_bytes, std::size_t header_bytes,
                       std::size_t mtu) {
  return payload_bytes + fragment_count(payload_bytes, mtu) * header_bytes;
}

}  // namespace vdep::net
