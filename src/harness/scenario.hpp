// Scenario: builds a complete simulated testbed — hosts, daemons, a
// replicated (or plain) server, clients — runs workloads against it and
// collects the metrics the paper reports. Mirrors the paper's deployment:
// one process per host, a group-communication daemon on every host, clients
// on their own machines ("we were limited to eight computers").
//
// Scenario also implements knobs::ReplicaGroupController, so the knob layer
// can actuate live changes: style switches, replica growth/shrink with state
// transfer, checkpoint-interval changes.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "adaptive/adaptation_manager.hpp"
#include "app/test_app.hpp"
#include "app/workload.hpp"
#include "interpose/interposer.hpp"
#include "knobs/low_level.hpp"
#include "monitor/bandwidth_meter.hpp"
#include "monitor/health/health_monitor.hpp"
#include "net/fault_plan.hpp"
#include "replication/client_coordinator.hpp"
#include "replication/replicator.hpp"

namespace vdep::harness {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  int clients = 1;
  int replicas = 1;
  // Extra pre-provisioned replica hosts so the NumReplicas knob can grow the
  // group at runtime.
  int max_replicas = 3;
  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;

  // Transport mode: replicated (through the replicator + group comm) or the
  // plain/intercepted TCP paths of Fig. 4.
  bool replicated = true;
  interpose::InterceptMode intercept = interpose::InterceptMode::kNone;
  replication::ResponsePolicy response_policy = replication::ResponsePolicy::kFirstReply;

  // Application parameters (Table 1).
  std::size_t request_bytes = calib::kDefaultRequestBytes;
  std::size_t reply_bytes = calib::kDefaultReplyBytes;
  std::size_t state_bytes = calib::kDefaultStateBytes;
  SimTime app_exec_time = calib::kAppProcessing;

  // Low-level knob defaults.
  SimTime checkpoint_interval = calib::kDefaultCheckpointInterval;
  std::uint32_t checkpoint_every_requests = 25;
  // Incremental checkpointing: every K-th checkpoint is a full anchor, the
  // rest are dirty-set deltas. 1 = every checkpoint full (seed protocol).
  std::uint32_t checkpoint_anchor_interval = 1;
  gcs::DaemonParams daemon;

  // Monitoring / adaptation (Fig. 6).
  bool enable_replicated_state = false;
  std::optional<adaptive::RateThresholdPolicy::Config> adaptation;

  // Live health plane: a HealthMonitor attached to every daemon, windowed
  // telemetry cut from the scenario registry, per-request latency observed
  // into "service.latency_us"/"service.requests", a default service SLO
  // (override via `slos`) and per-replica-host CPU queue-depth probes.
  bool health = false;
  monitor::health::HealthParams health_params;
  std::vector<monitor::health::SloSpec> slos;  // empty = one default SLO
  double cpu_backlog_threshold_us = 100'000.0;
  // Health-driven adaptation: each replica gets an AdaptationManager with
  // the HealthMonitor as signal source and a HealthThresholdPolicy (implies
  // `health`).
  std::optional<adaptive::HealthThresholdPolicy::Config> health_adaptation;

  // The application each replica hosts. Default (null): the paper's
  // micro-benchmark TestServant built from the parameters above. Supply a
  // factory to replicate any Checkpointable application (see
  // examples/kv_cluster.cpp). Recovery calls it again: a restarted replica
  // begins from a blank servant and catches up by state transfer.
  std::function<std::unique_ptr<replication::Checkpointable>(int replica_index)>
      make_servant;

  // Observer called every time a replicator is (re)built — initial boot,
  // growth, and crash recovery. The chaos engine attaches its checkpoint /
  // state hooks here so they survive replica re-incarnation.
  std::function<void(int replica_index, replication::Replicator&)> on_replicator_created;

  // When true, a replica process restarted by the fault plan automatically
  // rebuilds its replication stack and rejoins the group with a state
  // transfer (see recover_replica).
  bool auto_recover = false;

  // TEST ONLY — forwarded to ReplicatorParams::skip_reply_dedup (the chaos
  // engine's deliberately injected exactly-once bug).
  bool skip_reply_dedup = false;

  // Enable the kernel's causal tracer: every request, checkpoint round,
  // switch, and adaptation decision records simulation-time spans
  // (export via obs/export.hpp). Off by default; the wire format is
  // identical either way, so timing results do not change.
  bool tracing = false;
};

struct ExperimentResult {
  double avg_latency_us = 0.0;
  double jitter_us = 0.0;  // stddev, the error bars of Fig. 4
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;  // the failover "recovery gap" shows up here
  double bandwidth_mbps = 0.0;
  double throughput_rps = 0.0;
  double duration_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t retransmissions = 0;
  int faults_tolerated = 0;
};

struct OpenLoopResult {
  ExperimentResult totals;
  // Series sampled during the run (Fig. 6 axes).
  sim::TimeSeries observed_rate{"request_rate_rps"};
  sim::TimeSeries style_series{"replication_style"};  // 0 = passive, 1 = active
  std::vector<replication::Replicator::SwitchRecord> switches;
};

class Scenario final : public knobs::ReplicaGroupController {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario() override;

  // --- runs ---------------------------------------------------------------------
  struct CycleConfig {
    int requests_per_client = calib::kDefaultCycleRequests;
    int warmup_requests = 200;
    SimTime max_duration = sec(600);
  };
  ExperimentResult run_closed_loop() { return run_closed_loop(CycleConfig{}); }
  ExperimentResult run_closed_loop(CycleConfig cycle);

  struct OpenLoopConfig {
    app::RatePlan plan = app::RatePlan::constant(200);
    SimTime duration = sec(30);
    SimTime sample_interval = msec(100);
    std::size_t request_bytes = calib::kDefaultRequestBytes;
  };
  OpenLoopResult run_open_loop(const OpenLoopConfig& config);

  // --- faults -------------------------------------------------------------------
  // Schedule before calling a run method (armed automatically at run start),
  // or call arm_faults() yourself when driving the kernel manually.
  net::FaultPlan& fault_plan() { return fault_plan_; }
  void arm_faults();
  // Rebuilds a crashed (or just-restarted) replica's stack as a fresh
  // incarnation: blank servant, new replicator joining the running group
  // with a state transfer. Called automatically after a fault-plan restart
  // when config.auto_recover is set.
  void recover_replica(int index);
  [[nodiscard]] ProcessId replica_pid(int index) const;
  [[nodiscard]] NodeId replica_host(int index) const;
  [[nodiscard]] ProcessId client_pid(int index) const;

  // --- accessors ----------------------------------------------------------------
  [[nodiscard]] sim::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] replication::Replicator& replicator(int index);
  // The replica's application, generically...
  [[nodiscard]] replication::Checkpointable& app(int index);
  // ...and as the default micro-benchmark servant (asserts the scenario was
  // built without a custom factory).
  [[nodiscard]] app::TestServant& servant(int index);
  [[nodiscard]] sim::Process& replica_process(int index);
  [[nodiscard]] gcs::Daemon& daemon_on(NodeId host);
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] orb::ObjectRef object_ref() const;
  [[nodiscard]] int live_replicas() const;
  // Health plane (health() asserts config.health / health_adaptation).
  [[nodiscard]] monitor::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] bool health_enabled() const { return health_ != nullptr; }
  [[nodiscard]] monitor::health::HealthMonitor& health();

  // --- knobs::ReplicaGroupController ----------------------------------------------
  void set_style(replication::ReplicationStyle style) override;
  [[nodiscard]] replication::ReplicationStyle style() const override;
  void set_replica_count(int replicas) override;
  [[nodiscard]] int replica_count() const override;
  void set_checkpoint_interval(SimTime interval) override;
  [[nodiscard]] SimTime checkpoint_interval() const override;
  void set_checkpoint_anchor_interval(std::uint32_t interval) override;
  [[nodiscard]] std::uint32_t checkpoint_anchor_interval() const override;

  // Lets in-flight work settle after a run stopped at the last client reply
  // (slower replicas may still have executions queued). Call before
  // comparing replica states.
  void drain(SimTime extra = msec(200));

  // Consistency probe used by tests: digests of all live, caught-up replicas.
  [[nodiscard]] std::vector<std::uint64_t> live_state_digests() const;

 private:
  struct ReplicaBundle;
  struct ClientBundle;

  void build();
  void start_replica(int index, bool join_existing);
  [[nodiscard]] std::unique_ptr<replication::Checkpointable> make_servant_for(int index);
  ReplicaBundle& first_live_replica();
  const ReplicaBundle& first_live_replica() const;

  ScenarioConfig config_;
  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::ChannelManager> channels_;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons_;
  std::vector<std::unique_ptr<ReplicaBundle>> replicas_;
  std::vector<std::unique_ptr<ClientBundle>> clients_;
  monitor::MetricsRegistry metrics_;
  std::unique_ptr<monitor::health::HealthMonitor> health_;
  net::FaultPlan fault_plan_;
  bool faults_armed_ = false;
  std::uint64_t next_pid_ = 100;
};

}  // namespace vdep::harness
