#include "harness/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace vdep::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  VDEP_ASSERT_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << " " << cells[i] << std::string(widths[i] - cells[i].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
  return os.str();
}

std::string render_bars(const std::string& title, const std::string& unit,
                        const std::vector<Bar>& bars, int width) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& bar : bars) {
    max_value = std::max(max_value, bar.value + bar.error);
    label_width = std::max(label_width, bar.label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::ostringstream os;
  os << title << "\n";
  for (const auto& bar : bars) {
    const int filled =
        static_cast<int>(bar.value / max_value * static_cast<double>(width) + 0.5);
    os << "  " << bar.label << std::string(label_width - bar.label.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(std::max(filled, 0)), '#')
       << std::string(static_cast<std::size_t>(std::max(width - filled, 0)), ' ') << "| "
       << Table::num(bar.value);
    if (bar.error > 0.0) os << " +/- " << Table::num(bar.error);
    os << " " << unit << "\n";
  }
  return os.str();
}

std::string render_series(const std::string& title, const sim::TimeSeries& series,
                          SimTime start, SimTime end, SimTime step, double max_value,
                          int width) {
  std::ostringstream os;
  os << title << "\n";
  if (max_value <= 0.0) max_value = 1.0;
  for (const auto& point : series.resample(start, end, step)) {
    const int filled = static_cast<int>(
        std::clamp(point.value / max_value, 0.0, 1.0) * static_cast<double>(width) + 0.5);
    char t[32];
    std::snprintf(t, sizeof t, "%8.2fs", to_sec(point.at));
    os << "  " << t << " |"
       << std::string(static_cast<std::size_t>(filled), '#')
       << std::string(static_cast<std::size_t>(width - filled), ' ') << "| "
       << Table::num(point.value) << "\n";
  }
  return os.str();
}

bool write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "write_csv: cannot open %s\n", path.c_str());
    return false;
  }
  auto emit = [f](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::fputs(cells[i].c_str(), f);
      std::fputc(i + 1 < cells.size() ? ',' : '\n', f);
    }
  };
  emit(headers);
  for (const auto& row : rows) {
    VDEP_ASSERT(row.size() == headers.size());
    emit(row);
  }
  std::fclose(f);
  return true;
}

}  // namespace vdep::harness
