// Experiment sweeps: run the micro-benchmark over a grid of configurations
// and collect the design-space map the paper's Figs. 7-9 and Table 2 are
// built from. Each grid point is an independent Scenario (fresh simulated
// testbed, seed derived from the base seed) — the simulated analogue of
// re-running the testbed experiment.
#pragma once

#include <functional>

#include "harness/scenario.hpp"
#include "knobs/design_space.hpp"

namespace vdep::harness {

struct SweepConfig {
  std::uint64_t seed = 42;
  std::vector<replication::ReplicationStyle> styles = {
      replication::ReplicationStyle::kActive,
      replication::ReplicationStyle::kWarmPassive};
  std::vector<int> replica_counts = {1, 2, 3};
  std::vector<int> client_counts = {1, 2, 3, 4, 5};
  int requests_per_client = calib::kDefaultCycleRequests;
  int warmup_requests = 200;
  // Base scenario parameters applied to every grid point.
  ScenarioConfig base;
};

// Observer invoked after each point (progress reporting in benches).
using PointObserver = std::function<void(const knobs::DesignPoint&)>;

// Runs the full grid; returns the profiled design space.
[[nodiscard]] knobs::DesignSpaceMap profile_design_space(const SweepConfig& sweep,
                                                         const PointObserver& observer = {});

// Runs one configuration and converts the result to a design point.
[[nodiscard]] knobs::DesignPoint run_design_point(const SweepConfig& sweep,
                                                  replication::ReplicationStyle style,
                                                  int replicas, int clients);

}  // namespace vdep::harness
