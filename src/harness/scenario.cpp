#include "harness/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace vdep::harness {

namespace {
constexpr GroupId kAppGroup{1};
constexpr GroupId kMonitorGroup{2};
constexpr std::uint16_t kServerPort = 7001;
constexpr ObjectId kObjectKey{1};
// Replicas join staggered at boot; clients start once the group is settled.
constexpr SimTime kReplicaBootStagger = msec(1);
constexpr SimTime kClientStartTime = msec(200);
}  // namespace

// One replica: process, servant, ORB stack and (in replicated mode) the
// replicator plus optional monitoring/adaptation.
struct Scenario::ReplicaBundle {
  ReplicaBundle(Scenario& owner, int index, NodeId host, ProcessId pid)
      : index(index),
        process(owner.kernel(), pid, host,
                "replica" + std::to_string(index) + "@" +
                    owner.network().host_name(host)),
        servant(owner.make_servant_for(index)),
        orb(owner.network(), process, poa) {
    poa.activate(kObjectKey, *servant);
  }

  int index;
  sim::Process process;
  std::unique_ptr<replication::Checkpointable> servant;
  orb::Poa poa;
  orb::ServerOrb orb;
  std::unique_ptr<replication::Replicator> replicator;
  std::unique_ptr<monitor::ReplicatedStateObject> state;
  std::unique_ptr<adaptive::AdaptationManager> adaptation;
  // Non-replicated modes (Fig. 4 baseline / interception-only bars).
  std::unique_ptr<orb::DirectServerAcceptor> acceptor;
  std::unique_ptr<interpose::InterceptOnlyServerAcceptor> intercepting_acceptor;
  bool started = false;
  bool recovery_hooked = false;
  // Process incarnation the replicator was built for; a mismatch means the
  // stack is stale (the process restarted underneath it) and needs recovery.
  std::uint64_t replicator_incarnation = 0;

  [[nodiscard]] bool live() const {
    return started && process.alive() &&
           (replicator == nullptr || !replicator->stopped());
  }
};

struct Scenario::ClientBundle {
  ClientBundle(Scenario& owner, int index, NodeId host, ProcessId pid)
      : index(index),
        process(owner.kernel(), pid, host,
                "client" + std::to_string(index) + "@" +
                    owner.network().host_name(host)),
        orb(owner.network(), process) {}

  int index;
  sim::Process process;
  orb::ClientOrb orb;
  replication::ClientCoordinator* coordinator = nullptr;  // owned by orb
  std::unique_ptr<app::ClosedLoopClient> closed;
  std::unique_ptr<app::OpenLoopClient> open;
};

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  VDEP_ASSERT(config_.clients >= 1);
  VDEP_ASSERT(config_.replicas >= 1);
  config_.max_replicas = std::max(config_.max_replicas, config_.replicas);
  if (config_.health_adaptation) config_.health = true;
  build();
}

Scenario::~Scenario() = default;

void Scenario::build() {
  kernel_ = std::make_unique<sim::Kernel>(config_.seed);
  if (config_.tracing) kernel_->tracer().enable();
  network_ = std::make_unique<net::Network>(*kernel_);
  channels_ = std::make_unique<net::ChannelManager>(*network_);

  // Hosts: clients first (so the first client's daemon is the GCS leader,
  // matching the calibration of the request path), then replica machines.
  std::vector<NodeId> hosts;
  for (int c = 0; c < config_.clients; ++c) {
    hosts.push_back(network_->add_host("cli" + std::to_string(c)));
  }
  for (int r = 0; r < config_.max_replicas; ++r) {
    hosts.push_back(network_->add_host("srv" + std::to_string(r)));
  }

  for (NodeId host : hosts) {
    daemons_.push_back(std::make_unique<gcs::Daemon>(
        *kernel_, *network_, ProcessId{next_pid_++}, host, hosts, config_.daemon));
  }

  if (config_.health) {
    health_ = std::make_unique<monitor::health::HealthMonitor>(
        *kernel_, metrics_, config_.health_params);
    for (auto& d : daemons_) health_->attach(*d);
    if (config_.slos.empty()) {
      monitor::health::SloSpec slo;
      slo.name = "service";
      slo.latency_metric = "service.latency_us";
      slo.request_counter = "service.requests";
      slo.failure_counter = "service.failures";
      health_->add_slo(slo);
    } else {
      for (const auto& slo : config_.slos) health_->add_slo(slo);
    }
    // Queue-depth probes on the replica machines: committed-but-unserved CPU
    // time is the backlog a gray failure (e.g. a slow host) builds up.
    for (int r = 0; r < config_.max_replicas; ++r) {
      const NodeId host{static_cast<std::uint64_t>(config_.clients + r)};
      auto& cpu = network_->cpu(host);
      health_->add_probe("cpu_backlog." + network_->host_name(host),
                         config_.cpu_backlog_threshold_us,
                         [&cpu] { return to_usec(cpu.backlog()); });
    }
    health_->start();
  }

  for (auto& d : daemons_) d->boot();

  // Replicas.
  next_pid_ = 1000;
  for (int r = 0; r < config_.replicas; ++r) {
    const NodeId host{static_cast<std::uint64_t>(config_.clients + r)};
    replicas_.push_back(std::make_unique<ReplicaBundle>(
        *this, r, host, ProcessId{next_pid_++}));
    const int index = r;
    kernel_->post(kReplicaBootStagger * (r + 1),
                  [this, index] { start_replica(index, /*join_existing=*/false); });
  }

  // Clients.
  next_pid_ = 5000;
  for (int c = 0; c < config_.clients; ++c) {
    const NodeId host{static_cast<std::uint64_t>(c)};
    auto client = std::make_unique<ClientBundle>(*this, c, host, ProcessId{next_pid_++});

    if (config_.replicated) {
      replication::ClientCoordinatorParams params;
      params.policy = config_.response_policy;
      auto coordinator = std::make_unique<replication::ClientCoordinator>(
          *network_, daemon_on(host), client->process, params);
      client->coordinator = coordinator.get();
      client->orb.use_transport(std::move(coordinator));
    } else {
      std::unique_ptr<orb::ClientTransport> transport =
          std::make_unique<orb::DirectClientTransport>(*channels_, host);
      const bool client_intercepted =
          config_.intercept == interpose::InterceptMode::kClientOnly ||
          config_.intercept == interpose::InterceptMode::kBoth;
      if (client_intercepted) {
        transport = std::make_unique<interpose::InterceptOnlyClientTransport>(
            *network_, client->process, std::move(transport));
      }
      client->orb.use_transport(std::move(transport));
    }
    clients_.push_back(std::move(client));
  }
}

std::unique_ptr<replication::Checkpointable> Scenario::make_servant_for(int index) {
  if (config_.make_servant) return config_.make_servant(index);
  return std::make_unique<app::TestServant>(app::TestServant::Config{
      config_.state_bytes, config_.reply_bytes, config_.app_exec_time});
}

void Scenario::start_replica(int index, bool join_existing) {
  auto& bundle = *replicas_.at(index);
  VDEP_ASSERT(!bundle.started);
  bundle.started = true;

  if (!config_.replicated) {
    // Plain/intercepted TCP server (only replica 0 serves).
    const bool server_intercepted =
        config_.intercept == interpose::InterceptMode::kServerOnly ||
        config_.intercept == interpose::InterceptMode::kBoth;
    if (server_intercepted) {
      bundle.intercepting_acceptor = std::make_unique<interpose::InterceptOnlyServerAcceptor>(
          *channels_, bundle.process.host(), kServerPort, bundle.orb);
    } else {
      bundle.acceptor = std::make_unique<orb::DirectServerAcceptor>(
          *channels_, bundle.process.host(), kServerPort, bundle.orb);
    }
    return;
  }

  replication::ReplicatorParams params;
  params.checkpoint_interval = config_.checkpoint_interval;
  params.checkpoint_every_requests = config_.checkpoint_every_requests;
  params.checkpoint_anchor_interval = config_.checkpoint_anchor_interval;
  params.skip_reply_dedup = config_.skip_reply_dedup;
  bundle.replicator = std::make_unique<replication::Replicator>(
      *network_, daemon_on(bundle.process.host()), bundle.process, bundle.orb,
      *bundle.servant, kAppGroup, params);
  if (config_.on_replicator_created) {
    config_.on_replicator_created(index, *bundle.replicator);
  }
  if (config_.auto_recover && !bundle.recovery_hooked) {
    bundle.recovery_hooked = true;
    bundle.process.subscribe_restart([this, index](ProcessId) {
      // The restart fires from inside a fault-plan event; rebuild the stack
      // on a fresh event, and only if the process is still up and nothing
      // else (a manual recover_replica) already rebuilt it by then.
      kernel_->post(kTimeZero, [this, index] {
        auto& b = *replicas_.at(index);
        if (b.process.alive() &&
            b.replicator_incarnation != b.process.incarnation()) {
          recover_replica(index);
        }
      });
    });
  }
  bundle.replicator_incarnation = bundle.process.incarnation();
  bundle.replicator->start(config_.style, join_existing);

  if (config_.enable_replicated_state || config_.adaptation) {
    auto* replicator = bundle.replicator.get();
    auto& process = bundle.process;
    auto& network = *network_;
    bundle.state = std::make_unique<monitor::ReplicatedStateObject>(
        daemon_on(process.host()), process, kMonitorGroup,
        [replicator, &process, &network] {
          monitor::StateEntry entry;
          entry.cpu_load = network.cpu(process.host()).load_since_last_sample();
          entry.request_rate = replicator->observed_request_rate();
          return entry;
        });
    bundle.state->start();
  }
  if (config_.adaptation) {
    bundle.adaptation = std::make_unique<adaptive::AdaptationManager>(
        *bundle.replicator, *bundle.state,
        std::make_unique<adaptive::RateThresholdPolicy>(*config_.adaptation));
    bundle.adaptation->start();
  } else if (config_.health_adaptation) {
    bundle.adaptation = std::make_unique<adaptive::AdaptationManager>(
        *bundle.replicator,
        std::make_unique<adaptive::HealthThresholdPolicy>(*config_.health_adaptation));
    bundle.adaptation->set_health_source(health_.get());
    bundle.adaptation->start();
  }
}

monitor::health::HealthMonitor& Scenario::health() {
  VDEP_ASSERT_MSG(health_ != nullptr,
                  "scenario built without config.health / health_adaptation");
  return *health_;
}

gcs::Daemon& Scenario::daemon_on(NodeId host) {
  for (auto& d : daemons_) {
    if (d->host() == host) return *d;
  }
  throw std::out_of_range("no daemon on host " + host.str());
}

orb::ObjectRef Scenario::object_ref() const {
  orb::ObjectRef ref;
  ref.object_key = kObjectKey;
  ref.direct = orb::DirectProfile{NodeId{static_cast<std::uint64_t>(config_.clients)},
                                  kServerPort};
  ref.group = orb::GroupProfile{kAppGroup};
  return ref;
}

replication::Replicator& Scenario::replicator(int index) {
  auto& r = replicas_.at(index)->replicator;
  VDEP_ASSERT_MSG(r != nullptr, "not a replicated scenario");
  return *r;
}

replication::Checkpointable& Scenario::app(int index) {
  return *replicas_.at(index)->servant;
}

app::TestServant& Scenario::servant(int index) {
  auto* typed = dynamic_cast<app::TestServant*>(replicas_.at(index)->servant.get());
  VDEP_ASSERT_MSG(typed != nullptr, "scenario uses a custom servant; call app()");
  return *typed;
}

sim::Process& Scenario::replica_process(int index) { return replicas_.at(index)->process; }

ProcessId Scenario::replica_pid(int index) const { return replicas_.at(index)->process.id(); }

NodeId Scenario::replica_host(int index) const { return replicas_.at(index)->process.host(); }

ProcessId Scenario::client_pid(int index) const { return clients_.at(index)->process.id(); }

int Scenario::live_replicas() const {
  int n = 0;
  for (const auto& r : replicas_) {
    if (r->live()) ++n;
  }
  return n;
}

Scenario::ReplicaBundle& Scenario::first_live_replica() {
  for (auto& r : replicas_) {
    if (r->live()) return *r;
  }
  throw std::runtime_error("no live replica");
}

const Scenario::ReplicaBundle& Scenario::first_live_replica() const {
  for (const auto& r : replicas_) {
    if (r->live()) return *r;
  }
  throw std::runtime_error("no live replica");
}

void Scenario::arm_faults() {
  if (faults_armed_ || fault_plan_.empty()) return;
  faults_armed_ = true;
  std::vector<sim::Process*> processes;
  for (auto& d : daemons_) processes.push_back(d.get());
  for (auto& r : replicas_) processes.push_back(&r->process);
  for (auto& c : clients_) processes.push_back(&c->process);
  fault_plan_.arm(*kernel_, *network_, std::move(processes));
}

void Scenario::recover_replica(int index) {
  VDEP_ASSERT_MSG(config_.replicated, "recovery needs a replicated scenario");
  auto& bundle = *replicas_.at(index);
  if (!bundle.process.alive()) bundle.process.restart();
  // The new incarnation lost all volatile state: monitoring, replicator and
  // servant are rebuilt from scratch, and the replicator joins the running
  // group as a state-transfer joiner.
  bundle.adaptation.reset();
  bundle.state.reset();
  bundle.replicator.reset();
  bundle.poa.deactivate(kObjectKey);
  bundle.servant = make_servant_for(index);
  bundle.poa.activate(kObjectKey, *bundle.servant);
  bundle.started = false;
  start_replica(index, /*join_existing=*/true);
}

// --- knob actuation -------------------------------------------------------------

void Scenario::set_style(replication::ReplicationStyle style) {
  first_live_replica().replicator->request_style_switch(style);
}

replication::ReplicationStyle Scenario::style() const {
  return first_live_replica().replicator->style();
}

void Scenario::set_replica_count(int replicas) {
  VDEP_ASSERT(replicas >= 1);
  int live = live_replicas();
  // Shrink: retire the most junior live replicas.
  for (auto it = replicas_.rbegin(); it != replicas_.rend() && live > replicas; ++it) {
    if (!(*it)->live()) continue;
    (*it)->replicator->stop();
    --live;
  }
  // Grow: start new replicas on replica hosts without a live resident.
  while (live < replicas) {
    NodeId free_host;
    bool found = false;
    for (int r = 0; r < config_.max_replicas && !found; ++r) {
      const NodeId host{static_cast<std::uint64_t>(config_.clients + r)};
      const bool occupied = std::any_of(
          replicas_.begin(), replicas_.end(),
          [host](const auto& b) { return b->live() && b->process.host() == host; });
      if (!occupied) {
        free_host = host;
        found = true;
      }
    }
    if (!found) throw std::runtime_error("no free replica host; raise max_replicas");
    const int index = static_cast<int>(replicas_.size());
    replicas_.push_back(std::make_unique<ReplicaBundle>(*this, index, free_host,
                                                        ProcessId{next_pid_++}));
    start_replica(index, /*join_existing=*/true);
    ++live;
  }
}

int Scenario::replica_count() const { return live_replicas(); }

void Scenario::set_checkpoint_interval(SimTime interval) {
  config_.checkpoint_interval = interval;
  for (auto& r : replicas_) {
    if (r->live() && r->replicator) r->replicator->set_checkpoint_interval(interval);
  }
}

SimTime Scenario::checkpoint_interval() const { return config_.checkpoint_interval; }

void Scenario::set_checkpoint_anchor_interval(std::uint32_t interval) {
  config_.checkpoint_anchor_interval = interval;
  for (auto& r : replicas_) {
    if (r->live() && r->replicator) {
      r->replicator->set_checkpoint_anchor_interval(interval);
    }
  }
}

std::uint32_t Scenario::checkpoint_anchor_interval() const {
  return config_.checkpoint_anchor_interval;
}

void Scenario::drain(SimTime extra) { kernel_->run_until(kernel_->now() + extra); }

std::vector<std::uint64_t> Scenario::live_state_digests() const {
  std::vector<std::uint64_t> out;
  for (const auto& r : replicas_) {
    if (r->live()) out.push_back(r->servant->state_digest());
  }
  return out;
}

// --- runs -----------------------------------------------------------------------

ExperimentResult Scenario::run_closed_loop(CycleConfig cycle) {
  arm_faults();

  int warm_remaining = static_cast<int>(clients_.size());
  int done_remaining = static_cast<int>(clients_.size());
  SimTime measure_start = kTimeZero;
  std::uint64_t bytes_at_measure_start = 0;

  for (auto& client : clients_) {
    app::ClosedLoopClient::Config cfg;
    cfg.request_bytes = config_.request_bytes;
    cfg.warmup_requests = cycle.warmup_requests;
    cfg.total_requests = cycle.warmup_requests + cycle.requests_per_client;
    client->closed =
        std::make_unique<app::ClosedLoopClient>(client->orb, object_ref(), cfg);
    client->closed->set_on_warmup_done([&] {
      if (--warm_remaining == 0) {
        measure_start = kernel_->now();
        network_->reset_totals();
        bytes_at_measure_start = 0;
      }
    });
    client->closed->set_on_done([&] {
      if (--done_remaining == 0) kernel_->stop();
    });
    if (health_enabled()) {
      client->closed->set_on_complete([this](double latency_us) {
        metrics_.observe("service.latency_us", latency_us);
        metrics_.add("service.requests");
      });
    }
    const int index = client->index;
    kernel_->post_at(kClientStartTime + usec(250) * index,
                     [this, index] { clients_[index]->closed->start(); });
  }

  kernel_->run_until(cycle.max_duration);

  // Gather.
  ExperimentResult result;
  Sampler merged;
  SimTime last_done = kTimeZero;
  for (auto& client : clients_) {
    merged.merge(client->closed->latencies());
    last_done = std::max(last_done, client->closed->last_completed_at());
    result.completed += static_cast<std::uint64_t>(client->closed->completed());
    if (client->coordinator != nullptr) {
      result.retransmissions += client->coordinator->retransmissions();
    }
  }
  result.avg_latency_us = merged.stats().mean();
  result.jitter_us = merged.stats().stddev();
  result.p50_latency_us = merged.percentile(50);
  result.p99_latency_us = merged.percentile(99);
  result.max_latency_us = merged.stats().max();

  const SimTime window = last_done - measure_start;
  result.duration_s = to_sec(window);
  if (window > kTimeZero) {
    result.bandwidth_mbps =
        static_cast<double>(network_->totals().bytes - bytes_at_measure_start) / 1e6 /
        to_sec(window);
    result.throughput_rps = static_cast<double>(merged.count()) / to_sec(window);
  }
  result.faults_tolerated = config_.replicated ? live_replicas() - 1 : 0;
  return result;
}

OpenLoopResult Scenario::run_open_loop(const OpenLoopConfig& config) {
  arm_faults();
  OpenLoopResult result;

  // Split the plan's rate across the clients.
  std::vector<app::RatePlan::Segment> scaled;
  for (const auto& seg : config.plan.segments()) {
    scaled.push_back({seg.start, seg.rate_rps / static_cast<double>(clients_.size())});
  }
  const app::RatePlan per_client_plan(scaled);

  for (auto& client : clients_) {
    app::OpenLoopClient::Config cfg;
    cfg.request_bytes = config.request_bytes;
    cfg.duration = config.duration;
    client->open = std::make_unique<app::OpenLoopClient>(
        client->orb, object_ref(), per_client_plan, cfg,
        kernel_->fork_rng(0xc11e0000 + static_cast<std::uint64_t>(client->index)));
    const int index = client->index;
    kernel_->post_at(kClientStartTime + usec(250) * index,
                     [this, index] { clients_[index]->open->start(); });
  }

  // Periodic sampling of the Fig. 6 series.
  const SimTime sample_end = kClientStartTime + config.duration;
  std::function<void()> sample = [&] {
    if (kernel_->now() > sample_end) return;
    auto& head = first_live_replica();
    result.observed_rate.record(kernel_->now(),
                                head.replicator->observed_request_rate());
    const auto style = head.replicator->style();
    const bool active_family = style == replication::ReplicationStyle::kActive ||
                               style == replication::ReplicationStyle::kSemiActive;
    result.style_series.record(kernel_->now(), active_family ? 1.0 : 0.0);
    kernel_->post(config.sample_interval, sample);
  };
  kernel_->post_at(kClientStartTime, sample);

  const std::uint64_t bytes_before = network_->totals().bytes;
  kernel_->run_until(kClientStartTime + config.duration + sec(2));

  Sampler merged;
  for (auto& client : clients_) {
    merged.merge(client->open->latencies());
    result.totals.completed += client->open->completed();
    if (client->coordinator != nullptr) {
      result.totals.retransmissions += client->coordinator->retransmissions();
    }
  }
  result.totals.avg_latency_us = merged.stats().mean();
  result.totals.jitter_us = merged.stats().stddev();
  result.totals.p50_latency_us = merged.percentile(50);
  result.totals.p99_latency_us = merged.percentile(99);
  result.totals.max_latency_us = merged.stats().max();
  result.totals.duration_s = to_sec(config.duration);
  result.totals.bandwidth_mbps =
      static_cast<double>(network_->totals().bytes - bytes_before) / 1e6 /
      to_sec(config.duration);
  result.totals.throughput_rps =
      static_cast<double>(result.totals.completed) / to_sec(config.duration);
  result.totals.faults_tolerated = live_replicas() - 1;
  result.switches = first_live_replica().replicator->switch_history();
  return result;
}

}  // namespace vdep::harness
