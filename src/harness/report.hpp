// Reporting: aligned ASCII tables, simple horizontal bar charts and series
// plots so every bench binary can print the same rows/curves the paper's
// tables and figures show.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace vdep::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 1);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal bar chart (Fig. 3/4 style): one labelled bar per entry, with an
// optional "+/- err" suffix for jitter bars.
struct Bar {
  std::string label;
  double value = 0.0;
  double error = 0.0;  // 0 = none
};

[[nodiscard]] std::string render_bars(const std::string& title, const std::string& unit,
                                      const std::vector<Bar>& bars, int width = 50);

// Time-series plot rendered as rows of (time, value) with a spark bar
// (Fig. 6 style).
[[nodiscard]] std::string render_series(const std::string& title,
                                        const sim::TimeSeries& series, SimTime start,
                                        SimTime end, SimTime step, double max_value,
                                        int width = 50);

// Writes rows as CSV (no quoting needed for our numeric/label cells) so
// figure data can be re-plotted outside the ASCII renderings. Returns false
// (and warns on stderr) if the file cannot be opened.
bool write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace vdep::harness
