#include "harness/experiment.hpp"

namespace vdep::harness {

knobs::DesignPoint run_design_point(const SweepConfig& sweep,
                                    replication::ReplicationStyle style, int replicas,
                                    int clients) {
  ScenarioConfig config = sweep.base;
  config.clients = clients;
  config.replicas = replicas;
  config.max_replicas = replicas;
  config.style = style;
  config.replicated = true;
  // Independent but reproducible seed per grid point.
  config.seed = sweep.seed ^ (static_cast<std::uint64_t>(style) << 40) ^
                (static_cast<std::uint64_t>(replicas) << 20) ^
                static_cast<std::uint64_t>(clients);

  Scenario scenario(std::move(config));
  Scenario::CycleConfig cycle;
  cycle.requests_per_client = sweep.requests_per_client;
  cycle.warmup_requests = sweep.warmup_requests;
  const ExperimentResult result = scenario.run_closed_loop(cycle);

  knobs::DesignPoint point;
  point.config = knobs::Configuration{style, replicas};
  point.clients = clients;
  point.latency_us = result.avg_latency_us;
  point.jitter_us = result.jitter_us;
  point.bandwidth_mbps = result.bandwidth_mbps;
  point.throughput_rps = result.throughput_rps;
  point.faults_tolerated = result.faults_tolerated;
  return point;
}

knobs::DesignSpaceMap profile_design_space(const SweepConfig& sweep,
                                           const PointObserver& observer) {
  knobs::DesignSpaceMap map;
  for (auto style : sweep.styles) {
    for (int replicas : sweep.replica_counts) {
      for (int clients : sweep.client_counts) {
        knobs::DesignPoint point = run_design_point(sweep, style, replicas, clients);
        if (observer) observer(point);
        map.add(point);
      }
    }
  }
  return map;
}

}  // namespace vdep::harness
