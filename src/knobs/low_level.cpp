#include "knobs/low_level.hpp"

#include <stdexcept>

namespace vdep::knobs {

replication::ReplicationStyle parse_style(const std::string& name) {
  using replication::ReplicationStyle;
  if (name == "active") return ReplicationStyle::kActive;
  if (name == "warm_passive") return ReplicationStyle::kWarmPassive;
  if (name == "cold_passive") return ReplicationStyle::kColdPassive;
  if (name == "semi_active") return ReplicationStyle::kSemiActive;
  if (name == "hybrid") return ReplicationStyle::kHybrid;
  throw std::invalid_argument("unknown replication style: " + name);
}

std::unique_ptr<Knob> make_replication_style_knob(ReplicaGroupController& controller) {
  return std::make_unique<FunctionKnob>(
      "ReplicationStyle", KnobLevel::kLow,
      "Replication style of the server group; runtime changes run the Fig. 5 "
      "switch protocol",
      [&controller] { return replication::to_string(controller.style()); },
      [&controller](const std::string& v) { controller.set_style(parse_style(v)); },
      std::vector<std::string>{"active", "warm_passive", "cold_passive", "semi_active",
                               "hybrid"});
}

std::unique_ptr<Knob> make_num_replicas_knob(ReplicaGroupController& controller,
                                             int min_replicas, int max_replicas) {
  return std::make_unique<FunctionKnob>(
      "MinimumNumberReplicas", KnobLevel::kLow,
      "Number of replicas in the server group; growth triggers join + state "
      "transfer, shrinkage a graceful leave",
      [&controller] { return std::to_string(controller.replica_count()); },
      [&controller, min_replicas, max_replicas](const std::string& v) {
        const int n = std::stoi(v);
        if (n < min_replicas || n > max_replicas) {
          throw std::invalid_argument("replica count out of range: " + v);
        }
        controller.set_replica_count(n);
      });
}

std::unique_ptr<Knob> make_checkpoint_interval_knob(ReplicaGroupController& controller) {
  return std::make_unique<FunctionKnob>(
      "CheckpointInterval", KnobLevel::kLow,
      "Warm/cold passive checkpointing period, in microseconds",
      [&controller] {
        return std::to_string(
            static_cast<long long>(to_usec(controller.checkpoint_interval())));
      },
      [&controller](const std::string& v) {
        controller.set_checkpoint_interval(usec(std::stoll(v)));
      });
}

std::unique_ptr<Knob> make_checkpoint_anchor_interval_knob(
    ReplicaGroupController& controller) {
  return std::make_unique<FunctionKnob>(
      "CheckpointAnchorInterval", KnobLevel::kLow,
      "Incremental checkpointing cadence: every K-th checkpoint is a full "
      "anchor, the rest dirty-set deltas (1 = every checkpoint full)",
      [&controller] { return std::to_string(controller.checkpoint_anchor_interval()); },
      [&controller](const std::string& v) {
        const long long k = std::stoll(v);
        if (k < 1 || k > 0xffffffffLL) {
          throw std::invalid_argument("anchor interval out of range: " + v);
        }
        controller.set_checkpoint_anchor_interval(static_cast<std::uint32_t>(k));
      });
}

}  // namespace vdep::knobs
