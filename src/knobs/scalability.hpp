// The scalability knob (paper Sec. 4.3, Fig. 8, Table 2).
//
// Given the profiled design-space map and the operator's requirements, the
// knob synthesizes a *policy*: for each number of clients, the server
// configuration {replication style, #replicas} chosen by the paper's 4-step
// rule —
//   1. average latency must not exceed the limit,
//   2. bandwidth usage must not exceed the limit,
//   3. among survivors, maximize the number of faults tolerated,
//   4. break remaining ties with the minimum cost function.
// When no configuration satisfies the requirements for some client count,
// the policy records that count as infeasible — "the system notifies the
// operators that the tuning policy can no longer be honored".
#pragma once

#include <optional>

#include "knobs/cost.hpp"
#include "knobs/design_space.hpp"

namespace vdep::knobs {

struct ScalabilityRequirements {
  double max_latency_us = 7000.0;   // requirement 1
  double max_bandwidth_mbps = 3.0;  // requirement 2
  CostParams cost;                  // requirement 4 (p = 0.5 in the paper)
};

// One row of Table 2.
struct PolicyEntry {
  int clients = 0;
  Configuration config;
  double latency_us = 0.0;
  double bandwidth_mbps = 0.0;
  int faults_tolerated = 0;
  double cost = 0.0;
};

struct ScalabilityPolicy {
  ScalabilityRequirements requirements;
  std::vector<PolicyEntry> entries;       // feasible client counts, ascending
  std::vector<int> infeasible_clients;    // operator notification needed

  [[nodiscard]] std::optional<PolicyEntry> for_clients(int clients) const;
  // Highest client count the policy can serve.
  [[nodiscard]] int max_supported_clients() const;
};

// Synthesizes the policy from profiled data (the thick line of Fig. 8).
[[nodiscard]] ScalabilityPolicy synthesize_scalability_policy(
    const DesignSpaceMap& map, const ScalabilityRequirements& requirements);

// Rescales the checkpoint-traffic component of the profiled bandwidth for
// the passive styles under an incremental-checkpoint profile:
// `checkpoint_fraction` of a passive configuration's measured bandwidth is
// checkpoint multicast, and that part shrinks by the profile's average byte
// ratio. Re-synthesizing the policy from the rescaled map lets passive
// configurations pass bandwidth limits they failed with full snapshots.
[[nodiscard]] DesignSpaceMap rescale_checkpoint_bandwidth(
    const DesignSpaceMap& map, const CheckpointProfile& profile,
    double checkpoint_fraction = 0.5);

// The runtime side of the knob: setting the client count applies the policy
// entry via caller-supplied actuators (style switch, replica add/remove).
class ScalabilityKnob {
 public:
  struct Actuators {
    std::function<void(replication::ReplicationStyle)> set_style;
    std::function<void(int)> set_replicas;
  };

  ScalabilityKnob(ScalabilityPolicy policy, Actuators actuators);

  // Applies the configuration for `clients`; returns the chosen entry, or
  // nullopt (and leaves the system untouched) when infeasible.
  std::optional<PolicyEntry> apply(int clients);

  [[nodiscard]] const ScalabilityPolicy& policy() const { return policy_; }
  [[nodiscard]] std::optional<int> current_clients() const { return current_; }

 private:
  ScalabilityPolicy policy_;
  Actuators actuators_;
  std::optional<int> current_;
};

}  // namespace vdep::knobs
