// VersatileDependability — the framework facade.
//
// Ties the pieces of the paper's framework together for one replicated
// service: the knob registry (low-level knobs bound to the group, high-level
// knobs synthesized from profiling), the active behavioral contract with its
// degraded alternatives, and the adaptation policy. This is the object an
// application deployer interacts with; see examples/ for usage.
#pragma once

#include <memory>

#include "adaptive/contract.hpp"
#include "knobs/availability.hpp"
#include "knobs/knob.hpp"
#include "knobs/low_level.hpp"
#include "knobs/scalability.hpp"
#include "knobs/throughput.hpp"

namespace vdep::knobs {

class VersatileDependability {
 public:
  explicit VersatileDependability(ReplicaGroupController& controller);

  // --- knobs -------------------------------------------------------------------
  [[nodiscard]] KnobRegistry& registry() { return registry_; }
  [[nodiscard]] const KnobRegistry& registry() const { return registry_; }

  // Installs the profiled design space; synthesizes and registers the
  // high-level scalability knob under the given requirements.
  const ScalabilityPolicy& install_scalability_knob(
      const DesignSpaceMap& map, const ScalabilityRequirements& requirements);
  // Applies the scalability policy for a client count (the high-level knob's
  // set operation); nullopt when infeasible.
  std::optional<PolicyEntry> tune_for_clients(int clients);

  // Registers the availability knob; setting it picks {style, replicas} for
  // a target availability under the model.
  void install_availability_knob(AvailabilityModel model);
  std::optional<AvailabilityChoice> tune_for_availability(double target);

  // Installs a measured incremental-checkpoint profile (delta vs. full
  // bytes). Once set, tune_for_availability evaluates passive styles with
  // the rescaled failover model, and scalability-policy synthesis sees
  // checkpoint bandwidth shrunk by the profile's average byte ratio.
  void set_checkpoint_profile(CheckpointProfile profile);
  [[nodiscard]] const std::optional<CheckpointProfile>& checkpoint_profile() const {
    return checkpoint_profile_;
  }

  // --- contracts -----------------------------------------------------------------
  void set_contract(adaptive::Contract contract,
                    std::vector<adaptive::Contract> degraded_alternatives = {});
  [[nodiscard]] adaptive::ContractMonitor* contract_monitor() {
    return contract_monitor_ ? contract_monitor_.get() : nullptr;
  }

  [[nodiscard]] const std::optional<ScalabilityPolicy>& scalability_policy() const {
    return scalability_policy_;
  }

 private:
  ReplicaGroupController& controller_;
  KnobRegistry registry_;
  std::optional<ScalabilityPolicy> scalability_policy_;
  std::optional<int> applied_clients_;
  std::optional<AvailabilityModel> availability_model_;
  std::optional<CheckpointProfile> checkpoint_profile_;
  std::unique_ptr<adaptive::ContractMonitor> contract_monitor_;
};

}  // namespace vdep::knobs
