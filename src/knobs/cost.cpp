#include "knobs/cost.hpp"

#include "util/assert.hpp"

namespace vdep::knobs {

double configuration_cost(double latency_us, double bandwidth_mbps,
                          const CostParams& params) {
  VDEP_ASSERT(params.latency_limit_us > 0 && params.bandwidth_limit_mbps > 0);
  VDEP_ASSERT(params.p >= 0.0 && params.p <= 1.0);
  return params.p * latency_us / params.latency_limit_us +
         (1.0 - params.p) * bandwidth_mbps / params.bandwidth_limit_mbps;
}

CostFunction make_paper_cost_function(CostParams params) {
  return [params](double latency_us, double bandwidth_mbps) {
    return configuration_cost(latency_us, bandwidth_mbps, params);
  };
}

}  // namespace vdep::knobs
