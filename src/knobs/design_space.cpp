#include "knobs/design_space.hpp"

#include <algorithm>
#include <set>

namespace vdep::knobs {

double CheckpointProfile::average_bytes() const {
  if (anchor_interval <= 1 || full_bytes <= 0.0) return full_bytes;
  const double k = static_cast<double>(anchor_interval);
  return (full_bytes + (k - 1.0) * std::min(delta_bytes, full_bytes)) / k;
}

double CheckpointProfile::average_ratio() const {
  if (full_bytes <= 0.0) return 1.0;
  return average_bytes() / full_bytes;
}

void DesignSpaceMap::add(DesignPoint point) { points_.push_back(std::move(point)); }

std::optional<DesignPoint> DesignSpaceMap::find(const Configuration& config,
                                                int clients) const {
  for (const auto& p : points_) {
    if (p.config == config && p.clients == clients) return p;
  }
  return std::nullopt;
}

std::vector<DesignPoint> DesignSpaceMap::at_clients(int clients) const {
  std::vector<DesignPoint> out;
  for (const auto& p : points_) {
    if (p.clients == clients) out.push_back(p);
  }
  return out;
}

std::vector<int> DesignSpaceMap::client_counts() const {
  std::set<int> uniq;
  for (const auto& p : points_) uniq.insert(p.clients);
  return {uniq.begin(), uniq.end()};
}

std::vector<Configuration> DesignSpaceMap::configurations() const {
  std::set<Configuration> uniq;
  for (const auto& p : points_) uniq.insert(p.config);
  return {uniq.begin(), uniq.end()};
}

std::vector<DesignPoint> DesignSpaceMap::satisfying(double max_latency_us,
                                                    double max_bandwidth_mbps) const {
  std::vector<DesignPoint> out;
  for (const auto& p : points_) {
    if (p.latency_us <= max_latency_us && p.bandwidth_mbps <= max_bandwidth_mbps) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<NormalizedPoint> DesignSpaceMap::normalized() const {
  double max_ft = 0.0;
  double min_latency = 0.0;
  double max_bw = 0.0;
  bool first = true;
  for (const auto& p : points_) {
    max_ft = std::max(max_ft, static_cast<double>(p.faults_tolerated));
    max_bw = std::max(max_bw, p.bandwidth_mbps);
    min_latency = first ? p.latency_us : std::min(min_latency, p.latency_us);
    first = false;
  }

  std::vector<NormalizedPoint> out;
  out.reserve(points_.size());
  for (const auto& p : points_) {
    NormalizedPoint n;
    n.config = p.config;
    n.clients = p.clients;
    n.fault_tolerance =
        max_ft > 0 ? static_cast<double>(p.faults_tolerated) / max_ft : 0.0;
    n.performance = p.latency_us > 0 ? min_latency / p.latency_us : 0.0;
    n.resources = max_bw > 0 ? p.bandwidth_mbps / max_bw : 0.0;
    out.push_back(n);
  }
  return out;
}

}  // namespace vdep::knobs
