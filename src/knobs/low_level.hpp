// The low-level knobs (paper Table 1): replication style, number of
// replicas, checkpointing frequency, fault-monitoring interval — bound to a
// live replica group. Names follow the FT-CORBA fault-tolerance properties
// the paper critiques for lacking operator guidance; versatile dependability
// keeps them available but expects operators to use the high-level knobs.
#pragma once

#include <functional>
#include <memory>

#include "knobs/knob.hpp"
#include "replication/types.hpp"

namespace vdep::knobs {

// Group-level actuation the harness (or a deployment manager) provides:
// growing/shrinking the replica set is an infrastructure operation, not
// something one replicator instance can do alone.
class ReplicaGroupController {
 public:
  virtual ~ReplicaGroupController() = default;

  virtual void set_style(replication::ReplicationStyle style) = 0;
  [[nodiscard]] virtual replication::ReplicationStyle style() const = 0;

  virtual void set_replica_count(int replicas) = 0;
  [[nodiscard]] virtual int replica_count() const = 0;

  virtual void set_checkpoint_interval(SimTime interval) = 0;
  [[nodiscard]] virtual SimTime checkpoint_interval() const = 0;

  // "CheckpointAnchorInterval" — incremental checkpointing cadence: every
  // K-th checkpoint is a full anchor, the rest are dirty-set deltas. Default
  // implementations (1 = all full) keep pre-delta controllers working.
  virtual void set_checkpoint_anchor_interval(std::uint32_t /*interval*/) {}
  [[nodiscard]] virtual std::uint32_t checkpoint_anchor_interval() const { return 1; }
};

// "ReplicationStyle" — switches at runtime through the Fig. 5 protocol.
[[nodiscard]] std::unique_ptr<Knob> make_replication_style_knob(
    ReplicaGroupController& controller);

// "MinimumNumberReplicas" — grows via join + state transfer, shrinks via
// leave.
[[nodiscard]] std::unique_ptr<Knob> make_num_replicas_knob(
    ReplicaGroupController& controller, int min_replicas = 1, int max_replicas = 8);

// "CheckpointInterval" — the checkpointing-frequency knob, microseconds.
[[nodiscard]] std::unique_ptr<Knob> make_checkpoint_interval_knob(
    ReplicaGroupController& controller);

// "CheckpointAnchorInterval" — full-anchor cadence for incremental
// checkpointing (integer K >= 1; 1 disables deltas).
[[nodiscard]] std::unique_ptr<Knob> make_checkpoint_anchor_interval_knob(
    ReplicaGroupController& controller);

// Parses the strings the style knob accepts ("active", "warm_passive", ...).
[[nodiscard]] replication::ReplicationStyle parse_style(const std::string& name);

}  // namespace vdep::knobs
