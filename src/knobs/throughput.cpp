#include "knobs/throughput.hpp"

namespace vdep::knobs {

std::optional<ThroughputChoice> choose_for_throughput(const DesignSpaceMap& map,
                                                      double target_rps,
                                                      double max_bandwidth_mbps) {
  std::optional<ThroughputChoice> best;
  for (const auto& p : map.points()) {
    if (p.throughput_rps < target_rps) continue;
    if (p.bandwidth_mbps > max_bandwidth_mbps) continue;
    const bool better =
        !best || p.faults_tolerated > best->faults_tolerated ||
        (p.faults_tolerated == best->faults_tolerated &&
         p.bandwidth_mbps < best->bandwidth_mbps);
    if (better) {
      best = ThroughputChoice{p.config, p.clients, p.throughput_rps, p.bandwidth_mbps,
                              p.faults_tolerated};
    }
  }
  return best;
}

}  // namespace vdep::knobs
