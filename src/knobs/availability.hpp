// The availability knob — one of the "other high-level knobs such as
// availability, reliability, sustained throughput" the paper's discussion
// says can be implemented the same way (Sec. 5).
//
// Uses a standard steady-state model for a group of k crash-restart
// replicas, each with MTTF/MTTR, plus a style-dependent failover outage
// (active/semi-active fail over almost instantly; warm passive replays its
// log; cold passive additionally pays the launch delay):
//
//   per-replica unavailability  rho = MTTR / (MTTF + MTTR)
//   P(all k down)               rho^k
//   failover outage fraction    (k / MTTF) * failover_time   [primary styles]
//
// The knob inverts the model: given a target availability it picks the
// cheapest {style, replicas} meeting it, preferring fewer replicas and more
// resource-frugal styles among ties.
#pragma once

#include <optional>
#include <vector>

#include "knobs/design_space.hpp"
#include "util/time.hpp"

namespace vdep::knobs {

struct AvailabilityModel {
  SimTime mttf = sec(3600);         // per-replica mean time to failure
  SimTime mttr = sec(60);           // per-replica repair/restart time
  SimTime active_failover = msec(1);
  SimTime semi_active_failover = msec(5);
  SimTime warm_failover = msec(200);     // log replay
  SimTime cold_failover = msec(1000);    // launch + install + replay
};

// Steady-state availability of a configuration under the model.
[[nodiscard]] double predicted_availability(const Configuration& config,
                                            const AvailabilityModel& model);

// Style-dependent failover outage used above; exposed for tests.
[[nodiscard]] SimTime failover_time(replication::ReplicationStyle style,
                                    const AvailabilityModel& model);

// Incremental-checkpointing-aware variants. Cheaper checkpoints let a passive
// primary checkpoint more often at the same blackout budget, which shrinks
// backup staleness and therefore the replay component of failover in
// proportion to the profile's average byte ratio:
//   warm' = warm * ratio
//   cold' = (cold - warm) + warm * ratio   (the launch part does not shrink)
// Active/semi-active failovers involve no checkpoints and are unchanged.
[[nodiscard]] SimTime failover_time(replication::ReplicationStyle style,
                                    const AvailabilityModel& model,
                                    const CheckpointProfile& profile);
[[nodiscard]] double predicted_availability(const Configuration& config,
                                            const AvailabilityModel& model,
                                            const CheckpointProfile& profile);

struct AvailabilityChoice {
  Configuration config;
  double availability = 0.0;
};

// Picks the cheapest configuration meeting `target` (e.g. 0.999): fewest
// replicas first, then the most resource-frugal style. Styles considered are
// those present in `allowed` (defaults to all four).
[[nodiscard]] std::optional<AvailabilityChoice> choose_for_availability(
    double target, const AvailabilityModel& model, int max_replicas = 5,
    std::vector<replication::ReplicationStyle> allowed = {});

// Profile-aware choice: evaluates the passive styles with the rescaled
// failover outages above. A good delta profile can make warm passive meet a
// target that previously forced an active configuration.
[[nodiscard]] std::optional<AvailabilityChoice> choose_for_availability(
    double target, const AvailabilityModel& model, const CheckpointProfile& profile,
    int max_replicas = 5, std::vector<replication::ReplicationStyle> allowed = {});

}  // namespace vdep::knobs
