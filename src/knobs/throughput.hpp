// The sustained-throughput knob (another Sec. 5 high-level knob).
//
// From the profiled design space, each configuration's sustainable
// throughput at a client count is the measured completion rate; the knob
// picks, for a target request rate, the configuration that sustains it with
// the best fault tolerance and the least bandwidth.
#pragma once

#include <optional>

#include "knobs/design_space.hpp"

namespace vdep::knobs {

struct ThroughputChoice {
  Configuration config;
  int clients = 0;  // closed-loop clients needed to drive that rate
  double throughput_rps = 0.0;
  double bandwidth_mbps = 0.0;
  int faults_tolerated = 0;
};

// Picks the configuration (and the client parallelism) sustaining at least
// `target_rps` within `max_bandwidth_mbps`, maximizing faults tolerated and
// then minimizing bandwidth. nullopt when nothing sustains the rate.
[[nodiscard]] std::optional<ThroughputChoice> choose_for_throughput(
    const DesignSpaceMap& map, double target_rps, double max_bandwidth_mbps);

}  // namespace vdep::knobs
