#include "knobs/availability.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace vdep::knobs {

SimTime failover_time(replication::ReplicationStyle style,
                      const AvailabilityModel& model) {
  using replication::ReplicationStyle;
  switch (style) {
    case ReplicationStyle::kActive: return model.active_failover;
    case ReplicationStyle::kSemiActive: return model.semi_active_failover;
    case ReplicationStyle::kWarmPassive: return model.warm_failover;
    case ReplicationStyle::kColdPassive: return model.cold_failover;
    case ReplicationStyle::kHybrid: return model.semi_active_failover;
  }
  return model.cold_failover;
}

SimTime failover_time(replication::ReplicationStyle style,
                      const AvailabilityModel& model,
                      const CheckpointProfile& profile) {
  using replication::ReplicationStyle;
  const double ratio = std::clamp(profile.average_ratio(), 0.0, 1.0);
  const double warm = to_sec(model.warm_failover);
  switch (style) {
    case ReplicationStyle::kWarmPassive:
      return sec_f(warm * ratio);
    case ReplicationStyle::kColdPassive:
      // Launch/install dominates and is checkpoint-size-independent here (the
      // snapshot still transfers in full on promotion); only the replay tail
      // — bounded by backup staleness, the warm component — shrinks.
      return sec_f(std::max(to_sec(model.cold_failover) - warm, 0.0) + warm * ratio);
    default:
      return failover_time(style, model);
  }
}

double predicted_availability(const Configuration& config,
                              const AvailabilityModel& model) {
  VDEP_ASSERT(config.replicas >= 1);
  const double mttf = to_sec(model.mttf);
  const double mttr = to_sec(model.mttr);
  const double rho = mttr / (mttf + mttr);

  // All replicas down simultaneously.
  double unavailability = std::pow(rho, config.replicas);

  // Failover blackout: whenever the responding replica fails and a standby
  // takes over, clients see a style-dependent outage. With k replicas the
  // responder fails at rate 1/MTTF; outages only occur while a standby
  // exists (k >= 2; with k == 1 the full-down term already covers it).
  if (config.replicas >= 2) {
    unavailability += to_sec(failover_time(config.style, model)) / mttf;
  }

  return std::clamp(1.0 - unavailability, 0.0, 1.0);
}

double predicted_availability(const Configuration& config,
                              const AvailabilityModel& model,
                              const CheckpointProfile& profile) {
  VDEP_ASSERT(config.replicas >= 1);
  const double mttf = to_sec(model.mttf);
  const double mttr = to_sec(model.mttr);
  const double rho = mttr / (mttf + mttr);
  double unavailability = std::pow(rho, config.replicas);
  if (config.replicas >= 2) {
    unavailability += to_sec(failover_time(config.style, model, profile)) / mttf;
  }
  return std::clamp(1.0 - unavailability, 0.0, 1.0);
}

std::optional<AvailabilityChoice> choose_for_availability(
    double target, const AvailabilityModel& model, int max_replicas,
    std::vector<replication::ReplicationStyle> allowed) {
  using replication::ReplicationStyle;
  if (allowed.empty()) {
    // Frugality order: cold cheapest in steady state, then warm, semi-active,
    // active.
    allowed = {ReplicationStyle::kColdPassive, ReplicationStyle::kWarmPassive,
               ReplicationStyle::kSemiActive, ReplicationStyle::kActive};
  }
  for (int k = 1; k <= max_replicas; ++k) {
    for (ReplicationStyle style : allowed) {
      const Configuration config{style, k};
      const double a = predicted_availability(config, model);
      if (a >= target) return AvailabilityChoice{config, a};
    }
  }
  return std::nullopt;
}

std::optional<AvailabilityChoice> choose_for_availability(
    double target, const AvailabilityModel& model, const CheckpointProfile& profile,
    int max_replicas, std::vector<replication::ReplicationStyle> allowed) {
  using replication::ReplicationStyle;
  if (allowed.empty()) {
    allowed = {ReplicationStyle::kColdPassive, ReplicationStyle::kWarmPassive,
               ReplicationStyle::kSemiActive, ReplicationStyle::kActive};
  }
  for (int k = 1; k <= max_replicas; ++k) {
    for (ReplicationStyle style : allowed) {
      const Configuration config{style, k};
      const double a = predicted_availability(config, model, profile);
      if (a >= target) return AvailabilityChoice{config, a};
    }
  }
  return std::nullopt;
}

}  // namespace vdep::knobs
