// The dependability design space (paper Figs. 1, 7, 9).
//
// A DesignPoint is one measured configuration: {replication style, #replicas,
// #clients} with its observed latency, jitter, bandwidth and the number of
// crash faults it tolerates. DesignSpaceMap stores the grid produced by
// profiling ("the first step in implementing a scalability knob is to gather
// enough data about the system's behavior") and answers the queries the
// high-level knobs need: constraint filtering, per-client-count selection,
// and the normalized {fault-tolerance x performance x resources} view of
// Fig. 9.
#pragma once

#include <optional>
#include <vector>

#include "replication/types.hpp"

namespace vdep::knobs {

struct Configuration {
  replication::ReplicationStyle style = replication::ReplicationStyle::kActive;
  int replicas = 1;

  friend constexpr auto operator<=>(const Configuration&, const Configuration&) = default;

  // Paper notation: A(3), P(2), ...
  [[nodiscard]] std::string code() const {
    return replication::style_code(style) + " (" + std::to_string(replicas) + ")";
  }
};

// Measured incremental-checkpoint profile: the average encoded size of a
// full anchor vs. a dirty-set delta, and the anchor cadence K (every K-th
// checkpoint full). Sources: bench/micro_checkpoint or the replicator's
// byte telemetry. The knob layer rescales the checkpoint-driven parts of its
// models with average_ratio() — warm-failover staleness and passive-style
// checkpoint bandwidth both shrink with the dirty fraction.
struct CheckpointProfile {
  double full_bytes = 0.0;
  double delta_bytes = 0.0;
  std::uint32_t anchor_interval = 1;

  // Mean encoded bytes per checkpoint over one anchor period: one full plus
  // K-1 deltas (a delta never counts for more than a full).
  [[nodiscard]] double average_bytes() const;
  // average_bytes / full_bytes, in (0, 1]; 1 when deltas are off or the
  // profile is empty.
  [[nodiscard]] double average_ratio() const;
};

struct DesignPoint {
  Configuration config;
  int clients = 1;
  double latency_us = 0.0;
  double jitter_us = 0.0;       // stddev of the round-trip time
  double bandwidth_mbps = 0.0;
  double throughput_rps = 0.0;
  int faults_tolerated = 0;     // replicas - 1 under crash faults
};

// Fig. 9 axes: every metric normalized to its maximum over the data set.
struct NormalizedPoint {
  Configuration config;
  int clients = 1;
  double fault_tolerance = 0.0;  // faults tolerated / max
  double performance = 0.0;      // min latency / latency (higher is better)
  double resources = 0.0;        // bandwidth / max
};

class DesignSpaceMap {
 public:
  void add(DesignPoint point);

  [[nodiscard]] const std::vector<DesignPoint>& points() const { return points_; }
  [[nodiscard]] std::optional<DesignPoint> find(const Configuration& config,
                                                int clients) const;
  // All measured points for a given client count.
  [[nodiscard]] std::vector<DesignPoint> at_clients(int clients) const;
  [[nodiscard]] std::vector<int> client_counts() const;
  [[nodiscard]] std::vector<Configuration> configurations() const;

  // Points satisfying hard latency/bandwidth limits (the vertical planes in
  // Fig. 8).
  [[nodiscard]] std::vector<DesignPoint> satisfying(double max_latency_us,
                                                    double max_bandwidth_mbps) const;

  // Fig. 9: the whole map normalized to the unit cube.
  [[nodiscard]] std::vector<NormalizedPoint> normalized() const;

 private:
  std::vector<DesignPoint> points_;
};

}  // namespace vdep::knobs
