// The knob abstraction — versatile dependability's central architectural
// feature (paper Secs. 2-3).
//
// Low-level knobs tune internal fault-tolerance mechanisms (replication
// style, number of replicas, checkpointing frequency — the FT-CORBA
// "fault-tolerance properties"). High-level knobs express externally-
// observable properties (scalability, availability, throughput) and encode
// the empirically-derived mapping onto low-level settings, so operators tune
// what they can observe without knowing the implementation.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace vdep::knobs {

enum class KnobLevel : std::uint8_t { kLow = 0, kHigh = 1 };

class Knob {
 public:
  Knob(std::string name, KnobLevel level, std::string description)
      : name_(std::move(name)), level_(level), description_(std::move(description)) {}
  virtual ~Knob() = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] KnobLevel level() const { return level_; }
  [[nodiscard]] const std::string& description() const { return description_; }

  // Knob values travel as strings at this interface so heterogeneous knobs
  // share one registry; typed accessors live on the concrete classes.
  [[nodiscard]] virtual std::string get() const = 0;
  virtual void set(const std::string& value) = 0;
  // The discrete settings this knob accepts, or empty for continuous ranges.
  [[nodiscard]] virtual std::vector<std::string> choices() const { return {}; }

 private:
  std::string name_;
  KnobLevel level_;
  std::string description_;
};

// A knob backed by caller-supplied getter/setter closures; the usual way the
// low-level knobs bind to a live Replicator.
class FunctionKnob final : public Knob {
 public:
  FunctionKnob(std::string name, KnobLevel level, std::string description,
               std::function<std::string()> getter,
               std::function<void(const std::string&)> setter,
               std::vector<std::string> choices = {})
      : Knob(std::move(name), level, std::move(description)),
        getter_(std::move(getter)),
        setter_(std::move(setter)),
        choices_(std::move(choices)) {}

  [[nodiscard]] std::string get() const override { return getter_(); }
  void set(const std::string& value) override { setter_(value); }
  [[nodiscard]] std::vector<std::string> choices() const override { return choices_; }

 private:
  std::function<std::string()> getter_;
  std::function<void(const std::string&)> setter_;
  std::vector<std::string> choices_;
};

class KnobRegistry {
 public:
  // Throws std::invalid_argument on duplicate names.
  void register_knob(std::unique_ptr<Knob> knob);

  [[nodiscard]] Knob* find(const std::string& name) const;
  // Throws std::out_of_range if missing.
  [[nodiscard]] Knob& at(const std::string& name) const;
  [[nodiscard]] std::vector<const Knob*> list(std::optional<KnobLevel> level = {}) const;
  [[nodiscard]] std::size_t size() const { return knobs_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Knob>> knobs_;
};

}  // namespace vdep::knobs
