// The configuration cost function of paper Sec. 4.3:
//
//     Cost_i = p * Latency_i / L_max  +  (1 - p) * Bandwidth_i / B_max
//
// used to break ties among configurations that already satisfy the hard
// latency/bandwidth/fault-tolerance requirements. The paper uses p = 0.5
// (latency and bandwidth weighted equally) with L_max = 7000 us and
// B_max = 3 MB/s, and notes the rule is a heuristic other developers may
// replace — hence the CostFunction alias for custom rules.
#pragma once

#include <functional>

namespace vdep::knobs {

struct CostParams {
  double p = 0.5;                  // latency weight; (1-p) weights bandwidth
  double latency_limit_us = 7000;  // requirement 1
  double bandwidth_limit_mbps = 3; // requirement 2
};

[[nodiscard]] double configuration_cost(double latency_us, double bandwidth_mbps,
                                        const CostParams& params = {});

// Custom tie-breakers get the same inputs.
using CostFunction = std::function<double(double latency_us, double bandwidth_mbps)>;

[[nodiscard]] CostFunction make_paper_cost_function(CostParams params = {});

}  // namespace vdep::knobs
