#include "knobs/versatile.hpp"

namespace vdep::knobs {

VersatileDependability::VersatileDependability(ReplicaGroupController& controller)
    : controller_(controller) {
  registry_.register_knob(make_replication_style_knob(controller_));
  registry_.register_knob(make_num_replicas_knob(controller_));
  registry_.register_knob(make_checkpoint_interval_knob(controller_));
  registry_.register_knob(make_checkpoint_anchor_interval_knob(controller_));
}

const ScalabilityPolicy& VersatileDependability::install_scalability_knob(
    const DesignSpaceMap& map, const ScalabilityRequirements& requirements) {
  scalability_policy_ = synthesize_scalability_policy(
      checkpoint_profile_ ? rescale_checkpoint_bandwidth(map, *checkpoint_profile_)
                          : map,
      requirements);
  if (registry_.find("Scalability") == nullptr) {
    registry_.register_knob(std::make_unique<FunctionKnob>(
        "Scalability", KnobLevel::kHigh,
        "Number of clients to serve; applies the profiled {style, replicas} "
        "policy under the latency/bandwidth/fault-tolerance requirements",
        [this] {
          // Current applied client count, or empty.
          return applied_clients_ ? std::to_string(*applied_clients_) : std::string();
        },
        [this](const std::string& v) { tune_for_clients(std::stoi(v)); }));
  }
  return *scalability_policy_;
}

std::optional<PolicyEntry> VersatileDependability::tune_for_clients(int clients) {
  if (!scalability_policy_) return std::nullopt;
  auto entry = scalability_policy_->for_clients(clients);
  if (!entry) return std::nullopt;
  controller_.set_replica_count(entry->config.replicas);
  controller_.set_style(entry->config.style);
  applied_clients_ = clients;
  return entry;
}

void VersatileDependability::install_availability_knob(AvailabilityModel model) {
  availability_model_ = model;
  if (registry_.find("Availability") == nullptr) {
    registry_.register_knob(std::make_unique<FunctionKnob>(
        "Availability", KnobLevel::kHigh,
        "Target steady-state availability (e.g. 0.999); picks {style, replicas} "
        "under the MTTF/MTTR model",
        [this] {
          const Configuration config{controller_.style(), controller_.replica_count()};
          return availability_model_
                     ? std::to_string(predicted_availability(config, *availability_model_))
                     : std::string();
        },
        [this](const std::string& v) { tune_for_availability(std::stod(v)); }));
  }
}

void VersatileDependability::set_checkpoint_profile(CheckpointProfile profile) {
  checkpoint_profile_ = profile;
  // Keep the actuated cadence consistent with the profile the policies use.
  controller_.set_checkpoint_anchor_interval(
      profile.anchor_interval >= 1 ? profile.anchor_interval : 1);
}

std::optional<AvailabilityChoice> VersatileDependability::tune_for_availability(
    double target) {
  if (!availability_model_) return std::nullopt;
  auto choice = checkpoint_profile_
                    ? choose_for_availability(target, *availability_model_,
                                              *checkpoint_profile_)
                    : choose_for_availability(target, *availability_model_);
  if (!choice) return std::nullopt;
  controller_.set_replica_count(choice->config.replicas);
  controller_.set_style(choice->config.style);
  return choice;
}

void VersatileDependability::set_contract(
    adaptive::Contract contract, std::vector<adaptive::Contract> degraded_alternatives) {
  contract_monitor_ = std::make_unique<adaptive::ContractMonitor>(std::move(contract));
  for (auto& alt : degraded_alternatives) {
    contract_monitor_->add_degraded_alternative(std::move(alt));
  }
}

}  // namespace vdep::knobs
