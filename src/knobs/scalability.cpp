#include "knobs/scalability.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace vdep::knobs {

std::optional<PolicyEntry> ScalabilityPolicy::for_clients(int clients) const {
  for (const auto& e : entries) {
    if (e.clients == clients) return e;
  }
  return std::nullopt;
}

int ScalabilityPolicy::max_supported_clients() const {
  int best = 0;
  for (const auto& e : entries) best = std::max(best, e.clients);
  return best;
}

ScalabilityPolicy synthesize_scalability_policy(
    const DesignSpaceMap& map, const ScalabilityRequirements& requirements) {
  ScalabilityPolicy policy;
  policy.requirements = requirements;
  const CostFunction cost = make_paper_cost_function(requirements.cost);

  for (int clients : map.client_counts()) {
    // Steps 1-2: hard latency and bandwidth planes.
    std::vector<DesignPoint> candidates;
    for (const auto& p : map.at_clients(clients)) {
      if (p.latency_us <= requirements.max_latency_us &&
          p.bandwidth_mbps <= requirements.max_bandwidth_mbps) {
        candidates.push_back(p);
      }
    }
    if (candidates.empty()) {
      policy.infeasible_clients.push_back(clients);
      continue;
    }

    // Step 3: best fault-tolerance possible.
    int best_ft = 0;
    for (const auto& p : candidates) best_ft = std::max(best_ft, p.faults_tolerated);
    std::erase_if(candidates,
                  [best_ft](const DesignPoint& p) { return p.faults_tolerated < best_ft; });

    // Step 4: minimum cost breaks the remaining tie.
    const DesignPoint* chosen = &candidates.front();
    double chosen_cost = cost(chosen->latency_us, chosen->bandwidth_mbps);
    for (const auto& p : candidates) {
      const double c = cost(p.latency_us, p.bandwidth_mbps);
      if (c < chosen_cost) {
        chosen = &p;
        chosen_cost = c;
      }
    }

    policy.entries.push_back(PolicyEntry{clients, chosen->config, chosen->latency_us,
                                         chosen->bandwidth_mbps, chosen->faults_tolerated,
                                         chosen_cost});
  }

  std::sort(policy.entries.begin(), policy.entries.end(),
            [](const PolicyEntry& a, const PolicyEntry& b) { return a.clients < b.clients; });
  return policy;
}

DesignSpaceMap rescale_checkpoint_bandwidth(const DesignSpaceMap& map,
                                            const CheckpointProfile& profile,
                                            double checkpoint_fraction) {
  VDEP_ASSERT(checkpoint_fraction >= 0.0 && checkpoint_fraction <= 1.0);
  const double ratio = std::clamp(profile.average_ratio(), 0.0, 1.0);
  DesignSpaceMap out;
  for (DesignPoint p : map.points()) {
    using replication::ReplicationStyle;
    const bool passive = p.config.style == ReplicationStyle::kWarmPassive ||
                         p.config.style == ReplicationStyle::kColdPassive;
    if (passive) {
      p.bandwidth_mbps *= (1.0 - checkpoint_fraction) + checkpoint_fraction * ratio;
    }
    out.add(p);
  }
  return out;
}

ScalabilityKnob::ScalabilityKnob(ScalabilityPolicy policy, Actuators actuators)
    : policy_(std::move(policy)), actuators_(std::move(actuators)) {
  VDEP_ASSERT(actuators_.set_style && actuators_.set_replicas);
}

std::optional<PolicyEntry> ScalabilityKnob::apply(int clients) {
  auto entry = policy_.for_clients(clients);
  if (!entry) return std::nullopt;
  actuators_.set_replicas(entry->config.replicas);
  actuators_.set_style(entry->config.style);
  current_ = clients;
  return entry;
}

}  // namespace vdep::knobs
