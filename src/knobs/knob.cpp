#include "knobs/knob.hpp"

namespace vdep::knobs {

void KnobRegistry::register_knob(std::unique_ptr<Knob> knob) {
  const std::string name = knob->name();
  auto [it, inserted] = knobs_.emplace(name, std::move(knob));
  if (!inserted) throw std::invalid_argument("duplicate knob: " + name);
}

Knob* KnobRegistry::find(const std::string& name) const {
  auto it = knobs_.find(name);
  return it == knobs_.end() ? nullptr : it->second.get();
}

Knob& KnobRegistry::at(const std::string& name) const {
  Knob* k = find(name);
  if (k == nullptr) throw std::out_of_range("no such knob: " + name);
  return *k;
}

std::vector<const Knob*> KnobRegistry::list(std::optional<KnobLevel> level) const {
  std::vector<const Knob*> out;
  for (const auto& [name, knob] : knobs_) {
    if (!level || knob->level() == *level) out.push_back(knob.get());
  }
  return out;
}

}  // namespace vdep::knobs
