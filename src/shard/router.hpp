// ShardRouter — client-side key routing over a cached shard map.
//
// Sits between the application and its ClientOrb: hashes the key, picks the
// owning group from the cached map, and issues the request through the
// normal replicated path (so retransmission, failover and reply dedup are
// untouched). Fencing rejections from the servant (kWrongShard — the cached
// map is stale; kFrozen — the range is mid-donation) trigger a directory
// refresh and a bounded re-route: the epoch-fenced retry loop of the shard
// protocol. Every route opens a "shard.route" span tagged with the shard id
// and map epoch, so flight recordings can be filtered per shard.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "monitor/metrics.hpp"
#include "orb/orb_core.hpp"
#include "shard/directory.hpp"
#include "shard/shard_servant.hpp"

namespace vdep::shard {

struct RouteState;  // per-operation retry state (router.cpp)

class ShardRouter {
 public:
  struct Params {
    ObjectId object_key{1};
    GroupId directory_group;
    int max_attempts = 16;           // route attempts per op (incl. refreshes)
    SimTime frozen_backoff = msec(25);  // wait before retrying a frozen range
  };

  // Status is the final shard-level outcome; `inner` holds the KV result
  // bytes (KvStoreServant::decode_* applies) when status == kOk.
  using Callback = std::function<void(ShardStatus, Bytes inner)>;

  ShardRouter(orb::ClientOrb& orb, ShardMap initial, Params params,
              monitor::MetricsRegistry* metrics = nullptr);

  void put(const std::string& key, const std::string& value, Callback cb) {
    route("put", key, value, std::move(cb));
  }
  void get(const std::string& key, Callback cb) {
    route("get", key, {}, std::move(cb));
  }
  void erase(const std::string& key, Callback cb) {
    route("erase", key, {}, std::move(cb));
  }
  void append(const std::string& key, const std::string& value, Callback cb) {
    route("append", key, value, std::move(cb));
  }

  // Fetch the directory's current map; `then` (optional) runs after the
  // cache is updated. Coalesces concurrent refreshes into one "dir.get".
  void refresh_map(std::function<void()> then = {});

  [[nodiscard]] const ShardMap& map() const { return map_; }
  [[nodiscard]] std::uint64_t map_epoch() const { return map_.epoch(); }
  [[nodiscard]] std::uint64_t routed() const { return routed_; }
  [[nodiscard]] std::uint64_t stale_rejections() const { return stale_rejections_; }
  [[nodiscard]] std::uint64_t refreshes() const { return refreshes_; }

 private:
  void route(const std::string& operation, const std::string& key,
             std::optional<std::string> value, Callback cb);
  void attempt(std::shared_ptr<RouteState> state);

  orb::ClientOrb& orb_;
  ShardMap map_;
  Params params_;
  monitor::MetricsRegistry* metrics_;
  bool refresh_in_flight_ = false;
  std::vector<std::function<void()>> refresh_waiters_;
  std::uint64_t routed_ = 0;
  std::uint64_t stale_rejections_ = 0;
  std::uint64_t refreshes_ = 0;
};

}  // namespace vdep::shard
