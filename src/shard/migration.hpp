// MigrationController — drives online shard splits and whole-shard moves.
//
// The controller is a plain client process (own ORB + ClientCoordinator):
// every step below is a replicated request, so each step is exactly-once
// through source/target failovers (coordinator retransmission + reply-cache
// dedup), and the controller itself holds no authoritative state — the
// directory and the shard servants do.
//
//   dir.get -> compute successor map
//   shard.freeze(source)    — source stops serving the moving range
//   shard.donate(source)    — reply carries the encode-once bundle
//   shard.install(target)   — target absorbs the bundle, starts owning
//   dir.commit              — the new epoch becomes the routed truth (AGREED)
//   shard.release(source)   — source drops the moved keys
//
// Between freeze and release the moving range is served by nobody: the
// source rejects it kFrozen and routers only learn the target at commit.
// That is the no-double-serve invariant; the cost is a bounded availability
// gap for that range, which the chaos oracles time-bound via the client
// retry loop. A controller that loses a dir.commit race (kStaleEpoch)
// refetches and recomputes; per-step transient failures retry on a timer.
#pragma once

#include <deque>
#include <functional>
#include <memory>

#include "replication/client_coordinator.hpp"
#include "shard/directory.hpp"
#include "shard/router.hpp"

namespace vdep::shard {

class MigrationController {
 public:
  struct Params {
    ObjectId object_key{1};
    GroupId directory_group;
    SimTime step_retry = msec(200);  // app-level rejection -> retry delay
    int max_step_attempts = 50;
    replication::ClientCoordinatorParams coordinator;
  };

  struct Record {
    std::uint64_t id = 0;           // migration id (unique per controller)
    std::uint32_t source_shard = 0;
    std::uint32_t new_shard = 0;    // == source_shard for whole-shard moves
    KeyRange moved;
    GroupId from;
    GroupId to;
    std::uint64_t committed_epoch = 0;
    ShardMap committed_map;         // the map this migration put in force
    SimTime started = kTimeZero;
    SimTime committed = kTimeZero;  // dir.commit acknowledged
    SimTime finished = kTimeZero;   // release acknowledged
    std::uint64_t bytes_moved = 0;  // donated bundle size
    bool success = false;
    std::string error;
  };

  using Done = std::function<void(const Record&)>;

  MigrationController(net::Network& network, gcs::Daemon& daemon,
                      sim::Kernel& kernel, ProcessId pid, NodeId host,
                      Params params, monitor::MetricsRegistry* metrics = nullptr);
  ~MigrationController();

  // Split `shard_id` at `split_point` (the upper part moves to
  // `target_group` under `policy`). Queued if a migration is in flight.
  void split(std::uint32_t shard_id, std::uint32_t split_point,
             GroupId target_group, const ShardPolicy& policy, Done done = {});

  // Move the whole of `shard_id` to `target_group`.
  void move(std::uint32_t shard_id, GroupId target_group, Done done = {});

  [[nodiscard]] bool idle() const { return !busy_ && queue_.empty(); }
  [[nodiscard]] const std::vector<Record>& history() const { return history_; }
  [[nodiscard]] std::uint64_t bytes_moved_total() const { return bytes_moved_total_; }

 private:
  struct Job;
  void pump();
  void run(std::shared_ptr<Job> job);
  void step(std::shared_ptr<Job> job, const std::string& what,
            const orb::ObjectRef& ref, const std::string& operation, Bytes args,
            std::function<void(ShardStatus, Bytes)> on_ok);
  void finish(std::shared_ptr<Job> job, bool success, const std::string& error);
  [[nodiscard]] orb::ObjectRef group_ref(GroupId group) const;

  sim::Kernel& kernel_;
  Params params_;
  monitor::MetricsRegistry* metrics_;
  sim::Process process_;
  orb::ClientOrb orb_;
  std::uint64_t next_migration_id_ = 1;
  bool busy_ = false;
  std::deque<std::shared_ptr<Job>> queue_;
  std::vector<Record> history_;
  std::uint64_t bytes_moved_total_ = 0;
};

}  // namespace vdep::shard
