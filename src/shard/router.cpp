#include "shard/router.hpp"

#include "obs/tracer.hpp"
#include "sim/kernel.hpp"

namespace vdep::shard {

struct RouteState {
  std::string operation;
  std::string key;
  std::optional<std::string> value;
  ShardRouter::Callback cb;
  int attempts = 0;
  ShardStatus last_status = ShardStatus::kOk;
};

ShardRouter::ShardRouter(orb::ClientOrb& orb, ShardMap initial, Params params,
                         monitor::MetricsRegistry* metrics)
    : orb_(orb), map_(std::move(initial)), params_(params), metrics_(metrics) {}

void ShardRouter::route(const std::string& operation, const std::string& key,
                        std::optional<std::string> value, Callback cb) {
  auto state = std::make_shared<RouteState>();
  state->operation = operation;
  state->key = key;
  state->value = std::move(value);
  state->cb = std::move(cb);
  attempt(std::move(state));
}

void ShardRouter::attempt(std::shared_ptr<RouteState> state) {
  if (state->attempts >= params_.max_attempts) {
    state->cb(state->last_status, {});
    return;
  }
  ++state->attempts;

  const ShardEntry* entry = map_.lookup_key(state->key);
  if (entry == nullptr) {  // malformed cache — force a refresh and retry
    refresh_map([this, state] { attempt(state); });
    return;
  }
  ++routed_;
  if (metrics_ != nullptr) {
    metrics_->add("shard." + std::to_string(entry->shard) + ".requests");
  }

  obs::Tracer& tracer = orb_.process().kernel().tracer();
  obs::Span span =
      tracer.start_child("shard.route", "shard", orb_.process().name());
  span.note("shard", std::to_string(entry->shard));
  span.note("epoch", std::to_string(map_.epoch()));
  span.note("op", state->operation);
  obs::Tracer::Scope scope(tracer, span.context());

  orb::ObjectRef ref;
  ref.object_key = params_.object_key;
  ref.group = orb::GroupProfile{entry->group};
  const std::string* value = state->value ? &*state->value : nullptr;
  Bytes args = ShardServant::encode_data_args(map_.epoch(), state->key, value);

  orb_.invoke(ref, state->operation, std::move(args),
              [this, state](orb::ReplyStatus status, Bytes body) {
                if (status != orb::ReplyStatus::kNoException) {
                  state->last_status = ShardStatus::kBadRequest;
                  refresh_map([this, state] { attempt(state); });
                  return;
                }
                auto reply = ShardServant::decode_data_reply(body);
                if (reply.status == ShardStatus::kOk) {
                  state->cb(ShardStatus::kOk, std::move(reply.inner));
                  return;
                }
                state->last_status = reply.status;
                ++stale_rejections_;
                if (metrics_ != nullptr) metrics_->add("shard.router.rejected");
                if (reply.status == ShardStatus::kFrozen) {
                  // Mid-donation: give the migration time to commit, then
                  // re-read the map and follow the range to its new group.
                  orb_.process().kernel().post(params_.frozen_backoff, [this, state] {
                    refresh_map([this, state] { attempt(state); });
                  });
                } else {
                  refresh_map([this, state] { attempt(state); });
                }
              });
}

void ShardRouter::refresh_map(std::function<void()> then) {
  if (then) refresh_waiters_.push_back(std::move(then));
  if (refresh_in_flight_) return;
  refresh_in_flight_ = true;

  orb::ObjectRef ref;
  ref.object_key = params_.object_key;
  ref.group = orb::GroupProfile{params_.directory_group};
  orb_.invoke(ref, "dir.get", {}, [this](orb::ReplyStatus status, Bytes body) {
    refresh_in_flight_ = false;
    if (status == orb::ReplyStatus::kNoException) {
      auto reply = DirectoryServant::decode_get_reply(body);
      if (reply.status == ShardStatus::kOk && reply.map.epoch() > map_.epoch()) {
        map_ = std::move(reply.map);
        ++refreshes_;
        if (metrics_ != nullptr) metrics_->add("shard.router.refreshes");
      }
    }
    auto waiters = std::move(refresh_waiters_);
    refresh_waiters_.clear();
    for (auto& w : waiters) w();
  });
}

}  // namespace vdep::shard
