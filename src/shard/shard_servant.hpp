// ShardServant — a KV store that owns a set of hash ranges and enforces
// shard fencing on every request.
//
// All shard reconfiguration travels *in the replicated request stream*:
// freeze/donate/install/release are ordinary operations, AGREED-ordered with
// the data traffic by the group-communication layer and executed by the same
// replicator machinery (log replay on failover, checkpointed control state,
// exactly-once dedup via the reply cache). That one decision makes migration
// crash-safe without a single new protocol message:
//
//  - a data request delivered before the freeze executes; one delivered
//    after it is rejected kFrozen — total order is the atomicity boundary;
//  - a frozen range cannot change, so the donate bundle (cut after the
//    freeze in stream order) is exact;
//  - a failover mid-migration replays freeze/donate/release from the log or
//    restores them from a checkpoint — the new primary continues the
//    migration instead of forgetting it.
//
// Data operations carry the client's cached map epoch and are answered with
// an app-level ShardStatus ahead of the inner KV result: kWrongShard /
// kFrozen replies are how stale routing is rejected (the GIOP status stays
// NO_EXCEPTION — fencing is application-visible, not a transport error).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "app/kv_store.hpp"
#include "shard/map.hpp"

namespace vdep::shard {

enum class ShardStatus : std::uint32_t {
  kOk = 0,
  kWrongShard = 1,  // hash not in any owned range — routing was stale
  kFrozen = 2,      // owned, but mid-donation: retry after the map epoch bumps
  kStaleEpoch = 3,  // directory: commit does not continue the current epoch
  kBadRequest = 4,  // malformed/mis-sequenced control operation
};

[[nodiscard]] std::string to_string(ShardStatus status);

class ShardServant final : public replication::Checkpointable {
 public:
  struct Config {
    app::KvStoreServant::Config kv;
    SimTime route_check_time = usec(2);  // fence lookup per request
    double bundle_bytes_per_sec = 100e6;  // donate/install (de)serialization
  };

  // A servant joining an existing group starts blank (no ranges); the state
  // transfer brings both the data and the control state.
  ShardServant() : ShardServant(Config{}, {}, 0) {}
  ShardServant(Config config, std::vector<KeyRange> owned, std::uint64_t fence_epoch);

  // Data: "put" | "get" | "erase" | "append", args = CDR {ulonglong
  // map_epoch; string key; [string value]}; output = CDR {ulong status;
  // octets inner_result}.
  //
  // Control (issued by the migration controller, idempotent per migration
  // id `m`):
  //   "shard.freeze"   {ulonglong m; ulong lo; ulong hi; ulonglong
  //                     post_epoch; ulonglong target_group}
  //   "shard.donate"   {ulonglong m} -> {ulong status; octets bundle}
  //   "shard.install"  {ulonglong m; ulong lo; ulong hi; ulonglong
  //                     post_epoch; octets bundle}
  //   "shard.release"  {ulonglong m}
  Result invoke(const std::string& operation, const Bytes& args) override;

  [[nodiscard]] Bytes snapshot() const override;
  void restore(std::span<const std::uint8_t> snapshot) override;
  [[nodiscard]] std::size_t state_size() const override;
  [[nodiscard]] std::uint64_t state_digest() const override;

  [[nodiscard]] bool supports_delta() const override { return true; }
  std::uint64_t cut_epoch() override;
  [[nodiscard]] std::optional<Bytes> snapshot_delta(
      std::uint64_t since_epoch) const override;
  void apply_delta(std::span<const std::uint8_t> delta) override;

  // --- introspection (oracles/tests read replica state directly) ------------
  [[nodiscard]] const app::KvStoreServant& store() const { return inner_; }
  [[nodiscard]] app::KvStoreServant& store() { return inner_; }
  [[nodiscard]] const std::vector<KeyRange>& owned_ranges() const { return owned_; }
  [[nodiscard]] bool owns(std::uint32_t hash) const;
  [[nodiscard]] bool frozen() const { return frozen_.has_value(); }
  [[nodiscard]] std::uint64_t fence_epoch() const { return fence_epoch_; }
  // Keys currently stored whose hash falls outside every owned range
  // (serving them would violate ownership; should be empty after release).
  [[nodiscard]] std::size_t stray_keys() const;

  // --- client-side arg/result helpers ---------------------------------------
  static Bytes encode_data_args(std::uint64_t map_epoch, const std::string& key,
                                const std::string* value);
  struct DataReply {
    ShardStatus status = ShardStatus::kOk;
    Bytes inner;  // KvStoreServant result bytes when status == kOk
  };
  static DataReply decode_data_reply(const Bytes& body);

 private:
  struct Migration {
    std::uint64_t id = 0;
    KeyRange range;
    std::uint64_t post_epoch = 0;  // map epoch once the move commits
    GroupId target;
  };

  Result control(const std::string& operation, const Bytes& args);
  Result freeze(const Migration& m);
  Result donate(std::uint64_t id);
  Result install(std::uint64_t id, KeyRange range, std::uint64_t post_epoch,
                 const Bytes& bundle);
  Result release(std::uint64_t id);
  [[nodiscard]] static Result status_reply(ShardStatus status, SimTime cpu);

  void owned_add(KeyRange range);
  void owned_remove(KeyRange range);

  [[nodiscard]] Bytes encode_control() const;
  // Returns the remaining (inner) portion of the buffer.
  std::span<const std::uint8_t> decode_control(std::span<const std::uint8_t> raw);

  Config config_;
  app::KvStoreServant inner_;
  std::uint64_t fence_epoch_ = 0;
  std::vector<KeyRange> owned_;  // sorted by lo, disjoint
  std::optional<Migration> frozen_;
  std::set<std::uint64_t> done_migrations_;  // idempotency for install/release
};

}  // namespace vdep::shard
