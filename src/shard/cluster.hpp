// ShardedCluster — a complete multi-group testbed: one GCS daemon per host,
// a replicated shard directory, one replica group per shard (each with its
// own style / replica count / checkpoint profile from the shard policy),
// routed clients, and a migration controller. The multi-shard analogue of
// harness::Scenario, built for the scale-out experiments: replica groups are
// co-located round-robin on a bounded set of server hosts, so 32 shards do
// not need 64 machines (the daemon mesh cost grows with hosts, not groups).
//
// Per-shard knob actuation: controller(group) adapts one group to the
// knobs::ReplicaGroupController interface and vd(group) wraps it in a
// VersatileDependability facade, so availability/scalability synthesis runs
// independently per shard.
#pragma once

#include <map>
#include <memory>

#include "gcs/daemon.hpp"
#include "knobs/versatile.hpp"
#include "monitor/health/health_monitor.hpp"
#include "net/fault_plan.hpp"
#include "replication/replicator.hpp"
#include "shard/migration.hpp"
#include "shard/router.hpp"
#include "util/stats.hpp"

namespace vdep::shard {

struct ShardedClusterConfig {
  std::uint64_t seed = 1;
  int shards = 4;
  ShardPolicy default_policy{};  // style/replicas/checkpointing per shard
  int directory_replicas = 2;
  replication::ReplicationStyle directory_style =
      replication::ReplicationStyle::kActive;
  int server_hosts = 8;
  int clients = 2;
  int client_hosts = 2;
  SimTime checkpoint_interval = calib::kDefaultCheckpointInterval;
  gcs::DaemonParams daemon;
  replication::ClientCoordinatorParams coordinator;
  ShardRouter::Params router;  // directory_group/object_key filled in build
  bool tracing = false;
  bool auto_recover = true;

  // Live health plane: a HealthMonitor attached to every daemon plus one SLO
  // tracker per shard ("shard.<id>" over the per-shard latency/ops/failed
  // metrics that run_workload records when health is on).
  bool health = false;
  monitor::health::HealthParams health_params;
  double shard_slo_p99_target_us = 50'000.0;
  double shard_slo_availability_target = 0.99;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig config);
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  // --- fabric ---------------------------------------------------------------
  [[nodiscard]] sim::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] monitor::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const ShardedClusterConfig& config() const { return config_; }
  // Health plane (health() asserts config.health).
  [[nodiscard]] bool health_enabled() const { return health_ != nullptr; }
  [[nodiscard]] monitor::health::HealthMonitor& health();

  // --- directory ------------------------------------------------------------
  [[nodiscard]] const ShardMap& initial_map() const { return initial_map_; }
  // The map currently in force, read off a live directory replica.
  [[nodiscard]] const ShardMap& directory_map() const;
  [[nodiscard]] GroupId directory_group() const;

  // --- groups ---------------------------------------------------------------
  [[nodiscard]] std::vector<GroupId> data_groups() const;
  [[nodiscard]] int replicas_in(GroupId group) const;
  [[nodiscard]] replication::Replicator& replicator(GroupId group, int node);
  [[nodiscard]] ShardServant& shard_servant(GroupId group, int node);
  [[nodiscard]] sim::Process& replica_process(GroupId group, int node);
  [[nodiscard]] ProcessId replica_pid(GroupId group, int node) const;
  [[nodiscard]] bool replica_live(GroupId group, int node) const;
  void recover_replica(GroupId group, int node);

  // --- per-shard knobs ------------------------------------------------------
  [[nodiscard]] knobs::ReplicaGroupController& controller(GroupId group);
  [[nodiscard]] knobs::VersatileDependability& vd(GroupId group);

  // --- clients --------------------------------------------------------------
  [[nodiscard]] ShardRouter& router(int client);
  [[nodiscard]] orb::ClientOrb& client_orb(int client);
  [[nodiscard]] ProcessId client_pid(int client) const;

  // --- migration ------------------------------------------------------------
  [[nodiscard]] MigrationController& migration() { return *migration_; }
  // Starts a fresh (empty) replica group for `policy` and returns its id.
  GroupId provision_group(const ShardPolicy& policy);
  // Provision a target group and split `shard_id` at `split_point` onto it.
  void split_shard(std::uint32_t shard_id, std::uint32_t split_point,
                   const ShardPolicy& policy, MigrationController::Done done = {});

  // --- faults ---------------------------------------------------------------
  [[nodiscard]] net::FaultPlan& fault_plan() { return fault_plan_; }
  void arm_faults();

  void drain(SimTime extra = msec(200));

  // --- built-in workload ----------------------------------------------------
  struct WorkloadConfig {
    int ops_per_client = 50;
    SimTime gap = msec(10);  // think time between completions
    double put_ratio = 0.5;
    double append_ratio = 0.2;  // rest are gets
    int key_space = 512;
    SimTime start_at = msec(300);
    SimTime stagger = usec(100);  // spacing between client first ops
    SimTime deadline = sec(120);
  };
  struct WorkloadResult {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;  // router gave up (exhausted route attempts)
    double throughput_rps = 0.0;
    double avg_latency_us = 0.0;
    double p99_latency_us = 0.0;
    SimTime finished_at = kTimeZero;
    bool all_done = false;
  };
  WorkloadResult run_workload(const WorkloadConfig& wc);

 private:
  struct ReplicaNode;
  struct GroupBundle;
  struct ClientBundle;

  void build();
  [[nodiscard]] std::unique_ptr<replication::Checkpointable> make_group_servant(
      GroupBundle& group, bool blank);
  GroupBundle& add_group(GroupId id, const ShardPolicy& policy, bool is_directory);
  void add_node(GroupBundle& group, NodeId host);
  void start_node(GroupBundle& group, int node, bool join_existing);
  [[nodiscard]] NodeId pick_server_host();
  [[nodiscard]] GroupBundle& bundle(GroupId group);
  [[nodiscard]] const GroupBundle& bundle(GroupId group) const;
  [[nodiscard]] gcs::Daemon& daemon_on(NodeId host);
  [[nodiscard]] replication::ReplicationStyle group_style(const GroupBundle& g) const;

  ShardedClusterConfig config_;
  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<net::Network> network_;
  std::vector<NodeId> hosts_;  // clients first, then servers
  std::vector<NodeId> server_hosts_;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons_;
  ShardMap initial_map_;
  std::vector<std::unique_ptr<GroupBundle>> groups_;  // [0] is the directory
  std::vector<std::unique_ptr<ClientBundle>> clients_;
  std::unique_ptr<MigrationController> migration_;
  std::map<std::uint64_t, std::unique_ptr<knobs::VersatileDependability>> vds_;
  monitor::MetricsRegistry metrics_;
  std::unique_ptr<monitor::health::HealthMonitor> health_;
  net::FaultPlan fault_plan_;
  bool faults_armed_ = false;
  std::uint64_t next_group_value_ = 0;
  std::uint64_t next_replica_pid_ = 1000;
};

}  // namespace vdep::shard
