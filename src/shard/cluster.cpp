#include "shard/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace vdep::shard {

namespace {
constexpr std::uint64_t kDirectoryGroupValue = 1;
constexpr std::uint64_t kFirstDataGroupValue = 10;
constexpr ObjectId kObjectKey{1};
constexpr SimTime kBootStagger = msec(1);
constexpr std::uint64_t kFirstDaemonPid = 100;
constexpr std::uint64_t kMigratorPid = 4000;
constexpr std::uint64_t kFirstClientPid = 5000;

replication::ReplicationStyle style_of(const ShardPolicy& policy) {
  return static_cast<replication::ReplicationStyle>(policy.style);
}
}  // namespace

// One replica of one group (directory or shard), same shape as a
// harness::Scenario replica: process + servant + POA + server ORB +
// replicator.
struct ShardedCluster::ReplicaNode {
  ReplicaNode(ShardedCluster& owner, int index, NodeId host, ProcessId pid,
              std::string name, std::unique_ptr<replication::Checkpointable> app)
      : index(index),
        process(owner.kernel(), pid, host, std::move(name)),
        servant(std::move(app)),
        orb(owner.network(), process, poa) {
    poa.activate(kObjectKey, *servant);
  }

  int index;
  sim::Process process;
  std::unique_ptr<replication::Checkpointable> servant;
  orb::Poa poa;
  orb::ServerOrb orb;
  std::unique_ptr<replication::Replicator> replicator;
  bool started = false;
  bool recovery_hooked = false;
  std::uint64_t replicator_incarnation = 0;

  [[nodiscard]] bool live() const {
    return started && process.alive() && replicator != nullptr &&
           !replicator->stopped();
  }
};

// Adapts one replica group to the knob layer's actuation interface, so each
// shard's policy can be tuned independently.
struct ShardedCluster::GroupBundle final : knobs::ReplicaGroupController {
  GroupBundle(ShardedCluster& owner, GroupId id, ShardPolicy policy,
              bool is_directory)
      : owner(owner), id(id), policy(policy), is_directory(is_directory) {}

  ShardedCluster& owner;
  GroupId id;
  ShardPolicy policy;
  bool is_directory;
  SimTime ckpt_interval{calib::kDefaultCheckpointInterval};
  std::vector<std::unique_ptr<ReplicaNode>> nodes;

  [[nodiscard]] ReplicaNode& first_live() {
    for (auto& n : nodes) {
      if (n->live()) return *n;
    }
    throw std::runtime_error("group " + std::to_string(id.value()) +
                             ": no live replica");
  }

  [[nodiscard]] int live_count() const {
    int n = 0;
    for (const auto& node : nodes) {
      if (node->live()) ++n;
    }
    return n;
  }

  // --- knobs::ReplicaGroupController ---------------------------------------
  void set_style(replication::ReplicationStyle style) override {
    policy.style = static_cast<std::uint8_t>(style);
    first_live().replicator->request_style_switch(style);
  }
  [[nodiscard]] replication::ReplicationStyle style() const override {
    for (const auto& n : nodes) {
      if (n->live()) return n->replicator->style();
    }
    return style_of(policy);
  }
  void set_replica_count(int replicas) override {
    VDEP_ASSERT(replicas >= 1);
    policy.replicas = static_cast<std::uint8_t>(replicas);
    int live = live_count();
    for (auto it = nodes.rbegin(); it != nodes.rend() && live > replicas; ++it) {
      if (!(*it)->live()) continue;
      (*it)->replicator->stop();
      --live;
    }
    while (live < replicas) {
      owner.add_node(*this, owner.pick_server_host());
      owner.start_node(*this, static_cast<int>(nodes.size()) - 1,
                       /*join_existing=*/true);
      ++live;
    }
  }
  [[nodiscard]] int replica_count() const override { return live_count(); }
  void set_checkpoint_interval(SimTime interval) override {
    ckpt_interval = interval;
    for (auto& n : nodes) {
      if (n->live()) n->replicator->set_checkpoint_interval(interval);
    }
  }
  [[nodiscard]] SimTime checkpoint_interval() const override {
    return ckpt_interval;
  }
  void set_checkpoint_anchor_interval(std::uint32_t interval) override {
    policy.checkpoint_anchor_interval = interval;
    for (auto& n : nodes) {
      if (n->live()) n->replicator->set_checkpoint_anchor_interval(interval);
    }
  }
  [[nodiscard]] std::uint32_t checkpoint_anchor_interval() const override {
    return policy.checkpoint_anchor_interval;
  }
};

struct ShardedCluster::ClientBundle {
  ClientBundle(ShardedCluster& owner, int index, NodeId host, ProcessId pid)
      : index(index),
        process(owner.kernel(), pid, host,
                "client" + std::to_string(index) + "@" +
                    owner.network().host_name(host)),
        orb(owner.network(), process) {}

  int index;
  sim::Process process;
  orb::ClientOrb orb;
  std::unique_ptr<ShardRouter> router;
};

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)) {
  VDEP_ASSERT(config_.shards >= 1);
  VDEP_ASSERT(config_.clients >= 1);
  VDEP_ASSERT(config_.server_hosts >= 1);
  config_.client_hosts = std::max(1, std::min(config_.client_hosts, config_.clients));
  build();
}

ShardedCluster::~ShardedCluster() = default;

void ShardedCluster::build() {
  kernel_ = std::make_unique<sim::Kernel>(config_.seed);
  if (config_.tracing) kernel_->tracer().enable();
  network_ = std::make_unique<net::Network>(*kernel_);

  // Client hosts first: the lowest-id daemon is the GCS leader/sequencer,
  // and it should live on a machine the fault schedules never touch.
  for (int c = 0; c < config_.client_hosts; ++c) {
    hosts_.push_back(network_->add_host("cli" + std::to_string(c)));
  }
  for (int s = 0; s < config_.server_hosts; ++s) {
    const NodeId host = network_->add_host("srv" + std::to_string(s));
    hosts_.push_back(host);
    server_hosts_.push_back(host);
  }
  std::uint64_t daemon_pid = kFirstDaemonPid;
  for (NodeId host : hosts_) {
    daemons_.push_back(std::make_unique<gcs::Daemon>(
        *kernel_, *network_, ProcessId{daemon_pid++}, host, hosts_,
        config_.daemon));
  }
  for (auto& d : daemons_) d->boot();

  initial_map_ = ShardMap::uniform(config_.shards, kFirstDataGroupValue,
                                   config_.default_policy);
  next_group_value_ =
      kFirstDataGroupValue + static_cast<std::uint64_t>(config_.shards);

  // Directory group.
  ShardPolicy dir_policy;
  dir_policy.style = static_cast<std::uint8_t>(config_.directory_style);
  dir_policy.replicas = static_cast<std::uint8_t>(config_.directory_replicas);
  dir_policy.checkpoint_every_requests = 10;
  auto& directory = add_group(GroupId{kDirectoryGroupValue}, dir_policy,
                              /*is_directory=*/true);
  for (int r = 0; r < config_.directory_replicas; ++r) {
    add_node(directory,
             server_hosts_[static_cast<std::size_t>(r) % server_hosts_.size()]);
  }

  // One data group per shard, replicas co-located round-robin on the server
  // hosts.
  std::size_t placement = static_cast<std::size_t>(config_.directory_replicas);
  for (const auto& entry : initial_map_.entries()) {
    auto& group = add_group(entry.group, entry.policy, /*is_directory=*/false);
    for (int r = 0; r < entry.policy.replicas; ++r) {
      add_node(group, server_hosts_[placement++ % server_hosts_.size()]);
    }
  }

  // Staggered boots: one replica per tick so views form without join storms.
  int boot_slot = 0;
  for (auto& group : groups_) {
    for (std::size_t n = 0; n < group->nodes.size(); ++n) {
      GroupBundle* g = group.get();
      const int node = static_cast<int>(n);
      kernel_->post(kBootStagger * (++boot_slot), [this, g, node] {
        start_node(*g, node, /*join_existing=*/false);
      });
    }
  }

  // Clients with routers.
  for (int c = 0; c < config_.clients; ++c) {
    const NodeId host = hosts_[static_cast<std::size_t>(c) %
                               static_cast<std::size_t>(config_.client_hosts)];
    auto client = std::make_unique<ClientBundle>(
        *this, c, host, ProcessId{kFirstClientPid + static_cast<std::uint64_t>(c)});
    client->orb.use_transport(std::make_unique<replication::ClientCoordinator>(
        *network_, daemon_on(host), client->process, config_.coordinator));
    ShardRouter::Params rp = config_.router;
    rp.object_key = kObjectKey;
    rp.directory_group = GroupId{kDirectoryGroupValue};
    client->router =
        std::make_unique<ShardRouter>(client->orb, initial_map_, rp, &metrics_);
    clients_.push_back(std::move(client));
  }

  // Migration controller on the (never-faulted) first client host.
  MigrationController::Params mp;
  mp.object_key = kObjectKey;
  mp.directory_group = GroupId{kDirectoryGroupValue};
  mp.coordinator = config_.coordinator;
  migration_ = std::make_unique<MigrationController>(
      *network_, daemon_on(hosts_[0]), *kernel_, ProcessId{kMigratorPid},
      hosts_[0], mp, &metrics_);

  metrics_.set_gauge("shard.map_epoch", static_cast<double>(initial_map_.epoch()));
  metrics_.set_gauge("shard.count", static_cast<double>(config_.shards));

  if (config_.health) {
    health_ = std::make_unique<monitor::health::HealthMonitor>(
        *kernel_, metrics_, config_.health_params);
    for (auto& d : daemons_) health_->attach(*d);
    for (const auto& entry : initial_map_.entries()) {
      monitor::health::SloSpec slo;
      const std::string prefix = "shard." + std::to_string(entry.shard);
      slo.name = prefix;
      slo.latency_metric = prefix + ".latency_us";
      slo.request_counter = prefix + ".ops";
      slo.failure_counter = prefix + ".failed";
      slo.latency_p99_target_us = config_.shard_slo_p99_target_us;
      slo.availability_target = config_.shard_slo_availability_target;
      health_->add_slo(slo);
    }
    health_->start();
  }
}

ShardedCluster::GroupBundle& ShardedCluster::add_group(GroupId id,
                                                       const ShardPolicy& policy,
                                                       bool is_directory) {
  groups_.push_back(
      std::make_unique<GroupBundle>(*this, id, policy, is_directory));
  groups_.back()->ckpt_interval = config_.checkpoint_interval;
  return *groups_.back();
}

std::unique_ptr<replication::Checkpointable> ShardedCluster::make_group_servant(
    GroupBundle& group, bool blank) {
  if (group.is_directory) {
    if (blank) return std::make_unique<DirectoryServant>();
    return std::make_unique<DirectoryServant>(initial_map_);
  }
  if (blank) return std::make_unique<ShardServant>();
  return std::make_unique<ShardServant>(ShardServant::Config{},
                                        initial_map_.ranges_of(group.id),
                                        initial_map_.epoch());
}

void ShardedCluster::add_node(GroupBundle& group, NodeId host) {
  const int index = static_cast<int>(group.nodes.size());
  // Nodes created at t=0 are seeded with the initial map / owned ranges;
  // anything added later (growth, provisioned split targets) starts blank
  // and fills in via state transfer or shard.install.
  const bool seeded = kernel_->now() == kTimeZero;
  const std::string name = "g" + std::to_string(group.id.value()) + "r" +
                           std::to_string(index) + "@" +
                           network_->host_name(host);
  group.nodes.push_back(std::make_unique<ReplicaNode>(
      *this, index, host, ProcessId{next_replica_pid_++}, name,
      make_group_servant(group, /*blank=*/!seeded)));
}

void ShardedCluster::start_node(GroupBundle& group, int node, bool join_existing) {
  auto& n = *group.nodes.at(static_cast<std::size_t>(node));
  VDEP_ASSERT(!n.started);
  n.started = true;

  replication::ReplicatorParams params;
  params.checkpoint_interval = group.ckpt_interval;
  params.checkpoint_every_requests = group.policy.checkpoint_every_requests;
  params.checkpoint_anchor_interval = group.policy.checkpoint_anchor_interval;
  n.replicator = std::make_unique<replication::Replicator>(
      *network_, daemon_on(n.process.host()), n.process, n.orb, *n.servant,
      group.id, params);
  if (config_.auto_recover && !n.recovery_hooked) {
    n.recovery_hooked = true;
    GroupBundle* g = &group;
    const int index = node;
    n.process.subscribe_restart([this, g, index](ProcessId) {
      kernel_->post(kTimeZero, [this, g, index] {
        auto& b = *g->nodes.at(static_cast<std::size_t>(index));
        if (b.process.alive() &&
            b.replicator_incarnation != b.process.incarnation()) {
          recover_replica(g->id, index);
        }
      });
    });
  }
  n.replicator_incarnation = n.process.incarnation();
  n.replicator->start(group_style(group), join_existing);
}

replication::ReplicationStyle ShardedCluster::group_style(
    const GroupBundle& g) const {
  return g.is_directory ? config_.directory_style : style_of(g.policy);
}

NodeId ShardedCluster::pick_server_host() {
  // Fewest resident replicas wins; ties break on host order (deterministic).
  std::map<std::uint64_t, int> load;
  for (NodeId h : server_hosts_) load[h.value()] = 0;
  for (const auto& g : groups_) {
    for (const auto& n : g->nodes) {
      if (n->live() || !n->started) ++load[n->process.host().value()];
    }
  }
  NodeId best = server_hosts_.front();
  int best_load = load[best.value()];
  for (NodeId h : server_hosts_) {
    if (load[h.value()] < best_load) {
      best = h;
      best_load = load[h.value()];
    }
  }
  return best;
}

gcs::Daemon& ShardedCluster::daemon_on(NodeId host) {
  for (auto& d : daemons_) {
    if (d->host() == host) return *d;
  }
  throw std::out_of_range("no daemon on that host");
}

ShardedCluster::GroupBundle& ShardedCluster::bundle(GroupId group) {
  for (auto& g : groups_) {
    if (g->id == group) return *g;
  }
  throw std::out_of_range("unknown group " + std::to_string(group.value()));
}

const ShardedCluster::GroupBundle& ShardedCluster::bundle(GroupId group) const {
  for (const auto& g : groups_) {
    if (g->id == group) return *g;
  }
  throw std::out_of_range("unknown group " + std::to_string(group.value()));
}

// --- directory ----------------------------------------------------------------

GroupId ShardedCluster::directory_group() const {
  return GroupId{kDirectoryGroupValue};
}

const ShardMap& ShardedCluster::directory_map() const {
  const auto& dir = bundle(GroupId{kDirectoryGroupValue});
  for (const auto& n : dir.nodes) {
    if (!n->live()) continue;
    auto* servant = dynamic_cast<const DirectoryServant*>(n->servant.get());
    VDEP_ASSERT_MSG(servant != nullptr, "directory node hosts a DirectoryServant");
    return servant->map();
  }
  return initial_map_;
}

// --- groups ---------------------------------------------------------------------

std::vector<GroupId> ShardedCluster::data_groups() const {
  std::vector<GroupId> out;
  for (const auto& g : groups_) {
    if (!g->is_directory) out.push_back(g->id);
  }
  return out;
}

int ShardedCluster::replicas_in(GroupId group) const {
  return static_cast<int>(bundle(group).nodes.size());
}

replication::Replicator& ShardedCluster::replicator(GroupId group, int node) {
  auto& r = bundle(group).nodes.at(static_cast<std::size_t>(node))->replicator;
  VDEP_ASSERT_MSG(r != nullptr, "replica not started yet");
  return *r;
}

ShardServant& ShardedCluster::shard_servant(GroupId group, int node) {
  auto& b = bundle(group);
  VDEP_ASSERT_MSG(!b.is_directory, "directory group has no shard servant");
  auto* servant = dynamic_cast<ShardServant*>(
      b.nodes.at(static_cast<std::size_t>(node))->servant.get());
  VDEP_ASSERT_MSG(servant != nullptr, "shard node hosts a ShardServant");
  return *servant;
}

sim::Process& ShardedCluster::replica_process(GroupId group, int node) {
  return bundle(group).nodes.at(static_cast<std::size_t>(node))->process;
}

ProcessId ShardedCluster::replica_pid(GroupId group, int node) const {
  return bundle(group).nodes.at(static_cast<std::size_t>(node))->process.id();
}

bool ShardedCluster::replica_live(GroupId group, int node) const {
  return bundle(group).nodes.at(static_cast<std::size_t>(node))->live();
}

void ShardedCluster::recover_replica(GroupId group, int node) {
  auto& g = bundle(group);
  auto& n = *g.nodes.at(static_cast<std::size_t>(node));
  if (!n.process.alive()) n.process.restart();
  n.replicator.reset();
  n.poa.deactivate(kObjectKey);
  n.servant = make_group_servant(g, /*blank=*/true);
  n.poa.activate(kObjectKey, *n.servant);
  n.started = false;
  start_node(g, node, /*join_existing=*/true);
}

// --- knobs ----------------------------------------------------------------------

knobs::ReplicaGroupController& ShardedCluster::controller(GroupId group) {
  return bundle(group);
}

knobs::VersatileDependability& ShardedCluster::vd(GroupId group) {
  auto it = vds_.find(group.value());
  if (it == vds_.end()) {
    it = vds_.emplace(group.value(), std::make_unique<knobs::VersatileDependability>(
                                         bundle(group)))
             .first;
  }
  return *it->second;
}

// --- clients --------------------------------------------------------------------

ShardRouter& ShardedCluster::router(int client) {
  return *clients_.at(static_cast<std::size_t>(client))->router;
}

orb::ClientOrb& ShardedCluster::client_orb(int client) {
  return clients_.at(static_cast<std::size_t>(client))->orb;
}

ProcessId ShardedCluster::client_pid(int client) const {
  return clients_.at(static_cast<std::size_t>(client))->process.id();
}

// --- migration ------------------------------------------------------------------

GroupId ShardedCluster::provision_group(const ShardPolicy& policy) {
  const GroupId id{next_group_value_++};
  auto& group = add_group(id, policy, /*is_directory=*/false);
  for (int r = 0; r < policy.replicas; ++r) add_node(group, pick_server_host());
  // The first member founds the (empty) group; the rest join it and catch up
  // by state transfer, so a later install reaches every member's state.
  for (std::size_t n = 0; n < group.nodes.size(); ++n) {
    GroupBundle* g = &group;
    const int node = static_cast<int>(n);
    kernel_->post(kBootStagger * static_cast<std::int64_t>(n + 1), [this, g, node] {
      start_node(*g, node, /*join_existing=*/node > 0);
    });
  }
  return id;
}

void ShardedCluster::split_shard(std::uint32_t shard_id, std::uint32_t split_point,
                                 const ShardPolicy& policy,
                                 MigrationController::Done done) {
  const GroupId target = provision_group(policy);
  migration_->split(shard_id, split_point, target, policy, std::move(done));
}

// --- faults ---------------------------------------------------------------------

void ShardedCluster::arm_faults() {
  if (faults_armed_ || fault_plan_.empty()) return;
  faults_armed_ = true;
  std::vector<sim::Process*> processes;
  for (auto& g : groups_) {
    for (auto& n : g->nodes) processes.push_back(&n->process);
  }
  for (auto& c : clients_) processes.push_back(&c->process);
  fault_plan_.arm(*kernel_, *network_, processes);
}

void ShardedCluster::drain(SimTime extra) {
  kernel_->run_until(kernel_->now() + extra);
}

monitor::health::HealthMonitor& ShardedCluster::health() {
  VDEP_ASSERT_MSG(health_ != nullptr, "cluster built without config.health");
  return *health_;
}

// --- workload -------------------------------------------------------------------

ShardedCluster::WorkloadResult ShardedCluster::run_workload(const WorkloadConfig& wc) {
  arm_faults();

  struct ClientState {
    Rng rng{1};
    int issued = 0;
    int completed = 0;
    std::uint64_t failed = 0;
    SimTime last_done = kTimeZero;
  };
  auto states = std::make_shared<std::vector<ClientState>>(
      static_cast<std::size_t>(config_.clients));
  auto sampler = std::make_shared<Sampler>();
  auto remaining = std::make_shared<int>(config_.clients);

  auto issue_fn = std::make_shared<std::function<void(int)>>();
  // Captured weakly everywhere (a strong self capture would cycle and leak);
  // the local shared_ptr outlives the run_until below, and any gap events
  // that outlive the workload become no-ops.
  std::weak_ptr<std::function<void(int)>> weak_issue = issue_fn;
  *issue_fn = [this, wc, states, sampler, remaining, weak_issue](int c) {
    auto& st = (*states)[static_cast<std::size_t>(c)];
    if (st.issued >= wc.ops_per_client) {
      if (--*remaining == 0) kernel_->stop();
      return;
    }
    ++st.issued;
    const std::string key =
        "u" + std::to_string(st.rng.range(0, wc.key_space - 1));
    const SimTime issued_at = kernel_->now();
    const double pick = st.rng.uniform01();
    auto& r = router(c);
    // Shard attribution for per-shard SLO metrics: by the key's hash position
    // in the initial map (shard ids are stable across splits of a lineage).
    const ShardEntry* entry = initial_map_.lookup_key(key);
    const std::uint32_t shard_id = entry != nullptr ? entry->shard : 0;
    auto on_done = [this, gap = wc.gap, states, sampler, weak_issue, c, issued_at,
                    shard_id](ShardStatus status, const Bytes&) {
      auto& s = (*states)[static_cast<std::size_t>(c)];
      if (status == ShardStatus::kOk) {
        ++s.completed;
        const double lat_us = to_usec(kernel_->now() - issued_at);
        sampler->add(lat_us);
        metrics_.observe("shard.latency_us", lat_us);
        if (health_ != nullptr) {
          const std::string prefix = "shard." + std::to_string(shard_id);
          metrics_.observe(prefix + ".latency_us", lat_us);
          metrics_.add(prefix + ".ops");
        }
      } else {
        ++s.failed;
        if (health_ != nullptr) {
          metrics_.add("shard." + std::to_string(shard_id) + ".failed");
        }
      }
      s.last_done = kernel_->now();
      kernel_->post(gap, [weak_issue, c] {
        if (auto fn = weak_issue.lock()) (*fn)(c);
      });
    };
    if (pick < wc.put_ratio) {
      r.put(key, "v" + std::to_string(st.issued), on_done);
    } else if (pick < wc.put_ratio + wc.append_ratio) {
      r.append(key, "[t" + std::to_string(st.issued) + "]", on_done);
    } else {
      r.get(key, on_done);
    }
  };

  for (int c = 0; c < config_.clients; ++c) {
    (*states)[static_cast<std::size_t>(c)].rng =
        Rng(config_.seed).fork(0xc1a0 + static_cast<std::uint64_t>(c));
    kernel_->post_at(wc.start_at + wc.stagger * c, [issue_fn, c] { (*issue_fn)(c); });
  }

  kernel_->run_until(wc.deadline);

  WorkloadResult result;
  result.all_done = *remaining == 0;
  SimTime finished = kTimeZero;
  for (const auto& st : *states) {
    result.completed += static_cast<std::uint64_t>(st.completed);
    result.failed += st.failed;
    finished = std::max(finished, st.last_done);
  }
  result.finished_at = finished;
  if (sampler->stats().count() > 0) {
    result.avg_latency_us = sampler->stats().mean();
    result.p99_latency_us = sampler->percentile(99);
  }
  const SimTime window = finished - wc.start_at;
  if (window > kTimeZero && result.completed > 0) {
    result.throughput_rps = static_cast<double>(result.completed) / to_sec(window);
  }
  return result;
}

}  // namespace vdep::shard
