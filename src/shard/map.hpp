// ShardMap — the epoch-versioned partition directory entry format.
//
// The key space is the 32-bit FNV-1a hash of the application key; a map is a
// total, non-overlapping cover of [0, 2^32) by inclusive ranges, each bound
// to one replica group together with that shard's dependability policy
// (replication style, replica count, checkpoint profile). Maps are immutable
// values: every reconfiguration (split, move) produces a successor map with
// epoch+1, and the epoch is the fencing token clients and servants compare.
//
// The wire format is pinned by a golden-bytes test: magic "SMAP", a version
// byte, then the sorted entry table (ByteWriter little-endian framing, like
// every other infrastructure codec in this repo).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"
#include "util/ids.hpp"

namespace vdep::shard {

// Position of an application key in the shard key space.
[[nodiscard]] std::uint32_t shard_hash(std::string_view key);

// Inclusive range of hash positions.
struct KeyRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  [[nodiscard]] bool contains(std::uint32_t h) const { return h >= lo && h <= hi; }
  [[nodiscard]] std::uint64_t width() const {
    return static_cast<std::uint64_t>(hi) - lo + 1;
  }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const KeyRange&, const KeyRange&) = default;
};

// Per-shard dependability policy — the paper's low-level knobs made a
// property of the partition, not of the deployment.
struct ShardPolicy {
  std::uint8_t style = 1;  // replication::ReplicationStyle as raw byte
  std::uint8_t replicas = 2;
  std::uint32_t checkpoint_every_requests = 25;
  std::uint32_t checkpoint_anchor_interval = 1;

  friend bool operator==(const ShardPolicy&, const ShardPolicy&) = default;
};

struct ShardEntry {
  std::uint32_t shard = 0;  // stable shard id (never reused within a lineage)
  KeyRange range;
  GroupId group;  // replica group currently owning the range
  ShardPolicy policy;

  friend bool operator==(const ShardEntry&, const ShardEntry&) = default;
};

class ShardMap {
 public:
  ShardMap() = default;

  // A fresh map at `epoch` covering the key space with `shards` equal-width
  // ranges, shard i owned by group {first_group + i} under `policy`.
  static ShardMap uniform(int shards, std::uint64_t first_group,
                          const ShardPolicy& policy, std::uint64_t epoch = 1);

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const std::vector<ShardEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // Binary search by hash position; nullptr only if the map is empty or
  // malformed (a valid map covers every position).
  [[nodiscard]] const ShardEntry* lookup(std::uint32_t hash) const;
  [[nodiscard]] const ShardEntry* lookup_key(std::string_view key) const {
    return lookup(shard_hash(key));
  }
  [[nodiscard]] const ShardEntry* find_shard(std::uint32_t shard_id) const;
  [[nodiscard]] std::vector<KeyRange> ranges_of(GroupId group) const;
  [[nodiscard]] std::uint32_t max_shard_id() const;

  // Full cover, sorted, no overlap, unique shard ids. `why` (optional)
  // receives the first violation.
  [[nodiscard]] bool validate(std::string* why = nullptr) const;

  // Successor map (epoch+1) where the upper part [split_point, hi] of
  // `shard_id`'s range becomes a new shard on `target` under `policy`.
  // Requires lo < split_point <= hi: both sides must be non-empty — a
  // split that would create an empty range is a caller bug.
  // Throws std::invalid_argument otherwise.
  [[nodiscard]] ShardMap split(std::uint32_t shard_id, std::uint32_t split_point,
                               GroupId target, const ShardPolicy& policy) const;

  // Successor map (epoch+1) with `shard_id` rebound to `target` (whole-range
  // migration). Throws std::invalid_argument for an unknown shard.
  [[nodiscard]] ShardMap reassign(std::uint32_t shard_id, GroupId target) const;

  [[nodiscard]] Bytes encode() const;
  // Throws DecodeError on malformed input.
  static ShardMap decode(std::span<const std::uint8_t> raw);

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

 private:
  std::uint64_t epoch_ = 0;
  std::vector<ShardEntry> entries_;  // sorted by range.lo
};

}  // namespace vdep::shard
